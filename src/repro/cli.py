"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Gives shell access to the main workflows of the library:

``schemes``     list every available ECC organization
``evaluate``    per-pattern and Table-1-weighted outcomes for one scheme
``fig8``        the Figure-8 comparison across all nine organizations
``hardware``    Table-3 encoder/decoder synthesis estimates
                (``--expansion`` adds the expansion-tier circuits)
``rank``        code-space superset ranking: resilience x area x delay
                across every registered organization
``campaign``    run a simulated beam campaign and derive the error patterns
``system``      exascale MTTI/MTTF and the ISO 26262 automotive assessment
``search``      run the genetic SEC-2bEC code search and print the H matrix
``report``      generate the full reproduction report as Markdown
``runs``        inspect the persistent run store (list/show/diff/gc)
``chaos``       campaign under a seeded fault schedule (crash-consistency
                harness; asserts recovery and clean-identical statistics;
                ``--serve`` targets the daemon instead of the CLI)
``serve``       run the multi-tenant async campaign service (HTTP/JSON
                API with dedupe, fair-share scheduling and SSE progress)
``submit``      submit one job to a running ``repro serve`` daemon
``jobs``        list/show/watch/cancel jobs on a running daemon
``version``     print the package version (also ``repro --version``)

Every evaluation subcommand also accepts ``--inject-faults SPEC`` (or the
``REPRO_FAULTS`` environment variable) to activate the deterministic
fault-injection layer of :mod:`repro.faults` — see DESIGN.md.

The evaluation commands (``evaluate``, ``fig8``, ``report``, ``system``,
``campaign``) cache their results in the persistent run store by default
(``--no-cache`` opts out), accept ``--workers N`` to fan work out over a
process pool (Table-2 cells, or the statistics chunks of ``campaign``),
and accept ``--resume <run-id>`` to restart an
interrupted sweep with its original parameters — completed cells come back
as cache hits, so only the unfinished work is recomputed.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_percent, format_table

__all__ = ["main", "build_parser", "version_string", "SchemeNameError"]


class SchemeNameError(ValueError):
    """An unknown ECC scheme name reached a CLI command.

    Raised instead of letting the registry's ``KeyError`` escape as a
    traceback; :func:`main` turns it into a clean exit code 2, and the
    serve daemon's generic exception handling turns it into a failed job
    with the same message.
    """


def _scheme_or_error(name: str):
    """``get_scheme`` with unknown names rewritten as a clean CLI error."""
    from repro.core import get_scheme

    try:
        return get_scheme(name)
    except KeyError:
        from repro.core.registry import SCHEME_ALIASES, known_scheme_names

        raise SchemeNameError(
            f"unknown ECC scheme {name!r}\n"
            f"  known schemes: {', '.join(known_scheme_names())}\n"
            f"  aliases: {', '.join(sorted(SCHEME_ALIASES))}"
        ) from None


def version_string() -> str:
    """``repro <version>`` from installed metadata, else the package.

    An installed distribution's metadata wins (it reflects what pip
    actually deployed); a source checkout that was never installed falls
    back to ``repro.__version__``.
    """
    try:
        from importlib.metadata import version as _dist_version

        version = _dist_version("repro")
    except Exception:
        version = None
    if not version:
        import repro

        version = repro.__version__
    return f"repro {version}"


def _add_store_flags(parser: argparse.ArgumentParser,
                     workers: bool = True) -> None:
    """The run-store flags shared by every evaluation subcommand."""
    if workers:
        parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="fan Table-2 cells out over N worker processes "
                 "(bit-identical to the serial run)")
        parser.add_argument(
            "--cell-timeout", type=float, default=None, metavar="SECONDS",
            help="per-cell wall-clock bound in the fanned-out path "
                 "(timed-out cells are requeued, then run serially)")
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse / record results in the persistent run store "
             "(default: on)")
    parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="restart an interrupted run with its stored parameters; "
             "completed cells become cache hits")
    parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run-store root (default: $REPRO_RUNS_DIR or "
             "~/.cache/repro-runs)")
    parser.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="SECONDS",
        help="progress-heartbeat interval on stderr (0 disables; "
             "default 5)")
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="activate deterministic fault injection, e.g. "
             "'pool.worker.crash:mode=exit;checkpoint.torn_write:mode=torn' "
             "(also via $REPRO_FAULTS; see DESIGN.md)")
    parser.add_argument(
        "--faults-seed", type=int, default=0, metavar="SEED",
        help="seed for probabilistic fault draws (default 0)")
    parser.add_argument(
        "--faults-ledger", default=None, metavar="FILE",
        help="cross-process activation ledger, shared across crash-restart "
             "cycles so 'times=' budgets hold globally")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Characterizing and Mitigating Soft "
                    "Errors in GPU DRAM' (MICRO 2021).",
    )
    parser.add_argument("--version", action="version",
                        version=version_string())
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("version", help="print the package version")

    sub.add_parser("schemes", help="list available ECC organizations")

    evaluate = sub.add_parser("evaluate", help="evaluate one ECC scheme")
    evaluate.add_argument("scheme", help="registry name, e.g. trio")
    evaluate.add_argument("--samples", type=int, default=20_000,
                          help="Monte Carlo samples per sampled pattern")
    evaluate.add_argument("--seed", type=int, default=1234)
    _add_store_flags(evaluate)

    fig8 = sub.add_parser("fig8", help="Figure-8 comparison of all schemes")
    fig8.add_argument("--samples", type=int, default=20_000)
    fig8.add_argument("--seed", type=int, default=1234)
    _add_store_flags(fig8)

    hardware = sub.add_parser("hardware", help="Table-3 synthesis estimates")
    hardware.add_argument(
        "--expansion", action="store_true",
        help="also synthesize the expansion-tier circuits (searched Hsiao, "
             "SEC-DAEC, BCH DEC, polar) against the SEC-DED baseline")

    rank = sub.add_parser(
        "rank", help="code-space superset ranking: resilience x area x delay "
                     "across every registered organization")
    rank.add_argument("--samples", type=int, default=20_000,
                      help="Monte Carlo samples per sampled pattern")
    rank.add_argument("--seed", type=int, default=1234)
    _add_store_flags(rank)

    campaign = sub.add_parser("campaign", help="run a simulated beam campaign")
    campaign.add_argument("--runs", type=int, default=3)
    campaign.add_argument("--seed", type=int, default=2021)
    campaign.add_argument("--events", type=int, default=3000,
                          help="generator-truth events for the statistics")
    campaign.add_argument("--engine", choices=["shm", "columnar", "reference"],
                          default="columnar",
                          help="statistics-campaign implementation "
                               "(bit-identical results; shm is the fused "
                               "shared-memory fast path, columnar the "
                               "vectorized per-chunk one)")
    campaign.add_argument("--stats", choices=["materialize", "streaming"],
                          default="materialize",
                          help="statistics path: materialize per-event "
                               "columns, or stream mergeable accumulators "
                               "in bounded memory (identical numbers; "
                               "streaming drops the per-event table)")
    campaign.add_argument("--workers", type=int, default=None, metavar="N",
                          help="fan statistics chunks out over N worker "
                               "processes (bit-identical to the serial run)")
    campaign.add_argument("--fleet-size", type=int, default=None,
                          metavar="N",
                          help="scale the campaign's Table 1 to a fleet of "
                               "N GPUs: FIT split, SDC/DUE MTBF, and "
                               "mission risk under --fleet-scheme")
    campaign.add_argument("--fleet-scheme", default="trio",
                          help="ECC scheme the fleet model assumes "
                               "(default: trio)")
    campaign.add_argument("--chunk-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-chunk wall-clock bound in the fanned-out "
                               "path (timed-out chunks are requeued, then "
                               "run serially)")
    _add_store_flags(campaign, workers=False)

    system = sub.add_parser("system", help="HPC and automotive system models")
    system.add_argument("--scheme", default="trio")
    system.add_argument("--samples", type=int, default=20_000)
    system.add_argument("--exaflops", type=float, nargs="+",
                        default=[0.5, 1.0, 2.0])
    _add_store_flags(system)

    report = sub.add_parser("report", help="full reproduction report (Markdown)")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--samples", type=int, default=20_000)
    report.add_argument("--seed", type=int, default=20211018)
    _add_store_flags(report)

    search = sub.add_parser("search", help="genetic SEC-2bEC code search")
    search.add_argument("--population", type=int, default=24)
    search.add_argument("--generations", type=int, default=40)
    search.add_argument("--seed", type=int, default=2021)

    from repro.faults.chaos import add_chaos_parser
    from repro.runs.cli import add_runs_parser
    from repro.serve.client import add_client_parsers
    from repro.serve.server import add_serve_parser

    add_runs_parser(sub)
    add_chaos_parser(sub)
    add_serve_parser(sub)
    add_client_parsers(sub)
    return parser


def _install_fault_plan(args) -> None:
    """Activate ``--inject-faults`` for this process and its children."""
    spec = getattr(args, "inject_faults", None)
    if not spec or args.command == "chaos":
        # The chaos harness passes the spec to its campaign *subprocesses*;
        # activating it in the orchestrator would fault the referee.
        return
    from repro import faults

    try:
        plan = faults.FaultPlan.parse(
            spec,
            seed=getattr(args, "faults_seed", 0),
            ledger=getattr(args, "faults_ledger", None),
        )
    except faults.FaultSpecError as exc:
        print(f"repro: error: --inject-faults: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    faults.install(plan)


# ---------------------------------------------------------------------------
# Run-session plumbing
# ---------------------------------------------------------------------------

def _begin_session(args, command: str, config: dict):
    """Open a run session for a cached subcommand, or None when disabled.

    An unusable store (read-only disk, bad root) only disables caching; a
    bad ``--resume`` id is a hard user error and exits with a message.
    """
    if not args.cache and args.resume is None:
        return None
    from repro.runs import RunSession, UnknownRunError

    try:
        return RunSession.begin(command=command, config=config,
                                root=args.runs_dir, resume=args.resume)
    except (UnknownRunError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro: error: {message}", file=sys.stderr)
        raise SystemExit(2) from None
    except OSError as exc:
        print(f"repro: warning: run store unavailable ({exc}); "
              "caching disabled", file=sys.stderr)
        return None


class _NullSession:
    """No-op stand-in so command bodies read the same with caching off."""

    cell_cache = None
    config: dict = {}
    tracer = None

    def stage(self, name):
        import contextlib

        return contextlib.nullcontext()

    def record_counters(self, counters: dict) -> None:
        pass

    def active(self):
        import contextlib

        return contextlib.nullcontext()

    def summary(self):
        return None


def _session_or_null(args, command: str, config: dict):
    session = _begin_session(args, command, config)
    if session is None:
        null = _NullSession()
        null.config = config
        return null
    return session


def _print_summary(session, out=print) -> None:
    summary = session.summary()
    if summary:
        out(f"\n{summary}")


def _make_heartbeat(args, label: str, unit: str):
    """A progress heartbeat honoring ``--heartbeat`` (None = off).

    Lines go to stderr by default; a namespace carrying a
    ``heartbeat_callback`` (the serve daemon's SSE bridge) gets every
    line delivered there instead.
    """
    interval = getattr(args, "heartbeat", 0.0)
    callback = getattr(args, "heartbeat_callback", None)
    if not interval or interval <= 0:
        return None
    from repro.obs import Heartbeat

    return Heartbeat(label, unit=unit, interval_s=interval,
                     callback=callback)


# ---------------------------------------------------------------------------
# Session configs — one builder per cached command, shared with the serve
# daemon so a submitted job and its CLI twin produce the same manifest
# config (which is what makes the daemon's resume-matching work).
# ---------------------------------------------------------------------------

def evaluate_session_config(args) -> dict:
    return {
        "scheme": args.scheme, "samples": args.samples, "seed": args.seed,
        "workers": args.workers, "cell_timeout": args.cell_timeout,
    }


def fig8_session_config(args) -> dict:
    return {
        "samples": args.samples, "seed": args.seed,
        "workers": args.workers, "cell_timeout": args.cell_timeout,
    }


def campaign_session_config(args) -> dict:
    # fleet_size/fleet_scheme shape the printed report, so they are
    # identity-bearing; --stats is an execution strategy with identical
    # output and deliberately stays out (like --engine/--workers).
    return {"runs": args.runs, "seed": args.seed, "events": args.events,
            "fleet_size": getattr(args, "fleet_size", None),
            "fleet_scheme": getattr(args, "fleet_scheme", "trio")}


def beam_campaign_config(cfg: dict):
    """The :class:`repro.beam.CampaignConfig` a campaign session runs.

    Factored out of :func:`_cmd_campaign` so the serve layer can compute
    the campaign's content-addressed artifact key *before* scheduling.
    """
    from repro.beam import CampaignConfig, DamageParameters, EventParameters

    return CampaignConfig(
        runs=cfg["runs"], write_cycles=6, reads_per_write=3, loop_time_s=2.0,
        seed=cfg["seed"],
        event_parameters=EventParameters(mean_time_to_event_s=8.0),
        damage_parameters=DamageParameters(leaky_pool=100,
                                           saturation_fluence=3e8),
    )


def _warm_pool(workers):
    """The invocation-wide warm pool, or None when not fanning out."""
    if not workers or workers <= 1:
        return None
    from repro.core.pool import shared_warm_pool

    return shared_warm_pool(workers)


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_schemes() -> None:
    from repro.core import all_schemes
    from repro.core.registry import (
        EXPANSION_SCHEME_NAMES,
        EXTENSION_SCHEME_NAMES,
        get_scheme,
    )

    rows = [
        [scheme.name, scheme.label, "yes" if scheme.corrects_pins else "no"]
        for scheme in all_schemes()
    ]
    for tier_names, suffix in ((EXTENSION_SCHEME_NAMES, " [extension]"),
                               (EXPANSION_SCHEME_NAMES, " [expansion]")):
        for name in tier_names:
            scheme = get_scheme(name)
            rows.append([scheme.name, scheme.label + suffix,
                         "yes" if scheme.corrects_pins else "no"])
    print(format_table(["name", "organization", "pin correction"], rows))


def _cmd_evaluate(args, out=print):
    from repro.errormodel import evaluate_scheme, weighted_outcomes

    _scheme_or_error(args.scheme)  # fail fast, before opening a run
    session = _session_or_null(args, "evaluate",
                               evaluate_session_config(args))
    cfg = session.config
    with session.active():
        scheme = _scheme_or_error(cfg["scheme"])
        with session.stage("evaluate"):
            per_pattern = evaluate_scheme(
                scheme, samples=cfg["samples"], seed=cfg["seed"],
                workers=cfg.get("workers"), cache=session.cell_cache,
                cell_timeout=cfg.get("cell_timeout"),
                tracer=session.tracer,
                heartbeat=_make_heartbeat(
                    args, f"evaluate {cfg['scheme']}", "cells"),
                warm_pool=_warm_pool(cfg.get("workers")),
            )
    rows = [
        [pattern.value, outcome.events,
         f"{outcome.dce:.4%}", f"{outcome.due:.4%}",
         format_percent(outcome.sdc),
         "exhaustive" if outcome.exhaustive else "sampled"]
        for pattern, outcome in per_pattern.items()
    ]
    out(format_table(
        ["pattern", "events", "corrected", "DUE", "SDC", "method"],
        rows, title=f"{scheme.label} — per-pattern outcomes",
    ))
    outcome = weighted_outcomes(scheme, per_pattern=per_pattern)
    out(
        f"\nTable-1 weighted: corrected {outcome.correct:.2%}, "
        f"DUE {outcome.detect:.2%}, SDC {format_percent(outcome.sdc)}"
    )
    _print_summary(session, out)
    return session


def _cmd_fig8(args, out=print):
    from repro.core import all_schemes
    from repro.errormodel import evaluate_scheme, weighted_outcomes

    session = _session_or_null(args, "fig8", fig8_session_config(args))
    cfg = session.config
    rows = []
    with session.active():
        with session.stage("evaluate"):
            for scheme in all_schemes():
                per_pattern = evaluate_scheme(
                    scheme, samples=cfg["samples"], seed=cfg["seed"],
                    workers=cfg.get("workers"), cache=session.cell_cache,
                    cell_timeout=cfg.get("cell_timeout"),
                    tracer=session.tracer,
                    heartbeat=_make_heartbeat(
                        args, f"fig8 {scheme.name}", "cells"),
                    warm_pool=_warm_pool(cfg.get("workers")),
                )
                outcome = weighted_outcomes(scheme, per_pattern=per_pattern)
                rows.append([
                    scheme.label, f"{outcome.correct:.2%}",
                    f"{outcome.detect:.2%}", format_percent(outcome.sdc),
                ])
    out(format_table(["scheme", "corrected", "DUE", "SDC"], rows,
                     title="Figure 8 — Table-1-weighted outcomes"))
    _print_summary(session, out)
    return session


def _render_synthesis_table(title: str, rows, baseline) -> str:
    rendered = []
    for row in rows:
        for label, stats, base in (("Perf.", row.perf, baseline.perf),
                                   ("Eff.", row.eff, baseline.eff)):
            rendered.append([
                row.name, label, f"{stats.area:,.0f}",
                f"{stats.area_overhead(base):+.1%}",
                f"{stats.delay_ns:.3f}",
            ])
    return format_table(
        ["circuit", "point", "area (AND2)", "vs SEC-DED", "delay (ns)"],
        rendered, title=title,
    )


def _cmd_hardware(args=None) -> None:
    from repro.hardware.synth import table3_rows

    encoders, decoders = table3_rows()
    for title, rows in (("Encoders", encoders), ("Decoders", decoders)):
        print(_render_synthesis_table(f"Table 3 — {title}", rows, rows[0]))
        print()
    if args is not None and getattr(args, "expansion", False):
        from repro.hardware.expansion import expansion_rows

        exp_encoders, exp_decoders = expansion_rows()
        for title, rows, baseline in (
            ("Encoders", exp_encoders, encoders[0]),
            ("Decoders", exp_decoders, decoders[0]),
        ):
            print(_render_synthesis_table(
                f"Expansion tier — {title} (vs the Table-3 SEC-DED baseline)",
                rows, baseline,
            ))
            print()


def rank_session_config(args) -> dict:
    return {
        "samples": args.samples, "seed": args.seed,
        "workers": args.workers, "cell_timeout": args.cell_timeout,
    }


def _cmd_rank(args, out=print):
    from repro.analysis.ranking import format_ranking, ranking_rows

    session = _session_or_null(args, "rank", rank_session_config(args))
    cfg = session.config
    with session.active():
        with session.stage("rank"):
            rows = ranking_rows(
                samples=cfg["samples"], seed=cfg["seed"],
                workers=cfg.get("workers"), cache=session.cell_cache,
                cell_timeout=cfg.get("cell_timeout"), tracer=session.tracer,
                heartbeat=_make_heartbeat(args, "rank", "cells"),
                warm_pool=_warm_pool(cfg.get("workers")),
            )
    out(format_ranking(rows))
    _print_summary(session, out)
    return session


def _cmd_campaign(args, out=print):
    from dataclasses import asdict

    from repro.beam import (
        BeamCampaign,
        breadth_class_fractions,
        derive_table1,
        filter_intermittent,
        group_events,
        run_statistics_campaign,
    )

    if getattr(args, "fleet_size", None):
        # fail fast, before the beam simulation runs
        _scheme_or_error(getattr(args, "fleet_scheme", "trio"))
    session = _session_or_null(args, "campaign",
                               campaign_session_config(args))
    cfg = session.config
    config = beam_campaign_config(cfg)
    records = None
    with session.active():
        if session.cell_cache is not None:
            from repro.runs import RunStore, mismatch_from_record

            key = RunStore.campaign_key(asdict(config), session.fingerprint)
            cached = session.store.load_campaign(key)
            if cached is not None:
                meta, record_dicts = cached
                records = [mismatch_from_record(d) for d in record_dicts]
                elapsed_s = meta["elapsed_s"]
                n_events = meta["n_events"]
                session.cell_cache.hits += 1
        if records is None:
            from repro.runs import mismatch_to_record

            checkpoint = None
            if session.cell_cache is not None:
                checkpoint = session.campaign_checkpoint()
            with session.stage("campaign"):
                result = BeamCampaign(config).run(checkpoint=checkpoint)
            records = result.records
            elapsed_s = result.clock.elapsed_s
            n_events = len(result.events)
            if session.cell_cache is not None:
                session.store.save_campaign(
                    key,
                    {"elapsed_s": elapsed_s, "n_events": n_events,
                     "fluence": result.clock.fluence,
                     "weak_cells": result.weak_cell_count},
                    [mismatch_to_record(r) for r in records],
                )
                session.cell_cache.misses += 1

        filtered = filter_intermittent(records)
        observed = group_events(filtered.soft_records)
        out(f"beam time {elapsed_s:,.0f}s | "
            f"{n_events} injected events | "
            f"{len(observed)} observed | "
            f"{len(filtered.damaged_entries)} damaged entries filtered")

        stats_mode = getattr(args, "stats", "materialize")
        with session.stage("statistics"):
            statistics = run_statistics_campaign(
                cfg["events"], seed=cfg["seed"],
                engine=args.engine, stats=stats_mode, workers=args.workers,
                chunk_timeout=getattr(args, "chunk_timeout", None),
                tracer=session.tracer,
                heartbeat=_make_heartbeat(
                    args, "campaign statistics", "chunks"),
                warm_pool=_warm_pool(args.workers),
            )
            if statistics.stats_mode != "streaming":
                observed += statistics.observed_events
        session.record_counters(statistics.counters())
        if statistics.stats_mode == "streaming":
            # The statistics sweep never materialized events; fold the
            # beam run's observed events into a fresh accumulator and
            # merge the streamed state in.  Tally merging makes the
            # report identical to the materialized concatenation.
            from repro.stats import CampaignAccumulator

            accumulator = CampaignAccumulator()
            accumulator.update_from_events(observed)
            final = accumulator.merge(statistics.accumulator).finalize()
            class_fractions = final["class_fractions"]
            table1 = final["table1"]
        else:
            class_fractions = breadth_class_fractions(observed)
            table1 = derive_table1(observed)
        out("\nEvent classes (Figure 4a):")
        for klass, fraction in class_fractions.items():
            out(f"  {klass.name}: {fraction:.1%}")
        out("\nDerived Table 1:")
        for pattern, probability in table1.items():
            out(f"  {pattern.value:8s}: {probability:.2%}")
        if cfg.get("fleet_size"):
            from repro.system import GpuFleetModel

            fleet = GpuFleetModel(devices=cfg["fleet_size"])
            scheme = _scheme_or_error(cfg["fleet_scheme"])
            reliability = fleet.from_table1(scheme, table1)
            out(f"\nFleet model: {cfg['fleet_size']:,} GPUs under "
                f"{scheme.label}")
            out(f"  SDC {reliability.sdc_fit:,.1f} FIT | "
                f"MTBF {reliability.mtbf_sdc_hours:,.1f} h | "
                f"P(>=1 in 24h) {reliability.sdc_risk(24.0):.2%}")
            out(f"  DUE {reliability.due_fit:,.1f} FIT | "
                f"MTBF {reliability.mtbf_due_hours:,.1f} h | "
                f"P(>=1 in 24h) {reliability.due_risk(24.0):.2%}")
    _print_summary(session, out)
    return session


def _cmd_system(args) -> None:
    from repro.errormodel import evaluate_scheme, weighted_outcomes
    from repro.system import ExascaleSystem, assess_scheme

    _scheme_or_error(args.scheme)  # fail fast, before opening a run
    session = _session_or_null(args, "system", {
        "scheme": args.scheme, "samples": args.samples,
        "exaflops": list(args.exaflops), "workers": args.workers,
        "cell_timeout": args.cell_timeout,
    })
    cfg = session.config
    with session.active():
        scheme = _scheme_or_error(cfg["scheme"])
        with session.stage("evaluate"):
            per_pattern = evaluate_scheme(
                scheme, samples=cfg["samples"],
                workers=cfg.get("workers"), cache=session.cell_cache,
                cell_timeout=cfg.get("cell_timeout"),
                tracer=session.tracer,
                heartbeat=_make_heartbeat(
                    args, f"system {cfg['scheme']}", "cells"),
                warm_pool=_warm_pool(cfg.get("workers")),
            )
        outcome = weighted_outcomes(scheme, per_pattern=per_pattern)
    system = ExascaleSystem()
    rows = []
    for exaflops in cfg["exaflops"]:
        point = system.point(exaflops, outcome)
        rows.append([
            f"{exaflops:.2f}", f"{point.gpus:,}",
            f"{point.mtti_hours:.1f}", f"{point.mttf_months:,.1f}",
        ])
    print(format_table(
        ["exaflops", "GPUs", "MTTI (h)", "MTTF (months)"],
        rows, title=f"{cfg['scheme']} at exascale (Figure 9)",
    ))
    assessment = assess_scheme(outcome)
    verdict = "PASS" if assessment.meets_iso26262 else "FAIL"
    print(f"\nAutomotive (§7.3): {assessment.sdc_fit:.3g} SDC FIT/GPU "
          f"-> ISO 26262 {verdict}; fleet: "
          f"{assessment.fleet_sdc_per_day:.3g} SDC/day, "
          f"{assessment.fleet_due_cars_per_day:,.0f} DUE cars/day")
    _print_summary(session)


def _cmd_report(args) -> None:
    from repro.analysis.report import generate_report

    session = _session_or_null(args, "report", {
        "samples": args.samples, "seed": args.seed,
        "workers": args.workers, "cell_timeout": args.cell_timeout,
    })
    cfg = session.config
    with session.active():
        with session.stage("report"):
            markdown = generate_report(
                samples=cfg["samples"], seed=cfg["seed"],
                workers=cfg.get("workers"), cache=session.cell_cache,
                tracer=session.tracer,
                warm_pool=_warm_pool(cfg.get("workers")),
            )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"report written to {args.output}")
    else:
        print(markdown)
    _print_summary(session)


def _cmd_search(args) -> None:
    from repro.codes.base32 import encode_h_matrix
    from repro.codes.genetic import search_sec2bec

    result = search_sec2bec(population=args.population,
                            generations=args.generations, seed=args.seed)
    print(f"best SEC-2bEC code after {result.generations_run} generations: "
          f"{result.miscorrections} non-aligned 2b aliases "
          f"(paper's Equation 3: 553)")
    print("H matrix (Crockford Base32, one row per line):")
    for row in encode_h_matrix(result.code.h):
        print(f"  {row}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _install_fault_plan(args)
    from repro.core.pool import install_shutdown_hooks

    install_shutdown_hooks()
    try:
        return _dispatch(args)
    finally:
        from repro.core.pool import close_warm_pools

        close_warm_pools()


def _dispatch(args) -> int:
    try:
        if args.command == "version":
            print(version_string())
        elif args.command == "schemes":
            _cmd_schemes()
        elif args.command == "evaluate":
            _cmd_evaluate(args)
        elif args.command == "fig8":
            _cmd_fig8(args)
        elif args.command == "hardware":
            _cmd_hardware(args)
        elif args.command == "rank":
            _cmd_rank(args)
        elif args.command == "campaign":
            _cmd_campaign(args)
        elif args.command == "system":
            _cmd_system(args)
        elif args.command == "report":
            _cmd_report(args)
        elif args.command == "search":
            _cmd_search(args)
        elif args.command == "runs":
            from repro.runs.cli import cmd_runs

            return cmd_runs(args)
        elif args.command == "chaos":
            from repro.faults.chaos import cmd_chaos

            return cmd_chaos(args)
        elif args.command == "serve":
            from repro.serve.server import cmd_serve

            return cmd_serve(args)
        elif args.command == "submit":
            from repro.serve.client import cmd_submit

            return cmd_submit(args)
        elif args.command == "jobs":
            from repro.serve.client import cmd_jobs

            return cmd_jobs(args)
        return 0
    except SchemeNameError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

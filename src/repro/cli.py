"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Gives shell access to the main workflows of the library:

``schemes``     list every available ECC organization
``evaluate``    per-pattern and Table-1-weighted outcomes for one scheme
``fig8``        the Figure-8 comparison across all nine organizations
``hardware``    Table-3 encoder/decoder synthesis estimates
``campaign``    run a simulated beam campaign and derive the error patterns
``system``      exascale MTTI/MTTF and the ISO 26262 automotive assessment
``search``      run the genetic SEC-2bEC code search and print the H matrix
``report``      generate the full reproduction report as Markdown
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_percent, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Characterizing and Mitigating Soft "
                    "Errors in GPU DRAM' (MICRO 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list available ECC organizations")

    evaluate = sub.add_parser("evaluate", help="evaluate one ECC scheme")
    evaluate.add_argument("scheme", help="registry name, e.g. trio")
    evaluate.add_argument("--samples", type=int, default=20_000,
                          help="Monte Carlo samples per sampled pattern")
    evaluate.add_argument("--seed", type=int, default=1234)

    fig8 = sub.add_parser("fig8", help="Figure-8 comparison of all schemes")
    fig8.add_argument("--samples", type=int, default=20_000)
    fig8.add_argument("--seed", type=int, default=1234)

    sub.add_parser("hardware", help="Table-3 synthesis estimates")

    campaign = sub.add_parser("campaign", help="run a simulated beam campaign")
    campaign.add_argument("--runs", type=int, default=3)
    campaign.add_argument("--seed", type=int, default=2021)
    campaign.add_argument("--events", type=int, default=3000,
                          help="generator-truth events for the statistics")

    system = sub.add_parser("system", help="HPC and automotive system models")
    system.add_argument("--scheme", default="trio")
    system.add_argument("--samples", type=int, default=20_000)
    system.add_argument("--exaflops", type=float, nargs="+",
                        default=[0.5, 1.0, 2.0])

    report = sub.add_parser("report", help="full reproduction report (Markdown)")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--samples", type=int, default=20_000)
    report.add_argument("--seed", type=int, default=20211018)

    search = sub.add_parser("search", help="genetic SEC-2bEC code search")
    search.add_argument("--population", type=int, default=24)
    search.add_argument("--generations", type=int, default=40)
    search.add_argument("--seed", type=int, default=2021)
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_schemes() -> None:
    from repro.core import all_schemes
    from repro.core.registry import EXTENSION_SCHEME_NAMES, get_scheme

    rows = [
        [scheme.name, scheme.label, "yes" if scheme.corrects_pins else "no"]
        for scheme in all_schemes()
    ]
    for name in EXTENSION_SCHEME_NAMES:
        scheme = get_scheme(name)
        rows.append([scheme.name, scheme.label + " [extension]",
                     "yes" if scheme.corrects_pins else "no"])
    print(format_table(["name", "organization", "pin correction"], rows))


def _cmd_evaluate(args) -> None:
    from repro.core import get_scheme
    from repro.errormodel import evaluate_scheme, weighted_outcomes

    scheme = get_scheme(args.scheme)
    per_pattern = evaluate_scheme(scheme, samples=args.samples, seed=args.seed)
    rows = [
        [pattern.value, outcome.events,
         f"{outcome.dce:.4%}", f"{outcome.due:.4%}",
         format_percent(outcome.sdc),
         "exhaustive" if outcome.exhaustive else "sampled"]
        for pattern, outcome in per_pattern.items()
    ]
    print(format_table(
        ["pattern", "events", "corrected", "DUE", "SDC", "method"],
        rows, title=f"{scheme.label} — per-pattern outcomes",
    ))
    outcome = weighted_outcomes(scheme, per_pattern=per_pattern)
    print(
        f"\nTable-1 weighted: corrected {outcome.correct:.2%}, "
        f"DUE {outcome.detect:.2%}, SDC {format_percent(outcome.sdc)}"
    )


def _cmd_fig8(args) -> None:
    from repro.core import all_schemes
    from repro.errormodel import weighted_outcomes

    rows = []
    for scheme in all_schemes():
        outcome = weighted_outcomes(scheme, samples=args.samples,
                                    seed=args.seed)
        rows.append([
            scheme.label, f"{outcome.correct:.2%}",
            f"{outcome.detect:.2%}", format_percent(outcome.sdc),
        ])
    print(format_table(["scheme", "corrected", "DUE", "SDC"], rows,
                       title="Figure 8 — Table-1-weighted outcomes"))


def _cmd_hardware() -> None:
    from repro.hardware.synth import table3_rows

    encoders, decoders = table3_rows()
    for title, rows in (("Encoders", encoders), ("Decoders", decoders)):
        baseline = rows[0]
        rendered = []
        for row in rows:
            for label, stats, base in (("Perf.", row.perf, baseline.perf),
                                       ("Eff.", row.eff, baseline.eff)):
                rendered.append([
                    row.name, label, f"{stats.area:,.0f}",
                    f"{stats.area_overhead(base):+.1%}",
                    f"{stats.delay_ns:.3f}",
                ])
        print(format_table(
            ["circuit", "point", "area (AND2)", "vs SEC-DED", "delay (ns)"],
            rendered, title=f"Table 3 — {title}",
        ))
        print()


def _cmd_campaign(args) -> None:
    from repro.beam import (
        BeamCampaign,
        CampaignConfig,
        DamageParameters,
        EventParameters,
        SoftErrorEventGenerator,
        breadth_class_fractions,
        derive_table1,
        filter_intermittent,
        group_events,
    )
    from repro.beam.postprocess import events_from_truth

    config = CampaignConfig(
        runs=args.runs, write_cycles=6, reads_per_write=3, loop_time_s=2.0,
        seed=args.seed,
        event_parameters=EventParameters(mean_time_to_event_s=8.0),
        damage_parameters=DamageParameters(leaky_pool=100,
                                           saturation_fluence=3e8),
    )
    result = BeamCampaign(config).run()
    filtered = filter_intermittent(result.records)
    observed = group_events(filtered.soft_records)
    print(f"beam time {result.clock.elapsed_s:,.0f}s | "
          f"{len(result.events)} injected events | "
          f"{len(observed)} observed | "
          f"{len(filtered.damaged_entries)} damaged entries filtered")

    generator = SoftErrorEventGenerator(seed=args.seed)
    observed += events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(args.events)]
    )
    print("\nEvent classes (Figure 4a):")
    for klass, fraction in breadth_class_fractions(observed).items():
        print(f"  {klass.name}: {fraction:.1%}")
    print("\nDerived Table 1:")
    for pattern, probability in derive_table1(observed).items():
        print(f"  {pattern.value:8s}: {probability:.2%}")


def _cmd_system(args) -> None:
    from repro.core import get_scheme
    from repro.errormodel import weighted_outcomes
    from repro.system import ExascaleSystem, assess_scheme

    outcome = weighted_outcomes(get_scheme(args.scheme), samples=args.samples)
    system = ExascaleSystem()
    rows = []
    for exaflops in args.exaflops:
        point = system.point(exaflops, outcome)
        rows.append([
            f"{exaflops:.2f}", f"{point.gpus:,}",
            f"{point.mtti_hours:.1f}", f"{point.mttf_months:,.1f}",
        ])
    print(format_table(
        ["exaflops", "GPUs", "MTTI (h)", "MTTF (months)"],
        rows, title=f"{args.scheme} at exascale (Figure 9)",
    ))
    assessment = assess_scheme(outcome)
    verdict = "PASS" if assessment.meets_iso26262 else "FAIL"
    print(f"\nAutomotive (§7.3): {assessment.sdc_fit:.3g} SDC FIT/GPU "
          f"-> ISO 26262 {verdict}; fleet: "
          f"{assessment.fleet_sdc_per_day:.3g} SDC/day, "
          f"{assessment.fleet_due_cars_per_day:,.0f} DUE cars/day")


def _cmd_report(args) -> None:
    from repro.analysis.report import generate_report

    markdown = generate_report(samples=args.samples, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"report written to {args.output}")
    else:
        print(markdown)


def _cmd_search(args) -> None:
    from repro.codes.base32 import encode_h_matrix
    from repro.codes.genetic import search_sec2bec

    result = search_sec2bec(population=args.population,
                            generations=args.generations, seed=args.seed)
    print(f"best SEC-2bEC code after {result.generations_run} generations: "
          f"{result.miscorrections} non-aligned 2b aliases "
          f"(paper's Equation 3: 553)")
    print("H matrix (Crockford Base32, one row per line):")
    for row in encode_h_matrix(result.code.h):
        print(f"  {row}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "schemes":
        _cmd_schemes()
    elif args.command == "evaluate":
        _cmd_evaluate(args)
    elif args.command == "fig8":
        _cmd_fig8(args)
    elif args.command == "hardware":
        _cmd_hardware()
    elif args.command == "campaign":
        _cmd_campaign(args)
    elif args.command == "system":
        _cmd_system(args)
    elif args.command == "report":
        _cmd_report(args)
    elif args.command == "search":
        _cmd_search(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

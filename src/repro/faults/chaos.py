"""``repro chaos`` — run a real campaign under a seeded fault schedule.

The harness is the acceptance test for the whole robustness story: it
runs one beam campaign *clean* and the same campaign under a
deterministic fault plan — kill -9'd pool workers, torn artifact and
checkpoint writes, hung chunks — restarting with ``--resume`` every time
an injected fault kills the process, then verdicts on three things:

1. the faulted campaign eventually completes (retry / quarantine /
   resume actually recover);
2. its stdout — the derived statistics — is bit-identical to the clean
   run's (determinism survives every degraded path);
3. every injected incident is visible: ``fault.*`` counters (fed by the
   cross-process activation ledger) and the quarantine counter appear in
   the final run's manifest.

Campaign processes are separate interpreters, launched with
``--inject-faults`` so each installs the plan as its *own* host —
``host=1`` rules (torn writes in the coordinating process) genuinely
kill it, while plain destructive rules stay confined to pool workers.
The shared ledger keeps ``times=`` budgets global across the
crash-restart cycles, so a schedule of N faults injects exactly N faults
no matter how many restarts they cause.

This module imports :mod:`repro.runs` and therefore lives outside the
``repro.faults`` package namespace exports — the injection runtime must
stay leaf-level.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.shm import orphaned_segments
from repro.faults.plan import (
    ENV_HOST_PID,
    ENV_LEDGER,
    ENV_SEED,
    ENV_SPEC,
    FaultPlan,
    FaultSpecError,
)

__all__ = ["DEFAULT_SPEC", "add_chaos_parser", "cmd_chaos", "run_chaos"]

#: The stock schedule: four fault classes across three layers — a pool
#: worker killed mid-chunk, the campaign artifact and a checkpoint line
#: torn mid-write (killing the host), and two hung chunks.
DEFAULT_SPEC = (
    "pool.worker.crash:mode=exit,times=1;"
    "store.save_campaign.pre_rename:mode=torn,host=1,times=1;"
    "checkpoint.torn_write:mode=torn,host=1,times=1;"
    "engine.chunk.hang:mode=hang,s=0.05,times=2"
)

#: wall-clock bound per campaign invocation (a hung subprocess must not
#: hang the harness)
_SUBPROCESS_TIMEOUT_S = 600.0


def add_chaos_parser(sub) -> None:
    """Register the ``chaos`` subcommand on the main CLI's subparsers."""
    chaos = sub.add_parser(
        "chaos",
        help="campaign under a seeded fault schedule; asserts recovery "
             "and clean-run-identical statistics",
    )
    chaos.add_argument("--events", type=int, default=1200,
                       help="generator-truth events (>= 2 chunks so the "
                            "worker pool engages; default 1200)")
    chaos.add_argument("--runs", type=int, default=1)
    chaos.add_argument("--seed", type=int, default=2021)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--engine", choices=["shm", "columnar", "reference"],
                       default="columnar",
                       help="statistics engine for both campaigns; 'shm' "
                            "additionally exercises the shared-memory "
                            "arena faultpoints (shm.arena.*)")
    chaos.add_argument("--inject-faults", default=DEFAULT_SPEC,
                       metavar="SPEC",
                       help="fault schedule for the faulted campaign "
                            "(default: worker crash + torn artifact + "
                            "torn checkpoint + chunk hangs)")
    chaos.add_argument("--faults-seed", type=int, default=7)
    chaos.add_argument("--max-restarts", type=int, default=8,
                       help="resume attempts before declaring the "
                            "schedule unrecoverable (default 8)")
    chaos.add_argument("--chunk-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-chunk timeout passed through to the "
                            "campaigns (exercises the requeue path for "
                            "hang faults longer than it)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep the scratch stores and ledger for "
                            "post-mortem instead of deleting them")


def _campaign_argv(args, store: Path) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "campaign",
        "--runs", str(args.runs),
        "--events", str(args.events),
        "--seed", str(args.seed),
        "--workers", str(args.workers),
        "--engine", getattr(args, "engine", "columnar"),
        "--heartbeat", "0",
        "--runs-dir", str(store),
    ]
    if args.chunk_timeout is not None:
        argv += ["--chunk-timeout", str(args.chunk_timeout)]
    return argv


def _scrubbed_env() -> dict:
    """A child environment with no inherited fault activation and the
    library importable whether or not it is pip-installed."""
    env = dict(os.environ)
    for var in (ENV_SPEC, ENV_SEED, ENV_LEDGER, ENV_HOST_PID):
        env.pop(var, None)
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run(argv: list[str], env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, env=env, capture_output=True, text=True,
        timeout=_SUBPROCESS_TIMEOUT_S,
    )


def _report_lines(stdout: str) -> list[str]:
    """The comparable statistics lines: everything except the run-store
    chatter (run ids differ between invocations by construction)."""
    return [line for line in stdout.splitlines()
            if line.strip() and not line.startswith("[repro")]


def _resume_id(store: Path) -> str | None:
    """Newest interrupted campaign run in the store, if any."""
    from repro.runs import RunStore

    for manifest in RunStore(store).list_runs():
        if manifest.command == "campaign" and manifest.status != "completed":
            return manifest.run_id
    return None


def run_chaos(args, out=print) -> int:
    """Execute the clean-vs-faulted comparison; returns an exit code."""
    try:
        FaultPlan.parse(args.inject_faults)  # fail fast on a bad spec
    except FaultSpecError as exc:
        out(f"repro chaos: error: bad fault spec: {exc}")
        return 2

    work = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    clean_store = work / "clean-store"
    chaos_store = work / "chaos-store"
    ledger = work / "faults-ledger.jsonl"
    env = _scrubbed_env()
    try:
        out(f"[repro chaos] schedule: {args.inject_faults}")
        out(f"[repro chaos] scratch dir: {work}")

        clean = _run(_campaign_argv(args, clean_store), env)
        if clean.returncode != 0:
            out("[repro chaos] FAIL: the clean (fault-free) campaign "
                f"exited {clean.returncode}")
            out(clean.stderr)
            return 1
        leaked = orphaned_segments()
        if leaked:
            out("[repro chaos] FAIL: the clean campaign leaked "
                f"shared-memory segments: {', '.join(leaked)}")
            return 1

        fault_flags = [
            "--inject-faults", args.inject_faults,
            "--faults-seed", str(args.faults_seed),
            "--faults-ledger", str(ledger),
        ]
        restarts = 0
        faulted = None
        for attempt in range(args.max_restarts + 1):
            argv = _campaign_argv(args, chaos_store) + fault_flags
            resume = _resume_id(chaos_store)
            if resume is not None:
                argv += ["--resume", resume]
            faulted = _run(argv, env)
            if faulted.returncode == 0:
                break
            restarts += 1
            out(f"[repro chaos] campaign killed (exit "
                f"{faulted.returncode}); restart {restarts} "
                f"{'resuming ' + resume if resume else 'fresh'}"
                .rstrip())
        else:
            out(f"[repro chaos] FAIL: campaign still failing after "
                f"{args.max_restarts} restarts")
            if faulted is not None:
                out(faulted.stderr)
            return 1
        out(f"[repro chaos] faulted campaign completed after "
            f"{restarts} restart(s)")

        # Incident accounting: the ledger is the ground truth of what was
        # injected; the final manifest must expose the same incidents.
        plan = FaultPlan.parse(args.inject_faults, ledger=ledger)
        injected = plan.ledger_counts()
        out("[repro chaos] injected incidents (ledger):")
        for point, count in sorted(injected.items()):
            out(f"  {point}: {count}")
        if not injected:
            out("[repro chaos] FAIL: the schedule injected nothing — "
                "the run never reached its fault points")
            return 1

        from repro.runs import RunStore

        final = next(
            m for m in RunStore(chaos_store).list_runs()
            if m.command == "campaign" and m.status == "completed"
        )
        problems = []
        for point, count in injected.items():
            seen = final.counters.get(f"fault.{point}")
            if seen != count:
                problems.append(
                    f"manifest counter fault.{point} is {seen}, "
                    f"ledger says {count}")
        quarantined = final.counters.get("artifacts_quarantined", 0)
        out(f"[repro chaos] final manifest: run {final.run_id}, "
            f"{quarantined} artifact(s) quarantined")
        torn_artifact = any(point.startswith("store.")
                            for point in injected)
        if torn_artifact and not quarantined:
            problems.append(
                "a store write was torn but nothing was quarantined")

        # Arena hygiene: every campaign process is dead by now, so any
        # surviving repro-shm segment is a leak the recovery story missed.
        leaked = orphaned_segments()
        if leaked:
            problems.append("orphaned shared-memory segments after "
                            "recovery: " + ", ".join(leaked))

        clean_lines = _report_lines(clean.stdout)
        fault_lines = _report_lines(faulted.stdout)
        if clean_lines != fault_lines:
            problems.append("faulted statistics differ from the clean run")
            for a, b in zip(clean_lines, fault_lines):
                if a != b:
                    out(f"  clean:   {a}")
                    out(f"  faulted: {b}")
            if len(clean_lines) != len(fault_lines):
                out(f"  ({len(clean_lines)} clean lines vs "
                    f"{len(fault_lines)} faulted)")

        if problems:
            for problem in problems:
                out(f"[repro chaos] FAIL: {problem}")
            return 1
        out(f"[repro chaos] PASS: {sum(injected.values())} injected "
            f"fault(s) across {len(injected)} point(s), "
            f"{restarts} restart(s), statistics bit-identical to the "
            "clean run")
        return 0
    finally:
        if args.keep:
            out(f"[repro chaos] kept scratch dir {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


def cmd_chaos(args) -> int:
    """Dispatch ``repro chaos``; returns a process exit code."""
    return run_chaos(args)

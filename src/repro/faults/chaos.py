"""``repro chaos`` — run a real campaign under a seeded fault schedule.

The harness is the acceptance test for the whole robustness story: it
runs one beam campaign *clean* and the same campaign under a
deterministic fault plan — kill -9'd pool workers, torn artifact and
checkpoint writes, hung chunks — restarting with ``--resume`` every time
an injected fault kills the process, then verdicts on three things:

1. the faulted campaign eventually completes (retry / quarantine /
   resume actually recover);
2. its stdout — the derived statistics — is bit-identical to the clean
   run's (determinism survives every degraded path);
3. every injected incident is visible: ``fault.*`` counters (fed by the
   cross-process activation ledger) and the quarantine counter appear in
   the final run's manifest.

Campaign processes are separate interpreters, launched with
``--inject-faults`` so each installs the plan as its *own* host —
``host=1`` rules (torn writes in the coordinating process) genuinely
kill it, while plain destructive rules stay confined to pool workers.
The shared ledger keeps ``times=`` budgets global across the
crash-restart cycles, so a schedule of N faults injects exactly N faults
no matter how many restarts they cause.

This module imports :mod:`repro.runs` and therefore lives outside the
``repro.faults`` package namespace exports — the injection runtime must
stay leaf-level.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.shm import orphaned_segments
from repro.faults.plan import (
    ENV_HOST_PID,
    ENV_LEDGER,
    ENV_SEED,
    ENV_SPEC,
    FaultPlan,
    FaultSpecError,
)

__all__ = [
    "DEFAULT_SERVE_SPEC",
    "DEFAULT_SPEC",
    "KILL_SERVE_SPEC",
    "add_chaos_parser",
    "cmd_chaos",
    "run_chaos",
    "run_chaos_serve",
    "run_chaos_serve_kill",
]

#: The stock schedule: four fault classes across three layers — a pool
#: worker killed mid-chunk, the campaign artifact and a checkpoint line
#: torn mid-write (killing the host), and two hung chunks.
DEFAULT_SPEC = (
    "pool.worker.crash:mode=exit,times=1;"
    "store.save_campaign.pre_rename:mode=torn,host=1,times=1;"
    "checkpoint.torn_write:mode=torn,host=1,times=1;"
    "engine.chunk.hang:mode=hang,s=0.05,times=2"
)

#: The ``--serve`` schedule: a pool worker killed mid-chunk (the daemon's
#: warm pool absorbs it) and a torn campaign-artifact write with
#: ``host=1`` — the *daemon* is the host, so the fault kills the whole
#: service mid-job and recovery must come from restart + store resume.
DEFAULT_SERVE_SPEC = (
    "pool.worker.crash:mode=exit,times=1;"
    "store.save_campaign.pre_rename:mode=torn,host=1,times=1"
)

#: The ``--serve --kill-daemon`` schedule: one long chunk hang holds the
#: first job provably mid-run so the harness's external SIGKILL lands
#: while it is RUNNING (with a second job queued behind it and a
#: deduplicated attach recorded).  The shared ledger spends the hang
#: budget, so the restarted daemon replays its journal and finishes the
#: remainder at full speed.
KILL_SERVE_SPEC = "engine.chunk.hang:mode=hang,s=8.0,times=1"

#: wall-clock bound per campaign invocation (a hung subprocess must not
#: hang the harness)
_SUBPROCESS_TIMEOUT_S = 600.0

#: daemon must write its ready file within this window
_SERVE_START_TIMEOUT_S = 60.0


def add_chaos_parser(sub) -> None:
    """Register the ``chaos`` subcommand on the main CLI's subparsers."""
    chaos = sub.add_parser(
        "chaos",
        help="campaign under a seeded fault schedule; asserts recovery "
             "and clean-run-identical statistics",
    )
    chaos.add_argument("--events", type=int, default=1200,
                       help="generator-truth events (>= 2 chunks so the "
                            "worker pool engages; default 1200)")
    chaos.add_argument("--runs", type=int, default=1)
    chaos.add_argument("--seed", type=int, default=2021)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--engine", choices=["shm", "columnar", "reference"],
                       default="columnar",
                       help="statistics engine for both campaigns; 'shm' "
                            "additionally exercises the shared-memory "
                            "arena faultpoints (shm.arena.*)")
    chaos.add_argument("--inject-faults", default=DEFAULT_SPEC,
                       metavar="SPEC",
                       help="fault schedule for the faulted campaign "
                            "(default: worker crash + torn artifact + "
                            "torn checkpoint + chunk hangs)")
    chaos.add_argument("--faults-seed", type=int, default=7)
    chaos.add_argument("--max-restarts", type=int, default=8,
                       help="resume attempts before declaring the "
                            "schedule unrecoverable (default 8)")
    chaos.add_argument("--chunk-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-chunk timeout passed through to the "
                            "campaigns (exercises the requeue path for "
                            "hang faults longer than it)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep the scratch stores and ledger for "
                            "post-mortem instead of deleting them")
    chaos.add_argument("--serve", action="store_true",
                       help="run the faulted campaign through a repro "
                            "serve daemon instead of the CLI: faults "
                            "kill the daemon mid-job and recovery is "
                            "restart + resubmit (store resume), still "
                            "asserting clean-run-identical statistics")
    chaos.add_argument("--kill-daemon", action="store_true",
                       help="(implies --serve) SIGKILL the daemon with "
                            "a job running, one queued, and a "
                            "deduplicated attach recorded; the restarted "
                            "daemon must replay its journal so every "
                            "pre-kill job reaches a terminal state with "
                            "clean-run-identical statistics and no "
                            "duplicate computation")


def _campaign_argv(args, store: Path) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "campaign",
        "--runs", str(args.runs),
        "--events", str(args.events),
        "--seed", str(args.seed),
        "--workers", str(args.workers),
        "--engine", getattr(args, "engine", "columnar"),
        "--heartbeat", "0",
        "--runs-dir", str(store),
    ]
    if args.chunk_timeout is not None:
        argv += ["--chunk-timeout", str(args.chunk_timeout)]
    return argv


def _scrubbed_env() -> dict:
    """A child environment with no inherited fault activation and the
    library importable whether or not it is pip-installed."""
    env = dict(os.environ)
    for var in (ENV_SPEC, ENV_SEED, ENV_LEDGER, ENV_HOST_PID):
        env.pop(var, None)
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run(argv: list[str], env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, env=env, capture_output=True, text=True,
        timeout=_SUBPROCESS_TIMEOUT_S,
    )


def _report_lines(stdout: str) -> list[str]:
    """The comparable statistics lines: everything except the run-store
    chatter (run ids differ between invocations by construction)."""
    return [line for line in stdout.splitlines()
            if line.strip() and not line.startswith("[repro")]


def _resume_id(store: Path) -> str | None:
    """Newest interrupted campaign run in the store, if any."""
    from repro.runs import RunStore

    for manifest in RunStore(store).list_runs():
        if manifest.command == "campaign" and manifest.status != "completed":
            return manifest.run_id
    return None


def run_chaos(args, out=print) -> int:
    """Execute the clean-vs-faulted comparison; returns an exit code."""
    try:
        FaultPlan.parse(args.inject_faults)  # fail fast on a bad spec
    except FaultSpecError as exc:
        out(f"repro chaos: error: bad fault spec: {exc}")
        return 2

    work = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    clean_store = work / "clean-store"
    chaos_store = work / "chaos-store"
    ledger = work / "faults-ledger.jsonl"
    env = _scrubbed_env()
    try:
        out(f"[repro chaos] schedule: {args.inject_faults}")
        out(f"[repro chaos] scratch dir: {work}")

        clean = _run(_campaign_argv(args, clean_store), env)
        if clean.returncode != 0:
            out("[repro chaos] FAIL: the clean (fault-free) campaign "
                f"exited {clean.returncode}")
            out(clean.stderr)
            return 1
        leaked = orphaned_segments()
        if leaked:
            out("[repro chaos] FAIL: the clean campaign leaked "
                f"shared-memory segments: {', '.join(leaked)}")
            return 1

        fault_flags = [
            "--inject-faults", args.inject_faults,
            "--faults-seed", str(args.faults_seed),
            "--faults-ledger", str(ledger),
        ]
        restarts = 0
        faulted = None
        for attempt in range(args.max_restarts + 1):
            argv = _campaign_argv(args, chaos_store) + fault_flags
            resume = _resume_id(chaos_store)
            if resume is not None:
                argv += ["--resume", resume]
            faulted = _run(argv, env)
            if faulted.returncode == 0:
                break
            restarts += 1
            out(f"[repro chaos] campaign killed (exit "
                f"{faulted.returncode}); restart {restarts} "
                f"{'resuming ' + resume if resume else 'fresh'}"
                .rstrip())
        else:
            out(f"[repro chaos] FAIL: campaign still failing after "
                f"{args.max_restarts} restarts")
            if faulted is not None:
                out(faulted.stderr)
            return 1
        out(f"[repro chaos] faulted campaign completed after "
            f"{restarts} restart(s)")

        # Incident accounting: the ledger is the ground truth of what was
        # injected; the final manifest must expose the same incidents.
        plan = FaultPlan.parse(args.inject_faults, ledger=ledger)
        injected = plan.ledger_counts()
        out("[repro chaos] injected incidents (ledger):")
        for point, count in sorted(injected.items()):
            out(f"  {point}: {count}")
        if not injected:
            out("[repro chaos] FAIL: the schedule injected nothing — "
                "the run never reached its fault points")
            return 1

        from repro.runs import RunStore

        final = next(
            m for m in RunStore(chaos_store).list_runs()
            if m.command == "campaign" and m.status == "completed"
        )
        problems = []
        for point, count in injected.items():
            seen = final.counters.get(f"fault.{point}")
            if seen != count:
                problems.append(
                    f"manifest counter fault.{point} is {seen}, "
                    f"ledger says {count}")
        quarantined = final.counters.get("artifacts_quarantined", 0)
        out(f"[repro chaos] final manifest: run {final.run_id}, "
            f"{quarantined} artifact(s) quarantined")
        torn_artifact = any(point.startswith("store.")
                            for point in injected)
        if torn_artifact and not quarantined:
            problems.append(
                "a store write was torn but nothing was quarantined")

        # Arena hygiene: every campaign process is dead by now, so any
        # surviving repro-shm segment is a leak the recovery story missed.
        leaked = orphaned_segments()
        if leaked:
            problems.append("orphaned shared-memory segments after "
                            "recovery: " + ", ".join(leaked))

        clean_lines = _report_lines(clean.stdout)
        fault_lines = _report_lines(faulted.stdout)
        if clean_lines != fault_lines:
            problems.append("faulted statistics differ from the clean run")
            for a, b in zip(clean_lines, fault_lines):
                if a != b:
                    out(f"  clean:   {a}")
                    out(f"  faulted: {b}")
            if len(clean_lines) != len(fault_lines):
                out(f"  ({len(clean_lines)} clean lines vs "
                    f"{len(fault_lines)} faulted)")

        if problems:
            for problem in problems:
                out(f"[repro chaos] FAIL: {problem}")
            return 1
        out(f"[repro chaos] PASS: {sum(injected.values())} injected "
            f"fault(s) across {len(injected)} point(s), "
            f"{restarts} restart(s), statistics bit-identical to the "
            "clean run")
        return 0
    finally:
        if args.keep:
            out(f"[repro chaos] kept scratch dir {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


# ---------------------------------------------------------------------------
# --serve: the same verdicts, with the faulted campaign inside a daemon
# ---------------------------------------------------------------------------

def _serve_argv(args, store: Path, ready: Path, ledger: Path,
                spec: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--ready-file", str(ready),
        "--runs-dir", str(store),
        "--workers", str(args.workers),
        "--inject-faults", spec,
        "--faults-seed", str(args.faults_seed),
        "--faults-ledger", str(ledger),
    ]


def _start_daemon(argv: list[str], env: dict, ready: Path,
                  log_path: Path) -> subprocess.Popen:
    """Launch the daemon and wait for its ready file (or early death)."""
    ready.unlink(missing_ok=True)
    log = open(log_path, "a")
    daemon = subprocess.Popen(argv, env=env, stdout=log, stderr=log)
    log.close()  # the child holds its own descriptor
    deadline = time.monotonic() + _SERVE_START_TIMEOUT_S
    while time.monotonic() < deadline:
        if ready.exists():
            return daemon
        if daemon.poll() is not None:
            raise RuntimeError(
                f"daemon exited {daemon.returncode} before becoming "
                f"ready (log: {log_path})")
        time.sleep(0.05)
    daemon.kill()
    raise RuntimeError(f"daemon not ready after "
                       f"{_SERVE_START_TIMEOUT_S:.0f}s (log: {log_path})")


def _serve_job_once(url: str, params: dict):
    """Submit + watch one campaign job; returns the terminal event pair.

    Returns ``(job_id, event_name, report_or_error)`` — ``event_name`` is
    ``None`` when the daemon died under us (connection drop, stream
    ending without a terminal event).
    """
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(url, timeout=30.0)
    try:
        status, payload = client.submit("campaign", params)
        if status not in (200, 201):
            return None, "rejected", str(payload)
        job_id = payload["job"]["job_id"]
        final = None
        for event in client.watch(job_id, timeout=_SUBPROCESS_TIMEOUT_S):
            if event["event"] in ("completed", "failed", "cancelled"):
                final = event
        if final is None:
            return job_id, None, None
        if final["event"] == "completed":
            job = client.job(job_id)
            return job_id, "completed", (job.get("result") or {}).get(
                "report", "")
        return job_id, final["event"], (final.get("data") or {}).get(
            "error")
    except (ServeError, OSError) as exc:
        return None, None, str(exc)


def run_chaos_serve(args, out=print) -> int:
    """Clean-vs-faulted comparison with the faulted side behind a
    ``repro serve`` daemon; returns an exit code.

    ``host=1`` faults now kill the *daemon* mid-job: recovery is
    restarting the daemon and resubmitting, and the daemon's own
    store-resume picks the interrupted run back up.  The verdicts are the
    same as :func:`run_chaos` — completion, incident accounting in ledger
    and manifest, no shm leaks — plus the service-layer one: the report a
    client finally receives is byte-identical to a direct CLI run.
    """
    spec = (DEFAULT_SERVE_SPEC if args.inject_faults == DEFAULT_SPEC
            else args.inject_faults)
    try:
        FaultPlan.parse(spec)
    except FaultSpecError as exc:
        out(f"repro chaos: error: bad fault spec: {exc}")
        return 2

    work = Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    clean_store = work / "clean-store"
    chaos_store = work / "chaos-store"
    ledger = work / "faults-ledger.jsonl"
    ready = work / "serve-ready.txt"
    serve_log = work / "serve.log"
    env = _scrubbed_env()
    daemon = None
    try:
        out(f"[repro chaos] schedule: {spec} (daemon-hosted)")
        out(f"[repro chaos] scratch dir: {work}")

        clean = _run(_campaign_argv(args, clean_store), env)
        if clean.returncode != 0:
            out("[repro chaos] FAIL: the clean (fault-free) campaign "
                f"exited {clean.returncode}")
            out(clean.stderr)
            return 1

        params = {
            "runs": args.runs, "events": args.events, "seed": args.seed,
            "workers": args.workers,
            "engine": getattr(args, "engine", "columnar"),
        }
        if args.chunk_timeout is not None:
            params["chunk_timeout"] = args.chunk_timeout
        argv = _serve_argv(args, chaos_store, ready, ledger, spec)

        restarts = 0
        report = None
        for _attempt in range(args.max_restarts + 1):
            if daemon is None or daemon.poll() is not None:
                daemon = _start_daemon(argv, env, ready, serve_log)
            url = ready.read_text().strip()
            job_id, outcome, detail = _serve_job_once(url, params)
            if outcome == "completed":
                report = detail
                break
            restarts += 1
            try:  # give an injected kill a moment to register
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
            if daemon.poll() is not None:
                out(f"[repro chaos] daemon killed (exit "
                    f"{daemon.returncode}); restart {restarts}, "
                    "resubmitting")
            else:
                out(f"[repro chaos] job {job_id or '?'} ended "
                    f"{outcome or 'without a terminal event'}"
                    + (f": {detail}" if detail else "")
                    + f"; resubmission {restarts}")
        else:
            out(f"[repro chaos] FAIL: no completed job after "
                f"{args.max_restarts} restarts (daemon log: {serve_log})")
            return 1
        out(f"[repro chaos] faulted campaign completed through the "
            f"daemon after {restarts} restart(s)/resubmission(s)")

        plan = FaultPlan.parse(spec, ledger=ledger)
        injected = plan.ledger_counts()
        out("[repro chaos] injected incidents (ledger):")
        for point, count in sorted(injected.items()):
            out(f"  {point}: {count}")
        if not injected:
            out("[repro chaos] FAIL: the schedule injected nothing — "
                "the run never reached its fault points")
            return 1

        from repro.runs import RunStore

        final = next(
            m for m in RunStore(chaos_store).list_runs()
            if m.command == "campaign" and m.status == "completed"
        )
        problems = []
        for point, count in injected.items():
            seen = final.counters.get(f"fault.{point}")
            if seen != count:
                problems.append(
                    f"manifest counter fault.{point} is {seen}, "
                    f"ledger says {count}")
        quarantined = final.counters.get("artifacts_quarantined", 0)
        out(f"[repro chaos] final manifest: run {final.run_id}, "
            f"{quarantined} artifact(s) quarantined")
        if any(point.startswith("store.") for point in injected) \
                and not quarantined:
            problems.append(
                "a store write was torn but nothing was quarantined")

        clean_lines = _report_lines(clean.stdout)
        fault_lines = _report_lines(report or "")
        if clean_lines != fault_lines:
            problems.append("statistics served by the daemon differ "
                            "from the clean run")
            for a, b in zip(clean_lines, fault_lines):
                if a != b:
                    out(f"  clean:  {a}")
                    out(f"  served: {b}")
            if len(clean_lines) != len(fault_lines):
                out(f"  ({len(clean_lines)} clean lines vs "
                    f"{len(fault_lines)} served)")

        # Graceful daemon shutdown is part of the verdict: SIGTERM must
        # drain to exit 0, and nothing may be left in /dev/shm.
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            problems.append("daemon did not exit within 60s of SIGTERM")
        else:
            if code != 0:
                problems.append(f"daemon exited {code} on SIGTERM "
                                "(expected 0)")
        daemon = None
        leaked = orphaned_segments()
        if leaked:
            problems.append("orphaned shared-memory segments after "
                            "recovery: " + ", ".join(leaked))

        if problems:
            for problem in problems:
                out(f"[repro chaos] FAIL: {problem}")
            return 1
        out(f"[repro chaos] PASS: {sum(injected.values())} injected "
            f"fault(s) across {len(injected)} point(s), "
            f"{restarts} daemon restart(s), served statistics "
            "bit-identical to the clean run")
        return 0
    except RuntimeError as exc:
        out(f"[repro chaos] FAIL: {exc}")
        return 1
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if args.keep:
            out(f"[repro chaos] kept scratch dir {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


# ---------------------------------------------------------------------------
# --kill-daemon: SIGKILL mid-campaign; the journal must lose nothing
# ---------------------------------------------------------------------------

def _wait_ready(url: str, timeout_s: float = _SERVE_START_TIMEOUT_S) -> dict:
    """Poll ``/v1/readyz`` until the daemon reports ready (or give up)."""
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(url, timeout=5.0)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            status, payload = client.readyz()
        except ServeError:
            status, payload = None, {}
        if status == 200:
            return payload
        time.sleep(0.05)
    raise RuntimeError(f"daemon at {url} not ready after {timeout_s:.0f}s")


def _wait_job_state(client, job_id: str, states: frozenset | set,
                    timeout_s: float):
    """Poll one job until it reaches any of ``states``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = client.job(job_id)
        if job["state"] in states:
            return job
        time.sleep(0.05)
    raise RuntimeError(f"job {job_id} did not reach {sorted(states)} "
                       f"within {timeout_s:.0f}s")


def run_chaos_serve_kill(args, out=print) -> int:
    """SIGKILL the daemon mid-campaign; the journal must make it whole.

    Scenario: job A running (held mid-chunk by a hang fault so the kill
    provably lands mid-run), job B queued behind it, and a duplicate
    submission of A's content key attached.  The daemon is SIGKILL'd,
    restarted against the same store, and the verdict requires:

    * journal replay requeues both jobs (A marked recovered-from-running);
    * A's content key, resubmitted after the restart, attaches to the
      *original* job id (dedupe survives the crash);
    * both jobs complete with statistics byte-identical to direct CLI
      runs, A resuming its interrupted run-store manifest;
    * zero duplicate computation: exactly one completed campaign
      manifest per identity, and every job's ``run_id`` maps to one
      (journal <-> manifest parity);
    * SIGTERM then drains to exit 0 and leaves a compacted journal whose
      replay shows only terminal jobs, with no shm leaks.
    """
    from argparse import Namespace

    spec = (KILL_SERVE_SPEC if args.inject_faults == DEFAULT_SPEC
            else args.inject_faults)
    try:
        FaultPlan.parse(spec)
    except FaultSpecError as exc:
        out(f"repro chaos: error: bad fault spec: {exc}")
        return 2

    work = Path(tempfile.mkdtemp(prefix="repro-chaos-kill-"))
    clean_store = work / "clean-store"
    chaos_store = work / "chaos-store"
    ledger = work / "faults-ledger.jsonl"
    ready = work / "serve-ready.txt"
    serve_log = work / "serve.log"
    env = _scrubbed_env()
    daemon = None
    terminal = {"completed", "failed", "cancelled"}
    try:
        out(f"[repro chaos] schedule: {spec} + daemon SIGKILL")
        out(f"[repro chaos] scratch dir: {work}")

        args_b = Namespace(**vars(args))
        args_b.seed = args.seed + 1
        clean_a = _run(_campaign_argv(args, clean_store), env)
        clean_b = _run(_campaign_argv(args_b, clean_store), env)
        for name, clean in (("A", clean_a), ("B", clean_b)):
            if clean.returncode != 0:
                out(f"[repro chaos] FAIL: clean campaign {name} exited "
                    f"{clean.returncode}")
                out(clean.stderr)
                return 1

        base_params = {
            "runs": args.runs, "events": args.events,
            "workers": args.workers,
            "engine": getattr(args, "engine", "columnar"),
        }
        if args.chunk_timeout is not None:
            base_params["chunk_timeout"] = args.chunk_timeout
        params_a = dict(base_params, seed=args.seed)
        params_b = dict(base_params, seed=args.seed + 1)

        from repro.serve.client import ServeClient

        argv = _serve_argv(args, chaos_store, ready, ledger, spec)
        daemon = _start_daemon(argv, env, ready, serve_log)
        url = ready.read_text().strip()
        _wait_ready(url)
        client = ServeClient(url, timeout=30.0)

        status, payload = client.submit("campaign", params_a)
        if status != 201:
            out(f"[repro chaos] FAIL: job A not accepted "
                f"({status}: {payload})")
            return 1
        job_a = payload["job"]["job_id"]
        _wait_job_state(client, job_a, {"running"}, 30.0)
        status, payload = client.submit("campaign", params_b)
        if status != 201:
            out(f"[repro chaos] FAIL: job B not accepted "
                f"({status}: {payload})")
            return 1
        job_b = payload["job"]["job_id"]
        status, payload = client.submit("campaign", params_a)
        if not (status == 200 and payload.get("deduped")
                and payload["job"]["job_id"] == job_a):
            out(f"[repro chaos] FAIL: duplicate submission did not "
                f"attach to {job_a} ({status}: {payload})")
            return 1
        out(f"[repro chaos] staged: {job_a} running, {job_b} queued, "
            f"one deduplicated attach; sending SIGKILL")

        daemon.kill()
        daemon.wait()

        daemon = _start_daemon(argv, env, ready, serve_log)
        url = ready.read_text().strip()
        readyz = _wait_ready(url)
        client = ServeClient(url, timeout=30.0)
        replay = readyz.get("journal", {})
        out(f"[repro chaos] journal replay after restart: {replay}")

        problems = []
        if replay.get("requeued") != 2:
            problems.append(f"replay requeued {replay.get('requeued')} "
                            "jobs, expected 2")
        if replay.get("recovered_running") != 1:
            problems.append("replay recovered "
                            f"{replay.get('recovered_running')} mid-run "
                            "jobs, expected 1")
        if replay.get("terminal") != 0:
            problems.append(f"replay saw {replay.get('terminal')} "
                            "terminal jobs before the kill, expected 0")

        status, payload = client.submit("campaign", params_a)
        if not (status == 200 and payload.get("deduped")
                and payload["job"]["job_id"] == job_a):
            problems.append(
                "a resubmitted content key did not attach to the "
                f"original job after the restart ({status}: "
                f"{payload.get('job', {}).get('job_id')})")

        finals = {}
        for job_id in (job_a, job_b):
            finals[job_id] = _wait_job_state(
                client, job_id, terminal, _SUBPROCESS_TIMEOUT_S)
        for job_id, job in finals.items():
            if job["state"] != "completed":
                problems.append(f"job {job_id} ended {job['state']}: "
                                f"{job.get('error')}")
        if finals[job_a].get("recovered") is not True:
            problems.append(f"job {job_a} was not flagged as recovered "
                            "from a mid-run crash")
        if finals[job_a]["state"] == "completed" and \
                not (finals[job_a].get("result") or {}).get("resumed_from"):
            problems.append(f"job {job_a} recomputed from scratch "
                            "instead of resuming its interrupted run")

        for job_id, clean in ((job_a, clean_a), (job_b, clean_b)):
            if finals[job_id]["state"] != "completed":
                continue
            served = _report_lines(
                (finals[job_id].get("result") or {}).get("report", ""))
            if served != _report_lines(clean.stdout):
                problems.append(f"job {job_id} statistics differ from "
                                "its clean CLI run")

        from repro.runs import RunStore

        completed = [m for m in RunStore(chaos_store).list_runs()
                     if m.command == "campaign"
                     and m.status == "completed"]
        if len(completed) != 2:
            problems.append(f"{len(completed)} completed campaign "
                            "manifests in the store, expected exactly 2 "
                            "(duplicate or lost computation)")
        run_ids = {m.run_id for m in completed}
        for job_id, job in finals.items():
            run_id = (job.get("result") or {}).get("run_id")
            if run_id not in run_ids:
                problems.append(f"job {job_id} result run {run_id} has "
                                "no completed manifest")

        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            problems.append("daemon did not exit within 60s of SIGTERM")
        else:
            if code != 0:
                problems.append(f"daemon exited {code} on SIGTERM "
                                "(expected 0)")
        daemon = None

        from repro.serve.journal import JobJournal

        compacted = JobJournal(chaos_store).replay()
        if compacted.requeued != 0 or len(compacted.jobs) != 2:
            problems.append(
                f"compacted journal replays {len(compacted.jobs)} jobs "
                f"with {compacted.requeued} requeued, expected 2 "
                "terminal jobs and 0 requeued")
        journal_runs = {(job.result or {}).get("run_id")
                        for job in compacted.jobs}
        if journal_runs != run_ids:
            problems.append(
                f"journal result runs {sorted(map(str, journal_runs))} "
                f"!= completed manifests {sorted(run_ids)}")

        leaked = orphaned_segments()
        if leaked:
            problems.append("orphaned shared-memory segments after "
                            "recovery: " + ", ".join(leaked))

        if problems:
            for problem in problems:
                out(f"[repro chaos] FAIL: {problem}")
            return 1
        out("[repro chaos] PASS: SIGKILL with 1 running + 1 queued + 1 "
            "deduplicated job; journal replay requeued both, dedupe "
            "held the original job id, statistics bit-identical to the "
            "clean runs, no duplicate computation, clean SIGTERM left a "
            "compacted journal")
        return 0
    except RuntimeError as exc:
        out(f"[repro chaos] FAIL: {exc}")
        return 1
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if args.keep:
            out(f"[repro chaos] kept scratch dir {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


def cmd_chaos(args) -> int:
    """Dispatch ``repro chaos``; returns a process exit code."""
    if getattr(args, "kill_daemon", False):
        return run_chaos_serve_kill(args)
    if getattr(args, "serve", False):
        return run_chaos_serve(args)
    return run_chaos(args)

"""Deterministic fault plans: which named fault points fire, and how.

A :class:`FaultPlan` is parsed from a compact spec string (CLI
``--inject-faults`` or the ``REPRO_FAULTS`` environment variable)::

    SPEC  := RULE (';' RULE)*
    RULE  := POINT (':' PARAM (',' PARAM)*)?
    PARAM := KEY '=' VALUE

``POINT`` is a dotted fault-point name exactly as it appears at the call
site (``store.save_cell.pre_rename``, ``pool.worker.crash``, ...).  The
per-rule parameters:

========  ==============================================================
``mode``  ``raise`` (default) | ``exit`` | ``torn`` | ``corrupt`` | ``hang``
``p``     activation probability per eligible hit (default 1.0)
``times`` total activation budget (default 1; ``inf`` removes the cap)
``after`` skip the first N hits of the point (default 0)
``s``     sleep seconds for ``hang`` faults (default 0.2)
``host``  1 allows destructive modes in the host process (default 0)
``then``  for ``torn``: ``exit`` (default) | ``raise`` | ``none``
========  ==============================================================

Every probabilistic decision is a pure function of ``(seed, point,
hit index)`` — a SHA-256 draw, no RNG state — so a chaos run with the
same spec and seed is replayable.  When a *ledger* path is configured,
``times`` budgets are counted across processes (and across crash-restart
cycles) by appending one fsync'd JSON line per activation; without a
ledger, budgets are per-process.

The plan travels to worker processes and CLI subprocesses through the
environment (:meth:`FaultPlan.environ`): spec, seed, ledger path and the
host pid, so a forked or spawned worker reconstructs the identical plan
and knows it is *not* the host.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

__all__ = [
    "ENV_HOST_PID",
    "ENV_LEDGER",
    "ENV_SEED",
    "ENV_SPEC",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "MODES",
    "unit_draw",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"
ENV_LEDGER = "REPRO_FAULTS_LEDGER"
ENV_HOST_PID = "REPRO_FAULTS_HOST_PID"

#: Recognized fault actions (see :mod:`repro.faults.points`).
MODES = ("raise", "exit", "torn", "corrupt", "hang")

#: Recognized ``then=`` follow-ups for ``torn`` faults.
TORN_THEN = ("exit", "raise", "none")


class FaultSpecError(ValueError):
    """A ``--inject-faults`` / ``REPRO_FAULTS`` spec failed to parse."""


def unit_draw(seed: int, name: str, index: int) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, name, index).

    Stateless — the same triple yields the same value in every process,
    which is what makes probabilistic fault schedules replayable.
    """
    digest = sha256(f"{seed}:{name}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass
class FaultRule:
    """One parsed rule of a fault plan, plus its per-process counters."""

    point: str
    mode: str = "raise"
    p: float = 1.0
    #: total activation budget; None means unbounded
    times: int | None = 1
    #: eligible hits to skip before the rule may fire
    after: int = 0
    #: sleep duration for ``hang`` faults
    delay_s: float = 0.2
    #: allow destructive modes (exit / torn-exit) in the host process
    host: bool = False
    #: what a ``torn`` fault does after writing the partial data
    then: str = "exit"
    #: per-process hit counter (every faultpoint() call for this point)
    hits: int = field(default=0, compare=False)
    #: per-process activation counter (ledger-free budget accounting)
    fired: int = field(default=0, compare=False)

    def destructive(self) -> bool:
        """True when firing can kill the current process."""
        return self.mode == "exit" or (
            self.mode == "torn" and self.then == "exit"
        )


def _parse_rule(text: str) -> FaultRule:
    point, _, params = text.partition(":")
    point = point.strip()
    if not point:
        raise FaultSpecError(f"empty fault-point name in {text!r}")
    rule = FaultRule(point=point)
    if not params:
        return rule
    for param in params.split(","):
        key, sep, value = param.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise FaultSpecError(
                f"{point}: parameter {param!r} is not KEY=VALUE")
        try:
            if key == "mode":
                if value not in MODES:
                    raise FaultSpecError(
                        f"{point}: unknown mode {value!r} "
                        f"(expected one of {', '.join(MODES)})")
                rule.mode = value
            elif key == "p":
                rule.p = float(value)
                if not 0.0 <= rule.p <= 1.0:
                    raise FaultSpecError(f"{point}: p must be in [0, 1]")
            elif key == "times":
                rule.times = None if value == "inf" else int(value)
                if rule.times is not None and rule.times < 1:
                    raise FaultSpecError(f"{point}: times must be >= 1")
            elif key == "after":
                rule.after = int(value)
                if rule.after < 0:
                    raise FaultSpecError(f"{point}: after must be >= 0")
            elif key == "s":
                rule.delay_s = float(value)
                if rule.delay_s < 0:
                    raise FaultSpecError(f"{point}: s must be >= 0")
            elif key == "host":
                rule.host = value not in ("0", "false", "no")
            elif key == "then":
                if value not in TORN_THEN:
                    raise FaultSpecError(
                        f"{point}: unknown then={value!r} "
                        f"(expected one of {', '.join(TORN_THEN)})")
                rule.then = value
            else:
                raise FaultSpecError(
                    f"{point}: unknown parameter {key!r}")
        except ValueError as exc:
            if isinstance(exc, FaultSpecError):
                raise
            raise FaultSpecError(
                f"{point}: bad value for {key!r} ({value!r})") from None
    return rule


class FaultPlan:
    """A parsed, seeded fault schedule shared by every layer of the stack."""

    def __init__(
        self,
        rules: list[FaultRule],
        *,
        seed: int = 0,
        ledger: str | os.PathLike | None = None,
        spec: str = "",
        host_pid: int | None = None,
    ) -> None:
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self.rules:
                raise FaultSpecError(
                    f"fault point {rule.point!r} appears twice in the spec")
            self.rules[rule.point] = rule
        self.seed = int(seed)
        self.ledger = Path(ledger) if ledger is not None else None
        self.spec = spec or ";".join(self.rules)
        self.host_pid = int(host_pid) if host_pid is not None else os.getpid()
        if self.ledger is not None:
            self.ledger.parent.mkdir(parents=True, exist_ok=True)

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        seed: int = 0,
        ledger: str | os.PathLike | None = None,
        host_pid: int | None = None,
    ) -> FaultPlan:
        """Build a plan from a spec string; raises :class:`FaultSpecError`."""
        rules = [
            _parse_rule(part)
            for part in spec.split(";")
            if part.strip()
        ]
        if not rules:
            raise FaultSpecError(f"fault spec {spec!r} contains no rules")
        return cls(rules, seed=seed, ledger=ledger, spec=spec,
                   host_pid=host_pid)

    @classmethod
    def from_env(cls, environ=None) -> FaultPlan | None:
        """The plan the environment describes, or None when faults are off.

        A spawned worker or a ``--resume`` CLI invocation reconstructs the
        exact plan of the originating process: same spec, same seed, same
        ledger — and the originating host pid, so destructive faults stay
        confined to worker processes unless a rule says ``host=1``.
        """
        environ = environ if environ is not None else os.environ
        spec = environ.get(ENV_SPEC)
        if not spec:
            return None
        host_pid = environ.get(ENV_HOST_PID)
        return cls.parse(
            spec,
            seed=int(environ.get(ENV_SEED, "0")),
            ledger=environ.get(ENV_LEDGER) or None,
            host_pid=int(host_pid) if host_pid else None,
        )

    def environ(self) -> dict[str, str]:
        """Environment variables that let child processes rebuild the plan."""
        env = {ENV_SPEC: self.spec, ENV_SEED: str(self.seed),
               ENV_HOST_PID: str(self.host_pid)}
        if self.ledger is not None:
            env[ENV_LEDGER] = str(self.ledger)
        return env

    def rule_for(self, point: str) -> FaultRule | None:
        return self.rules.get(point)

    # -- cross-process activation ledger --------------------------------------
    def ledger_record(self, point: str) -> None:
        """Append one activation, fsync'd *before* any destructive action.

        Concurrent workers may interleave appends; each line is written in
        a single ``os.write``, so lines stay whole.  Budget checks under
        concurrency are therefore best-effort — two workers racing the
        same last budget slot may both fire — which is exactly the
        at-least-once semantics chaos schedules want.
        """
        if self.ledger is None:
            return
        line = json.dumps({"point": point, "pid": os.getpid(),
                           "t": time.time()}) + "\n"
        fd = os.open(self.ledger, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
            os.fsync(fd)
        finally:
            os.close(fd)

    def ledger_counts(self) -> dict[str, int]:
        """Activations per point recorded so far (all processes)."""
        counts: dict[str, int] = {}
        if self.ledger is None or not self.ledger.exists():
            return counts
        try:
            lines = self.ledger.read_text().splitlines()
        except OSError:
            return counts
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final line after a kill
            point = entry.get("point") if isinstance(entry, dict) else None
            if isinstance(point, str):
                counts[point] = counts.get(point, 0) + 1
        return counts

    def ledger_count(self, point: str) -> int:
        return self.ledger_counts().get(point, 0)

"""Named fault points and the actions an active plan triggers at them.

Every crash-sensitive location in the stack calls ``faultpoint(name,
**context)`` — a few-nanosecond no-op unless a :class:`FaultPlan` is
active (installed explicitly or materialized lazily from the
environment, which is how process-pool workers and ``--resume``
subprocesses pick up the schedule of the invocation that spawned them).

The registered fault points, by layer:

========================================  =================================
``store.save_cell.pre_rename``            between temp-file fsync and rename
``store.save_cell.post_rename``           after the artifact is in place
``store.save_campaign.pre_rename``        (same, campaign artifacts)
``store.save_campaign.post_rename``
``store.manifest.pre_rename``             manifest writes (begin + finish)
``store.manifest.post_rename``
``checkpoint.torn_write``                 before a checkpoint line append
``pool.worker.crash``                     entry of every pool job
``engine.chunk.hang``                     entry of a statistics chunk
``montecarlo.cell.hang``                  entry of a Table-2 cell
``shm.arena.create``                      after a campaign arena exists
``shm.arena.attach``                      before a worker maps its slice
``shm.arena.detach``                      after a worker's slice is written
``serve.journal.append``                  before a job-journal line append
``serve.journal.compact.pre_rename``      journal compaction rewrite
``serve.journal.compact.post_rename``
========================================  =================================

Actions (``mode=``): ``raise`` raises :class:`InjectedFault`; ``exit``
dies with ``os._exit(137)`` (a kill -9 stand-in); ``torn`` writes a
deterministic prefix of the pending data to the target path and then
exits/raises/returns per ``then=``; ``corrupt`` flips one byte of an
already-written file; ``hang`` sleeps ``s`` seconds and continues.

Destructive actions (``exit``, ``torn`` with ``then=exit``) are
*suppressed* in the host process unless the rule says ``host=1`` — a
worker crash schedule must never take down the coordinating process that
is supposed to survive it.  Suppressions are counted but do not consume
the activation budget.

Every injection is recorded in a per-process incident list (and the
cross-process ledger when configured); :func:`counters` renders both as
flat ``fault.*`` counters for run manifests and span records.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.faults.plan import FaultPlan, FaultRule, unit_draw

__all__ = [
    "Incident",
    "InjectedFault",
    "active_plan",
    "counters",
    "faultpoint",
    "incidents",
    "install",
    "reset",
    "uninstall",
]

#: Exit status used by ``exit``/``torn`` faults (mirrors SIGKILL's 128+9).
EXIT_STATUS = 137


class InjectedFault(RuntimeError):
    """Raised by a ``mode=raise`` fault point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point}")
        self.point = point


@dataclass(frozen=True)
class Incident:
    """One faultpoint activation (or host-side suppression)."""

    point: str
    mode: str
    #: ``injected`` or ``suppressed``
    action: str


_PLAN: FaultPlan | None = None
_ENV_RESOLVED = False
_INCIDENTS: list[Incident] = []


def install(plan: FaultPlan, *, export_env: bool = True) -> FaultPlan:
    """Activate a plan in this process (and its future children).

    ``export_env`` publishes the plan through the environment so pool
    workers and subprocesses reconstruct it; the exported host pid keeps
    destructive faults out of *this* process unless a rule opts in.
    """
    global _PLAN, _ENV_RESOLVED
    _PLAN = plan
    _ENV_RESOLVED = True
    if export_env:
        os.environ.update(plan.environ())
    return plan


def uninstall(*, scrub_env: bool = True) -> None:
    """Deactivate fault injection in this process."""
    global _PLAN, _ENV_RESOLVED
    _PLAN = None
    _ENV_RESOLVED = True
    if scrub_env:
        from repro.faults.plan import (
            ENV_HOST_PID, ENV_LEDGER, ENV_SEED, ENV_SPEC,
        )

        for var in (ENV_SPEC, ENV_SEED, ENV_LEDGER, ENV_HOST_PID):
            os.environ.pop(var, None)


def reset() -> None:
    """Test helper: drop the plan, incidents, and the env-resolution latch."""
    global _PLAN, _ENV_RESOLVED
    _PLAN = None
    _ENV_RESOLVED = False
    _INCIDENTS.clear()


def active_plan() -> FaultPlan | None:
    """The plan in force, resolving the environment exactly once."""
    global _PLAN, _ENV_RESOLVED
    if _PLAN is None and not _ENV_RESOLVED:
        _ENV_RESOLVED = True
        _PLAN = FaultPlan.from_env()
    return _PLAN


def incidents() -> list[Incident]:
    """This process's incident log (injections and suppressions)."""
    return list(_INCIDENTS)


def counters() -> dict:
    """Flat ``fault.*`` counters for manifests and span records.

    Injection counts come from the cross-process ledger when one is
    configured (so a resumed run's manifest accounts for incidents that
    killed its predecessors); otherwise from this process's incident
    list.  Host-side suppressions are always per-process.
    """
    plan = _PLAN
    injected: dict[str, int] = {}
    suppressed: dict[str, int] = {}
    for incident in _INCIDENTS:
        bucket = injected if incident.action == "injected" else suppressed
        bucket[incident.point] = bucket.get(incident.point, 0) + 1
    if plan is not None and plan.ledger is not None:
        for point, count in plan.ledger_counts().items():
            injected[point] = max(count, injected.get(point, 0))
    flat: dict = {}
    for point, count in sorted(injected.items()):
        flat[f"fault.{point}"] = count
    for point, count in sorted(suppressed.items()):
        flat[f"fault.suppressed.{point}"] = count
    return flat


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------

def _die() -> None:
    sys.stdout.flush()
    sys.stderr.flush()
    os._exit(EXIT_STATUS)


def _act_raise(rule: FaultRule, plan: FaultPlan, name: str,
               context: dict) -> None:
    raise InjectedFault(name)


def _act_exit(rule: FaultRule, plan: FaultPlan, name: str,
              context: dict) -> None:
    _die()


def _act_hang(rule: FaultRule, plan: FaultPlan, name: str,
              context: dict) -> None:
    time.sleep(rule.delay_s)


def _act_torn(rule: FaultRule, plan: FaultPlan, name: str,
              context: dict) -> None:
    """Leave a deterministic partial write behind, then crash (usually).

    For rename-based writers the torn prefix lands on the *final* path —
    the state a non-atomic writer would leave after a mid-write kill; for
    append-mode writers it lands at the end of the existing file.
    """
    path, data = context.get("path"), context.get("data")
    if path is not None and data:
        raw = data.encode() if isinstance(data, str) else bytes(data)
        cut = 1 + int(unit_draw(plan.seed, f"{name}#cut", rule.hits)
                      * max(len(raw) - 2, 1))
        mode = "ab" if context.get("append") else "wb"
        with open(path, mode) as handle:
            handle.write(raw[:cut])
            handle.flush()
            os.fsync(handle.fileno())
    if rule.then == "exit":
        _die()
    if rule.then == "raise":
        raise InjectedFault(name)


def _act_corrupt(rule: FaultRule, plan: FaultPlan, name: str,
                 context: dict) -> None:
    """Flip one byte of the target file (silent bit-rot stand-in)."""
    path = context.get("path")
    if path is None:
        return
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return
    if not data:
        return
    pos = min(len(data) - 1,
              int(unit_draw(plan.seed, f"{name}#pos", rule.hits) * len(data)))
    path.write_bytes(data[:pos] + bytes([data[pos] ^ 0x01]) + data[pos + 1:])


_ACTIONS = {
    "raise": _act_raise,
    "exit": _act_exit,
    "torn": _act_torn,
    "corrupt": _act_corrupt,
    "hang": _act_hang,
}


def faultpoint(name: str, **context) -> None:
    """Fire the active plan's rule for ``name``, if any.

    The decision sequence per call: count the hit, honor ``after``,
    honor the (ledger-backed) ``times`` budget, make the deterministic
    ``p`` draw, apply the host gate for destructive modes, record the
    incident (ledger first, so even an ``exit`` leaves a trace), then
    execute the action.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.rule_for(name)
    if rule is None:
        return
    rule.hits += 1
    if rule.hits <= rule.after:
        return
    if rule.times is not None:
        fired = (plan.ledger_count(name) if plan.ledger is not None
                 else rule.fired)
        if fired >= rule.times:
            return
    if rule.p < 1.0 and unit_draw(plan.seed, name, rule.hits) >= rule.p:
        return
    if rule.destructive() and not rule.host \
            and os.getpid() == plan.host_pid:
        _INCIDENTS.append(Incident(name, rule.mode, "suppressed"))
        return
    rule.fired += 1
    plan.ledger_record(name)
    _INCIDENTS.append(Incident(name, rule.mode, "injected"))
    _ACTIONS[rule.mode](rule, plan, name, context)

"""Deterministic fault injection for chaos-testing the repro stack.

``faultpoint(name)`` calls are sprinkled at crash-sensitive spots (store
renames, checkpoint appends, pool-worker entries); they cost nothing
until a :class:`FaultPlan` — parsed from ``--inject-faults`` or the
``REPRO_FAULTS`` environment — is active.  See :mod:`repro.faults.plan`
for the spec grammar and :mod:`repro.faults.points` for the actions.

The chaos harness (:mod:`repro.faults.chaos`) is intentionally *not*
imported here: it depends on :mod:`repro.runs`, and this package must
stay leaf-level so any layer can call ``faultpoint`` without cycles.
"""

from repro.faults.plan import (
    ENV_HOST_PID,
    ENV_LEDGER,
    ENV_SEED,
    ENV_SPEC,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    MODES,
    unit_draw,
)
from repro.faults.points import (
    Incident,
    InjectedFault,
    active_plan,
    counters,
    faultpoint,
    incidents,
    install,
    reset,
    uninstall,
)

__all__ = [
    "ENV_HOST_PID",
    "ENV_LEDGER",
    "ENV_SEED",
    "ENV_SPEC",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "Incident",
    "InjectedFault",
    "MODES",
    "active_plan",
    "counters",
    "faultpoint",
    "incidents",
    "install",
    "reset",
    "uninstall",
    "unit_draw",
]

"""Columnar statistics-campaign engine (generate → scan → post-process).

The Figure 4/5 and Table 1 statistics need thousands of ground-truth SEU
events pushed through the whole observation pipeline: synthesize the
event, corrupt the simulated device, scan it back and classify what the
scan recovered.  This module packages that loop as one engine with two
interchangeable implementations:

* ``engine="columnar"`` — :class:`~repro.beam.events.BatchEventSynthesis`
  draws every event of a chunk vectorized, the device is corrupted with
  bit-packed batch injections, read back through
  :meth:`~repro.dram.device.SimulatedHBM2.scan_mismatches_batch`, and the
  mismatch log is post-processed as a
  :class:`~repro.beam.fliptable.RecordTable` without ever materializing
  per-record Python objects.
* ``engine="reference"`` — the retained scalar oracle: per-event draws,
  per-entry injection, the per-entry scalar scan and the record-list
  post-processing helpers.

Both engines consume identical random streams (chunk ``c`` is seeded by
``SeedSequence(seed).spawn(n_chunks)[c]``) and therefore derive
bit-identical statistics; the equivalence suite asserts it and the
throughput benchmark measures the gap.

Chunks are independent, so ``workers=N`` fans them out over a process
pool with the shared requeue-once-then-serial robustness of
:func:`repro.core.pool.run_with_requeue` — and, thanks to per-chunk
seeding, the same results on every path.

Observability: every chunk runs under its own worker-side
:class:`repro.obs.Tracer` (``chunk`` → ``synthesize``/``scan`` spans with
event/record counters, tagged with the worker pid); the parent merges
the records as chunks complete, wraps the whole run in a ``campaign``
span, and derives :attr:`StatisticsResult.stage_seconds` from the trace.
Pass ``tracer=`` to graft the campaign into a larger trace (the CLI
passes its run session's tracer) and ``heartbeat=`` for periodic
progress lines while chunks complete.
"""

from __future__ import annotations

import logging
import os

# BrokenExecutor and the futures TimeoutError are re-exported here for the
# degradation tests, which monkeypatch this module's ProcessPoolExecutor
# and raise these exact types from fake futures.
from concurrent.futures import BrokenExecutor  # noqa: F401
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout  # noqa: F401
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.beam.events import (
    BITS_PER_WORD,
    WORDS_PER_ENTRY,
    BatchEventSynthesis,
    EventParameters,
    _floor_scaled,
    _inverse_permutations,
    _power_law_breadths,
    _truncated_binomial_cdf,
)
from repro.beam.fliptable import RecordTable, unpack_packed_rows
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    DataPattern,
    MismatchRecord,
    UniformPattern,
)
from repro.core.arrays import concat_or_empty
from repro.core.mem import enable_heap_reuse
from repro.core.pool import (
    RetryPolicy,
    pool_worker_init,
    run_with_requeue,
)
from repro.core.shm import ShmArena, SliceDescriptor, align, read_attached, \
    read_columns, write_columns
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.faults import faultpoint
from repro.obs import Tracer, stage_totals

__all__ = ["StatisticsResult", "run_statistics_campaign", "ENGINES",
           "STATS_MODES"]

_LOGGER = logging.getLogger(__name__)

_DATA_BITS = 256
_DATA_WORDS = _DATA_BITS // 64

#: The interchangeable engine implementations: ``shm`` is the fused
#: zero-copy fast path, ``columnar`` and ``reference`` are its oracles.
ENGINES = ("shm", "columnar", "reference")

#: how the statistics are aggregated: ``materialize`` concatenates every
#: record column and post-processes once (the oracle); ``streaming``
#: folds each job into a fixed-size accumulator worker-side and merges
#: states — same floats, O(state) transport, flat host memory
STATS_MODES = ("materialize", "streaming")

#: the record columns every engine's chunk evaluation produces
_COLUMN_KEYS = ("time_s", "write_cycle", "entry_index",
                "flips_per_record", "flip_bit")
#: dtypes of an *empty* column set.  The shm transport ships the two
#: flip-sized columns narrow (flip bits are < 288, per-record flip
#: counts < 2**15) — a 4x smaller resident set keeps the whole-campaign
#: postprocess under the allocator's fresh-page regime; the columnar
#: engine keeps shipping int64 and both finalizers accept either width.
_COLUMN_DTYPES = {
    "time_s": np.float64,
    "write_cycle": np.int64,
    "entry_index": np.int64,
    "flips_per_record": np.int16,
    "flip_bit": np.int16,
}

#: arena budget per event for the shm transport (generous vs the ~1.2 KB
#: empirical mean; tmpfs pages materialize only when written, and a range
#: that outgrows its slice degrades to the inline pickled path)
_SHM_BYTES_PER_EVENT = 4096
#: flat per-job slice headroom on top of the per-event budget
_SHM_JOB_HEADROOM = 1 << 20

_STAGES = ("synthesize", "scan", "postprocess")
#: streaming pipeline stages: the scout sweep (entry placement replay →
#: occupancy bitmap), the evaluation sweep's synthesis (plus ``scan`` on
#: the columnar engine, which still runs its device pass), and the folds
_STREAM_STAGES = ("scout", "synthesize", "scan", "fold")


def _pattern_by_name(name: str) -> DataPattern:
    if name == "all0":
        return UniformPattern(ones=False)
    if name == "all1":
        return UniformPattern(ones=True)
    if name == "checkerboard":
        return CheckerboardPattern()
    if name == "an-encoded":
        return ANPattern()
    raise ValueError(f"unknown data pattern {name!r}")


@dataclass
class StatisticsResult:
    """Derived statistics plus the per-stage throughput accounting."""

    engine: str
    n_events: int
    n_records: int
    n_observed: int
    class_fractions: dict
    mbme_histogram: dict
    byte_alignment: dict
    bits_per_word_aligned: dict
    bits_per_word_non_aligned: dict
    table1: dict
    #: accumulated wall-clock seconds per stage, in pipeline order
    #: (derived from the trace; kept as a dict for manifest compatibility)
    stage_seconds: dict = field(default_factory=dict)
    #: the campaign's span records (chunk/worker spans included) — what
    #: the run store exports as the trace artifact
    trace: list = field(default_factory=list, repr=False, compare=False)
    #: pool-degradation telemetry (requeues, timeouts), empty when serial
    pool_counters: dict = field(default_factory=dict, repr=False,
                                compare=False)
    #: which aggregation path produced this result (``STATS_MODES``)
    stats_mode: str = "materialize"
    #: the merged streaming accumulator (``stats="streaming"`` only) —
    #: carries the raw tallies for downstream models (e.g. the fleet FIT
    #: composition) without re-deriving them from the float statistics
    accumulator: object = field(default=None, repr=False, compare=False)
    #: lazy materializer for :attr:`observed_events` (columnar results
    #: keep the grouped table and only build ObservedEvent objects on use)
    _observed_factory: object = field(default=None, repr=False, compare=False)
    _observed: list | None = field(default=None, repr=False, compare=False)

    @property
    def observed_events(self) -> list:
        """The recovered events, for merging with campaign observations."""
        if self._observed is None:
            factory = self._observed_factory
            self._observed = list(factory()) if factory is not None else []
        return self._observed

    @property
    def events_per_second(self) -> dict:
        """Per-stage throughput — what ``repro runs show`` surfaces."""
        return {
            stage: (self.n_events / seconds) if seconds > 0 else 0.0
            for stage, seconds in self.stage_seconds.items()
        }

    def counters(self) -> dict:
        """Flat manifest-ready counters (JSON-safe scalars only)."""
        flat: dict = {"engine": self.engine, "events": self.n_events,
                      "records": self.n_records, "observed": self.n_observed}
        if self.stats_mode != "materialize":
            flat["stats"] = self.stats_mode
        for stage, seconds in self.stage_seconds.items():
            flat[f"{stage}_s"] = round(seconds, 6)
        for stage, rate in self.events_per_second.items():
            flat[f"{stage}_events_per_s"] = round(rate, 3)
        flat.update(self.pool_counters)
        return flat


#: what both finalizers return for a campaign that observed nothing
_EMPTY_STATS = ({}, {}, {}, {}, {}, {})


class _ChunkJob(NamedTuple):
    """One contiguous run of global event indices awaiting evaluation."""

    index: int
    start: int  #: global index of the chunk's first event
    size: int
    seed_seq: np.random.SeedSequence


class _RangeJob(NamedTuple):
    """A run of whole chunks the shm engine evaluates in one fused pass.

    Chunk seeding is untouched — the range replays each member chunk's
    phase streams with that chunk's own ``SeedSequence`` — so the range
    partition never changes the statistics, only the dispatch granularity.
    """

    index: int
    start: int  #: global index of the range's first event
    size: int  #: total events across the member chunks
    chunks: tuple  #: the member :class:`_ChunkJob`s, in order


def _fresh_seed(seq: np.random.SeedSequence) -> np.random.SeedSequence:
    """A pristine copy of a chunk's seed sequence.

    ``SeedSequence.spawn`` is stateful — a second spawn from the same
    object yields different children — but a chunk's streams are defined
    as the *first* spawn of its seed.  Every evaluation therefore spawns
    from a copy (same entropy, same spawn_key, zero children spawned), so
    replaying a chunk in the same process — the streaming engine's scout
    sweep followed by its evaluation sweep, or a serial requeue — sees
    exactly the streams a fresh worker would.
    """
    return np.random.SeedSequence(
        entropy=seq.entropy, spawn_key=seq.spawn_key,
        pool_size=seq.pool_size,
    )


def _event_times(start: int, size: int,
                 parameters: EventParameters) -> np.ndarray:
    """Each event owns one write cycle; time is its global index scaled."""
    return (start + np.arange(size, dtype=np.float64)) \
        * parameters.mean_time_to_event_s


def _columnar_chunk(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern: DataPattern,
    job: _ChunkJob,
    tracer: Tracer,
) -> dict:
    """Vectorized chunk: batch synthesis, packed injection + scan."""
    synthesis = BatchEventSynthesis(
        geometry, parameters, seed=_fresh_seed(job.seed_seq)
    )
    with tracer.span("synthesize"):
        table = synthesis.table_at(
            _event_times(job.start, job.size, parameters)
        )
        tracer.count(events=job.size, sites=int(table.site_entry.size))

    with tracer.span("scan"):
        columns = _scan_columnar(geometry, pattern, job, table)
        tracer.count(records=int(columns["entry_index"].size))
    return columns


def _scan_columnar(
    geometry: HBM2Geometry,
    pattern: DataPattern,
    job: _ChunkJob,
    table,
) -> dict:
    """Inject and scan one synthesized chunk, returning record columns."""
    device = SimulatedHBM2(geometry)
    expected = pattern.entry_fn(False)
    packed = pattern.packed_fn(False)
    packed_sites = table.packed_site_rows()
    times = table.event_columns["time_s"]

    # Fast path: inject the whole chunk's sites, scan once.  Each event's
    # write cycle is distinct, so the batched scan is record-for-record
    # the per-event scan *provided* no two events of the chunk hit the
    # same entry (their overlays would XOR-merge); site entries are
    # event-major and ascending within an event, so after the entry-sorted
    # scan a searchsorted gather restores per-site record order.
    unique_entries = np.unique(table.site_entry)
    if unique_entries.size == table.site_entry.size:
        device.write_all(expected, packed)
        device.inject_upsets_batch(table.site_entry, packed_sites)
        entries, diff = device.scan_mismatches_batch(expected, packed)
        diff = diff.copy()
        diff[:, _DATA_WORDS:] = 0  # ECC-disabled: data bits only
        keep = diff.any(axis=1)
        entries, diff = entries[keep], diff[keep]
        site_rows = diff[np.searchsorted(entries, table.site_entry)]
        observed = site_rows.any(axis=1)
        row_of_flip, bits = unpack_packed_rows(site_rows[observed])
        n_observed = int(observed.sum())
        counts = np.diff(
            np.searchsorted(row_of_flip, np.arange(n_observed + 1))
        )
        site_event = table.site_event[observed]
        columns = {
            "time_s": times[site_event],
            "write_cycle": job.start + site_event,
            "entry_index": table.site_entry[observed],
            "flips_per_record": counts,
            "flip_bit": bits,
        }
        return columns

    # Collision path (rare): per-event write/inject/scan, same records.
    site_start = table.event_site_start()
    time_col: list[np.ndarray] = []
    cycle_col: list[np.ndarray] = []
    entry_col: list[np.ndarray] = []
    count_col: list[np.ndarray] = []
    bit_col: list[np.ndarray] = []
    for index in range(table.n_events):
        lo, hi = site_start[index], site_start[index + 1]
        device.write_all(expected, packed)  # O(1): resets the overlay
        device.inject_upsets_batch(
            table.site_entry[lo:hi], packed_sites[lo:hi]
        )
        entries, diff = device.scan_mismatches_batch(expected, packed)
        diff = diff.copy()
        diff[:, _DATA_WORDS:] = 0
        keep = diff.any(axis=1)
        if not keep.any():
            continue
        kept = entries[keep]
        row_of_flip, bits = unpack_packed_rows(diff[keep])
        counts = np.diff(
            np.searchsorted(row_of_flip, np.arange(kept.size + 1))
        )
        time_col.append(np.full(kept.size, times[index]))
        cycle_col.append(np.full(kept.size, job.start + index,
                                 dtype=np.int64))
        entry_col.append(kept)
        count_col.append(counts)
        bit_col.append(bits)

    return {
        "time_s": concat_or_empty(time_col, np.float64),
        "write_cycle": concat_or_empty(cycle_col, np.int64),
        "entry_index": concat_or_empty(entry_col, np.int64),
        "flips_per_record": concat_or_empty(count_col, np.int64),
        "flip_bit": concat_or_empty(bit_col, np.int64),
    }


def _smallest_mask(u: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Mask of each row's ``counts`` smallest values, without argsorts.

    Bit-identical to ``_inverse_permutations(u) < counts[:, None]``: when
    the value at the selection boundary is strictly below its successor,
    rank membership depends only on the value multiset, so one values-only
    sort plus a threshold compare replaces the stable argsort, its rank
    scatter, and the rank matrix.  Rows with an exact float tie *at the
    boundary* (detected, not assumed away) fall back to the stable-rank
    path, so the measure-zero tie behaviour still matches the oracle.
    """
    if not u.size:
        return np.zeros(u.shape, dtype=bool)
    width = u.shape[-1]
    rows = np.arange(u.shape[0])
    ordered = np.sort(u, axis=-1)
    mask = u <= ordered[rows, counts - 1][:, None]
    boundary = np.nonzero(counts < width)[0]
    tied = boundary[
        ordered[boundary, counts[boundary] - 1]
        == ordered[boundary, counts[boundary]]
    ]
    if tied.size:
        mask[tied] = _inverse_permutations(u[tied]) \
            < counts[tied, None]
    return mask


def _chunk_site_layout(
    geometry: HBM2Geometry,
    params: EventParameters,
    class_cdf: np.ndarray,
    rngs: dict,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Class codes, per-site event index and entry placement for one chunk.

    The shared head of the fused pass: everything decided by the
    ``klass``/``breadth``/``place`` phase streams, before any mode or
    severity draw touches the other streams.  The scout sweep replays
    exactly this — entry placement depends on nothing downstream — so its
    entry multiset matches the synthesized records site-for-site.
    """
    per_bank = geometry.entries_per_bank
    codes = np.minimum(
        np.searchsorted(class_cdf, rngs["klass"].random(n), side="right"),
        3,
    ).astype(np.int64)
    is_sbme = codes == 1
    is_mbme = codes == 3

    u_breadth = rngs["breadth"].random(n)
    breadth = np.ones(n, dtype=np.int64)
    breadth[is_sbme] = _power_law_breadths(
        u_breadth[is_sbme], params.sbme_breadth_alpha,
        params.sbme_breadth_max,
    )
    breadth[is_mbme] = _power_law_breadths(
        u_breadth[is_mbme], params.mbme_breadth_alpha,
        params.mbme_breadth_max,
    )
    breadth = np.minimum(breadth, per_bank)

    u_place = rngs["place"].random(2 * n).reshape(n, 2)
    first_entry = _floor_scaled(u_place[:, 0], geometry.total_entries)
    bank_start = (first_entry // per_bank) * per_bank
    offset = np.floor(
        u_place[:, 1] * (per_bank - breadth + 1)
    ).astype(np.int64)
    base_entry = np.where(breadth > 1, bank_start + offset, first_entry)

    site_event = np.repeat(np.arange(n, dtype=np.int64), breadth)
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(breadth, out=starts[1:])
    within = np.arange(site_event.size, dtype=np.int64) - np.repeat(
        starts[:-1], breadth
    )
    site_entry = base_entry[site_event] + within
    return codes, site_event, site_entry


def _fused_range_columns(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    job: _RangeJob,
    *,
    include_time: bool = True,
) -> dict:
    """Whole-range fused synthesis: record columns without a device pass.

    Two observations collapse the per-chunk pipeline:

    * The campaign's inject/scan stage is an *identity* on the synthesized
      flips — every event owns its own write cycle, the device is reset
      before each one, and ECC bits are masked — so the record columns are
      the synthesis columns relabeled (``time_s``/``write_cycle`` gathered
      per site).  No :class:`~repro.dram.device.SimulatedHBM2` needed.
    * Per chunk, only the *sized draws* must replay that chunk's phase
      streams, and every transform past the draws (the argsort-of-uniforms
      word and offset picks, the flip scatter, the final ``(site, bit)``
      lexsort) is row-local — rows never mix between chunks and
      ``(site, bit)`` pairs are unique.  The transforms therefore stream
      per chunk and only the slim output columns accumulate; one counting
      scatter merges the whole range at the end.  Keeping the resident
      set near the output size (rather than stacking every intermediate)
      is what holds million-event ranges inside the allocator's
      reused-page regime — see ``repro.core.mem``.

    Bit-for-bit equality with per-chunk :func:`_columnar_chunk` output is
    pinned by the equivalence suite.
    """
    params = parameters
    class_cdf = np.cumsum(np.asarray(
        params.class_probabilities, dtype=np.float64
    ))
    cum_ba = np.cumsum(np.asarray(params.byte_aligned_words_dist))
    cum_na = np.cumsum(np.asarray(params.non_aligned_words_dist))

    cdf8 = _truncated_binomial_cdf(8)
    cdf64 = _truncated_binomial_cdf(BITS_PER_WORD)

    # Per-chunk accumulators; event/site indices are rebased to the range.
    # Flip parts keep (global site run, int16 bits) pairs for the final
    # counting scatter; everything else dies with its chunk iteration.
    site_event_p: list[np.ndarray] = []
    site_entry_p: list[np.ndarray] = []
    counts_p: list[np.ndarray] = []
    flip_site_parts: list[np.ndarray] = []
    flip_bit_parts: list[np.ndarray] = []
    event_off = 0
    site_off = 0

    for chunk in job.chunks:
        n = chunk.size
        rngs = BatchEventSynthesis(
            geometry, params, seed=_fresh_seed(chunk.seed_seq)
        )._phase_rngs()

        codes, site_event, site_entry = _chunk_site_layout(
            geometry, params, class_cdf, rngs, n
        )
        is_mbse = codes == 2
        is_mbme = codes == 3
        is_mb = is_mbse | is_mbme

        u_mode = rngs["mode"].random(4 * n).reshape(n, 4)
        sb_bit = _floor_scaled(u_mode[:, 0], _DATA_BITS)
        pin_bit = _floor_scaled(u_mode[:, 0], BITS_PER_WORD)
        is_pin = is_mbse & (u_mode[:, 1] < params.pin_fault_fraction)
        aligned = is_mb & ~is_pin & (
            u_mode[:, 2] < params.byte_aligned_fraction
        )
        byte_col = np.where(
            aligned, _floor_scaled(u_mode[:, 3], BITS_PER_WORD // 8), -1
        )

        site_is_mb = is_mb[site_event]
        mb_sites = np.nonzero(site_is_mb)[0]
        mb_event = site_event[mb_sites]
        u_words = rngs["words"].random(mb_sites.size)
        nw = np.where(
            is_pin[mb_event],
            2 + _floor_scaled(u_words, WORDS_PER_ENTRY - 1),
            1 + np.minimum(
                np.where(
                    aligned[mb_event],
                    np.searchsorted(cum_ba, u_words, side="right"),
                    np.searchsorted(cum_na, u_words, side="right"),
                ),
                WORDS_PER_ENTRY - 1,
            ),
        ).astype(np.int64)
        u_pick = rngs["pick"].random(4 * mb_sites.size).reshape(-1, 4)

        # Sized draws for the deferred transforms: each plain (non-pin)
        # multi-bit site selects exactly ``nw`` words (`rank < nw` over a
        # permutation of 0..3) of its class's width, so the sev/off stream
        # totals are known without running the argsorts here.
        pin_site = is_pin[mb_event]
        plain_nw = nw[~pin_site]
        plain_width = np.where(aligned[mb_event[~pin_site]], 8, BITS_PER_WORD)
        u_sev = rngs["sev"].random(3 * int(plain_nw.sum())).reshape(-1, 3)
        u_off = rngs["off"].random(int((plain_nw * plain_width).sum()))

        # Chunk-local transforms — mirrors the tail of
        # :meth:`BatchEventSynthesis._table` on this chunk's rows.
        word_sel = _smallest_mask(u_pick, nw)
        plain_word_sel = word_sel & ~pin_site[:, None]
        w_site, w_word = np.nonzero(plain_word_sel)
        w_event = mb_event[w_site]
        w_aligned = aligned[w_event]
        w_width = np.where(w_aligned, 8, BITS_PER_WORD)
        w_base = w_word * BITS_PER_WORD + np.where(
            w_aligned, byte_col[w_event] * 8, 0
        )

        sparse = ~w_aligned & (u_sev[:, 1] < params.sparse_severity_fraction)
        binom = np.minimum(
            2 + np.where(
                w_aligned,
                np.searchsorted(cdf8, u_sev[:, 2], side="right"),
                np.searchsorted(cdf64, u_sev[:, 2], side="right"),
            ),
            w_width,
        )
        count = np.where(
            u_sev[:, 0] < params.inversion_fraction,
            w_width,
            np.where(sparse, 2 + _floor_scaled(u_sev[:, 2], 3), binom),
        ).astype(np.int64)

        off_starts = np.zeros(w_site.size + 1, dtype=np.int64)
        np.cumsum(w_width, out=off_starts[1:])

        chunk_sites: list[np.ndarray] = []
        chunk_bits: list[np.ndarray] = []

        sb_sites = np.nonzero(~site_is_mb)[0]
        chunk_sites.append(sb_sites)
        chunk_bits.append(sb_bit[site_event[sb_sites]])

        p_site, p_word = np.nonzero(word_sel & pin_site[:, None])
        chunk_sites.append(mb_sites[p_site])
        chunk_bits.append(
            p_word * BITS_PER_WORD + pin_bit[mb_event[p_site]]
        )

        for width, cond in ((8, w_aligned), (BITS_PER_WORD, ~w_aligned)):
            group = np.nonzero(cond)[0]
            if not group.size:
                continue
            index = off_starts[group][:, None] + np.arange(width)
            sel = _smallest_mask(u_off[index], count[group])
            g_row, g_off = np.nonzero(sel)
            chunk_sites.append(mb_sites[w_site[group[g_row]]])
            chunk_bits.append(w_base[group[g_row]] + g_off)

        counts_p.append(np.bincount(
            np.concatenate(chunk_sites), minlength=site_event.size
        ).astype(np.int16))
        for sites, bits in zip(chunk_sites, chunk_bits):
            if sites.size:
                flip_site_parts.append(sites + site_off)
                flip_bit_parts.append(bits.astype(np.int16))

        site_event_p.append(site_event + event_off)
        site_entry_p.append(site_entry)
        event_off += n
        site_off += site_event.size

    # consume=True releases the per-chunk blocks as we go
    site_event = concat_or_empty(site_event_p, np.int64, consume=True)
    site_entry = concat_or_empty(site_entry_p, np.int64, consume=True)
    flips_per_site = concat_or_empty(counts_p, np.int16, consume=True)
    n_sites = site_event.size

    # Merge without the global (site, bit) lexsort: each part above emits
    # flips already ascending by (site, bit) — nonzero is row-major and
    # word/offset bases ascend — and the parts cover *disjoint* site sets
    # (sites are chunk-partitioned, and within a chunk a site is
    # single-bit xor pin xor aligned-plain xor non-aligned-plain).  A
    # counting scatter therefore reproduces the sorted layout.
    flip_offset = np.zeros(n_sites + 1, dtype=np.int64)
    np.cumsum(flips_per_site, dtype=np.int64, out=flip_offset[1:])
    flip_bit = np.empty(int(flip_offset[-1]) if n_sites else 0,
                        dtype=np.int16)
    for sites, bits in zip(flip_site_parts, flip_bit_parts):
        run_first = np.flatnonzero(np.r_[True, sites[1:] != sites[:-1]])
        within = np.arange(sites.size, dtype=np.int64) - np.repeat(
            run_first, np.diff(np.r_[run_first, sites.size])
        )
        flip_bit[flip_offset[sites] + within] = bits

    columns = {
        "write_cycle": job.start + site_event,
        "entry_index": site_entry,
        "flips_per_record": flips_per_site,
        "flip_bit": flip_bit,
    }
    if include_time:
        # the streaming fold derives events from write cycles and never
        # touches times — skipping the gather saves a sites-sized float64
        times = _event_times(job.start, job.size, parameters)
        columns["time_s"] = times[site_event]
    return columns


def _reference_chunk(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern: DataPattern,
    job: _ChunkJob,
    tracer: Tracer,
) -> list[MismatchRecord]:
    """Scalar oracle chunk: identical streams, per-entry device traffic."""
    synthesis = BatchEventSynthesis(
        geometry, parameters, seed=_fresh_seed(job.seed_seq)
    )
    with tracer.span("synthesize"):
        events = synthesis.events_at(
            _event_times(job.start, job.size, parameters)
        )
        tracer.count(events=job.size)

    with tracer.span("scan"):
        records = _scan_reference(geometry, pattern, job, events)
        tracer.count(records=len(records))
    return records


def _scan_reference(
    geometry: HBM2Geometry,
    pattern: DataPattern,
    job: _ChunkJob,
    events,
) -> list[MismatchRecord]:
    """Per-event scalar write/inject/scan for one chunk."""
    device = SimulatedHBM2(geometry)
    expected = pattern.entry_fn(False)
    records: list[MismatchRecord] = []
    for index, event in enumerate(events):
        device.write_all(expected)
        for entry, positions in event.flips.items():
            flips = np.zeros(geometry.entry_bits, dtype=np.uint8)
            flips[positions] = 1
            device.inject_upset(entry, flips)
        for mismatch in device.scan_mismatches(expected):
            data_positions = tuple(
                bit for bit in mismatch.bit_positions if bit < _DATA_BITS
            )
            if data_positions:
                records.append(MismatchRecord(
                    time_s=event.time_s,
                    run=0,
                    pattern=pattern.name,
                    write_cycle=job.start + index,
                    read_pass=0,
                    inverted=False,
                    entry_index=mismatch.entry_index,
                    bit_positions=data_positions,
                ))
    return records


def _evaluate_chunk(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    job: _ChunkJob,
):
    """Top-level (picklable) chunk evaluator for the worker pool.

    Returns ``(payload, span_records)``: the chunk's result columns (or
    scalar records) plus the finished worker-side trace, tagged with this
    process's pid so merged traces keep worker provenance.
    """
    faultpoint("pool.worker.crash", chunk=job.index)
    faultpoint("engine.chunk.hang", chunk=job.index)
    enable_heap_reuse()
    pattern = _pattern_by_name(pattern_name)
    runner = _columnar_chunk if engine == "columnar" else _reference_chunk
    tracer = Tracer()
    with tracer.span("chunk", index=job.index):
        payload = runner(geometry, parameters, pattern, job, tracer)
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return payload, tracer.records


def _evaluate_range(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    job: _RangeJob,
    segment: str | None = None,
    offset: int = 0,
    capacity: int = 0,
):
    """Top-level (picklable) fused-range evaluator for the worker pool.

    With ``segment`` set, the result columns go into the arena slice at
    ``(offset, capacity)`` and only the :class:`SliceDescriptor` rides the
    result channel; without one (serial path, or a slice the columns
    outgrew) the columns themselves are returned.  Span names match the
    per-chunk engines — ``chunk`` → ``synthesize``/``scan`` — so traces
    and per-stage throughput counters stay structurally comparable; the
    ``scan`` span here times the (identity) scan's resolution, i.e. the
    transport write.
    """
    faultpoint("pool.worker.crash", chunk=job.chunks[0].index)
    faultpoint("engine.chunk.hang", chunk=job.chunks[0].index)
    enable_heap_reuse()
    _pattern_by_name(pattern_name)  # campaign scans are pattern-invariant
    tracer = Tracer()
    with tracer.span("chunk", index=job.chunks[0].index,
                     chunks=len(job.chunks)):
        with tracer.span("synthesize"):
            columns = _fused_range_columns(geometry, parameters, job)
            tracer.count(events=job.size,
                         sites=int(columns["entry_index"].size))
        with tracer.span("scan"):
            payload = None
            if segment is not None:
                payload = write_columns(segment, offset, capacity, columns)
            tracer.count(records=int(columns["entry_index"].size))
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return (payload if payload is not None else columns), tracer.records


def _member_chunks(job) -> tuple:
    """The chunk jobs a streaming job covers (a range's members, or the
    chunk itself on the per-chunk engines)."""
    return job.chunks if isinstance(job, _RangeJob) else (job,)


def _no_observed_stream():
    """:attr:`StatisticsResult.observed_events` factory for streaming
    results — the whole point is never materializing them."""
    raise RuntimeError(
        "streaming campaigns do not materialize observed events; "
        "rerun with stats='materialize' to recover them"
    )


def _scout_job(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    job,
):
    """Top-level (picklable) scout-sweep worker.

    Replays only the sized entry-placement streams (no mode/severity
    draws, no flip materialization) and reports the slice's entry
    multiset as ``[unique_entries, entries_hit_twice_locally]`` — exactly
    what the host needs to fold into the global occupancy bitmap.  The
    payload is a *list* on purpose: the host folds it and clears the
    slots, so the requeue bookkeeping retains O(1) shells rather than
    O(sites) arrays.
    """
    chunks = _member_chunks(job)
    faultpoint("pool.worker.crash", chunk=chunks[0].index)
    faultpoint("engine.chunk.hang", chunk=chunks[0].index)
    enable_heap_reuse()
    class_cdf = np.cumsum(np.asarray(
        parameters.class_probabilities, dtype=np.float64
    ))
    tracer = Tracer()
    with tracer.span("chunk", index=chunks[0].index, chunks=len(chunks)):
        with tracer.span("scout"):
            parts: list[np.ndarray] = []
            for chunk_job in chunks:
                rngs = BatchEventSynthesis(
                    geometry, parameters, seed=_fresh_seed(chunk_job.seed_seq)
                )._phase_rngs()
                _, _, site_entry = _chunk_site_layout(
                    geometry, parameters, class_cdf, rngs, chunk_job.size
                )
                parts.append(site_entry)
            entries = concat_or_empty(parts, np.int64, consume=True)
            unique, multiplicity = np.unique(entries, return_counts=True)
            tracer.count(events=job.size, sites=int(entries.size))
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return [unique, unique[multiplicity > 1]], tracer.records


def _fold_streaming_columns(columns: dict, job, damaged: np.ndarray) -> dict:
    """Fold one slice's record columns into accumulator state.

    Mirrors :func:`_finalize_shm`'s grouping with the intermittent
    filter answered *globally*: ``damaged`` is the sorted array of
    entries hit by more than one event anywhere in the campaign (the
    scout sweep's verdict), so membership — not local multiplicity —
    decides softness.  Events never span jobs and surviving records stay
    in (cycle, site) order, so per-slice grouping is exact and the folded
    integer tallies partition the whole campaign's.
    """
    from repro.beam.fliptable import FlipTable
    from repro.stats import CampaignAccumulator

    accumulator = CampaignAccumulator()
    columns.pop("time_s", None)
    entry = columns.pop("entry_index")
    counts = columns.pop("flips_per_record")
    site_event = columns.pop("write_cycle") - job.start
    flip_bit = columns.pop("flip_bit")
    accumulator.add_raw(n_events=job.size, n_records=int(entry.size))
    if entry.size and damaged.size:
        probe = np.minimum(np.searchsorted(damaged, entry),
                           damaged.size - 1)
        soft = damaged[probe] != entry
        if not soft.all():
            flip_bit = flip_bit[np.repeat(soft, counts)]
            entry = entry[soft]
            counts = counts[soft]
            site_event = site_event[soft]
    if entry.size:
        new_event = np.r_[True, site_event[1:] != site_event[:-1]]
        event_id = np.cumsum(new_event) - 1
        accumulator.update_from_flip_table(FlipTable.from_flips(
            event_id, entry, counts, flip_bit,
            n_events=int(event_id[-1]) + 1,
        ))
    return accumulator.state()


def _evaluate_streaming(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    job,
    damaged: np.ndarray | None = None,
    descriptor: SliceDescriptor | None = None,
):
    """Top-level (picklable) evaluation-sweep worker for the pool.

    Synthesizes its slice (fused, for the shm engine; full device pass,
    for columnar), drops records on globally damaged entries, folds the
    survivors into a :class:`repro.stats.CampaignAccumulator` and returns
    the O(kilobytes) state — per-event columns never leave the worker.
    The damaged set arrives either inline (serial / small campaigns) or
    as an arena ``descriptor`` broadcast once by the host.
    """
    chunks = _member_chunks(job)
    faultpoint("pool.worker.crash", chunk=chunks[0].index)
    faultpoint("engine.chunk.hang", chunk=chunks[0].index)
    enable_heap_reuse()
    pattern = _pattern_by_name(pattern_name)
    if descriptor is not None:
        damaged = read_attached(descriptor)["damaged"]
    damaged = np.asarray(
        damaged if damaged is not None else (), dtype=np.int64
    )
    tracer = Tracer()
    with tracer.span("chunk", index=chunks[0].index, chunks=len(chunks)):
        if engine == "shm":
            with tracer.span("synthesize"):
                columns = _fused_range_columns(
                    geometry, parameters, job, include_time=False
                )
                tracer.count(events=job.size,
                             sites=int(columns["entry_index"].size))
        else:
            columns = _columnar_chunk(geometry, parameters, pattern, job,
                                      tracer)
        with tracer.span("fold"):
            state = _fold_streaming_columns(columns, job, damaged)
            tracer.count(observed=int(state["n_observed"]))
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return state, tracer.records


def _run_chunks(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    jobs: list[_ChunkJob],
    workers: int | None,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
) -> dict[int, tuple]:
    """Evaluate chunks, fanned out when asked, robust to worker failure.

    Delegates the requeue-once-then-serial robustness to
    :func:`repro.core.pool.run_with_requeue` (shared with the Monte Carlo
    harness); per-chunk seeding makes every path bit-identical.  Worker
    span records merge into ``tracer`` and ``heartbeat`` advances as each
    chunk completes, on whichever path completed it.
    """
    def _on_result(job: _ChunkJob, result) -> None:
        if tracer is not None:
            tracer.merge(result[1])
        if heartbeat is not None:
            heartbeat.update(advance=1, events=job.size)

    results, report = run_with_requeue(
        jobs,
        key=lambda job: job.index,
        describe=lambda job: f"chunk {job.index}",
        submit=lambda pool, job: pool.submit(
            _evaluate_chunk, engine, geometry, parameters, pattern_name, job,
        ),
        run_serial=lambda job: _evaluate_chunk(
            engine, geometry, parameters, pattern_name, job,
        ),
        workers=workers,
        timeout=chunk_timeout,
        executor_factory=(
            warm_pool.executor_factory if warm_pool is not None
            else (lambda: ProcessPoolExecutor(
                max_workers=workers, initializer=pool_worker_init))
        ),
        noun="chunks",
        logger=_LOGGER,
        on_result=_on_result,
        retry=retry,
    )
    if tracer is not None:
        tracer.count(**report.counters())
    return results, report


def _range_jobs(
    jobs: list[_ChunkJob],
    workers: int | None,
    range_chunks: int | None = None,
) -> list[_RangeJob]:
    """Partition chunk jobs into fused ranges.

    Defaults to ~4 ranges per worker (so the pool load-balances and a
    requeued range is cheap) capped at 64 chunks per range (bounding the
    fused pass's working set).
    """
    if not jobs:
        return []
    if range_chunks is None:
        per = 4 * max(1, workers or 1)
        range_chunks = max(1, min(64, -(-len(jobs) // per)))
    ranges = []
    for index, lo in enumerate(range(0, len(jobs), range_chunks)):
        block = tuple(jobs[lo:lo + range_chunks])
        ranges.append(_RangeJob(
            index=index,
            start=block[0].start,
            size=sum(job.size for job in block),
            chunks=block,
        ))
    return ranges


def _run_ranges(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    jobs: list[_RangeJob],
    workers: int | None,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
):
    """Evaluate fused ranges; returns ``(results, report, arena)``.

    When the pool will actually engage, a shared-memory arena is created
    and every range job gets a deterministic ``(offset, capacity)`` slice
    sized from its event count; workers return descriptors instead of
    pickled columns.  The caller must read the descriptors back (see
    :func:`_merge_range_payloads`) and close the arena — returning it
    instead of closing here keeps the zero-copy reads alive through the
    postprocess stage.  Arena creation failure (or an outgrown slice) is
    never fatal: both degrade to the inline pickled path.
    """
    def _on_result(job: _RangeJob, result) -> None:
        if tracer is not None:
            tracer.merge(result[1])
        if heartbeat is not None:
            heartbeat.update(advance=1, events=job.size)

    arena = None
    offsets: dict[int, tuple[int, int]] = {}
    pooled = (
        workers is not None and workers > 1 and len(jobs) > 1
    )
    if pooled:
        layout = []
        total = 0
        for job in jobs:
            cap = align(job.size * _SHM_BYTES_PER_EVENT + _SHM_JOB_HEADROOM)
            layout.append((total, cap))
            total += cap
        try:
            arena = ShmArena(total)
        except OSError as exc:
            _LOGGER.warning(
                "shared-memory arena unavailable (%s); "
                "falling back to pickled results", exc,
            )
        else:
            offsets = {job.index: slot for job, slot in zip(jobs, layout)}
            if tracer is not None and arena.reclaimed:
                tracer.count(shm_reclaimed=len(arena.reclaimed))

    def _submit(pool, job: _RangeJob):
        if arena is not None:
            off, cap = offsets[job.index]
            return pool.submit(
                _evaluate_range, geometry, parameters, pattern_name, job,
                arena.name, off, cap,
            )
        return pool.submit(
            _evaluate_range, geometry, parameters, pattern_name, job,
        )

    try:
        results, report = run_with_requeue(
            jobs,
            key=lambda job: job.index,
            describe=lambda job: f"chunk range {job.index}",
            submit=_submit,
            run_serial=lambda job: _evaluate_range(
                geometry, parameters, pattern_name, job,
            ),
            workers=workers,
            timeout=chunk_timeout,
            executor_factory=(
                warm_pool.executor_factory if warm_pool is not None
                else (lambda: ProcessPoolExecutor(
                max_workers=workers, initializer=pool_worker_init))
            ),
            noun="chunk ranges",
            logger=_LOGGER,
            on_result=_on_result,
            retry=retry,
        )
    except BaseException:
        if arena is not None:
            arena.close()
        raise
    if tracer is not None:
        tracer.count(**report.counters())
    return results, report, arena


def _run_scout(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    jobs: list,
    workers: int | None,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
):
    """Scout sweep: fold every job's entry multiset into one occupancy
    bitmap as results land; returns ``(damaged_entries, report)``.

    The bitmap is O(device) — one bit per entry — and the payloads are
    cleared as they fold, so peak memory is independent of campaign size.
    """
    from repro.stats import EntryOccupancy

    occupancy = EntryOccupancy(geometry.total_entries)

    def _on_result(job, result) -> None:
        payload = result[0]
        occupancy.fold(payload[0], payload[1])
        payload[0] = payload[1] = None  # results keep O(1) shells
        if tracer is not None:
            tracer.merge(result[1])
        if heartbeat is not None:
            heartbeat.update(advance=1, events=job.size)

    _, report = run_with_requeue(
        jobs,
        key=lambda job: job.index,
        describe=lambda job: f"scout range {job.index}",
        submit=lambda pool, job: pool.submit(
            _scout_job, geometry, parameters, job,
        ),
        run_serial=lambda job: _scout_job(geometry, parameters, job),
        workers=workers,
        timeout=chunk_timeout,
        executor_factory=(
            warm_pool.executor_factory if warm_pool is not None
            else (lambda: ProcessPoolExecutor(
                max_workers=workers, initializer=pool_worker_init))
        ),
        noun="scout ranges",
        logger=_LOGGER,
        on_result=_on_result,
        retry=retry,
    )
    if tracer is not None:
        tracer.count(**report.counters())
    return occupancy.damaged(), report


def _run_streaming(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    jobs: list,
    damaged: np.ndarray,
    workers: int | None,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
):
    """Evaluation sweep: every job folds worker-side and ships back
    accumulator state; returns ``(results, report)``.

    With a pool engaged, the damaged-entry set is broadcast once through
    a small shared-memory arena (read-only to workers) instead of being
    pickled into every submit; arena failure degrades to inline args.
    The result channel needs no arena — states are kilobytes.
    """
    arena = None
    descriptor = None
    pooled = workers is not None and workers > 1 and len(jobs) > 1
    if pooled and damaged.size:
        try:
            arena = ShmArena(align(damaged.nbytes))
        except OSError as exc:
            _LOGGER.warning(
                "shared-memory arena unavailable (%s); "
                "broadcasting damaged entries inline", exc,
            )
        else:
            descriptor = write_columns(
                arena.name, 0, arena.nbytes, {"damaged": damaged}
            )
            if descriptor is None:  # pragma: no cover - capacity is exact
                arena.close()
                arena = None

    def _submit(pool, job):
        if descriptor is not None:
            return pool.submit(
                _evaluate_streaming, engine, geometry, parameters,
                pattern_name, job, None, descriptor,
            )
        return pool.submit(
            _evaluate_streaming, engine, geometry, parameters,
            pattern_name, job, damaged,
        )

    def _on_result(job, result) -> None:
        if tracer is not None:
            tracer.merge(result[1])
        if heartbeat is not None:
            heartbeat.update(advance=1, events=job.size)

    try:
        results, report = run_with_requeue(
            jobs,
            key=lambda job: job.index,
            describe=lambda job: f"streaming range {job.index}",
            submit=_submit,
            run_serial=lambda job: _evaluate_streaming(
                engine, geometry, parameters, pattern_name, job, damaged,
            ),
            workers=workers,
            timeout=chunk_timeout,
            executor_factory=(
                warm_pool.executor_factory if warm_pool is not None
                else (lambda: ProcessPoolExecutor(
                    max_workers=workers, initializer=pool_worker_init))
            ),
            noun="streaming ranges",
            logger=_LOGGER,
            on_result=_on_result,
            retry=retry,
        )
    finally:
        if arena is not None:
            arena.close()
    if tracer is not None:
        tracer.count(**report.counters())
    return results, report


def _merge_streaming_states(results: dict):
    """Merge worker accumulator states in job order (any order would do —
    merge is commutative — but determinism keeps traces comparable)."""
    from repro.stats import CampaignAccumulator

    accumulator = CampaignAccumulator.empty()
    for index in sorted(results):
        accumulator = accumulator.merge(
            CampaignAccumulator.from_state(results[index][0])
        )
    return accumulator


def _merge_range_payloads(results: dict, arena) -> dict:
    """Concatenate range payloads (descriptors or inline columns) in
    range order into one column set; copies out of the arena."""
    parts: dict[str, list[np.ndarray]] = {key: [] for key in _COLUMN_KEYS}
    for index in sorted(results):
        payload = results[index][0]
        if isinstance(payload, SliceDescriptor):
            columns = read_columns(arena.buf, payload)
        else:
            columns = payload
        for key in _COLUMN_KEYS:
            parts[key].append(columns[key])
    return {
        key: (np.concatenate(blocks) if blocks
              else np.empty(0, dtype=_COLUMN_DTYPES[key]))
        for key, blocks in parts.items()
    }


def _finalize_columnar(columns: dict, pattern_name: str) -> tuple:
    from repro.beam.postprocess import (
        derive_table1_table,
        filter_intermittent_table,
        group_events_table,
        breadth_class_fractions_table,
        bits_per_word_histogram_table,
        byte_alignment_stats_table,
        mbme_breadth_histogram_table,
    )

    n_records = int(columns["entry_index"].size)
    table = RecordTable.from_columns(
        time_s=columns["time_s"],
        run=np.zeros(n_records, dtype=np.int64),
        pattern_code=np.zeros(n_records, dtype=np.int64),
        write_cycle=columns["write_cycle"],
        read_pass=np.zeros(n_records, dtype=np.int64),
        inverted=np.zeros(n_records, dtype=bool),
        entry_index=columns["entry_index"],
        flips_per_record=columns["flips_per_record"],
        flip_bit=columns["flip_bit"],
        patterns=(pattern_name,),
    )
    grouped = group_events_table(filter_intermittent_table(table).soft)
    if not grouped.n_events:
        return n_records, 0, _EMPTY_STATS, list
    stats = (
        breadth_class_fractions_table(grouped),
        mbme_breadth_histogram_table(grouped),
        byte_alignment_stats_table(grouped),
        bits_per_word_histogram_table(grouped, byte_aligned=True),
        bits_per_word_histogram_table(grouped, byte_aligned=False),
        derive_table1_table(grouped),
    )
    return n_records, grouped.n_events, stats, grouped.to_observed_events


def _finalize_shm(columns: dict, pattern_name: str) -> tuple:
    """Direct soft-error grouping on the merged record columns.

    Exploits what holds for every campaign record set (and is pinned
    byte-for-byte against :func:`_finalize_columnar` by the equivalence
    suite): entries are unique *within* an event, so an entry recorded
    twice was necessarily hit in two distinct write cycles — the
    intermittent filter reduces to "keep entries with exactly one
    record".  Surviving records are already in (cycle, site) order, so
    grouping is a run-length pass, skipping the
    :class:`~repro.beam.fliptable.RecordTable` materialization and the
    full-table lexsorts of the columnar finalizer.
    """
    from repro.beam.fliptable import FlipTable
    from repro.beam.postprocess import (
        derive_table1_table,
        breadth_class_fractions_table,
        bits_per_word_histogram_table,
        byte_alignment_stats_table,
        mbme_breadth_histogram_table,
    )

    # ``pop`` releases each transport column at last use — the caller
    # discards the dict, and the freed blocks keep the resident set (and
    # with it the page-fault bill) flat through the grouping passes.
    columns.pop("time_s", None)  # derivable; unused by the fused grouping
    entry = columns.pop("entry_index")
    n_records = int(entry.size)
    if not n_records:
        return 0, 0, _EMPTY_STATS, list
    counts = columns.pop("flips_per_record")
    unique_entries, per_entry = np.unique(entry, return_counts=True)
    soft = per_entry[np.searchsorted(unique_entries, entry)] == 1
    del unique_entries, per_entry
    cycles = columns.pop("write_cycle")[soft]
    if not cycles.size:
        return n_records, 0, _EMPTY_STATS, list
    new_event = np.r_[True, cycles[1:] != cycles[:-1]]
    site_event = np.cumsum(new_event) - 1
    n_events = int(site_event[-1]) + 1
    flip_bit = columns.pop("flip_bit")[np.repeat(soft, counts)]
    grouped = FlipTable.from_flips(
        site_event, entry[soft], counts[soft],
        flip_bit,
        n_events=n_events,
        event_columns={
            "run": np.zeros(n_events, dtype=np.int64),
            "write_cycle": cycles[new_event],
            "read_pass": np.zeros(n_events, dtype=np.int64),
        },
    )
    del entry, counts, soft, cycles, new_event, site_event, flip_bit
    stats = (
        breadth_class_fractions_table(grouped),
        mbme_breadth_histogram_table(grouped),
        byte_alignment_stats_table(grouped),
        bits_per_word_histogram_table(grouped, byte_aligned=True),
        bits_per_word_histogram_table(grouped, byte_aligned=False),
        derive_table1_table(grouped),
    )
    return n_records, n_events, stats, grouped.to_observed_events


def _finalize_reference(records: list[MismatchRecord]) -> tuple:
    from repro.beam.postprocess import (
        derive_table1,
        filter_intermittent,
        group_events,
        breadth_class_fractions,
        bits_per_word_histogram,
        byte_alignment_stats,
        mbme_breadth_histogram,
    )

    events = group_events(filter_intermittent(records).soft_records)
    if not events:
        return len(records), 0, _EMPTY_STATS, list
    stats = (
        breadth_class_fractions(events),
        mbme_breadth_histogram(events),
        byte_alignment_stats(events),
        bits_per_word_histogram(events, byte_aligned=True),
        bits_per_word_histogram(events, byte_aligned=False),
        derive_table1(events),
    )
    return len(records), len(events), stats, lambda: events


def run_statistics_campaign(
    n_events: int,
    *,
    seed: int = 2021,
    geometry: HBM2Geometry | None = None,
    parameters: EventParameters | None = None,
    pattern: str | DataPattern = "an-encoded",
    engine: str = "columnar",
    stats: str = "materialize",
    workers: int | None = None,
    chunk: int = 512,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
    range_chunks: int | None = None,
) -> StatisticsResult:
    """Generate, scan and post-process ``n_events`` ground-truth SEUs.

    Event ``i`` arrives at ``i × mean_time_to_event_s`` and owns write
    cycle ``i`` of run 0; chunk ``c`` of ``chunk`` events is seeded by
    ``SeedSequence(seed).spawn(n_chunks)[c]``, so the result is a pure
    function of ``(n_events, seed, chunk)`` — identical across engines
    and across any ``workers`` setting.

    The run reports through ``tracer`` (a fresh one when omitted): a
    ``campaign`` span wrapping per-chunk worker spans and a
    ``postprocess`` span; the finished records land in
    :attr:`StatisticsResult.trace`.  ``heartbeat``, when given, advances
    once per completed job (chunk, or fused chunk range for
    ``engine="shm"``).

    ``engine="shm"`` evaluates chunks in fused ranges (``range_chunks``
    per job, auto-sized by default), ships pooled results through a
    shared-memory arena, and — with ``warm_pool`` set to a
    :class:`repro.core.pool.WarmPool` — reuses worker processes across
    campaigns in the same invocation.  ``warm_pool`` applies to the
    per-chunk engines too.

    ``stats="streaming"`` replaces the materialize-then-postprocess tail
    with two sweeps: a *scout* pass replays only the entry-placement
    streams and answers the global intermittent filter with an
    O(device) occupancy bitmap, then the evaluation sweep folds each
    job's records into a fixed-size :class:`repro.stats
    .CampaignAccumulator` worker-side.  Host memory stays flat in the
    event count, and every statistic is float-identical to
    ``stats="materialize"`` (the tallies are integers; the floats are
    computed once, canonically).  The reference engine keeps only the
    materialized path, and a streaming result never materializes
    :attr:`StatisticsResult.observed_events`.
    """
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    if stats not in STATS_MODES:
        raise ValueError(f"stats must be one of {STATS_MODES}")
    if stats == "streaming" and engine == "reference":
        raise ValueError(
            "the reference engine has no streaming statistics path; "
            "use engine='shm' or engine='columnar'"
        )
    geometry = geometry or HBM2Geometry.for_gpu(32)
    parameters = parameters or EventParameters()
    pattern_name = pattern if isinstance(pattern, str) else pattern.name
    _pattern_by_name(pattern_name)  # validate before spawning workers
    enable_heap_reuse()

    tracer = tracer if tracer is not None else Tracer()
    trace_base = len(tracer.records)

    n_chunks = (n_events + chunk - 1) // chunk if n_events else 0
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    jobs = [
        _ChunkJob(
            index=index,
            start=index * chunk,
            size=min(chunk, n_events - index * chunk),
            seed_seq=children[index],
        )
        for index in range(n_chunks)
    ]
    ranges = _range_jobs(jobs, workers, range_chunks) \
        if engine == "shm" else None
    sweeps = 2 if stats == "streaming" else 1
    if heartbeat is not None and heartbeat.total is None:
        heartbeat.total = sweeps * (
            len(ranges) if ranges is not None else n_chunks
        )
        if getattr(heartbeat, "total_events", None) is None:
            heartbeat.total_events = sweeps * n_events

    accumulator = None
    with tracer.span("campaign", engine=engine, stats=stats):
        tracer.count(events=n_events, chunks=n_chunks)
        if stats == "streaming":
            from repro.stats import STATS_KEYS

            stream_jobs = ranges if ranges is not None else jobs
            damaged, scout_report = _run_scout(
                geometry, parameters, stream_jobs, workers, chunk_timeout,
                tracer, heartbeat, retry, warm_pool,
            )
            results, report = _run_streaming(
                engine, geometry, parameters, pattern_name, stream_jobs,
                damaged, workers, chunk_timeout, tracer, heartbeat, retry,
                warm_pool,
            )
            accumulator = _merge_streaming_states(results)
            n_records = accumulator.n_records
            n_observed = accumulator.n_observed
            stats_tuple = (
                tuple(accumulator.finalize()[key] for key in STATS_KEYS)
                if n_observed else _EMPTY_STATS
            )
            observed = _no_observed_stream
            tracer.count(records=n_records, observed=n_observed,
                         damaged_entries=int(damaged.size))
            pool_counters = scout_report.counters()
            for key, value in report.counters().items():
                pool_counters[key] = pool_counters.get(key, 0) + value
        elif engine == "shm":
            results, report, arena = _run_ranges(
                geometry, parameters, pattern_name, ranges, workers,
                chunk_timeout, tracer, heartbeat, retry, warm_pool,
            )
            try:
                with tracer.span("postprocess"):
                    columns = _merge_range_payloads(results, arena)
                    n_records, n_observed, stats_tuple, observed = \
                        _finalize_shm(columns, pattern_name)
                    tracer.count(records=n_records, observed=n_observed)
            finally:
                if arena is not None:
                    arena.close()
            pool_counters = report.counters()
        else:
            results, report = _run_chunks(
                engine, geometry, parameters, pattern_name, jobs, workers,
                chunk_timeout, tracer, heartbeat, retry, warm_pool,
            )

            with tracer.span("postprocess"):
                if engine == "columnar":
                    columns = {
                        key: concat_or_empty(
                            [results[i][0][key] for i in sorted(results)],
                            _COLUMN_DTYPES[key],
                        )
                        for key in _COLUMN_KEYS
                    }
                    n_records, n_observed, stats_tuple, observed = \
                        _finalize_columnar(columns, pattern_name)
                else:
                    records = [
                        record for index in sorted(results)
                        for record in results[index][0]
                    ]
                    n_records, n_observed, stats_tuple, observed = \
                        _finalize_reference(records)
                tracer.count(records=n_records, observed=n_observed)
            pool_counters = report.counters()
    if heartbeat is not None:
        heartbeat.close()

    trace = tracer.records[trace_base:]
    (class_fractions, mbme_histogram, byte_alignment, bits_aligned,
     bits_non_aligned, table1) = stats_tuple
    return StatisticsResult(
        engine=engine,
        n_events=n_events,
        n_records=n_records,
        n_observed=n_observed,
        class_fractions=class_fractions,
        mbme_histogram=mbme_histogram,
        byte_alignment=byte_alignment,
        bits_per_word_aligned=bits_aligned,
        bits_per_word_non_aligned=bits_non_aligned,
        table1=table1,
        stage_seconds=stage_totals(
            trace, _STREAM_STAGES if stats == "streaming" else _STAGES
        ),
        trace=trace,
        pool_counters=pool_counters,
        stats_mode=stats,
        accumulator=accumulator,
        _observed_factory=observed,
    )

"""Columnar statistics-campaign engine (generate → scan → post-process).

The Figure 4/5 and Table 1 statistics need thousands of ground-truth SEU
events pushed through the whole observation pipeline: synthesize the
event, corrupt the simulated device, scan it back and classify what the
scan recovered.  This module packages that loop as one engine with two
interchangeable implementations:

* ``engine="columnar"`` — :class:`~repro.beam.events.BatchEventSynthesis`
  draws every event of a chunk vectorized, the device is corrupted with
  bit-packed batch injections, read back through
  :meth:`~repro.dram.device.SimulatedHBM2.scan_mismatches_batch`, and the
  mismatch log is post-processed as a
  :class:`~repro.beam.fliptable.RecordTable` without ever materializing
  per-record Python objects.
* ``engine="reference"`` — the retained scalar oracle: per-event draws,
  per-entry injection, the per-entry scalar scan and the record-list
  post-processing helpers.

Both engines consume identical random streams (chunk ``c`` is seeded by
``SeedSequence(seed).spawn(n_chunks)[c]``) and therefore derive
bit-identical statistics; the equivalence suite asserts it and the
throughput benchmark measures the gap.

Chunks are independent, so ``workers=N`` fans them out over a process
pool with the shared requeue-once-then-serial robustness of
:func:`repro.core.pool.run_with_requeue` — and, thanks to per-chunk
seeding, the same results on every path.

Observability: every chunk runs under its own worker-side
:class:`repro.obs.Tracer` (``chunk`` → ``synthesize``/``scan`` spans with
event/record counters, tagged with the worker pid); the parent merges
the records as chunks complete, wraps the whole run in a ``campaign``
span, and derives :attr:`StatisticsResult.stage_seconds` from the trace.
Pass ``tracer=`` to graft the campaign into a larger trace (the CLI
passes its run session's tracer) and ``heartbeat=`` for periodic
progress lines while chunks complete.
"""

from __future__ import annotations

import logging
import os

# BrokenExecutor and the futures TimeoutError are re-exported here for the
# degradation tests, which monkeypatch this module's ProcessPoolExecutor
# and raise these exact types from fake futures.
from concurrent.futures import BrokenExecutor  # noqa: F401
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout  # noqa: F401
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.beam.events import BatchEventSynthesis, EventParameters
from repro.beam.fliptable import RecordTable, unpack_packed_rows
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    DataPattern,
    MismatchRecord,
    UniformPattern,
)
from repro.core.pool import RetryPolicy, run_with_requeue
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.faults import faultpoint
from repro.obs import Tracer, stage_totals

__all__ = ["StatisticsResult", "run_statistics_campaign", "ENGINES"]

_LOGGER = logging.getLogger(__name__)

_DATA_BITS = 256
_DATA_WORDS = _DATA_BITS // 64

#: The two interchangeable engine implementations.
ENGINES = ("columnar", "reference")

_STAGES = ("synthesize", "scan", "postprocess")


def _pattern_by_name(name: str) -> DataPattern:
    if name == "all0":
        return UniformPattern(ones=False)
    if name == "all1":
        return UniformPattern(ones=True)
    if name == "checkerboard":
        return CheckerboardPattern()
    if name == "an-encoded":
        return ANPattern()
    raise ValueError(f"unknown data pattern {name!r}")


@dataclass
class StatisticsResult:
    """Derived statistics plus the per-stage throughput accounting."""

    engine: str
    n_events: int
    n_records: int
    n_observed: int
    class_fractions: dict
    mbme_histogram: dict
    byte_alignment: dict
    bits_per_word_aligned: dict
    bits_per_word_non_aligned: dict
    table1: dict
    #: accumulated wall-clock seconds per stage, in pipeline order
    #: (derived from the trace; kept as a dict for manifest compatibility)
    stage_seconds: dict = field(default_factory=dict)
    #: the campaign's span records (chunk/worker spans included) — what
    #: the run store exports as the trace artifact
    trace: list = field(default_factory=list, repr=False, compare=False)
    #: pool-degradation telemetry (requeues, timeouts), empty when serial
    pool_counters: dict = field(default_factory=dict, repr=False,
                                compare=False)
    #: lazy materializer for :attr:`observed_events` (columnar results
    #: keep the grouped table and only build ObservedEvent objects on use)
    _observed_factory: object = field(default=None, repr=False, compare=False)
    _observed: list | None = field(default=None, repr=False, compare=False)

    @property
    def observed_events(self) -> list:
        """The recovered events, for merging with campaign observations."""
        if self._observed is None:
            factory = self._observed_factory
            self._observed = list(factory()) if factory is not None else []
        return self._observed

    @property
    def events_per_second(self) -> dict:
        """Per-stage throughput — what ``repro runs show`` surfaces."""
        return {
            stage: (self.n_events / seconds) if seconds > 0 else 0.0
            for stage, seconds in self.stage_seconds.items()
        }

    def counters(self) -> dict:
        """Flat manifest-ready counters (JSON-safe scalars only)."""
        flat: dict = {"engine": self.engine, "events": self.n_events,
                      "records": self.n_records, "observed": self.n_observed}
        for stage, seconds in self.stage_seconds.items():
            flat[f"{stage}_s"] = round(seconds, 6)
        for stage, rate in self.events_per_second.items():
            flat[f"{stage}_events_per_s"] = round(rate, 3)
        flat.update(self.pool_counters)
        return flat


#: what both finalizers return for a campaign that observed nothing
_EMPTY_STATS = ({}, {}, {}, {}, {}, {})


class _ChunkJob(NamedTuple):
    """One contiguous run of global event indices awaiting evaluation."""

    index: int
    start: int  #: global index of the chunk's first event
    size: int
    seed_seq: np.random.SeedSequence


def _event_times(start: int, size: int,
                 parameters: EventParameters) -> np.ndarray:
    """Each event owns one write cycle; time is its global index scaled."""
    return (start + np.arange(size, dtype=np.float64)) \
        * parameters.mean_time_to_event_s


def _columnar_chunk(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern: DataPattern,
    job: _ChunkJob,
    tracer: Tracer,
) -> dict:
    """Vectorized chunk: batch synthesis, packed injection + scan."""
    synthesis = BatchEventSynthesis(geometry, parameters, seed=job.seed_seq)
    with tracer.span("synthesize"):
        table = synthesis.table_at(
            _event_times(job.start, job.size, parameters)
        )
        tracer.count(events=job.size, sites=int(table.site_entry.size))

    with tracer.span("scan"):
        columns = _scan_columnar(geometry, pattern, job, table)
        tracer.count(records=int(columns["entry_index"].size))
    return columns


def _scan_columnar(
    geometry: HBM2Geometry,
    pattern: DataPattern,
    job: _ChunkJob,
    table,
) -> dict:
    """Inject and scan one synthesized chunk, returning record columns."""
    device = SimulatedHBM2(geometry)
    expected = pattern.entry_fn(False)
    packed = pattern.packed_fn(False)
    packed_sites = table.packed_site_rows()
    times = table.event_columns["time_s"]

    # Fast path: inject the whole chunk's sites, scan once.  Each event's
    # write cycle is distinct, so the batched scan is record-for-record
    # the per-event scan *provided* no two events of the chunk hit the
    # same entry (their overlays would XOR-merge); site entries are
    # event-major and ascending within an event, so after the entry-sorted
    # scan a searchsorted gather restores per-site record order.
    unique_entries = np.unique(table.site_entry)
    if unique_entries.size == table.site_entry.size:
        device.write_all(expected, packed)
        device.inject_upsets_batch(table.site_entry, packed_sites)
        entries, diff = device.scan_mismatches_batch(expected, packed)
        diff = diff.copy()
        diff[:, _DATA_WORDS:] = 0  # ECC-disabled: data bits only
        keep = diff.any(axis=1)
        entries, diff = entries[keep], diff[keep]
        site_rows = diff[np.searchsorted(entries, table.site_entry)]
        observed = site_rows.any(axis=1)
        row_of_flip, bits = unpack_packed_rows(site_rows[observed])
        n_observed = int(observed.sum())
        counts = np.diff(
            np.searchsorted(row_of_flip, np.arange(n_observed + 1))
        )
        site_event = table.site_event[observed]
        columns = {
            "time_s": times[site_event],
            "write_cycle": job.start + site_event,
            "entry_index": table.site_entry[observed],
            "flips_per_record": counts,
            "flip_bit": bits,
        }
        return columns

    # Collision path (rare): per-event write/inject/scan, same records.
    site_start = table.event_site_start()
    time_col: list[np.ndarray] = []
    cycle_col: list[np.ndarray] = []
    entry_col: list[np.ndarray] = []
    count_col: list[np.ndarray] = []
    bit_col: list[np.ndarray] = []
    for index in range(table.n_events):
        lo, hi = site_start[index], site_start[index + 1]
        device.write_all(expected, packed)  # O(1): resets the overlay
        device.inject_upsets_batch(
            table.site_entry[lo:hi], packed_sites[lo:hi]
        )
        entries, diff = device.scan_mismatches_batch(expected, packed)
        diff = diff.copy()
        diff[:, _DATA_WORDS:] = 0
        keep = diff.any(axis=1)
        if not keep.any():
            continue
        kept = entries[keep]
        row_of_flip, bits = unpack_packed_rows(diff[keep])
        counts = np.diff(
            np.searchsorted(row_of_flip, np.arange(kept.size + 1))
        )
        time_col.append(np.full(kept.size, times[index]))
        cycle_col.append(np.full(kept.size, job.start + index,
                                 dtype=np.int64))
        entry_col.append(kept)
        count_col.append(counts)
        bit_col.append(bits)

    def _cat(parts: list[np.ndarray], dtype) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

    return {
        "time_s": _cat(time_col, np.float64),
        "write_cycle": _cat(cycle_col, np.int64),
        "entry_index": _cat(entry_col, np.int64),
        "flips_per_record": _cat(count_col, np.int64),
        "flip_bit": _cat(bit_col, np.int64),
    }


def _reference_chunk(
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern: DataPattern,
    job: _ChunkJob,
    tracer: Tracer,
) -> list[MismatchRecord]:
    """Scalar oracle chunk: identical streams, per-entry device traffic."""
    synthesis = BatchEventSynthesis(geometry, parameters, seed=job.seed_seq)
    with tracer.span("synthesize"):
        events = synthesis.events_at(
            _event_times(job.start, job.size, parameters)
        )
        tracer.count(events=job.size)

    with tracer.span("scan"):
        records = _scan_reference(geometry, pattern, job, events)
        tracer.count(records=len(records))
    return records


def _scan_reference(
    geometry: HBM2Geometry,
    pattern: DataPattern,
    job: _ChunkJob,
    events,
) -> list[MismatchRecord]:
    """Per-event scalar write/inject/scan for one chunk."""
    device = SimulatedHBM2(geometry)
    expected = pattern.entry_fn(False)
    records: list[MismatchRecord] = []
    for index, event in enumerate(events):
        device.write_all(expected)
        for entry, positions in event.flips.items():
            flips = np.zeros(geometry.entry_bits, dtype=np.uint8)
            flips[positions] = 1
            device.inject_upset(entry, flips)
        for mismatch in device.scan_mismatches(expected):
            data_positions = tuple(
                bit for bit in mismatch.bit_positions if bit < _DATA_BITS
            )
            if data_positions:
                records.append(MismatchRecord(
                    time_s=event.time_s,
                    run=0,
                    pattern=pattern.name,
                    write_cycle=job.start + index,
                    read_pass=0,
                    inverted=False,
                    entry_index=mismatch.entry_index,
                    bit_positions=data_positions,
                ))
    return records


def _evaluate_chunk(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    job: _ChunkJob,
):
    """Top-level (picklable) chunk evaluator for the worker pool.

    Returns ``(payload, span_records)``: the chunk's result columns (or
    scalar records) plus the finished worker-side trace, tagged with this
    process's pid so merged traces keep worker provenance.
    """
    faultpoint("pool.worker.crash", chunk=job.index)
    faultpoint("engine.chunk.hang", chunk=job.index)
    pattern = _pattern_by_name(pattern_name)
    runner = _columnar_chunk if engine == "columnar" else _reference_chunk
    tracer = Tracer()
    with tracer.span("chunk", index=job.index):
        payload = runner(geometry, parameters, pattern, job, tracer)
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return payload, tracer.records


def _run_chunks(
    engine: str,
    geometry: HBM2Geometry,
    parameters: EventParameters,
    pattern_name: str,
    jobs: list[_ChunkJob],
    workers: int | None,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
) -> dict[int, tuple]:
    """Evaluate chunks, fanned out when asked, robust to worker failure.

    Delegates the requeue-once-then-serial robustness to
    :func:`repro.core.pool.run_with_requeue` (shared with the Monte Carlo
    harness); per-chunk seeding makes every path bit-identical.  Worker
    span records merge into ``tracer`` and ``heartbeat`` advances as each
    chunk completes, on whichever path completed it.
    """
    def _on_result(job: _ChunkJob, result) -> None:
        if tracer is not None:
            tracer.merge(result[1])
        if heartbeat is not None:
            heartbeat.update(advance=1, events=job.size)

    results, report = run_with_requeue(
        jobs,
        key=lambda job: job.index,
        describe=lambda job: f"chunk {job.index}",
        submit=lambda pool, job: pool.submit(
            _evaluate_chunk, engine, geometry, parameters, pattern_name, job,
        ),
        run_serial=lambda job: _evaluate_chunk(
            engine, geometry, parameters, pattern_name, job,
        ),
        workers=workers,
        timeout=chunk_timeout,
        executor_factory=lambda: ProcessPoolExecutor(max_workers=workers),
        noun="chunks",
        logger=_LOGGER,
        on_result=_on_result,
        retry=retry,
    )
    if tracer is not None:
        tracer.count(**report.counters())
    return results, report


def _finalize_columnar(columns: dict, pattern_name: str) -> tuple:
    from repro.beam.postprocess import (
        derive_table1_table,
        filter_intermittent_table,
        group_events_table,
        breadth_class_fractions_table,
        bits_per_word_histogram_table,
        byte_alignment_stats_table,
        mbme_breadth_histogram_table,
    )

    n_records = int(columns["entry_index"].size)
    table = RecordTable.from_columns(
        time_s=columns["time_s"],
        run=np.zeros(n_records, dtype=np.int64),
        pattern_code=np.zeros(n_records, dtype=np.int64),
        write_cycle=columns["write_cycle"],
        read_pass=np.zeros(n_records, dtype=np.int64),
        inverted=np.zeros(n_records, dtype=bool),
        entry_index=columns["entry_index"],
        flips_per_record=columns["flips_per_record"],
        flip_bit=columns["flip_bit"],
        patterns=(pattern_name,),
    )
    grouped = group_events_table(filter_intermittent_table(table).soft)
    if not grouped.n_events:
        return n_records, 0, _EMPTY_STATS, list
    stats = (
        breadth_class_fractions_table(grouped),
        mbme_breadth_histogram_table(grouped),
        byte_alignment_stats_table(grouped),
        bits_per_word_histogram_table(grouped, byte_aligned=True),
        bits_per_word_histogram_table(grouped, byte_aligned=False),
        derive_table1_table(grouped),
    )
    return n_records, grouped.n_events, stats, grouped.to_observed_events


def _finalize_reference(records: list[MismatchRecord]) -> tuple:
    from repro.beam.postprocess import (
        derive_table1,
        filter_intermittent,
        group_events,
        breadth_class_fractions,
        bits_per_word_histogram,
        byte_alignment_stats,
        mbme_breadth_histogram,
    )

    events = group_events(filter_intermittent(records).soft_records)
    if not events:
        return len(records), 0, _EMPTY_STATS, list
    stats = (
        breadth_class_fractions(events),
        mbme_breadth_histogram(events),
        byte_alignment_stats(events),
        bits_per_word_histogram(events, byte_aligned=True),
        bits_per_word_histogram(events, byte_aligned=False),
        derive_table1(events),
    )
    return len(records), len(events), stats, lambda: events


def run_statistics_campaign(
    n_events: int,
    *,
    seed: int = 2021,
    geometry: HBM2Geometry | None = None,
    parameters: EventParameters | None = None,
    pattern: str | DataPattern = "an-encoded",
    engine: str = "columnar",
    workers: int | None = None,
    chunk: int = 512,
    chunk_timeout: float | None = None,
    tracer: Tracer | None = None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
) -> StatisticsResult:
    """Generate, scan and post-process ``n_events`` ground-truth SEUs.

    Event ``i`` arrives at ``i × mean_time_to_event_s`` and owns write
    cycle ``i`` of run 0; chunk ``c`` of ``chunk`` events is seeded by
    ``SeedSequence(seed).spawn(n_chunks)[c]``, so the result is a pure
    function of ``(n_events, seed, chunk)`` — identical across engines
    and across any ``workers`` setting.

    The run reports through ``tracer`` (a fresh one when omitted): a
    ``campaign`` span wrapping per-chunk worker spans and a
    ``postprocess`` span; the finished records land in
    :attr:`StatisticsResult.trace`.  ``heartbeat``, when given, advances
    once per completed chunk.
    """
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    geometry = geometry or HBM2Geometry.for_gpu(32)
    parameters = parameters or EventParameters()
    pattern_name = pattern if isinstance(pattern, str) else pattern.name
    _pattern_by_name(pattern_name)  # validate before spawning workers

    tracer = tracer if tracer is not None else Tracer()
    trace_base = len(tracer.records)

    n_chunks = (n_events + chunk - 1) // chunk if n_events else 0
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    jobs = [
        _ChunkJob(
            index=index,
            start=index * chunk,
            size=min(chunk, n_events - index * chunk),
            seed_seq=children[index],
        )
        for index in range(n_chunks)
    ]
    if heartbeat is not None and heartbeat.total is None:
        heartbeat.total = n_chunks

    with tracer.span("campaign", engine=engine):
        tracer.count(events=n_events, chunks=n_chunks)
        results, report = _run_chunks(
            engine, geometry, parameters, pattern_name, jobs, workers,
            chunk_timeout, tracer, heartbeat, retry,
        )

        with tracer.span("postprocess"):
            if engine == "columnar":
                def _cat(key: str, dtype) -> np.ndarray:
                    parts = [results[i][0][key] for i in sorted(results)]
                    return np.concatenate(parts) if parts \
                        else np.empty(0, dtype=dtype)

                columns = {
                    "time_s": _cat("time_s", np.float64),
                    "write_cycle": _cat("write_cycle", np.int64),
                    "entry_index": _cat("entry_index", np.int64),
                    "flips_per_record": _cat("flips_per_record", np.int64),
                    "flip_bit": _cat("flip_bit", np.int64),
                }
                n_records, n_observed, stats, observed = _finalize_columnar(
                    columns, pattern_name
                )
            else:
                records = [
                    record for index in sorted(results)
                    for record in results[index][0]
                ]
                n_records, n_observed, stats, observed = \
                    _finalize_reference(records)
            tracer.count(records=n_records, observed=n_observed)
    if heartbeat is not None:
        heartbeat.close()

    trace = tracer.records[trace_base:]
    (class_fractions, mbme_histogram, byte_alignment, bits_aligned,
     bits_non_aligned, table1) = stats
    return StatisticsResult(
        engine=engine,
        n_events=n_events,
        n_records=n_records,
        n_observed=n_observed,
        class_fractions=class_fractions,
        mbme_histogram=mbme_histogram,
        byte_alignment=byte_alignment,
        bits_per_word_aligned=bits_aligned,
        bits_per_word_non_aligned=bits_non_aligned,
        table1=table1,
        stage_seconds=stage_totals(trace, _STAGES),
        trace=trace,
        pool_counters=report.counters(),
        _observed_factory=observed,
    )

"""Neutron flux and fluence accounting (Section 3).

The ChipIR beamline delivers a terrestrial-like neutron spectrum at vastly
accelerated flux.  The constants below are the paper's:

* average beam flux during the DRAM experiments: 9.8e5 neutrons/cm²/s;
* reference terrestrial flux: 14 neutrons/cm²/hour (sea level, NYC, JESD89A);
* hence an acceleration factor of ~2.52e8.

:class:`FluenceClock` tracks elapsed beam time and cumulative fluence, and
converts accelerated observations into terrestrial-equivalent rates (the
conversion behind Figure 1's HBM2 overlay point and the FIT rates used by
:mod:`repro.system`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CHIPIR_FLUX",
    "TERRESTRIAL_FLUX",
    "acceleration_factor",
    "FluenceClock",
]

#: ChipIR average flux during the DRAM experiments, neutrons/cm²/second.
CHIPIR_FLUX = 9.8e5

#: Reference terrestrial flux (JESD89A, New York City sea level),
#: neutrons/cm²/second (14 per hour).
TERRESTRIAL_FLUX = 14.0 / 3600.0

_HOURS_PER_BILLION = 1e9  # FIT = failures per 1e9 device-hours


def acceleration_factor(beam_flux: float = CHIPIR_FLUX,
                        terrestrial_flux: float = TERRESTRIAL_FLUX) -> float:
    """How much faster errors accrue in the beam than in the field."""
    return beam_flux / terrestrial_flux


@dataclass
class FluenceClock:
    """Beam-time and cumulative-fluence bookkeeping for one campaign."""

    flux: float = CHIPIR_FLUX
    elapsed_s: float = 0.0
    fluence: float = 0.0  #: neutrons/cm² accumulated so far
    in_beam: bool = True

    def advance(self, seconds: float) -> float:
        """Advance time; fluence only accrues while in the beam.

        Returns the fluence accumulated during this step.
        """
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        self.elapsed_s += seconds
        step_fluence = self.flux * seconds if self.in_beam else 0.0
        self.fluence += step_fluence
        return step_fluence

    def remove_from_beam(self) -> None:
        """Model pulling the GPU out of the beam (annealing experiments)."""
        self.in_beam = False

    def return_to_beam(self) -> None:
        self.in_beam = True

    def terrestrial_equivalent_hours(self) -> float:
        """Field hours represented by the fluence accumulated so far."""
        return self.fluence / TERRESTRIAL_FLUX / 3600.0

    def events_to_fit(self, events: int, devices: int = 1) -> float:
        """Convert an event count into a terrestrial FIT rate per device."""
        hours = self.terrestrial_equivalent_hours() * devices
        if hours == 0:
            raise ZeroDivisionError("no fluence accumulated")
        return events / hours * _HOURS_PER_BILLION

"""Beam-campaign driver: the full closed loop of Section 3.

A campaign ties together the simulated GPU memory, the ChipIR flux model,
the displacement-damage model and the SEU event generator, then runs the
DRAM microbenchmark under irradiation.  The output is exactly what a real
campaign produces — time-stamped mismatch records — plus the ground truth
(injected events and damaged cells) that lets the test-suite validate the
post-processing pipeline end to end.

Also provided are the two intermittent-error experiments of Section 4:

* :func:`refresh_sweep` — take a damaged GPU *out* of the beam and count
  observable weak cells while modulating the DRAM refresh period
  (Figure 3a/3b); and
* accumulation tracking inside :class:`BeamCampaign` — the cumulative count
  of intermittently-classified cells versus fluence (Figure 3c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.beam.displacement import DamageParameters, DisplacementDamageModel
from repro.beam.events import EventParameters, SoftErrorEvent, SoftErrorEventGenerator
from repro.beam.flux import CHIPIR_FLUX, FluenceClock
from repro.beam.microbenchmark import (
    DataPattern,
    Microbenchmark,
    MismatchRecord,
    STANDARD_PATTERNS,
)
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig
from repro.gf.gf2 import pack_rows

__all__ = ["CampaignConfig", "CampaignResult", "BeamCampaign", "refresh_sweep"]

_DATA_BITS = 256
_ENTRY_BITS = 288


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one beam-testing campaign."""

    gpu_capacity_gb: int = 32
    flux: float = CHIPIR_FLUX
    runs: int = 6  #: microbenchmark runs (patterns rotate per run)
    refresh_period_s: float = 16e-3
    seed: int = 2021
    event_parameters: EventParameters = field(default_factory=EventParameters)
    damage_parameters: DamageParameters = field(default_factory=DamageParameters)
    loop_time_s: float = 0.05
    write_cycles: int = 10
    reads_per_write: int = 20


@dataclass
class CampaignResult:
    """Everything a campaign produced, observations and ground truth."""

    records: list[MismatchRecord]
    events: list[SoftErrorEvent]  #: ground-truth injected SEUs
    clock: FluenceClock
    device: SimulatedHBM2
    damage: DisplacementDamageModel
    #: (fluence, cumulative weak-cell count) samples for Figure 3c
    accumulation_curve: list[tuple[float, int]]

    @property
    def weak_cell_count(self) -> int:
        return self.damage.damaged_count

    def fit_per_gbit(self) -> float:
        """Terrestrial FIT per Gbit derived from this campaign.

        Converts the observed SEU count through the fluence clock's
        acceleration factor and the device capacity — the calculation that
        turns a beam campaign into the 12.51 FIT/Gbit-style rates the
        system models of :mod:`repro.system` consume.
        """
        total_fit = self.clock.events_to_fit(len(self.events))
        gbits = self.device.geometry.data_bytes_total * 8 / 1e9
        return total_fit / gbits


class BeamCampaign:
    """Run the microbenchmark on a simulated GPU inside the beam."""

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()
        geometry = HBM2Geometry.for_gpu(self.config.gpu_capacity_gb)
        self.device = SimulatedHBM2(
            geometry, RefreshConfig(self.config.refresh_period_s)
        )
        self.clock = FluenceClock(flux=self.config.flux)
        self.damage = DisplacementDamageModel(
            geometry, self.config.damage_parameters, seed=self.config.seed
        )
        self.events = SoftErrorEventGenerator(
            geometry, self.config.event_parameters, seed=self.config.seed + 1
        )
        self._event_log: list[SoftErrorEvent] = []
        self._accumulation: list[tuple[float, int]] = []

    # -- environment stepping -----------------------------------------------
    def _environment(self, dt_s: float) -> None:
        """Advance the world while the benchmark runs one loop step."""
        step_fluence = self.clock.advance(dt_s)
        if step_fluence > 0.0:
            entries, bits, retentions, leaks = \
                self.damage.accumulate_columns(step_fluence)
            if entries.size:
                self.device.install_weak_cells_batch(
                    entries, bits, retentions, leaks
                )
            for event in self.events.events_in(dt_s, self.clock.elapsed_s - dt_s):
                self._apply_event(event)
        self._accumulation.append(
            (self.clock.fluence, self.damage.damaged_count)
        )

    def _apply_event(self, event: SoftErrorEvent) -> None:
        self._event_log.append(event)
        entries = np.fromiter(
            event.flips, dtype=np.int64, count=len(event.flips)
        )
        rows = np.zeros((entries.size, _ENTRY_BITS), dtype=np.uint8)
        for row, positions in zip(rows, event.flips.values()):
            row[positions] = 1
        self.device.inject_upsets_batch(entries, pack_rows(rows))

    # -- campaign ------------------------------------------------------------
    def run(
        self,
        patterns: list[DataPattern] | None = None,
        *,
        checkpoint=None,
    ) -> CampaignResult:
        """Run ``config.runs`` microbenchmark runs, rotating data patterns.

        ``checkpoint`` (e.g. :class:`repro.runs.CampaignCheckpoint`, or any
        object with ``record_run(run_index, records, clock)``) is notified
        after each completed run, so an interrupted campaign leaves an
        append-only progress log behind.
        """
        patterns = patterns or STANDARD_PATTERNS()
        benchmark = Microbenchmark(
            self.device,
            write_cycles=self.config.write_cycles,
            reads_per_write=self.config.reads_per_write,
            loop_time_s=self.config.loop_time_s,
        )
        records: list[MismatchRecord] = []
        for run_index in range(self.config.runs):
            pattern = patterns[run_index % len(patterns)]
            records.extend(
                benchmark.run(
                    pattern,
                    run_index=run_index,
                    start_time_s=self.clock.elapsed_s,
                    environment=self._environment,
                )
            )
            if checkpoint is not None:
                checkpoint.record_run(run_index, records, self.clock)
        return CampaignResult(
            records=records,
            events=list(self._event_log),
            clock=self.clock,
            device=self.device,
            damage=self.damage,
            accumulation_curve=list(self._accumulation),
        )


def refresh_sweep(
    damage: DisplacementDamageModel,
    periods_s: list[float],
) -> dict[float, int]:
    """The Figure 3a experiment: observable weak cells per refresh period.

    Run *outside* the beam on an already-damaged model (the paper pulls one
    GPU out of the beam and modulates refresh through a modified BIOS).
    """
    counts = damage.observable_counts(periods_s)
    return {
        period: int(count) for period, count in zip(periods_s, counts)
    }

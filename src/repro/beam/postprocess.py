"""Post-processing of beam-campaign logs (Sections 4 and 5).

This is the analysis half of the methodology — the code a real campaign
would run over its mismatch logs:

1. **Intermittent-error filtering.**  Displacement-damaged cells produce
   isolated single-bit errors that *recur across write cycles* (a soft
   error is cleared by the next write; a weak cell leaks again).  Any entry
   with errors in two or more distinct write cycles is classified as
   damaged and every record it produced is excluded.  The paper notes the
   filter is safe because weak cells are so sparse (roughly a thousand in
   32GB) that overlap with a broad soft error is vanishingly unlikely.
2. **Event grouping.**  Mean-time-to-event is seconds while a read pass
   takes milliseconds, so all first-observations sharing one (run, write
   cycle, read pass) belong to one SEU.
3. **Statistics.**  Breadth/severity classes (Figure 4a), MBME breadth
   histogram (Figure 4b), byte-alignment and words-per-entry (Figure 4c),
   bits-per-word severity (Figure 5), and the Table-1 pattern probabilities
   via :func:`repro.errormodel.classify.classify_error`.

Observed flips are data-bit offsets (0-255); for Table-1 classification
they are mapped onto transmitted coordinates using the non-interleaved
layout (data bit ``d`` rides pin ``d % 64`` in beat ``d // 64``).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.beam.events import BITS_PER_WORD, WORDS_PER_ENTRY, EventClass
from repro.beam.microbenchmark import MismatchRecord
from repro.core.layout import ENTRY_BITS, NUM_PINS
from repro.errormodel.classify import classify_error
from repro.errormodel.patterns import ErrorPattern
from repro.stats.table1 import table1_tally, table1_weights

__all__ = [
    "FilterResult",
    "filter_intermittent",
    "ObservedEvent",
    "group_events",
    "breadth_class_fractions",
    "mbme_breadth_histogram",
    "byte_alignment_stats",
    "bits_per_word_histogram",
    "derive_table1",
    "FilterTableResult",
    "filter_intermittent_table",
    "group_events_table",
    "events_from_truth_table",
    "observed_class_codes",
    "breadth_class_fractions_table",
    "mbme_breadth_histogram_table",
    "byte_alignment_stats_table",
    "bits_per_word_histogram_table",
    "derive_table1_table",
]


# --------------------------------------------------------------------------
# 1. Intermittent-error filtering
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FilterResult:
    """Soft-error records, intermittent records, and damaged entry set."""

    soft_records: list[MismatchRecord]
    intermittent_records: list[MismatchRecord]
    damaged_entries: frozenset[int]


def filter_intermittent(records: list[MismatchRecord],
                        min_cycles: int = 2) -> FilterResult:
    """Split records into soft errors and displacement-damage artifacts.

    An entry observed erroneous in ``min_cycles`` or more distinct write
    cycles (across all runs and patterns) is damaged; all its records are
    intermittent.
    """
    cycles_seen: dict[int, set[tuple[int, int]]] = defaultdict(set)
    for record in records:
        cycles_seen[record.entry_index].add((record.run, record.write_cycle))
    damaged = frozenset(
        entry for entry, cycles in cycles_seen.items() if len(cycles) >= min_cycles
    )
    soft = [r for r in records if r.entry_index not in damaged]
    intermittent = [r for r in records if r.entry_index in damaged]
    return FilterResult(soft, intermittent, damaged)


# --------------------------------------------------------------------------
# 2. Event grouping
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ObservedEvent:
    """One reconstructed SEU: per-entry data-bit flip positions."""

    run: int
    write_cycle: int
    read_pass: int
    flips: dict[int, tuple[int, ...]]

    @property
    def breadth(self) -> int:
        return len(self.flips)

    @property
    def total_bits(self) -> int:
        return sum(len(positions) for positions in self.flips.values())

    def event_class(self) -> EventClass:
        """Figure 4a breadth/severity class."""
        multi_entry = self.breadth > 1
        multi_bit = any(len(positions) > 1 for positions in self.flips.values())
        if multi_bit:
            return EventClass.MBME if multi_entry else EventClass.MBSE
        return EventClass.SBME if multi_entry else EventClass.SBSE

    # -- severity helpers ---------------------------------------------------
    def words_of(self, positions: tuple[int, ...]) -> dict[int, list[int]]:
        """Group one entry's flips by 64b word (word -> within-word bits)."""
        grouped: dict[int, list[int]] = defaultdict(list)
        for position in positions:
            grouped[position // BITS_PER_WORD].append(position % BITS_PER_WORD)
        return dict(grouped)

    def is_byte_aligned(self) -> bool:
        """True when every affected word's flips share one aligned byte."""
        for positions in self.flips.values():
            for bits in self.words_of(positions).values():
                if len({bit // 8 for bit in bits}) != 1:
                    return False
        return True


def group_events(soft_records: list[MismatchRecord]) -> list[ObservedEvent]:
    """Reconstruct SEU events from filtered mismatch records.

    Soft errors persist until the next write, so the same corruption is
    re-observed on every later read pass of its write cycle; only the
    *first* observation of each (entry, cycle) carries timing information,
    and first-observations sharing a read pass form one event.
    """
    first_seen: dict[tuple[int, int, int], MismatchRecord] = {}
    for record in sorted(soft_records, key=lambda r: r.time_s):
        key = (record.run, record.write_cycle, record.entry_index)
        if key not in first_seen:
            first_seen[key] = record

    grouped: dict[tuple[int, int, int], dict[int, tuple[int, ...]]] = defaultdict(dict)
    for record in first_seen.values():
        event_key = (record.run, record.write_cycle, record.read_pass)
        grouped[event_key][record.entry_index] = record.bit_positions

    return [
        ObservedEvent(run=run, write_cycle=cycle, read_pass=read_pass, flips=flips)
        for (run, cycle, read_pass), flips in sorted(grouped.items())
    ]


# --------------------------------------------------------------------------
# 3. Statistics — Figures 4 and 5, Table 1
# --------------------------------------------------------------------------

def events_from_truth(true_events) -> list[ObservedEvent]:
    """Convert ground-truth :class:`~repro.beam.events.SoftErrorEvent`
    objects into :class:`ObservedEvent` records.

    For statistics-scale runs (thousands of events for Figure 4/5 and
    Table 1) driving the full device/microbenchmark loop adds nothing but
    time; the conversion lets the analysis functions below run directly on
    generator output.  The full observation path (device, scanning,
    intermittent filtering, event grouping) is exercised by smaller
    campaigns in the test-suite.
    """
    observed = []
    for index, event in enumerate(true_events):
        observed.append(
            ObservedEvent(
                run=0,
                write_cycle=0,
                read_pass=index,
                flips={
                    entry: tuple(int(b) for b in positions)
                    for entry, positions in event.flips.items()
                },
            )
        )
    return observed


def breadth_class_fractions(events: list[ObservedEvent]) -> dict[EventClass, float]:
    """Figure 4a: the SBSE/SBME/MBSE/MBME mixture."""
    if not events:
        raise ValueError("no events to classify")
    counts = Counter(event.event_class() for event in events)
    return {klass: counts.get(klass, 0) / len(events) for klass in EventClass}


def mbme_breadth_histogram(events: list[ObservedEvent]) -> dict[str, int]:
    """Figure 4b: MBME breadth in exponentially-sized bins."""
    histogram: dict[str, int] = {}
    edges = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
    labels = [f"{low}-{high - 1}" for low, high in zip(edges[:-1], edges[1:])]
    counts = [0] * len(labels)
    for event in events:
        if event.event_class() is not EventClass.MBME:
            continue
        for index, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
            if low <= event.breadth < high:
                counts[index] += 1
                break
    for label, count in zip(labels, counts):
        histogram[label] = count
    return histogram


def byte_alignment_stats(events: list[ObservedEvent]) -> dict[str, float]:
    """Figure 4c: byte-aligned fraction and words-affected-per-entry."""
    multi_bit = [
        event
        for event in events
        if event.event_class() in (EventClass.MBSE, EventClass.MBME)
    ]
    if not multi_bit:
        raise ValueError("no multi-bit events observed")
    aligned = [event for event in multi_bit if event.is_byte_aligned()]

    def words_histogram(subset: list[ObservedEvent]) -> dict[int, float]:
        counts: Counter[int] = Counter()
        total = 0
        for event in subset:
            for positions in event.flips.values():
                counts[len(event.words_of(positions))] += 1
                total += 1
        return {
            words: counts.get(words, 0) / total
            for words in range(1, WORDS_PER_ENTRY + 1)
        }

    non_aligned = [event for event in multi_bit if not event.is_byte_aligned()]
    stats: dict[str, float] = {
        "byte_aligned_fraction": len(aligned) / len(multi_bit),
    }
    if aligned:
        for words, fraction in words_histogram(aligned).items():
            stats[f"aligned_words_{words}"] = fraction
    if non_aligned:
        for words, fraction in words_histogram(non_aligned).items():
            stats[f"non_aligned_words_{words}"] = fraction
    return stats


def bits_per_word_histogram(events: list[ObservedEvent], *,
                            byte_aligned: bool) -> dict[int, float]:
    """Figure 5: bits flipped per erroneous 64b word, multi-bit events only."""
    counts: Counter[int] = Counter()
    total = 0
    for event in events:
        if event.event_class() not in (EventClass.MBSE, EventClass.MBME):
            continue
        if event.is_byte_aligned() != byte_aligned:
            continue
        for positions in event.flips.values():
            for bits in event.words_of(positions).values():
                counts[len(bits)] += 1
                total += 1
    if total == 0:
        return {}
    return {severity: count / total for severity, count in sorted(counts.items())}


def _data_flips_to_entry_error(positions: tuple[int, ...]) -> np.ndarray:
    """Map data-bit offsets (0-255) to a 288-bit transmitted error vector
    using the non-interleaved layout: data bit d -> beat d//64, pin d%64."""
    error = np.zeros(ENTRY_BITS, dtype=np.uint8)
    for position in positions:
        beat, pin = divmod(position, BITS_PER_WORD)
        error[beat * NUM_PINS + pin] = 1
    return error


def derive_table1(events: list[ObservedEvent]) -> dict[ErrorPattern, float]:
    """Table 1: per-event pattern probabilities.

    Figure 8 weights outcomes "given a random single event", so each event
    contributes total weight 1; a broad event whose entries show a mix of
    per-entry patterns spreads its weight across them.  (Weighting per
    *entry* instead would let a single thousand-entry MBME event dominate
    the distribution.)

    The float weights are computed by the canonical tally → weight helper
    of :mod:`repro.stats.table1`: this loop only counts sites by
    ``(pattern, breadth)`` — integers, order-independent — so the scalar,
    columnar and streaming paths are bit-identical for any event ordering
    or range split.
    """
    if not events:
        raise ValueError("no events to classify")
    from repro.errormodel.classify import PATTERN_ORDER as _order

    code_of = {pattern: code for code, pattern in enumerate(_order)}
    tally: Counter = Counter()
    for event in events:
        for positions in event.flips.values():
            pattern = classify_error(_data_flips_to_entry_error(positions))
            tally[(code_of[pattern], event.breadth)] += 1
    return table1_weights(tally)


# --------------------------------------------------------------------------
# 4. Columnar pipeline — the same analyses over flat tables
# --------------------------------------------------------------------------
#
# Each ``*_table`` function below reproduces its scalar namesake exactly
# (same partitions, same fractions, same floating-point accumulation
# order); the scalar paths remain the oracles the equivalence suite checks
# against.

from repro.beam.fliptable import FlipTable, RecordTable  # noqa: E402
from repro.errormodel.classify import PATTERN_ORDER  # noqa: E402


@dataclass(frozen=True)
class FilterTableResult:
    """Columnar mirror of :class:`FilterResult`."""

    soft: RecordTable
    intermittent: RecordTable
    damaged_entries: np.ndarray  #: sorted int64 damaged entry indices

    def to_filter_result(self) -> FilterResult:
        return FilterResult(
            soft_records=self.soft.to_records(),
            intermittent_records=self.intermittent.to_records(),
            damaged_entries=frozenset(
                int(e) for e in self.damaged_entries
            ),
        )


def filter_intermittent_table(table: RecordTable,
                              min_cycles: int = 2) -> FilterTableResult:
    """Vectorized :func:`filter_intermittent` over a :class:`RecordTable`.

    Distinct ``(run, write_cycle)`` pairs per entry are counted with one
    lexsort instead of a dict of sets; both partitions preserve record
    order, like the scalar filter's list comprehensions.
    """
    if not table.n_records:
        return FilterTableResult(
            soft=table, intermittent=table.select(np.zeros(0, dtype=bool)),
            damaged_entries=np.empty(0, dtype=np.int64),
        )
    order = np.lexsort((table.write_cycle, table.run, table.entry_index))
    entry = table.entry_index[order]
    run = table.run[order]
    cycle = table.write_cycle[order]
    new_pair = np.r_[True, (np.diff(entry) != 0) | (np.diff(run) != 0)
                     | (np.diff(cycle) != 0)]
    unique_entries, inverse = np.unique(entry, return_inverse=True)
    pairs_per_entry = np.bincount(inverse[new_pair],
                                  minlength=unique_entries.size)
    damaged = unique_entries[pairs_per_entry >= min_cycles]
    if damaged.size:
        position = np.minimum(
            np.searchsorted(damaged, table.entry_index), damaged.size - 1
        )
        is_damaged = damaged[position] == table.entry_index
    else:
        is_damaged = np.zeros(table.n_records, dtype=bool)
    return FilterTableResult(
        soft=table.select(~is_damaged),
        intermittent=table.select(is_damaged),
        damaged_entries=damaged,
    )


def group_events_table(soft: RecordTable) -> FlipTable:
    """Vectorized :func:`group_events`: a :class:`FlipTable` of observed
    events with ``run``/``write_cycle``/``read_pass`` columns.

    Events are ordered by ``(run, write_cycle, read_pass)`` and each
    event's sites by first-observation time — exactly the scalar
    grouper's sort order and dict-insertion order.
    """
    if not soft.n_records:
        return FlipTable.from_flips(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.int64), np.empty(0, np.int64),
            n_events=0,
            event_columns={
                "run": np.empty(0, np.int64),
                "write_cycle": np.empty(0, np.int64),
                "read_pass": np.empty(0, np.int64),
            },
        )
    # first observation of each (run, cycle, entry), earliest time winning
    # ties by record order (the scalar path's stable sorted() + dict)
    time_order = np.argsort(soft.time_s, kind="stable")
    time_rank = np.empty(soft.n_records, dtype=np.int64)
    time_rank[time_order] = np.arange(soft.n_records)
    by_key = np.lexsort((
        time_rank, soft.entry_index, soft.write_cycle, soft.run
    ))
    first_of_key = np.r_[
        True,
        (np.diff(soft.run[by_key]) != 0)
        | (np.diff(soft.write_cycle[by_key]) != 0)
        | (np.diff(soft.entry_index[by_key]) != 0),
    ]
    kept = by_key[first_of_key]

    # group kept records into events by (run, cycle, read pass), sites in
    # first-seen time order within each event
    by_event = np.lexsort((
        time_rank[kept], soft.read_pass[kept],
        soft.write_cycle[kept], soft.run[kept],
    ))
    rows = kept[by_event]
    run = soft.run[rows]
    cycle = soft.write_cycle[rows]
    read_pass = soft.read_pass[rows]
    new_event = np.r_[True, (np.diff(run) != 0) | (np.diff(cycle) != 0)
                      | (np.diff(read_pass) != 0)]
    site_event = np.cumsum(new_event) - 1
    n_events = int(site_event[-1]) + 1

    counts = soft.flips_per_record()[rows]
    starts = soft.flip_start[rows]
    flat = np.repeat(starts, counts) + (
        np.arange(int(counts.sum())) - np.repeat(
            np.r_[0, np.cumsum(counts)[:-1]], counts
        )
    )
    return FlipTable.from_flips(
        site_event, soft.entry_index[rows], counts, soft.flip_bit[flat],
        n_events=n_events,
        event_columns={
            "run": run[new_event],
            "write_cycle": cycle[new_event],
            "read_pass": read_pass[new_event],
        },
    )


def events_from_truth_table(truth: FlipTable) -> FlipTable:
    """Columnar :func:`events_from_truth`: relabel a ground-truth table
    with the observed-event columns (run 0, cycle 0, pass = index)."""
    n = truth.n_events
    return FlipTable(
        n_events=n,
        site_event=truth.site_event,
        site_entry=truth.site_entry,
        site_flip_start=truth.site_flip_start,
        flip_bit=truth.flip_bit,
        event_columns={
            "run": np.zeros(n, dtype=np.int64),
            "write_cycle": np.zeros(n, dtype=np.int64),
            "read_pass": np.arange(n, dtype=np.int64),
        },
    )


def observed_class_codes(table: FlipTable) -> np.ndarray:
    """Structural Figure 4a class of each event, as indices into
    ``list(EventClass)`` (SBSE 0, SBME 1, MBSE 2, MBME 3)."""
    return _table_cached(table, "class_codes", _observed_class_codes_uncached)


def _observed_class_codes_uncached(table: FlipTable) -> np.ndarray:
    multi_entry = table.breadths() > 1
    site_multibit = table.flips_per_site() > 1
    multibit_sites = np.bincount(
        table.site_event[site_multibit], minlength=table.n_events
    )
    return 2 * (multibit_sites > 0).astype(np.int64) \
        + multi_entry.astype(np.int64)


def _table_cached(table: FlipTable, key: str, compute):
    """Memoize a derived product on the (build-once) table instance; the
    Figure 4/5 statistics all start from the same segment decomposition."""
    cache = getattr(table, "_derived_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(table, "_derived_cache", cache)
    if key not in cache:
        cache[key] = compute(table)
    return cache[key]


def _flip_site_ids(table: FlipTable) -> np.ndarray:
    """:meth:`FlipTable.site_of_flip` in the narrowest safe integer
    width, cached — the segment and Table-1 passes share one (F,)-sized
    gather instead of re-materializing an int64 copy each."""
    return _table_cached(table, "flip_site_ids", _flip_site_ids_uncached)


def _flip_site_ids_uncached(table: FlipTable) -> np.ndarray:
    dtype = np.int64 if table.n_sites > np.iinfo(np.int32).max else np.int32
    return np.repeat(
        np.arange(table.n_sites, dtype=dtype), table.flips_per_site()
    )


def _flip_bits16(table: FlipTable) -> np.ndarray:
    """``flip_bit`` as int16 (values < ENTRY_BITS always fit), cached.
    A no-op view for shm-built tables, a one-time narrowing copy for the
    int64 columnar/scalar ones — all the kernels below run on it so the
    big per-flip temporaries shrink 4x."""
    return _table_cached(
        table, "flip_bits16",
        lambda t: t.flip_bit.astype(np.int16, copy=False),
    )


def _word_segments(table: FlipTable
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-(site, word) flip segments: ``(seg_site, seg_len, seg_aligned)``.

    Flip bits are sorted within each site, so a site's words form
    contiguous runs and a segment is byte-aligned exactly when its first
    and last flips land in the same aligned byte.
    """
    return _table_cached(table, "segments", _word_segments_uncached)


def _word_segments_uncached(table: FlipTable
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    n_flips = table.n_flips
    if not n_flips:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=bool)
    bits = _flip_bits16(table)
    word = bits >> 6
    new_segment = np.empty(n_flips, dtype=bool)
    new_segment[0] = True
    np.not_equal(word[1:], word[:-1], out=new_segment[1:])
    del word
    # Site boundaries open segments too.  The CSR offsets name them
    # directly — no (F,)-sized site-diff needed; an empty site collapses
    # onto its successor's first flip, which is a boundary anyway, and
    # trailing empty sites (offset == n_flips) are masked off.
    inner = table.site_flip_start[1:-1]
    new_segment[inner[inner < n_flips]] = True
    seg_start = np.flatnonzero(new_segment)
    seg_end = np.r_[seg_start[1:], n_flips]
    seg_site = _flip_site_ids(table)[seg_start]
    return seg_site, seg_end - seg_start, \
        ((bits[seg_start] >> 3) & 7) == ((bits[seg_end - 1] >> 3) & 7)


def _site_alignment(table: FlipTable
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-site (words affected, byte-aligned) plus per-event alignment."""
    return _table_cached(table, "alignment", _site_alignment_uncached)


def _site_alignment_uncached(table: FlipTable
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    seg_site, _, seg_aligned = _word_segments(table)
    words_per_site = np.bincount(seg_site, minlength=table.n_sites)
    misaligned_segments = np.bincount(
        seg_site[~seg_aligned], minlength=table.n_sites
    )
    site_aligned = misaligned_segments == 0
    misaligned_sites = np.bincount(
        table.site_event[~site_aligned], minlength=table.n_events
    )
    return words_per_site, site_aligned, misaligned_sites == 0


def breadth_class_fractions_table(table: FlipTable
                                  ) -> dict[EventClass, float]:
    """Columnar :func:`breadth_class_fractions` (Figure 4a)."""
    if not table.n_events:
        raise ValueError("no events to classify")
    counts = np.bincount(observed_class_codes(table), minlength=4)
    return {
        klass: int(count) / table.n_events
        for klass, count in zip(EventClass, counts)
    }


_MBME_EDGES = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


def mbme_breadth_histogram_table(table: FlipTable) -> dict[str, int]:
    """Columnar :func:`mbme_breadth_histogram` (Figure 4b)."""
    edges = np.asarray(_MBME_EDGES)
    breadth = table.breadths()[observed_class_codes(table) == 3]
    breadth = breadth[(breadth >= edges[0]) & (breadth < edges[-1])]
    bins = np.searchsorted(edges, breadth, side="right") - 1
    counts = np.bincount(bins, minlength=edges.size - 1)
    return {
        f"{low}-{high - 1}": int(count)
        for low, high, count in zip(edges[:-1], edges[1:], counts)
    }


def byte_alignment_stats_table(table: FlipTable) -> dict[str, float]:
    """Columnar :func:`byte_alignment_stats` (Figure 4c)."""
    codes = observed_class_codes(table)
    multibit_event = codes >= 2
    n_multibit = int(multibit_event.sum())
    if not n_multibit:
        raise ValueError("no multi-bit events observed")
    words_per_site, _, event_aligned = _site_alignment(table)
    n_aligned = int((multibit_event & event_aligned).sum())

    stats: dict[str, float] = {
        "byte_aligned_fraction": n_aligned / n_multibit,
    }
    site_words = words_per_site  # (n_sites,)
    for label, event_mask in (
        ("aligned", multibit_event & event_aligned),
        ("non_aligned", multibit_event & ~event_aligned),
    ):
        site_mask = event_mask[table.site_event]
        total = int(site_mask.sum())
        if not total:
            continue
        counts = np.bincount(site_words[site_mask],
                             minlength=WORDS_PER_ENTRY + 1)
        for words in range(1, WORDS_PER_ENTRY + 1):
            stats[f"{label}_words_{words}"] = int(counts[words]) / total
    return stats


def bits_per_word_histogram_table(table: FlipTable, *,
                                  byte_aligned: bool) -> dict[int, float]:
    """Columnar :func:`bits_per_word_histogram` (Figure 5)."""
    codes = observed_class_codes(table)
    _, _, event_aligned = _site_alignment(table)
    event_mask = (codes >= 2) & (event_aligned == byte_aligned)
    seg_site, seg_len, _ = _word_segments(table)
    keep = event_mask[table.site_event[seg_site]]
    lengths = seg_len[keep]
    if not lengths.size:
        return {}
    counts = np.bincount(lengths)
    total = int(lengths.size)
    return {
        int(severity): int(count) / total
        for severity, count in enumerate(counts) if count
    }


def derive_table1_table(table: FlipTable,
                        chunk: int = 8192) -> dict[ErrorPattern, float]:
    """Columnar :func:`derive_table1`: per-site pattern codes via the
    segment kernels, then the canonical integer ``(pattern, breadth)``
    tally of :mod:`repro.stats.table1`.

    Because both paths (and the streaming accumulator) reduce to the same
    integer tally before any float is touched, the result is bit-identical
    to :func:`derive_table1` — and invariant under any chunk/range
    partition of the same events.
    """
    if not table.n_events:
        raise ValueError("no events to classify")
    codes = table1_site_codes(table, chunk=chunk)
    return table1_weights(table1_tally(
        codes, table.breadths()[table.site_event]
    ))


def table1_site_codes(table: FlipTable, chunk: int = 8192) -> np.ndarray:
    """Table-1 pattern code of each site's transmitted error vector.

    Classifies straight off the per-site flip lists: "all flips share one
    pin/byte/beat" is a per-segment check on the group ids, so no dense
    ``(chunk, 288)`` error matrices are materialized (``chunk`` is kept
    for API compatibility).  Codes are identical to pushing each
    site's dense vector through
    :func:`repro.errormodel.classify.classify_error_codes_batch` — the
    priority chain below is that function's, applied to the same
    predicates — which the equivalence tests pin against the scalar
    :func:`repro.errormodel.classify.classify_error`.
    """
    n_sites = table.n_sites
    if not n_sites:
        return np.empty(0, dtype=np.int64)
    counts = np.diff(table.site_flip_start)
    if np.any(counts == 0):
        raise ValueError("cannot classify all-zero errors")
    site = _flip_site_ids(table)
    bits = _flip_bits16(table)
    # weights count *distinct* bits, like the dense vector's popcount
    # (flips are sorted within a site, so duplicates are adjacent); an
    # adjacent equal pair can only straddle sites at a site's first flip,
    # so clearing the CSR starts replaces the (F,)-sized site compare
    duplicate = np.zeros(site.size, dtype=bool)
    np.equal(bits[1:], bits[:-1], out=duplicate[1:])
    duplicate[table.site_flip_start[1:-1]] = False
    weights = counts - np.bincount(site[duplicate], minlength=n_sites)
    del duplicate

    first = table.site_flip_start[:-1]
    last = table.site_flip_start[1:] - 1

    # Data bit ``d`` is transmitted as ``beat_of = d >> 6`` on pin
    # ``pin_of = d & 63`` (< NUM_PINS), so the layout group ids reduce to
    # shifts — same ids ``pin_of``/``byte_of``/``beat_of`` return for
    # ``transmitted = (d >> 6) * NUM_PINS + (d & 63)``.  The beat and byte
    # ids are non-decreasing in ``d`` and flips are sorted within a site,
    # so "all in one group" is just first == last per segment; pin ids are
    # not monotone, so that one compares every flip to its segment's first.
    pins = bits & (BITS_PER_WORD - 1)
    bit_first, bit_last = bits[first], bits[last]
    off_pin = pins != np.repeat(pins[first], counts)
    one_pin = np.bincount(site[off_pin], minlength=n_sites) == 0
    del off_pin, pins
    one_byte = (
        (bit_first >> 6) * (NUM_PINS // 8) + ((bit_first & 63) >> 3)
        == (bit_last >> 6) * (NUM_PINS // 8) + ((bit_last & 63) >> 3)
    )
    one_beat = (bit_first >> 6) == (bit_last >> 6)

    order = {pattern: code for code, pattern in enumerate(PATTERN_ORDER)}
    codes = np.full(n_sites, order[ErrorPattern.ENTRY], dtype=np.int64)
    codes[one_beat] = order[ErrorPattern.BEAT]
    codes[(weights == 3) & ~one_pin & ~one_byte] = \
        order[ErrorPattern.TRIPLE_BIT]
    codes[(weights == 2) & ~one_pin & ~one_byte] = \
        order[ErrorPattern.DOUBLE_BIT]
    codes[one_byte & (weights >= 2)] = order[ErrorPattern.BYTE]
    codes[one_pin & (weights >= 2)] = order[ErrorPattern.PIN]
    codes[weights == 1] = order[ErrorPattern.BIT]
    return codes

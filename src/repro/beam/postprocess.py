"""Post-processing of beam-campaign logs (Sections 4 and 5).

This is the analysis half of the methodology — the code a real campaign
would run over its mismatch logs:

1. **Intermittent-error filtering.**  Displacement-damaged cells produce
   isolated single-bit errors that *recur across write cycles* (a soft
   error is cleared by the next write; a weak cell leaks again).  Any entry
   with errors in two or more distinct write cycles is classified as
   damaged and every record it produced is excluded.  The paper notes the
   filter is safe because weak cells are so sparse (roughly a thousand in
   32GB) that overlap with a broad soft error is vanishingly unlikely.
2. **Event grouping.**  Mean-time-to-event is seconds while a read pass
   takes milliseconds, so all first-observations sharing one (run, write
   cycle, read pass) belong to one SEU.
3. **Statistics.**  Breadth/severity classes (Figure 4a), MBME breadth
   histogram (Figure 4b), byte-alignment and words-per-entry (Figure 4c),
   bits-per-word severity (Figure 5), and the Table-1 pattern probabilities
   via :func:`repro.errormodel.classify.classify_error`.

Observed flips are data-bit offsets (0-255); for Table-1 classification
they are mapped onto transmitted coordinates using the non-interleaved
layout (data bit ``d`` rides pin ``d % 64`` in beat ``d // 64``).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.beam.events import BITS_PER_WORD, WORDS_PER_ENTRY, EventClass
from repro.beam.microbenchmark import MismatchRecord
from repro.core.layout import ENTRY_BITS, NUM_PINS
from repro.errormodel.classify import classify_error
from repro.errormodel.patterns import ErrorPattern

__all__ = [
    "FilterResult",
    "filter_intermittent",
    "ObservedEvent",
    "group_events",
    "breadth_class_fractions",
    "mbme_breadth_histogram",
    "byte_alignment_stats",
    "bits_per_word_histogram",
    "derive_table1",
]


# --------------------------------------------------------------------------
# 1. Intermittent-error filtering
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FilterResult:
    """Soft-error records, intermittent records, and damaged entry set."""

    soft_records: list[MismatchRecord]
    intermittent_records: list[MismatchRecord]
    damaged_entries: frozenset[int]


def filter_intermittent(records: list[MismatchRecord],
                        min_cycles: int = 2) -> FilterResult:
    """Split records into soft errors and displacement-damage artifacts.

    An entry observed erroneous in ``min_cycles`` or more distinct write
    cycles (across all runs and patterns) is damaged; all its records are
    intermittent.
    """
    cycles_seen: dict[int, set[tuple[int, int]]] = defaultdict(set)
    for record in records:
        cycles_seen[record.entry_index].add((record.run, record.write_cycle))
    damaged = frozenset(
        entry for entry, cycles in cycles_seen.items() if len(cycles) >= min_cycles
    )
    soft = [r for r in records if r.entry_index not in damaged]
    intermittent = [r for r in records if r.entry_index in damaged]
    return FilterResult(soft, intermittent, damaged)


# --------------------------------------------------------------------------
# 2. Event grouping
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ObservedEvent:
    """One reconstructed SEU: per-entry data-bit flip positions."""

    run: int
    write_cycle: int
    read_pass: int
    flips: dict[int, tuple[int, ...]]

    @property
    def breadth(self) -> int:
        return len(self.flips)

    @property
    def total_bits(self) -> int:
        return sum(len(positions) for positions in self.flips.values())

    def event_class(self) -> EventClass:
        """Figure 4a breadth/severity class."""
        multi_entry = self.breadth > 1
        multi_bit = any(len(positions) > 1 for positions in self.flips.values())
        if multi_bit:
            return EventClass.MBME if multi_entry else EventClass.MBSE
        return EventClass.SBME if multi_entry else EventClass.SBSE

    # -- severity helpers ---------------------------------------------------
    def words_of(self, positions: tuple[int, ...]) -> dict[int, list[int]]:
        """Group one entry's flips by 64b word (word -> within-word bits)."""
        grouped: dict[int, list[int]] = defaultdict(list)
        for position in positions:
            grouped[position // BITS_PER_WORD].append(position % BITS_PER_WORD)
        return dict(grouped)

    def is_byte_aligned(self) -> bool:
        """True when every affected word's flips share one aligned byte."""
        for positions in self.flips.values():
            for bits in self.words_of(positions).values():
                if len({bit // 8 for bit in bits}) != 1:
                    return False
        return True


def group_events(soft_records: list[MismatchRecord]) -> list[ObservedEvent]:
    """Reconstruct SEU events from filtered mismatch records.

    Soft errors persist until the next write, so the same corruption is
    re-observed on every later read pass of its write cycle; only the
    *first* observation of each (entry, cycle) carries timing information,
    and first-observations sharing a read pass form one event.
    """
    first_seen: dict[tuple[int, int, int], MismatchRecord] = {}
    for record in sorted(soft_records, key=lambda r: r.time_s):
        key = (record.run, record.write_cycle, record.entry_index)
        if key not in first_seen:
            first_seen[key] = record

    grouped: dict[tuple[int, int, int], dict[int, tuple[int, ...]]] = defaultdict(dict)
    for record in first_seen.values():
        event_key = (record.run, record.write_cycle, record.read_pass)
        grouped[event_key][record.entry_index] = record.bit_positions

    return [
        ObservedEvent(run=run, write_cycle=cycle, read_pass=read_pass, flips=flips)
        for (run, cycle, read_pass), flips in sorted(grouped.items())
    ]


# --------------------------------------------------------------------------
# 3. Statistics — Figures 4 and 5, Table 1
# --------------------------------------------------------------------------

def events_from_truth(true_events) -> list[ObservedEvent]:
    """Convert ground-truth :class:`~repro.beam.events.SoftErrorEvent`
    objects into :class:`ObservedEvent` records.

    For statistics-scale runs (thousands of events for Figure 4/5 and
    Table 1) driving the full device/microbenchmark loop adds nothing but
    time; the conversion lets the analysis functions below run directly on
    generator output.  The full observation path (device, scanning,
    intermittent filtering, event grouping) is exercised by smaller
    campaigns in the test-suite.
    """
    observed = []
    for index, event in enumerate(true_events):
        observed.append(
            ObservedEvent(
                run=0,
                write_cycle=0,
                read_pass=index,
                flips={
                    entry: tuple(int(b) for b in positions)
                    for entry, positions in event.flips.items()
                },
            )
        )
    return observed


def breadth_class_fractions(events: list[ObservedEvent]) -> dict[EventClass, float]:
    """Figure 4a: the SBSE/SBME/MBSE/MBME mixture."""
    if not events:
        raise ValueError("no events to classify")
    counts = Counter(event.event_class() for event in events)
    return {klass: counts.get(klass, 0) / len(events) for klass in EventClass}


def mbme_breadth_histogram(events: list[ObservedEvent]) -> dict[str, int]:
    """Figure 4b: MBME breadth in exponentially-sized bins."""
    histogram: dict[str, int] = {}
    edges = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
    labels = [f"{low}-{high - 1}" for low, high in zip(edges[:-1], edges[1:])]
    counts = [0] * len(labels)
    for event in events:
        if event.event_class() is not EventClass.MBME:
            continue
        for index, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
            if low <= event.breadth < high:
                counts[index] += 1
                break
    for label, count in zip(labels, counts):
        histogram[label] = count
    return histogram


def byte_alignment_stats(events: list[ObservedEvent]) -> dict[str, float]:
    """Figure 4c: byte-aligned fraction and words-affected-per-entry."""
    multi_bit = [
        event
        for event in events
        if event.event_class() in (EventClass.MBSE, EventClass.MBME)
    ]
    if not multi_bit:
        raise ValueError("no multi-bit events observed")
    aligned = [event for event in multi_bit if event.is_byte_aligned()]

    def words_histogram(subset: list[ObservedEvent]) -> dict[int, float]:
        counts: Counter[int] = Counter()
        total = 0
        for event in subset:
            for positions in event.flips.values():
                counts[len(event.words_of(positions))] += 1
                total += 1
        return {
            words: counts.get(words, 0) / total
            for words in range(1, WORDS_PER_ENTRY + 1)
        }

    non_aligned = [event for event in multi_bit if not event.is_byte_aligned()]
    stats: dict[str, float] = {
        "byte_aligned_fraction": len(aligned) / len(multi_bit),
    }
    if aligned:
        for words, fraction in words_histogram(aligned).items():
            stats[f"aligned_words_{words}"] = fraction
    if non_aligned:
        for words, fraction in words_histogram(non_aligned).items():
            stats[f"non_aligned_words_{words}"] = fraction
    return stats


def bits_per_word_histogram(events: list[ObservedEvent], *,
                            byte_aligned: bool) -> dict[int, float]:
    """Figure 5: bits flipped per erroneous 64b word, multi-bit events only."""
    counts: Counter[int] = Counter()
    total = 0
    for event in events:
        if event.event_class() not in (EventClass.MBSE, EventClass.MBME):
            continue
        if event.is_byte_aligned() != byte_aligned:
            continue
        for positions in event.flips.values():
            for bits in event.words_of(positions).values():
                counts[len(bits)] += 1
                total += 1
    if total == 0:
        return {}
    return {severity: count / total for severity, count in sorted(counts.items())}


def _data_flips_to_entry_error(positions: tuple[int, ...]) -> np.ndarray:
    """Map data-bit offsets (0-255) to a 288-bit transmitted error vector
    using the non-interleaved layout: data bit d -> beat d//64, pin d%64."""
    error = np.zeros(ENTRY_BITS, dtype=np.uint8)
    for position in positions:
        beat, pin = divmod(position, BITS_PER_WORD)
        error[beat * NUM_PINS + pin] = 1
    return error


def derive_table1(events: list[ObservedEvent]) -> dict[ErrorPattern, float]:
    """Table 1: per-event pattern probabilities.

    Figure 8 weights outcomes "given a random single event", so each event
    contributes total weight 1; a broad event whose entries show a mix of
    per-entry patterns spreads its weight across them.  (Weighting per
    *entry* instead would let a single thousand-entry MBME event dominate
    the distribution.)
    """
    weights: dict[ErrorPattern, float] = {pattern: 0.0 for pattern in ErrorPattern}
    if not events:
        raise ValueError("no events to classify")
    for event in events:
        share = 1.0 / event.breadth
        for positions in event.flips.values():
            pattern = classify_error(_data_flips_to_entry_error(positions))
            weights[pattern] += share
    total = sum(weights.values())
    return {pattern: weight / total for pattern, weight in weights.items()}

"""AN arithmetic codes for the microbenchmark's third data pattern.

An AN code multiplies the datum by a constant ``A``; any codeword that is
not a multiple of ``A`` reveals corruption.  The paper writes "an AN-encoded
data value to each 8B word, representing the index of that word in the
virtual memory space × 2^32 − 1" — so ``A = 2^32 − 1`` and the payload is
the word index.  This yields codewords with a realistic mix of 1s and 0s
(unlike the all-0/all-1 and checkerboard patterns) while remaining
self-checking.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AN_CONSTANT",
    "an_encode",
    "an_decode",
    "an_check",
    "an_pattern_words",
    "an_pattern_words_batch",
]

#: The paper's multiplier: 2^32 - 1.
AN_CONSTANT = (1 << 32) - 1

_WORD_MASK = (1 << 64) - 1


def an_encode(index: int) -> int:
    """64-bit AN codeword for a word index."""
    return (index * AN_CONSTANT) & _WORD_MASK


def an_check(word: int) -> bool:
    """True iff ``word`` is a valid (uncorrupted) codeword.

    For every word index a 32GB device can hold (below 2^32), the product
    ``index × A`` fits in 64 bits without wrapping, so the check is exact.
    """
    return word % AN_CONSTANT == 0


def an_decode(word: int) -> int:
    """Recover the index from a valid codeword (raises on corruption)."""
    if not an_check(word):
        raise ValueError(f"{word:#x} is not a multiple of A; data corrupted")
    return word // AN_CONSTANT


def an_pattern_words(entry_index: int, words_per_entry: int = 4) -> np.ndarray:
    """The four 64-bit AN codewords stored in one 32B memory entry."""
    base = entry_index * words_per_entry
    return np.array(
        [an_encode(base + offset) for offset in range(words_per_entry)],
        dtype=np.uint64,
    )


def an_pattern_words_batch(entry_indices: np.ndarray,
                           words_per_entry: int = 4) -> np.ndarray:
    """:func:`an_pattern_words` for a whole entry batch: ``(len, 4)`` uint64.

    ``index × A < 2^64`` for every index a 32GB device can hold, so the
    wrapping uint64 multiply below equals the scalar ``& _WORD_MASK``.
    """
    entry_indices = np.asarray(entry_indices, dtype=np.uint64)
    word_index = (
        entry_indices[:, None] * np.uint64(words_per_entry)
        + np.arange(words_per_entry, dtype=np.uint64)
    )
    return word_index * np.uint64(AN_CONSTANT)

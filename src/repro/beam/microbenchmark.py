"""The DRAM microbenchmark (Section 3, "Accelerator DRAM Beam Testing").

The benchmark writes a known pattern to every memory entry and reads the
whole device back repeatedly, logging every mismatch with a timestamp:

* the outer **write** loop runs 10 times per run, alternating between the
  pattern and its bitwise inverse (to expose unidirectional retention
  errors in both stored polarities);
* the inner **read** loop scans the device 20 times per write.

Three data patterns are modelled, as in the paper: all-0s/all-1s, a
pseudo-checkerboard (0x55… / 0xAA… words), and AN-encoded word indices
(:mod:`repro.beam.ancode`).  GPU DRAM ECC is disabled — the benchmark
observes the raw 32B data payload, so mismatch positions are *data* bit
offsets 0-255.

The ``environment`` callback is invoked with the elapsed wall-clock time of
each loop step; the campaign driver uses it to advance beam fluence, deposit
displacement damage and inject SEU events between scans.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.beam.ancode import an_pattern_words_batch
from repro.dram.device import SimulatedHBM2
from repro.gf.gf2 import pack_rows

__all__ = [
    "DataPattern",
    "UniformPattern",
    "CheckerboardPattern",
    "ANPattern",
    "MismatchRecord",
    "Microbenchmark",
    "STANDARD_PATTERNS",
]

_DATA_BITS = 256
_ENTRY_BITS = 288


class DataPattern(ABC):
    """A data background written to (and expected back from) the device.

    Subclasses implement :meth:`data_bits_batch`; the scalar
    :meth:`data_bits` view on top memoizes per entry, because the scan
    loop re-evaluates the same sparse fault sites on every read pass.
    """

    name: str = "abstract"
    _memo_limit = 65536  # fault sites are sparse; bound the cache anyway

    def __init__(self) -> None:
        self._memo: dict[int, np.ndarray] = {}

    @abstractmethod
    def data_bits_batch(self, entry_indices: np.ndarray) -> np.ndarray:
        """The 256 data bits of each entry (non-inverted), ``(len, 256)``."""

    def data_bits(self, entry_index: int) -> np.ndarray:
        """The 256 data bits of one entry (non-inverted polarity)."""
        cached = self._memo.get(entry_index)
        if cached is None:
            cached = self.data_bits_batch(
                np.array([entry_index], dtype=np.int64)
            )[0]
            if len(self._memo) < self._memo_limit:
                self._memo[entry_index] = cached
        return cached.copy()

    def entry_fn(self, inverted: bool) -> Callable[[int], np.ndarray]:
        """A device-compatible pattern function (288 bits, ECC region zero)."""

        def pattern(entry_index: int) -> np.ndarray:
            bits = np.zeros(_ENTRY_BITS, dtype=np.uint8)
            data = self.data_bits(entry_index)
            bits[:_DATA_BITS] = (data ^ 1) if inverted else data
            return bits

        return pattern

    def packed_entry_rows(self, entry_indices: np.ndarray,
                          inverted: bool) -> np.ndarray:
        """Batch form of :meth:`entry_fn`: bit-packed ``(len, 5)`` rows."""
        entry_indices = np.asarray(entry_indices, dtype=np.int64)
        bits = np.zeros((entry_indices.size, _ENTRY_BITS), dtype=np.uint8)
        data = self.data_bits_batch(entry_indices)
        bits[:, :_DATA_BITS] = (data ^ 1) if inverted else data
        return pack_rows(bits)

    def packed_fn(self, inverted: bool) -> Callable[[np.ndarray], np.ndarray]:
        """A device-compatible batch pattern function (see
        :meth:`repro.dram.device.SimulatedHBM2.scan_mismatches_batch`)."""
        return lambda entries: self.packed_entry_rows(entries, inverted)


class UniformPattern(DataPattern):
    """All-0s (or all-1s) — the paper's first pattern."""

    def __init__(self, ones: bool = False) -> None:
        super().__init__()
        self.ones = ones
        self.name = "all1" if ones else "all0"

    def data_bits_batch(self, entry_indices: np.ndarray) -> np.ndarray:
        value = 1 if self.ones else 0
        size = np.asarray(entry_indices).size
        return np.full((size, _DATA_BITS), value, dtype=np.uint8)


class CheckerboardPattern(DataPattern):
    """Pseudo-checkerboard: alternating 0x55…/0xAA… 64b words."""

    name = "checkerboard"

    def data_bits_batch(self, entry_indices: np.ndarray) -> np.ndarray:
        entry_indices = np.asarray(entry_indices, dtype=np.int64)
        # 0x55...: even bits set; 0xAA...: odd bits set.
        phase = (entry_indices[:, None] + np.arange(4)) % 2  # (len, 4)
        offset_parity = np.arange(64) % 2
        word_bits = phase[:, :, None] == offset_parity[None, None, :]
        return word_bits.reshape(entry_indices.size, _DATA_BITS) \
            .astype(np.uint8)


class ANPattern(DataPattern):
    """AN-encoded word indices — a realistic mix of 1s and 0s per codeword."""

    name = "an-encoded"

    def data_bits_batch(self, entry_indices: np.ndarray) -> np.ndarray:
        entry_indices = np.asarray(entry_indices, dtype=np.int64)
        words = an_pattern_words_batch(entry_indices)  # (len, 4) uint64
        # Bit i of word w is data bit 64w+i: little-endian byte view +
        # little-endian unpack give exactly that order, without the
        # (len, 4, 64) shift broadcast.
        as_bytes = words.astype("<u8").view(np.uint8)
        return np.unpackbits(
            as_bytes, axis=1, bitorder="little"
        )[:, :_DATA_BITS]


def STANDARD_PATTERNS() -> list[DataPattern]:
    """The paper's three pattern families."""
    return [UniformPattern(ones=False), CheckerboardPattern(), ANPattern()]


@dataclass(frozen=True)
class MismatchRecord:
    """One time-stamped erroneous entry, as logged to pinned host memory."""

    time_s: float
    run: int
    pattern: str
    write_cycle: int
    read_pass: int
    inverted: bool
    entry_index: int
    bit_positions: tuple[int, ...]  #: data-bit offsets, 0-255


class Microbenchmark:
    """Write/read-loop driver over a :class:`SimulatedHBM2` device."""

    def __init__(
        self,
        device: SimulatedHBM2,
        *,
        write_cycles: int = 10,
        reads_per_write: int = 20,
        loop_time_s: float = 0.05,
        use_batch_scan: bool = False,
    ) -> None:
        self.device = device
        self.write_cycles = write_cycles
        self.reads_per_write = reads_per_write
        self.loop_time_s = loop_time_s
        self.use_batch_scan = use_batch_scan

    def run(
        self,
        pattern: DataPattern,
        *,
        run_index: int = 0,
        start_time_s: float = 0.0,
        environment: Callable[[float], None] | None = None,
    ) -> list[MismatchRecord]:
        """Execute one full run (10 writes × 20 reads) and log mismatches."""
        records: list[MismatchRecord] = []
        clock = start_time_s

        for cycle in range(self.write_cycles):
            inverted = cycle % 2 == 1
            expected = pattern.entry_fn(inverted)
            packed = pattern.packed_fn(inverted)
            self.device.write_all(expected, packed)
            if environment is not None:
                environment(self.loop_time_s)
            clock += self.loop_time_s

            for read_pass in range(self.reads_per_write):
                for entry_index, data_positions in self._scan(
                    expected, packed
                ):
                    records.append(
                        MismatchRecord(
                            time_s=clock,
                            run=run_index,
                            pattern=pattern.name,
                            write_cycle=cycle,
                            read_pass=read_pass,
                            inverted=inverted,
                            entry_index=entry_index,
                            bit_positions=data_positions,
                        )
                    )
                if environment is not None:
                    environment(self.loop_time_s)
                clock += self.loop_time_s

        return records

    def _scan(self, expected, packed):
        """Mismatching (entry, data-bit positions) pairs, ascending entries.

        The batch path zeroes the packed ECC word (bits 256-287 live
        entirely in word 4) and unpacks only surviving rows — record for
        record what the scalar scan's ``bit < 256`` filter produces.
        """
        if not self.use_batch_scan:
            for mismatch in self.device.scan_mismatches(expected):
                data_positions = tuple(
                    bit for bit in mismatch.bit_positions if bit < _DATA_BITS
                )
                if data_positions:
                    yield mismatch.entry_index, data_positions
            return
        entries, diff = self.device.scan_mismatches_batch(expected, packed)
        diff = diff.copy()
        diff[:, _DATA_BITS // 64:] = 0
        keep = diff.any(axis=1)
        if not keep.any():
            return
        from repro.beam.fliptable import unpack_packed_rows

        kept_entries = entries[keep]
        row_of_flip, bits = unpack_packed_rows(diff[keep])
        starts = np.searchsorted(row_of_flip,
                                 np.arange(kept_entries.size + 1))
        for index, entry in enumerate(kept_entries):
            yield int(entry), tuple(
                int(b) for b in bits[starts[index]:starts[index + 1]]
            )

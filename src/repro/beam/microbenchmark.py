"""The DRAM microbenchmark (Section 3, "Accelerator DRAM Beam Testing").

The benchmark writes a known pattern to every memory entry and reads the
whole device back repeatedly, logging every mismatch with a timestamp:

* the outer **write** loop runs 10 times per run, alternating between the
  pattern and its bitwise inverse (to expose unidirectional retention
  errors in both stored polarities);
* the inner **read** loop scans the device 20 times per write.

Three data patterns are modelled, as in the paper: all-0s/all-1s, a
pseudo-checkerboard (0x55… / 0xAA… words), and AN-encoded word indices
(:mod:`repro.beam.ancode`).  GPU DRAM ECC is disabled — the benchmark
observes the raw 32B data payload, so mismatch positions are *data* bit
offsets 0-255.

The ``environment`` callback is invoked with the elapsed wall-clock time of
each loop step; the campaign driver uses it to advance beam fluence, deposit
displacement damage and inject SEU events between scans.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.beam.ancode import an_pattern_words
from repro.dram.device import SimulatedHBM2

__all__ = [
    "DataPattern",
    "UniformPattern",
    "CheckerboardPattern",
    "ANPattern",
    "MismatchRecord",
    "Microbenchmark",
    "STANDARD_PATTERNS",
]

_DATA_BITS = 256
_ENTRY_BITS = 288


class DataPattern(ABC):
    """A data background written to (and expected back from) the device."""

    name: str = "abstract"

    @abstractmethod
    def data_bits(self, entry_index: int) -> np.ndarray:
        """The 256 data bits of one entry (non-inverted polarity)."""

    def entry_fn(self, inverted: bool) -> Callable[[int], np.ndarray]:
        """A device-compatible pattern function (288 bits, ECC region zero)."""

        def pattern(entry_index: int) -> np.ndarray:
            bits = np.zeros(_ENTRY_BITS, dtype=np.uint8)
            data = self.data_bits(entry_index)
            bits[:_DATA_BITS] = (data ^ 1) if inverted else data
            return bits

        return pattern


class UniformPattern(DataPattern):
    """All-0s (or all-1s) — the paper's first pattern."""

    def __init__(self, ones: bool = False) -> None:
        self.ones = ones
        self.name = "all1" if ones else "all0"

    def data_bits(self, entry_index: int) -> np.ndarray:
        value = 1 if self.ones else 0
        return np.full(_DATA_BITS, value, dtype=np.uint8)


class CheckerboardPattern(DataPattern):
    """Pseudo-checkerboard: alternating 0x55…/0xAA… 64b words."""

    name = "checkerboard"

    def data_bits(self, entry_index: int) -> np.ndarray:
        bits = np.zeros(_DATA_BITS, dtype=np.uint8)
        for word in range(4):
            phase = (entry_index + word) % 2
            # 0x55...: even bits set; 0xAA...: odd bits set.
            bits[64 * word + phase : 64 * (word + 1) : 2] = 1
        return bits


class ANPattern(DataPattern):
    """AN-encoded word indices — a realistic mix of 1s and 0s per codeword."""

    name = "an-encoded"

    def data_bits(self, entry_index: int) -> np.ndarray:
        words = an_pattern_words(entry_index)
        bits = np.zeros(_DATA_BITS, dtype=np.uint8)
        for word_index, value in enumerate(int(w) for w in words):
            for bit in range(64):
                bits[64 * word_index + bit] = (value >> bit) & 1
        return bits


def STANDARD_PATTERNS() -> list[DataPattern]:
    """The paper's three pattern families."""
    return [UniformPattern(ones=False), CheckerboardPattern(), ANPattern()]


@dataclass(frozen=True)
class MismatchRecord:
    """One time-stamped erroneous entry, as logged to pinned host memory."""

    time_s: float
    run: int
    pattern: str
    write_cycle: int
    read_pass: int
    inverted: bool
    entry_index: int
    bit_positions: tuple[int, ...]  #: data-bit offsets, 0-255


class Microbenchmark:
    """Write/read-loop driver over a :class:`SimulatedHBM2` device."""

    def __init__(
        self,
        device: SimulatedHBM2,
        *,
        write_cycles: int = 10,
        reads_per_write: int = 20,
        loop_time_s: float = 0.05,
    ) -> None:
        self.device = device
        self.write_cycles = write_cycles
        self.reads_per_write = reads_per_write
        self.loop_time_s = loop_time_s

    def run(
        self,
        pattern: DataPattern,
        *,
        run_index: int = 0,
        start_time_s: float = 0.0,
        environment: Callable[[float], None] | None = None,
    ) -> list[MismatchRecord]:
        """Execute one full run (10 writes × 20 reads) and log mismatches."""
        records: list[MismatchRecord] = []
        clock = start_time_s

        for cycle in range(self.write_cycles):
            inverted = cycle % 2 == 1
            expected = pattern.entry_fn(inverted)
            self.device.write_all(expected)
            if environment is not None:
                environment(self.loop_time_s)
            clock += self.loop_time_s

            for read_pass in range(self.reads_per_write):
                for mismatch in self.device.scan_mismatches(expected):
                    data_positions = tuple(
                        bit for bit in mismatch.bit_positions if bit < _DATA_BITS
                    )
                    if not data_positions:
                        continue
                    records.append(
                        MismatchRecord(
                            time_s=clock,
                            run=run_index,
                            pattern=pattern.name,
                            write_cycle=cycle,
                            read_pass=read_pass,
                            inverted=inverted,
                            entry_index=mismatch.entry_index,
                            bit_positions=data_positions,
                        )
                    )
                if environment is not None:
                    environment(self.loop_time_s)
                clock += self.loop_time_s

        return records

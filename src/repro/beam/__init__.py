"""Neutron-beam testing substrate: flux, damage, events, microbenchmark."""

from repro.beam.ancode import AN_CONSTANT, an_check, an_decode, an_encode
from repro.beam.campaign import BeamCampaign, CampaignConfig, CampaignResult, refresh_sweep
from repro.beam.displacement import DamageParameters, DisplacementDamageModel
from repro.beam.engine import ENGINES, StatisticsResult, run_statistics_campaign
from repro.beam.events import (
    BatchEventSynthesis,
    EventClass,
    EventParameters,
    SoftErrorEvent,
    SoftErrorEventGenerator,
    interval_class_mixture,
)
from repro.beam.fliptable import FlipTable, RecordTable
from repro.beam.flux import CHIPIR_FLUX, TERRESTRIAL_FLUX, FluenceClock, acceleration_factor
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    DataPattern,
    Microbenchmark,
    MismatchRecord,
    STANDARD_PATTERNS,
    UniformPattern,
)
from repro.beam.postprocess import (
    FilterResult,
    FilterTableResult,
    ObservedEvent,
    breadth_class_fractions,
    breadth_class_fractions_table,
    bits_per_word_histogram,
    bits_per_word_histogram_table,
    byte_alignment_stats,
    byte_alignment_stats_table,
    derive_table1,
    derive_table1_table,
    filter_intermittent,
    filter_intermittent_table,
    group_events,
    group_events_table,
    mbme_breadth_histogram,
    mbme_breadth_histogram_table,
)

__all__ = [
    "AN_CONSTANT", "an_check", "an_decode", "an_encode",
    "BeamCampaign", "CampaignConfig", "CampaignResult", "refresh_sweep",
    "DamageParameters", "DisplacementDamageModel",
    "ENGINES", "StatisticsResult", "run_statistics_campaign",
    "BatchEventSynthesis", "interval_class_mixture",
    "EventClass", "EventParameters", "SoftErrorEvent", "SoftErrorEventGenerator",
    "FlipTable", "RecordTable",
    "CHIPIR_FLUX", "TERRESTRIAL_FLUX", "FluenceClock", "acceleration_factor",
    "ANPattern", "CheckerboardPattern", "DataPattern", "Microbenchmark",
    "MismatchRecord", "STANDARD_PATTERNS", "UniformPattern",
    "FilterResult", "FilterTableResult", "ObservedEvent",
    "breadth_class_fractions", "breadth_class_fractions_table",
    "bits_per_word_histogram", "bits_per_word_histogram_table",
    "byte_alignment_stats", "byte_alignment_stats_table",
    "derive_table1", "derive_table1_table",
    "filter_intermittent", "filter_intermittent_table",
    "group_events", "group_events_table",
    "mbme_breadth_histogram", "mbme_breadth_histogram_table",
]

"""Neutron-beam testing substrate: flux, damage, events, microbenchmark."""

from repro.beam.ancode import AN_CONSTANT, an_check, an_decode, an_encode
from repro.beam.campaign import BeamCampaign, CampaignConfig, CampaignResult, refresh_sweep
from repro.beam.displacement import DamageParameters, DisplacementDamageModel
from repro.beam.events import (
    EventClass,
    EventParameters,
    SoftErrorEvent,
    SoftErrorEventGenerator,
)
from repro.beam.flux import CHIPIR_FLUX, TERRESTRIAL_FLUX, FluenceClock, acceleration_factor
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    DataPattern,
    Microbenchmark,
    MismatchRecord,
    STANDARD_PATTERNS,
    UniformPattern,
)
from repro.beam.postprocess import (
    FilterResult,
    ObservedEvent,
    breadth_class_fractions,
    bits_per_word_histogram,
    byte_alignment_stats,
    derive_table1,
    filter_intermittent,
    group_events,
    mbme_breadth_histogram,
)

__all__ = [
    "AN_CONSTANT", "an_check", "an_decode", "an_encode",
    "BeamCampaign", "CampaignConfig", "CampaignResult", "refresh_sweep",
    "DamageParameters", "DisplacementDamageModel",
    "EventClass", "EventParameters", "SoftErrorEvent", "SoftErrorEventGenerator",
    "CHIPIR_FLUX", "TERRESTRIAL_FLUX", "FluenceClock", "acceleration_factor",
    "ANPattern", "CheckerboardPattern", "DataPattern", "Microbenchmark",
    "MismatchRecord", "STANDARD_PATTERNS", "UniformPattern",
    "FilterResult", "ObservedEvent", "breadth_class_fractions",
    "bits_per_word_histogram", "byte_alignment_stats", "derive_table1",
    "filter_intermittent", "group_events", "mbme_breadth_histogram",
]

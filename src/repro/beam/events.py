"""Soft-error (SEU) event generator for the simulated beam campaign.

The generative model encodes the paper's Section-5 findings; the analysis
pipeline (:mod:`repro.beam.postprocess`) then *re-derives* the published
statistics from the simulated mismatch logs, exercising the same
classification code a real campaign would:

* events arrive as a Poisson process (mean-time-to-event is seconds in the
  beam while a read/write loop takes milliseconds, so events land in
  distinct loop iterations);
* event breadth/severity classes follow Figure 4a — SBSE 65%, MBME 28%,
  with the small remainder split between SBME and MBSE;
* MBME breadth is a long-tailed (truncated power-law) distribution reaching
  thousands of 32B entries (Figure 4b), with affected entries contiguous in
  one subarray — the locality attributed to DRAM logic faults;
* multi-bit errors are byte-aligned with probability 74.6% (Figure 4c): the
  same aligned byte of every affected 64b word, the footprint of a
  mat-local fault, usually touching one word per entry; non-byte-aligned
  errors usually corrupt all four words of an entry;
* bits-per-word severity is binomial ("random corruption"), except for an
  ~15% tendency to invert *every* bit of the affected byte/word
  (Figure 5's anomaly).

Flips are expressed over the 256 data bits of each entry (the
ECC-disabled microbenchmark can only observe data), using the *logical*
layout: word ``w`` occupies bits ``64w..64w+63``, byte ``b`` of a word its
bits ``8b..8b+7``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

import numpy as np

from repro.dram.geometry import HBM2Geometry

__all__ = [
    "EventClass",
    "EventParameters",
    "SoftErrorEvent",
    "SoftErrorEventGenerator",
    "BatchEventSynthesis",
    "interval_class_mixture",
    "WORDS_PER_ENTRY",
    "BITS_PER_WORD",
]

WORDS_PER_ENTRY = 4
BITS_PER_WORD = 64


class EventClass(Enum):
    """Figure 4a's breadth/severity classes."""

    SBSE = "single-bit, single-entry"
    SBME = "single-bit, multiple-entry"
    MBSE = "multiple-bit, single-entry"
    MBME = "multiple-bit, multiple-entry"


@dataclass(frozen=True)
class EventParameters:
    """Tunable knobs of the generative model, defaulted to the paper."""

    #: mean time between SEU events with the GPU in the beam, seconds
    mean_time_to_event_s: float = 20.0
    #: Figure 4a class mixture (SBSE/SBME/MBSE/MBME)
    class_probabilities: tuple[float, float, float, float] = (0.65, 0.02, 0.05, 0.28)
    #: fraction of multi-bit errors confined to one aligned byte per word
    byte_aligned_fraction: float = 0.746
    #: fraction of affected bytes/words that invert entirely (Figure 5)
    inversion_fraction: float = 0.15
    #: words corrupted per entry for byte-aligned multi-bit errors
    byte_aligned_words_dist: tuple[float, float, float, float] = (0.88, 0.10, 0.015, 0.005)
    #: words corrupted per entry for non-byte-aligned multi-bit errors
    non_aligned_words_dist: tuple[float, float, float, float] = (0.25, 0.03, 0.02, 0.70)
    #: fraction of non-byte-aligned words with only 2-4 scattered flips
    #: (the source of Table 1's rare "2 Bits"/"3 Bits" patterns)
    sparse_severity_fraction: float = 0.10
    #: fraction of multi-bit single-entry faults hitting one interface pin
    #: (the same within-word bit across several beats; Table 1's "1 Pin")
    pin_fault_fraction: float = 0.04
    #: power-law exponent and cap of the MBME breadth distribution
    mbme_breadth_alpha: float = 1.05
    mbme_breadth_max: int = 6000
    #: breadth distribution of the rarer SBME events
    sbme_breadth_alpha: float = 1.6
    sbme_breadth_max: int = 64

    def __post_init__(self) -> None:
        if abs(sum(self.class_probabilities) - 1.0) > 1e-9:
            raise ValueError("class probabilities must sum to 1")
        for dist in (self.byte_aligned_words_dist, self.non_aligned_words_dist):
            if abs(sum(dist) - 1.0) > 1e-9:
                raise ValueError("words-per-entry distributions must sum to 1")


@dataclass(frozen=True)
class SoftErrorEvent:
    """One SEU: a set of per-entry data-bit flip positions."""

    time_s: float
    event_class: EventClass
    flips: dict[int, np.ndarray]  #: entry index -> sorted bit positions (0-255)

    @property
    def breadth(self) -> int:
        """Number of 32B entries affected."""
        return len(self.flips)

    @property
    def total_bits(self) -> int:
        return sum(positions.size for positions in self.flips.values())


class SoftErrorEventGenerator:
    """Draws SEU events according to :class:`EventParameters`."""

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        parameters: EventParameters | None = None,
        *,
        seed: int = 7,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.parameters = parameters or EventParameters()
        self._rng = np.random.default_rng(seed)

    # -- arrival process ----------------------------------------------------
    def events_in(self, duration_s: float, start_time_s: float = 0.0,
                  utilization: float = 1.0) -> list[SoftErrorEvent]:
        """Poisson arrivals over an in-beam interval.

        ``utilization`` models the Section-5 DRAM-utilization sweep: narrow
        array errors (SBSE/SBME — direct bitcell strikes) accrue with
        exposure *time*, while broad-and-severe logic errors (MBSE/MBME —
        strikes in the access path) only manifest on memory *accesses*, so
        their rate scales with the benchmark's utilization.  The default
        class mixture corresponds to full utilization.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        base = self.parameters.class_probabilities
        array_rate = (base[0] + base[1]) / self.parameters.mean_time_to_event_s
        logic_rate = (
            (base[2] + base[3]) * utilization
            / self.parameters.mean_time_to_event_s
        )
        total_rate = array_rate + logic_rate
        if total_rate <= 0.0:
            return []
        probabilities = (
            base[0] / (base[0] + base[1]) * array_rate / total_rate,
            base[1] / (base[0] + base[1]) * array_rate / total_rate,
            (base[2] / (base[2] + base[3]) * logic_rate / total_rate
             if logic_rate else 0.0),
            (base[3] / (base[2] + base[3]) * logic_rate / total_rate
             if logic_rate else 0.0),
        )
        events: list[SoftErrorEvent] = []
        clock = start_time_s
        while True:
            clock += float(self._rng.exponential(1.0 / total_rate))
            if clock >= start_time_s + duration_s:
                return events
            events.append(self.generate_event(clock, class_probabilities=probabilities))

    # -- event construction ----------------------------------------------------
    def generate_event(self, time_s: float,
                       class_probabilities: tuple[float, ...] | None = None
                       ) -> SoftErrorEvent:
        """Draw one event; an explicit class mixture overrides the default
        (used by the utilization-scaled arrival process)."""
        params = self.parameters
        draw = self._rng.choice(
            4, p=class_probabilities or params.class_probabilities
        )
        event_class = (EventClass.SBSE, EventClass.SBME,
                       EventClass.MBSE, EventClass.MBME)[draw]
        if event_class is EventClass.SBSE:
            flips = self._single_bit_flips(breadth=1)
        elif event_class is EventClass.SBME:
            breadth = self._power_law_breadth(
                params.sbme_breadth_alpha, params.sbme_breadth_max
            )
            flips = self._single_bit_flips(breadth=breadth)
        elif event_class is EventClass.MBSE:
            flips = self._multi_bit_flips(breadth=1)
        else:
            breadth = self._power_law_breadth(
                params.mbme_breadth_alpha, params.mbme_breadth_max
            )
            flips = self._multi_bit_flips(breadth=breadth)
        return SoftErrorEvent(time_s=time_s, event_class=event_class, flips=flips)

    # -- helpers -----------------------------------------------------------------
    def _power_law_breadth(self, alpha: float, cap: int) -> int:
        """Truncated discrete power law starting at 2 entries."""
        uniform = self._rng.random()
        breadth = int(2 * (1.0 - uniform) ** (-1.0 / alpha))
        return int(min(max(breadth, 2), cap))

    def _contiguous_entries(self, breadth: int) -> np.ndarray:
        """A run of consecutive entries inside one bank.

        Section 5 attributes multi-entry errors to faults in DRAM logic
        structures (row decoders, column muxes, sense amps), which are
        bank-local: a single strike never corrupts entries in two banks.
        Runs are clamped to the bank holding their random starting point.
        """
        per_bank = self.geometry.entries_per_bank
        breadth = min(breadth, per_bank)
        bank_start = (
            int(self._rng.integers(self.geometry.total_entries)) // per_bank
        ) * per_bank
        offset = int(self._rng.integers(per_bank - breadth + 1))
        base = bank_start + offset
        return np.arange(base, base + breadth)

    def _single_bit_flips(self, breadth: int) -> dict[int, np.ndarray]:
        """One flipped bit per entry, the same cell column for SBME."""
        bit = int(self._rng.integers(WORDS_PER_ENTRY * BITS_PER_WORD))
        if breadth == 1:
            entry = int(self._rng.integers(self.geometry.total_entries))
            return {entry: np.array([bit], dtype=np.int64)}
        entries = self._contiguous_entries(breadth)
        return {int(entry): np.array([bit], dtype=np.int64) for entry in entries}

    def _pin_fault_flips(self) -> dict[int, np.ndarray]:
        """A transient interface-pin fault: the same within-word bit flipped
        in 2-4 of one entry's words (the bit rides the same wire each beat)."""
        bit = int(self._rng.integers(BITS_PER_WORD))
        num_words = int(self._rng.integers(2, WORDS_PER_ENTRY + 1))
        words = self._rng.choice(WORDS_PER_ENTRY, size=num_words, replace=False)
        entry = int(self._rng.integers(self.geometry.total_entries))
        positions = sorted(int(word) * BITS_PER_WORD + bit for word in words)
        return {entry: np.array(positions, dtype=np.int64)}

    def _multi_bit_flips(self, breadth: int) -> dict[int, np.ndarray]:
        params = self.parameters
        if breadth == 1 and self._rng.random() < params.pin_fault_fraction:
            return self._pin_fault_flips()
        byte_aligned = self._rng.random() < params.byte_aligned_fraction
        if byte_aligned:
            # One mat-local fault: the same aligned byte of every word.
            byte_column = int(self._rng.integers(BITS_PER_WORD // 8))
            words_dist = params.byte_aligned_words_dist
        else:
            byte_column = -1
            words_dist = params.non_aligned_words_dist

        if breadth == 1:
            entries = np.array(
                [self._rng.integers(self.geometry.total_entries)], dtype=np.int64
            )
        else:
            entries = self._contiguous_entries(breadth)

        flips: dict[int, np.ndarray] = {}
        for entry in entries:
            num_words = 1 + int(self._rng.choice(WORDS_PER_ENTRY, p=words_dist))
            words = self._rng.choice(WORDS_PER_ENTRY, size=num_words, replace=False)
            positions: list[int] = []
            for word in words:
                # Multi-bit events corrupt at least 2 bits per affected word
                # (Figure 5's severity distributions start at 2).
                positions.extend(self._word_flips(int(word), byte_column, minimum=2))
            flips[int(entry)] = np.array(sorted(set(positions)), dtype=np.int64)
        return flips

    def _word_flips(self, word: int, byte_column: int, minimum: int = 1
                    ) -> list[int]:
        """Flipped bit positions within one 64b word.

        ``byte_column >= 0`` confines flips to that aligned byte (mat-local
        fault); otherwise they spread over the whole word.  Severity is
        binomial with an ``inversion_fraction`` chance of flipping
        everything.
        """
        params = self.parameters
        width = 8 if byte_column >= 0 else BITS_PER_WORD
        if self._rng.random() < params.inversion_fraction:
            count = width
        elif (
            byte_column < 0
            and self._rng.random() < params.sparse_severity_fraction
        ):
            count = int(self._rng.integers(2, 5))
        else:
            count = 0
            while count < minimum:
                count = int(self._rng.binomial(width, 0.5))
        offsets = self._rng.choice(width, size=min(count, width), replace=False)
        base = word * BITS_PER_WORD + (byte_column * 8 if byte_column >= 0 else 0)
        return [base + int(offset) for offset in offsets]


# ---------------------------------------------------------------------------
# Batch (columnar) event synthesis
# ---------------------------------------------------------------------------
#
# :class:`SoftErrorEventGenerator` draws one value at a time from a single
# stream, with data-dependent consumption (rejection loops, variable-size
# ``choice``) that cannot be replayed by sized array draws.  The batch
# synthesiser therefore defines its *own* draw plan with the same
# distributions but fixed, phase-separated consumption:
#
# * nine independent child streams (one ``SeedSequence`` spawn per draw
#   phase) so variable consumption in one phase cannot desynchronise the
#   others;
# * every data-dependent draw is rephrased as a fixed number of uniforms —
#   ``floor(u * n)`` for bounded integers, argsort-of-uniforms for sampling
#   without replacement, an inverse-CDF lookup for the truncated binomial —
#   so one sized call per phase replays the exact per-value stream.
#
# The scalar :meth:`BatchEventSynthesis.events_at` path consumes the same
# streams one event at a time and is kept as the bit-exact oracle (and the
# benchmark's reference engine).

#: spawn order of the per-phase child streams
_PHASES = ("arrival", "klass", "breadth", "place", "mode",
           "words", "pick", "sev", "off")

_DATA_BITS = WORDS_PER_ENTRY * BITS_PER_WORD  # 256


@lru_cache(maxsize=None)
def _truncated_binomial_cdf(width: int) -> np.ndarray:
    """CDF of Binomial(width, 1/2) conditioned on >= 2, support 2..width.

    ``2 + searchsorted(cdf, u, side="right")`` inverts it, replacing the
    scalar generator's redraw-until-two rejection loop with one uniform.
    """
    weights = np.array(
        [math.comb(width, k) for k in range(2, width + 1)], dtype=np.float64
    )
    return np.cumsum(weights / weights.sum())


def _power_law_breadths(u: np.ndarray, alpha: float, cap: int) -> np.ndarray:
    """Vector form of :meth:`SoftErrorEventGenerator._power_law_breadth`."""
    raw = 2.0 * np.power(1.0 - u, -1.0 / alpha)
    clipped = np.minimum(raw, float(cap))
    return np.clip(np.floor(clipped), 2, cap).astype(np.int64)


def _floor_scaled(u: np.ndarray, n: int) -> np.ndarray:
    """``floor(u * n)`` — a rejection-free Uniform{0..n-1} from u in [0,1)."""
    return np.floor(u * n).astype(np.int64)


def _inverse_permutations(uniforms: np.ndarray) -> np.ndarray:
    """Per-row inverse argsort ranks of ``(rows, k)`` uniforms.

    Row element ``w`` has rank ``< m`` exactly when ``w`` is among the
    first ``m`` picks of a without-replacement draw, so ``rank < m`` masks
    the chosen items in ascending order.  Stable kind pins the (measure
    zero) tie behaviour so scalar and vectorized paths always agree.
    """
    perm = np.argsort(uniforms, axis=-1, kind="stable")
    # Inverting a permutation needs a scatter, not a second sort.
    ranks = np.empty_like(perm)
    np.put_along_axis(
        ranks, perm,
        np.broadcast_to(np.arange(perm.shape[-1]), perm.shape),
        axis=-1,
    )
    return ranks


def interval_class_mixture(
    parameters: EventParameters, utilization: float
) -> tuple[float, tuple[float, float, float, float]]:
    """Total arrival rate and class mixture at a DRAM utilization.

    The same Section-5 scaling as :meth:`SoftErrorEventGenerator.events_in`:
    array classes (SBSE/SBME) accrue with time, logic classes (MBSE/MBME)
    with accesses.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    base = parameters.class_probabilities
    array_rate = (base[0] + base[1]) / parameters.mean_time_to_event_s
    logic_rate = (
        (base[2] + base[3]) * utilization / parameters.mean_time_to_event_s
    )
    total_rate = array_rate + logic_rate
    if total_rate <= 0.0:
        return 0.0, (0.0, 0.0, 0.0, 0.0)
    probabilities = (
        base[0] / (base[0] + base[1]) * array_rate / total_rate,
        base[1] / (base[0] + base[1]) * array_rate / total_rate,
        (base[2] / (base[2] + base[3]) * logic_rate / total_rate
         if logic_rate else 0.0),
        (base[3] / (base[2] + base[3]) * logic_rate / total_rate
         if logic_rate else 0.0),
    )
    return total_rate, probabilities


class BatchEventSynthesis:
    """Columnar SEU synthesis over the phase-streamed draw plan.

    Construct two instances with the same seed and make the same calls in
    the same order, and :meth:`table_at` (vectorized) and :meth:`events_at`
    (scalar oracle) consume identical random streams and produce identical
    events — the equivalence the columnar engine's tests assert.
    """

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        parameters: EventParameters | None = None,
        *,
        seed: int | np.random.SeedSequence = 7,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.parameters = parameters or EventParameters()
        self._seq = (
            seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )

    # -- stream plumbing ---------------------------------------------------
    def _phase_rngs(self) -> dict[str, np.random.Generator]:
        children = self._seq.spawn(len(_PHASES))
        return {
            name: np.random.default_rng(child)
            for name, child in zip(_PHASES, children)
        }

    def _class_cdf(self, probabilities) -> np.ndarray:
        return np.cumsum(np.asarray(
            probabilities or self.parameters.class_probabilities,
            dtype=np.float64,
        ))

    # -- arrivals ----------------------------------------------------------
    def _arrival_times(
        self,
        rng: np.random.Generator,
        duration_s: float,
        start_time_s: float,
        total_rate: float,
        *,
        batch: bool,
    ) -> np.ndarray:
        """Poisson arrival instants in ``[start, start + duration)``.

        Both paths accept ``start + cumsum(exponentials) < start + duration``;
        the batch path re-cumsums the concatenated draws from zero each
        extension so its partial sums associate exactly like the scalar
        path's running ``acc += e``.
        """
        if total_rate <= 0.0 or duration_s <= 0.0:
            return np.empty(0, dtype=np.float64)
        end = start_time_s + duration_s
        scale = 1.0 / total_rate
        if batch:
            expected = duration_s * total_rate
            block = max(16, int(expected * 1.5) + 8)
            draws: list[np.ndarray] = []
            while True:
                draws.append(rng.exponential(scale, size=block))
                cum = np.cumsum(np.concatenate(draws))
                if cum[-1] >= duration_s:
                    times = start_time_s + cum
                    return times[times < end]
        times_list: list[float] = []
        acc = 0.0
        while True:
            acc += float(rng.exponential(scale))
            clock = start_time_s + acc
            if clock >= end:
                return np.array(times_list, dtype=np.float64)
            times_list.append(clock)

    # -- public API --------------------------------------------------------
    def interval_table(self, duration_s: float, start_time_s: float = 0.0,
                       utilization: float = 1.0):
        """Vectorized equivalent of
        :meth:`SoftErrorEventGenerator.events_in`, as a ``FlipTable``."""
        rngs = self._phase_rngs()
        rate, probabilities = interval_class_mixture(
            self.parameters, utilization
        )
        times = self._arrival_times(
            rngs["arrival"], duration_s, start_time_s, rate, batch=True
        )
        return self._table(rngs, times, probabilities)

    def interval_events(self, duration_s: float, start_time_s: float = 0.0,
                        utilization: float = 1.0) -> list[SoftErrorEvent]:
        """Scalar oracle for :meth:`interval_table` (same streams)."""
        rngs = self._phase_rngs()
        rate, probabilities = interval_class_mixture(
            self.parameters, utilization
        )
        times = self._arrival_times(
            rngs["arrival"], duration_s, start_time_s, rate, batch=False
        )
        return self._events(rngs, times, probabilities)

    def table_at(self, times, class_probabilities=None):
        """Synthesize one event per entry of ``times``, vectorized."""
        rngs = self._phase_rngs()
        return self._table(
            rngs, np.asarray(times, dtype=np.float64), class_probabilities
        )

    def events_at(self, times, class_probabilities=None
                  ) -> list[SoftErrorEvent]:
        """Scalar oracle for :meth:`table_at` (same streams)."""
        rngs = self._phase_rngs()
        return self._events(
            rngs, np.asarray(times, dtype=np.float64), class_probabilities
        )

    # -- vectorized core ---------------------------------------------------
    def _table(self, rngs, times: np.ndarray, class_probabilities):
        from repro.beam.fliptable import FlipTable

        params = self.parameters
        geometry = self.geometry
        per_bank = geometry.entries_per_bank
        n = times.size
        if n == 0:
            return FlipTable.from_flips(
                np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.int64), np.empty(0, np.int64),
                n_events=0,
                event_columns={
                    "time_s": times.copy(),
                    "class_code": np.empty(0, np.int64),
                },
            )

        # klass: one uniform per event through the class CDF
        class_cdf = self._class_cdf(class_probabilities)
        codes = np.minimum(
            np.searchsorted(class_cdf, rngs["klass"].random(n), side="right"),
            3,
        ).astype(np.int64)
        is_sbme = codes == 1
        is_mbse = codes == 2
        is_mbme = codes == 3
        is_mb = is_mbse | is_mbme

        # breadth: one uniform per event (unused for single-entry classes)
        u_breadth = rngs["breadth"].random(n)
        breadth = np.ones(n, dtype=np.int64)
        breadth[is_sbme] = _power_law_breadths(
            u_breadth[is_sbme], params.sbme_breadth_alpha,
            params.sbme_breadth_max,
        )
        breadth[is_mbme] = _power_law_breadths(
            u_breadth[is_mbme], params.mbme_breadth_alpha,
            params.mbme_breadth_max,
        )
        breadth = np.minimum(breadth, per_bank)

        # place: (u_site, u_off) per event; multi-entry runs stay bank-local
        u_place = rngs["place"].random(2 * n).reshape(n, 2)
        first_entry = _floor_scaled(u_place[:, 0], geometry.total_entries)
        bank_start = (first_entry // per_bank) * per_bank
        offset = np.floor(
            u_place[:, 1] * (per_bank - breadth + 1)
        ).astype(np.int64)
        base_entry = np.where(breadth > 1, bank_start + offset, first_entry)

        # mode: (u_bit, u_pin, u_align, u_col) per event
        u_mode = rngs["mode"].random(4 * n).reshape(n, 4)
        sb_bit = _floor_scaled(u_mode[:, 0], _DATA_BITS)
        pin_bit = _floor_scaled(u_mode[:, 0], BITS_PER_WORD)
        is_pin = is_mbse & (u_mode[:, 1] < params.pin_fault_fraction)
        aligned = is_mb & ~is_pin & (
            u_mode[:, 2] < params.byte_aligned_fraction
        )
        byte_col = np.where(
            aligned, _floor_scaled(u_mode[:, 3], BITS_PER_WORD // 8), -1
        )

        # sites: one row per (event, entry)
        site_event = np.repeat(np.arange(n, dtype=np.int64), breadth)
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(breadth, out=starts[1:])
        within = np.arange(site_event.size, dtype=np.int64) - np.repeat(
            starts[:-1], breadth
        )
        site_entry = base_entry[site_event] + within
        n_sites = site_event.size

        # words: one uniform per multi-bit site (pin events have one site)
        site_is_mb = is_mb[site_event]
        mb_sites = np.nonzero(site_is_mb)[0]
        mb_event = site_event[mb_sites]
        u_words = rngs["words"].random(mb_sites.size)
        cum_ba = np.cumsum(np.asarray(params.byte_aligned_words_dist))
        cum_na = np.cumsum(np.asarray(params.non_aligned_words_dist))
        nw = np.where(
            is_pin[mb_event],
            2 + _floor_scaled(u_words, WORDS_PER_ENTRY - 1),
            1 + np.minimum(
                np.where(
                    aligned[mb_event],
                    np.searchsorted(cum_ba, u_words, side="right"),
                    np.searchsorted(cum_na, u_words, side="right"),
                ),
                WORDS_PER_ENTRY - 1,
            ),
        ).astype(np.int64)

        # pick: four uniforms per multi-bit site select its affected words
        u_pick = rngs["pick"].random(4 * mb_sites.size).reshape(-1, 4)
        word_rank = _inverse_permutations(u_pick)
        word_sel = word_rank < nw[:, None]

        pin_site = is_pin[mb_event]
        plain_word_sel = word_sel & ~pin_site[:, None]
        w_site, w_word = np.nonzero(plain_word_sel)  # (event, site, word asc)
        w_event = mb_event[w_site]
        w_aligned = aligned[w_event]
        w_width = np.where(w_aligned, 8, BITS_PER_WORD)
        w_base = w_word * BITS_PER_WORD + np.where(
            w_aligned, byte_col[w_event] * 8, 0
        )

        # sev: (u_inv, u_sparse, u_count) per plain multi-bit word
        u_sev = rngs["sev"].random(3 * w_site.size).reshape(-1, 3)
        sparse = ~w_aligned & (u_sev[:, 1] < params.sparse_severity_fraction)
        cdf8 = _truncated_binomial_cdf(8)
        cdf64 = _truncated_binomial_cdf(BITS_PER_WORD)
        binom = np.minimum(
            2 + np.where(
                w_aligned,
                np.searchsorted(cdf8, u_sev[:, 2], side="right"),
                np.searchsorted(cdf64, u_sev[:, 2], side="right"),
            ),
            w_width,
        )
        count = np.where(
            u_sev[:, 0] < params.inversion_fraction,
            w_width,
            np.where(sparse, 2 + _floor_scaled(u_sev[:, 2], 3), binom),
        ).astype(np.int64)

        # off: ``width`` uniforms per plain word pick its flipped offsets
        off_starts = np.zeros(w_site.size + 1, dtype=np.int64)
        np.cumsum(w_width, out=off_starts[1:])
        u_off = rngs["off"].random(int(off_starts[-1]))

        flip_site_parts: list[np.ndarray] = []
        flip_bit_parts: list[np.ndarray] = []

        # single-bit sites: one flip each (SBME repeats the cell column)
        sb_sites = np.nonzero(~site_is_mb)[0]
        flip_site_parts.append(sb_sites)
        flip_bit_parts.append(sb_bit[site_event[sb_sites]])

        # pin sites: the same within-word bit across the selected words
        p_site, p_word = np.nonzero(word_sel & pin_site[:, None])
        flip_site_parts.append(mb_sites[p_site])
        flip_bit_parts.append(
            p_word * BITS_PER_WORD + pin_bit[mb_event[p_site]]
        )

        # plain words, grouped by width so each group argsorts one matrix
        for width, cond in ((8, w_aligned), (BITS_PER_WORD, ~w_aligned)):
            group = np.nonzero(cond)[0]
            if not group.size:
                continue
            index = off_starts[group][:, None] + np.arange(width)
            rank = _inverse_permutations(u_off[index])
            sel = rank < count[group][:, None]
            g_row, g_off = np.nonzero(sel)
            flip_site_parts.append(mb_sites[w_site[group[g_row]]])
            flip_bit_parts.append(w_base[group[g_row]] + g_off)

        flip_site = np.concatenate(flip_site_parts)
        flip_bit = np.concatenate(flip_bit_parts).astype(np.int64)
        order = np.lexsort((flip_bit, flip_site))
        flip_site = flip_site[order]
        flip_bit = flip_bit[order]
        flips_per_site = np.bincount(flip_site, minlength=n_sites)

        return FlipTable.from_flips(
            site_event, site_entry, flips_per_site, flip_bit,
            n_events=n,
            event_columns={"time_s": times.copy(), "class_code": codes},
        )

    # -- scalar oracle core ------------------------------------------------
    def _events(self, rngs, times: np.ndarray, class_probabilities
                ) -> list[SoftErrorEvent]:
        params = self.parameters
        geometry = self.geometry
        per_bank = geometry.entries_per_bank
        class_cdf = self._class_cdf(class_probabilities)
        classes = (EventClass.SBSE, EventClass.SBME,
                   EventClass.MBSE, EventClass.MBME)
        cum_ba = np.cumsum(np.asarray(params.byte_aligned_words_dist))
        cum_na = np.cumsum(np.asarray(params.non_aligned_words_dist))
        cdf_by_width = {
            8: _truncated_binomial_cdf(8),
            BITS_PER_WORD: _truncated_binomial_cdf(BITS_PER_WORD),
        }

        events: list[SoftErrorEvent] = []
        for time_s in times:
            code = min(int(np.searchsorted(
                class_cdf, rngs["klass"].random(), side="right"
            )), 3)
            u_breadth = rngs["breadth"].random()
            if code == 1:
                breadth = int(_power_law_breadths(
                    np.array([u_breadth]), params.sbme_breadth_alpha,
                    params.sbme_breadth_max,
                )[0])
            elif code == 3:
                breadth = int(_power_law_breadths(
                    np.array([u_breadth]), params.mbme_breadth_alpha,
                    params.mbme_breadth_max,
                )[0])
            else:
                breadth = 1
            breadth = min(breadth, per_bank)

            u_site, u_off = rngs["place"].random(2)
            first_entry = int(np.floor(u_site * geometry.total_entries))
            if breadth > 1:
                bank_start = (first_entry // per_bank) * per_bank
                base_entry = bank_start + int(
                    np.floor(u_off * (per_bank - breadth + 1))
                )
            else:
                base_entry = first_entry

            u_bit, u_pin, u_align, u_col = rngs["mode"].random(4)
            is_mb = code in (2, 3)
            is_pin = code == 2 and u_pin < params.pin_fault_fraction
            aligned = (
                is_mb and not is_pin and u_align < params.byte_aligned_fraction
            )
            byte_col = int(np.floor(u_col * (BITS_PER_WORD // 8))) \
                if aligned else -1

            flips: dict[int, np.ndarray] = {}
            for index in range(breadth):
                entry = base_entry + index
                if not is_mb:
                    bit = int(np.floor(u_bit * _DATA_BITS))
                    flips[entry] = np.array([bit], dtype=np.int64)
                    continue
                u_words = rngs["words"].random()
                if is_pin:
                    nw = 2 + int(np.floor(u_words * (WORDS_PER_ENTRY - 1)))
                elif aligned:
                    nw = 1 + min(int(np.searchsorted(
                        cum_ba, u_words, side="right"
                    )), WORDS_PER_ENTRY - 1)
                else:
                    nw = 1 + min(int(np.searchsorted(
                        cum_na, u_words, side="right"
                    )), WORDS_PER_ENTRY - 1)
                rank = _inverse_permutations(rngs["pick"].random(4))
                words = np.nonzero(rank < nw)[0]
                if is_pin:
                    bit = int(np.floor(u_bit * BITS_PER_WORD))
                    flips[entry] = np.array(
                        [int(word) * BITS_PER_WORD + bit for word in words],
                        dtype=np.int64,
                    )
                    continue
                width = 8 if aligned else BITS_PER_WORD
                positions: list[int] = []
                for word in words:
                    u_inv, u_sparse, u_count = rngs["sev"].random(3)
                    if u_inv < params.inversion_fraction:
                        count = width
                    elif (
                        not aligned
                        and u_sparse < params.sparse_severity_fraction
                    ):
                        count = 2 + int(np.floor(u_count * 3))
                    else:
                        count = min(2 + int(np.searchsorted(
                            cdf_by_width[width], u_count, side="right"
                        )), width)
                    off_rank = _inverse_permutations(
                        rngs["off"].random(width)
                    )
                    offsets = np.nonzero(off_rank < count)[0]
                    base = int(word) * BITS_PER_WORD + (
                        byte_col * 8 if aligned else 0
                    )
                    positions.extend(base + int(o) for o in offsets)
                flips[entry] = np.array(sorted(positions), dtype=np.int64)
            events.append(SoftErrorEvent(
                time_s=float(time_s),
                event_class=classes[code],
                flips=flips,
            ))
        return events

"""Soft-error (SEU) event generator for the simulated beam campaign.

The generative model encodes the paper's Section-5 findings; the analysis
pipeline (:mod:`repro.beam.postprocess`) then *re-derives* the published
statistics from the simulated mismatch logs, exercising the same
classification code a real campaign would:

* events arrive as a Poisson process (mean-time-to-event is seconds in the
  beam while a read/write loop takes milliseconds, so events land in
  distinct loop iterations);
* event breadth/severity classes follow Figure 4a — SBSE 65%, MBME 28%,
  with the small remainder split between SBME and MBSE;
* MBME breadth is a long-tailed (truncated power-law) distribution reaching
  thousands of 32B entries (Figure 4b), with affected entries contiguous in
  one subarray — the locality attributed to DRAM logic faults;
* multi-bit errors are byte-aligned with probability 74.6% (Figure 4c): the
  same aligned byte of every affected 64b word, the footprint of a
  mat-local fault, usually touching one word per entry; non-byte-aligned
  errors usually corrupt all four words of an entry;
* bits-per-word severity is binomial ("random corruption"), except for an
  ~15% tendency to invert *every* bit of the affected byte/word
  (Figure 5's anomaly).

Flips are expressed over the 256 data bits of each entry (the
ECC-disabled microbenchmark can only observe data), using the *logical*
layout: word ``w`` occupies bits ``64w..64w+63``, byte ``b`` of a word its
bits ``8b..8b+7``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.dram.geometry import HBM2Geometry

__all__ = [
    "EventClass",
    "EventParameters",
    "SoftErrorEvent",
    "SoftErrorEventGenerator",
    "WORDS_PER_ENTRY",
    "BITS_PER_WORD",
]

WORDS_PER_ENTRY = 4
BITS_PER_WORD = 64


class EventClass(Enum):
    """Figure 4a's breadth/severity classes."""

    SBSE = "single-bit, single-entry"
    SBME = "single-bit, multiple-entry"
    MBSE = "multiple-bit, single-entry"
    MBME = "multiple-bit, multiple-entry"


@dataclass(frozen=True)
class EventParameters:
    """Tunable knobs of the generative model, defaulted to the paper."""

    #: mean time between SEU events with the GPU in the beam, seconds
    mean_time_to_event_s: float = 20.0
    #: Figure 4a class mixture (SBSE/SBME/MBSE/MBME)
    class_probabilities: tuple[float, float, float, float] = (0.65, 0.02, 0.05, 0.28)
    #: fraction of multi-bit errors confined to one aligned byte per word
    byte_aligned_fraction: float = 0.746
    #: fraction of affected bytes/words that invert entirely (Figure 5)
    inversion_fraction: float = 0.15
    #: words corrupted per entry for byte-aligned multi-bit errors
    byte_aligned_words_dist: tuple[float, float, float, float] = (0.88, 0.10, 0.015, 0.005)
    #: words corrupted per entry for non-byte-aligned multi-bit errors
    non_aligned_words_dist: tuple[float, float, float, float] = (0.25, 0.03, 0.02, 0.70)
    #: fraction of non-byte-aligned words with only 2-4 scattered flips
    #: (the source of Table 1's rare "2 Bits"/"3 Bits" patterns)
    sparse_severity_fraction: float = 0.10
    #: fraction of multi-bit single-entry faults hitting one interface pin
    #: (the same within-word bit across several beats; Table 1's "1 Pin")
    pin_fault_fraction: float = 0.04
    #: power-law exponent and cap of the MBME breadth distribution
    mbme_breadth_alpha: float = 1.05
    mbme_breadth_max: int = 6000
    #: breadth distribution of the rarer SBME events
    sbme_breadth_alpha: float = 1.6
    sbme_breadth_max: int = 64

    def __post_init__(self) -> None:
        if abs(sum(self.class_probabilities) - 1.0) > 1e-9:
            raise ValueError("class probabilities must sum to 1")
        for dist in (self.byte_aligned_words_dist, self.non_aligned_words_dist):
            if abs(sum(dist) - 1.0) > 1e-9:
                raise ValueError("words-per-entry distributions must sum to 1")


@dataclass(frozen=True)
class SoftErrorEvent:
    """One SEU: a set of per-entry data-bit flip positions."""

    time_s: float
    event_class: EventClass
    flips: dict[int, np.ndarray]  #: entry index -> sorted bit positions (0-255)

    @property
    def breadth(self) -> int:
        """Number of 32B entries affected."""
        return len(self.flips)

    @property
    def total_bits(self) -> int:
        return sum(positions.size for positions in self.flips.values())


class SoftErrorEventGenerator:
    """Draws SEU events according to :class:`EventParameters`."""

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        parameters: EventParameters | None = None,
        *,
        seed: int = 7,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.parameters = parameters or EventParameters()
        self._rng = np.random.default_rng(seed)

    # -- arrival process ----------------------------------------------------
    def events_in(self, duration_s: float, start_time_s: float = 0.0,
                  utilization: float = 1.0) -> list[SoftErrorEvent]:
        """Poisson arrivals over an in-beam interval.

        ``utilization`` models the Section-5 DRAM-utilization sweep: narrow
        array errors (SBSE/SBME — direct bitcell strikes) accrue with
        exposure *time*, while broad-and-severe logic errors (MBSE/MBME —
        strikes in the access path) only manifest on memory *accesses*, so
        their rate scales with the benchmark's utilization.  The default
        class mixture corresponds to full utilization.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        base = self.parameters.class_probabilities
        array_rate = (base[0] + base[1]) / self.parameters.mean_time_to_event_s
        logic_rate = (
            (base[2] + base[3]) * utilization
            / self.parameters.mean_time_to_event_s
        )
        total_rate = array_rate + logic_rate
        if total_rate <= 0.0:
            return []
        probabilities = (
            base[0] / (base[0] + base[1]) * array_rate / total_rate,
            base[1] / (base[0] + base[1]) * array_rate / total_rate,
            (base[2] / (base[2] + base[3]) * logic_rate / total_rate
             if logic_rate else 0.0),
            (base[3] / (base[2] + base[3]) * logic_rate / total_rate
             if logic_rate else 0.0),
        )
        events: list[SoftErrorEvent] = []
        clock = start_time_s
        while True:
            clock += float(self._rng.exponential(1.0 / total_rate))
            if clock >= start_time_s + duration_s:
                return events
            events.append(self.generate_event(clock, class_probabilities=probabilities))

    # -- event construction ----------------------------------------------------
    def generate_event(self, time_s: float,
                       class_probabilities: tuple[float, ...] | None = None
                       ) -> SoftErrorEvent:
        """Draw one event; an explicit class mixture overrides the default
        (used by the utilization-scaled arrival process)."""
        params = self.parameters
        draw = self._rng.choice(
            4, p=class_probabilities or params.class_probabilities
        )
        event_class = (EventClass.SBSE, EventClass.SBME,
                       EventClass.MBSE, EventClass.MBME)[draw]
        if event_class is EventClass.SBSE:
            flips = self._single_bit_flips(breadth=1)
        elif event_class is EventClass.SBME:
            breadth = self._power_law_breadth(
                params.sbme_breadth_alpha, params.sbme_breadth_max
            )
            flips = self._single_bit_flips(breadth=breadth)
        elif event_class is EventClass.MBSE:
            flips = self._multi_bit_flips(breadth=1)
        else:
            breadth = self._power_law_breadth(
                params.mbme_breadth_alpha, params.mbme_breadth_max
            )
            flips = self._multi_bit_flips(breadth=breadth)
        return SoftErrorEvent(time_s=time_s, event_class=event_class, flips=flips)

    # -- helpers -----------------------------------------------------------------
    def _power_law_breadth(self, alpha: float, cap: int) -> int:
        """Truncated discrete power law starting at 2 entries."""
        uniform = self._rng.random()
        breadth = int(2 * (1.0 - uniform) ** (-1.0 / alpha))
        return int(min(max(breadth, 2), cap))

    def _contiguous_entries(self, breadth: int) -> np.ndarray:
        """A run of consecutive entries inside one bank.

        Section 5 attributes multi-entry errors to faults in DRAM logic
        structures (row decoders, column muxes, sense amps), which are
        bank-local: a single strike never corrupts entries in two banks.
        Runs are clamped to the bank holding their random starting point.
        """
        per_bank = self.geometry.entries_per_bank
        breadth = min(breadth, per_bank)
        bank_start = (
            int(self._rng.integers(self.geometry.total_entries)) // per_bank
        ) * per_bank
        offset = int(self._rng.integers(per_bank - breadth + 1))
        base = bank_start + offset
        return np.arange(base, base + breadth)

    def _single_bit_flips(self, breadth: int) -> dict[int, np.ndarray]:
        """One flipped bit per entry, the same cell column for SBME."""
        bit = int(self._rng.integers(WORDS_PER_ENTRY * BITS_PER_WORD))
        if breadth == 1:
            entry = int(self._rng.integers(self.geometry.total_entries))
            return {entry: np.array([bit], dtype=np.int64)}
        entries = self._contiguous_entries(breadth)
        return {int(entry): np.array([bit], dtype=np.int64) for entry in entries}

    def _pin_fault_flips(self) -> dict[int, np.ndarray]:
        """A transient interface-pin fault: the same within-word bit flipped
        in 2-4 of one entry's words (the bit rides the same wire each beat)."""
        bit = int(self._rng.integers(BITS_PER_WORD))
        num_words = int(self._rng.integers(2, WORDS_PER_ENTRY + 1))
        words = self._rng.choice(WORDS_PER_ENTRY, size=num_words, replace=False)
        entry = int(self._rng.integers(self.geometry.total_entries))
        positions = sorted(int(word) * BITS_PER_WORD + bit for word in words)
        return {entry: np.array(positions, dtype=np.int64)}

    def _multi_bit_flips(self, breadth: int) -> dict[int, np.ndarray]:
        params = self.parameters
        if breadth == 1 and self._rng.random() < params.pin_fault_fraction:
            return self._pin_fault_flips()
        byte_aligned = self._rng.random() < params.byte_aligned_fraction
        if byte_aligned:
            # One mat-local fault: the same aligned byte of every word.
            byte_column = int(self._rng.integers(BITS_PER_WORD // 8))
            words_dist = params.byte_aligned_words_dist
        else:
            byte_column = -1
            words_dist = params.non_aligned_words_dist

        if breadth == 1:
            entries = np.array(
                [self._rng.integers(self.geometry.total_entries)], dtype=np.int64
            )
        else:
            entries = self._contiguous_entries(breadth)

        flips: dict[int, np.ndarray] = {}
        for entry in entries:
            num_words = 1 + int(self._rng.choice(WORDS_PER_ENTRY, p=words_dist))
            words = self._rng.choice(WORDS_PER_ENTRY, size=num_words, replace=False)
            positions: list[int] = []
            for word in words:
                # Multi-bit events corrupt at least 2 bits per affected word
                # (Figure 5's severity distributions start at 2).
                positions.extend(self._word_flips(int(word), byte_column, minimum=2))
            flips[int(entry)] = np.array(sorted(set(positions)), dtype=np.int64)
        return flips

    def _word_flips(self, word: int, byte_column: int, minimum: int = 1
                    ) -> list[int]:
        """Flipped bit positions within one 64b word.

        ``byte_column >= 0`` confines flips to that aligned byte (mat-local
        fault); otherwise they spread over the whole word.  Severity is
        binomial with an ``inversion_fraction`` chance of flipping
        everything.
        """
        params = self.parameters
        width = 8 if byte_column >= 0 else BITS_PER_WORD
        if self._rng.random() < params.inversion_fraction:
            count = width
        elif (
            byte_column < 0
            and self._rng.random() < params.sparse_severity_fraction
        ):
            count = int(self._rng.integers(2, 5))
        else:
            count = 0
            while count < minimum:
                count = int(self._rng.binomial(width, 0.5))
        offsets = self._rng.choice(width, size=min(count, width), replace=False)
        base = word * BITS_PER_WORD + (byte_column * 8 if byte_column >= 0 else 0)
        return [base + int(offset) for offset in offsets]

"""Displacement-damage model for intermittent DRAM errors (Section 4).

Energetic neutrons can knock silicon atoms out of the lattice near a DRAM
access transistor, raising its leakage current and collapsing the cell's
retention time by orders of magnitude.  The model reproduces every
behaviour the paper characterizes:

* **Normally-distributed retention.**  Damaged cells receive retention
  times drawn from a normal distribution (Figure 3b); the number of cells
  observable at a refresh period T is ``pool × Φ((T − μ)/σ)`` (Figure 3a).
  Defaults (μ = 20 ms, σ = 10 ms, pool ≈ 2,700 cells per 32GB GPU) are
  fitted to the paper's measured counts: ~294 cells at 8 ms, ~1,000 at the
  default 16 ms, ~2,589 at 48 ms.
* **Linear accumulation with saturation.**  The weak-cell count grows
  linearly with fluence (Figure 3c, R² = 0.97) until the finite pool of
  *leaky* cells is exhausted, after which accumulation slows — the paper's
  hypothesis for the asymptote at roughly a thousand 16 ms-observable
  cells.
* **Unidirectional errors.**  99.8% of damaged cells leak 1 → 0.
* **Partial annealing.**  Out of the beam, retention times drift back up;
  modelled as an exponential approach that shifts the distribution mean,
  which reproduces the paper's observation that short-retention counts
  shrink much faster (−26% at 8 ms) than long-retention counts (−2.5% at
  48 ms).

Displacement damage is an artifact of accelerated testing: at terrestrial
flux the accumulation rate is ~2.5e8× lower, so the model (like the paper)
treats it as a beam-only effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig, WeakCell

__all__ = ["DisplacementDamageModel", "DamageParameters"]


@dataclass(frozen=True)
class DamageParameters:
    """Physical parameters of the damage model (per-GPU scale)."""

    #: finite pool of leaky cells that can become weak (per 32GB GPU)
    leaky_pool: int = 2700
    #: mean / std-dev of damaged-cell retention time, seconds
    retention_mean_s: float = 20e-3
    retention_sigma_s: float = 10e-3
    #: fluence (neutrons/cm²) at which ~63% of the pool is damaged;
    #: chosen so damage accrues over tens of minutes of ChipIR beam time
    saturation_fluence: float = 1.5e9
    #: fraction of damaged cells leaking in the dominant 1 -> 0 direction
    one_to_zero_fraction: float = 0.998
    #: annealing raises the retention mean by this much in the limit
    anneal_shift_s: float = 1.5e-3
    #: time constant of annealing, seconds (~2 hours)
    anneal_tau_s: float = 7200.0


class DisplacementDamageModel:
    """Stochastic weak-cell creation, observation and annealing."""

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        parameters: DamageParameters | None = None,
        *,
        seed: int = 2021,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.parameters = parameters or DamageParameters()
        self._rng = np.random.default_rng(seed)
        self._damaged_fraction = 0.0  # fraction of the leaky pool damaged
        self._cells: list[WeakCell] = []
        self._anneal_shift = 0.0  # current upward retention shift, seconds

    # -- accumulation ------------------------------------------------------
    def expected_damaged(self, fluence: float) -> float:
        """Mean damaged-cell count after a given cumulative fluence.

        ``pool × (1 − exp(−fluence/F_sat))`` — linear in fluence early on
        (the Figure 3c regime) and saturating at the pool size.
        """
        params = self.parameters
        return params.leaky_pool * (1.0 - np.exp(-fluence / params.saturation_fluence))


    def accumulate(self, step_fluence: float) -> list[WeakCell]:
        """Damage new cells for a fluence increment; returns the new cells."""
        if step_fluence < 0:
            raise ValueError("fluence increment must be non-negative")
        params = self.parameters
        depletion = 1.0 - self._damaged_fraction
        expected_new = (
            params.leaky_pool
            * depletion
            * (1.0 - np.exp(-step_fluence / params.saturation_fluence))
        )
        count = int(self._rng.poisson(expected_new))
        count = min(count, params.leaky_pool - len(self._cells))
        self._damaged_fraction = min(
            1.0, self._damaged_fraction + depletion * (1.0 - np.exp(
                -step_fluence / params.saturation_fluence))
        )

        new_cells = []
        total_entries = self.geometry.total_entries
        entry_bits = self.geometry.entry_bits
        retentions = self._rng.normal(
            params.retention_mean_s, params.retention_sigma_s, size=count
        )
        directions = self._rng.random(count) < params.one_to_zero_fraction
        for retention, leaks_low in zip(retentions, directions):
            cell = WeakCell(
                entry_index=int(self._rng.integers(total_entries)),
                bit=int(self._rng.integers(entry_bits)),
                retention_s=max(float(retention), 1e-6),
                leaks_to=0 if leaks_low else 1,
            )
            self._cells.append(cell)
            new_cells.append(cell)
        return new_cells

    # -- annealing ----------------------------------------------------------
    def anneal(self, seconds: float) -> None:
        """Advance out-of-beam time; retention times drift upward."""
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        params = self.parameters
        remaining = params.anneal_shift_s - self._anneal_shift
        self._anneal_shift += remaining * (1.0 - np.exp(-seconds / params.anneal_tau_s))

    # -- observation ----------------------------------------------------------
    @property
    def damaged_cells(self) -> list[WeakCell]:
        """All damaged cells with annealing applied to their retention."""
        return [
            WeakCell(
                entry_index=cell.entry_index,
                bit=cell.bit,
                retention_s=cell.retention_s + self._anneal_shift,
                leaks_to=cell.leaks_to,
            )
            for cell in self._cells
        ]

    def observable_cells(self, refresh: RefreshConfig) -> list[WeakCell]:
        """Cells whose (annealed) retention is below the refresh period."""
        return [cell for cell in self.damaged_cells if cell.leaks_under(refresh)]

    def observable_count(self, refresh: RefreshConfig) -> int:
        return len(self.observable_cells(refresh))

    def predicted_observable(self, refresh: RefreshConfig) -> float:
        """Model prediction: damaged count × Φ((T − μ_eff)/σ) (Figure 3a)."""
        from scipy.stats import norm

        params = self.parameters
        mean = params.retention_mean_s + self._anneal_shift
        return len(self._cells) * float(
            norm.cdf((refresh.period_s - mean) / params.retention_sigma_s)
        )

"""Displacement-damage model for intermittent DRAM errors (Section 4).

Energetic neutrons can knock silicon atoms out of the lattice near a DRAM
access transistor, raising its leakage current and collapsing the cell's
retention time by orders of magnitude.  The model reproduces every
behaviour the paper characterizes:

* **Normally-distributed retention.**  Damaged cells receive retention
  times drawn from a normal distribution (Figure 3b); the number of cells
  observable at a refresh period T is ``pool × Φ((T − μ)/σ)`` (Figure 3a).
  Defaults (μ = 20 ms, σ = 10 ms, pool ≈ 2,700 cells per 32GB GPU) are
  fitted to the paper's measured counts: ~294 cells at 8 ms, ~1,000 at the
  default 16 ms, ~2,589 at 48 ms.
* **Linear accumulation with saturation.**  The weak-cell count grows
  linearly with fluence (Figure 3c, R² = 0.97) until the finite pool of
  *leaky* cells is exhausted, after which accumulation slows — the paper's
  hypothesis for the asymptote at roughly a thousand 16 ms-observable
  cells.
* **Unidirectional errors.**  99.8% of damaged cells leak 1 → 0.
* **Partial annealing.**  Out of the beam, retention times drift back up;
  modelled as an exponential approach that shifts the distribution mean,
  which reproduces the paper's observation that short-retention counts
  shrink much faster (−26% at 8 ms) than long-retention counts (−2.5% at
  48 ms).

Displacement damage is an artifact of accelerated testing: at terrestrial
flux the accumulation rate is ~2.5e8× lower, so the model (like the paper)
treats it as a beam-only effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig, WeakCell

__all__ = ["DisplacementDamageModel", "DamageParameters"]


@dataclass(frozen=True)
class DamageParameters:
    """Physical parameters of the damage model (per-GPU scale)."""

    #: finite pool of leaky cells that can become weak (per 32GB GPU)
    leaky_pool: int = 2700
    #: mean / std-dev of damaged-cell retention time, seconds
    retention_mean_s: float = 20e-3
    retention_sigma_s: float = 10e-3
    #: fluence (neutrons/cm²) at which ~63% of the pool is damaged;
    #: chosen so damage accrues over tens of minutes of ChipIR beam time
    saturation_fluence: float = 1.5e9
    #: fraction of damaged cells leaking in the dominant 1 -> 0 direction
    one_to_zero_fraction: float = 0.998
    #: annealing raises the retention mean by this much in the limit
    anneal_shift_s: float = 1.5e-3
    #: time constant of annealing, seconds (~2 hours)
    anneal_tau_s: float = 7200.0


class DisplacementDamageModel:
    """Stochastic weak-cell creation, observation and annealing.

    Cell state is columnar — parallel entry/bit/retention/direction arrays
    — so observation queries (``observable_count`` over many refresh
    periods, the Figure 3a sweep) are single vector comparisons instead of
    per-cell :class:`WeakCell` rebuilds.  The list views remain available
    for compatibility.
    """

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        parameters: DamageParameters | None = None,
        *,
        seed: int = 2021,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.parameters = parameters or DamageParameters()
        self._rng = np.random.default_rng(seed)
        self._damaged_fraction = 0.0  # fraction of the leaky pool damaged
        self._entry = np.empty(0, dtype=np.int64)
        self._bit = np.empty(0, dtype=np.int64)
        self._retention = np.empty(0, dtype=np.float64)
        self._leaks = np.empty(0, dtype=np.int64)
        self._anneal_shift = 0.0  # current upward retention shift, seconds

    @property
    def damaged_count(self) -> int:
        return int(self._entry.size)

    # -- accumulation ------------------------------------------------------
    def expected_damaged(self, fluence: float) -> float:
        """Mean damaged-cell count after a given cumulative fluence.

        ``pool × (1 − exp(−fluence/F_sat))`` — linear in fluence early on
        (the Figure 3c regime) and saturating at the pool size.
        """
        params = self.parameters
        return params.leaky_pool * (1.0 - np.exp(-fluence / params.saturation_fluence))


    def accumulate_columns(
        self, step_fluence: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Damage new cells for a fluence increment; returns their
        ``(entry, bit, retention, leaks_to)`` columns (pre-anneal)."""
        if step_fluence < 0:
            raise ValueError("fluence increment must be non-negative")
        params = self.parameters
        depletion = 1.0 - self._damaged_fraction
        expected_new = (
            params.leaky_pool
            * depletion
            * (1.0 - np.exp(-step_fluence / params.saturation_fluence))
        )
        count = int(self._rng.poisson(expected_new))
        count = min(count, params.leaky_pool - self.damaged_count)
        self._damaged_fraction = min(
            1.0, self._damaged_fraction + depletion * (1.0 - np.exp(
                -step_fluence / params.saturation_fluence))
        )

        retentions = np.maximum(self._rng.normal(
            params.retention_mean_s, params.retention_sigma_s, size=count
        ), 1e-6)
        directions = self._rng.random(count) < params.one_to_zero_fraction
        entries = self._rng.integers(
            self.geometry.total_entries, size=count
        ).astype(np.int64)
        bits = self._rng.integers(
            self.geometry.entry_bits, size=count
        ).astype(np.int64)
        leaks = np.where(directions, 0, 1).astype(np.int64)
        self._entry = np.concatenate([self._entry, entries])
        self._bit = np.concatenate([self._bit, bits])
        self._retention = np.concatenate([self._retention, retentions])
        self._leaks = np.concatenate([self._leaks, leaks])
        return entries, bits, retentions, leaks

    def accumulate(self, step_fluence: float) -> list[WeakCell]:
        """Damage new cells for a fluence increment; returns the new cells."""
        entries, bits, retentions, leaks = self.accumulate_columns(
            step_fluence
        )
        return [
            WeakCell(
                entry_index=int(entry),
                bit=int(bit),
                retention_s=float(retention),
                leaks_to=int(leak),
            )
            for entry, bit, retention, leak in zip(
                entries, bits, retentions, leaks
            )
        ]

    # -- annealing ----------------------------------------------------------
    def anneal(self, seconds: float) -> None:
        """Advance out-of-beam time; retention times drift upward."""
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        params = self.parameters
        remaining = params.anneal_shift_s - self._anneal_shift
        self._anneal_shift += remaining * (1.0 - np.exp(-seconds / params.anneal_tau_s))

    # -- observation ----------------------------------------------------------
    def damaged_columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(entry, bit, retention, leaks_to)`` columns of every damaged
        cell, annealing applied to retention."""
        return (
            self._entry, self._bit,
            self._retention + self._anneal_shift, self._leaks,
        )

    def _cells_from_columns(self, mask: np.ndarray | None = None
                            ) -> list[WeakCell]:
        entry, bit, retention, leaks = self.damaged_columns()
        if mask is not None:
            entry, bit = entry[mask], bit[mask]
            retention, leaks = retention[mask], leaks[mask]
        return [
            WeakCell(int(e), int(b), float(r), int(d))
            for e, b, r, d in zip(entry, bit, retention, leaks)
        ]

    @property
    def damaged_cells(self) -> list[WeakCell]:
        """All damaged cells with annealing applied to their retention."""
        return self._cells_from_columns()

    def observable_cells(self, refresh: RefreshConfig) -> list[WeakCell]:
        """Cells whose (annealed) retention is below the refresh period."""
        retention = self._retention + self._anneal_shift
        return self._cells_from_columns(retention < refresh.period_s)

    def observable_count(self, refresh: RefreshConfig) -> int:
        retention = self._retention + self._anneal_shift
        return int((retention < refresh.period_s).sum())

    def observable_counts(self, periods_s) -> np.ndarray:
        """Observable-cell counts for many refresh periods at once
        (the Figure 3a sweep as one vector comparison)."""
        periods = np.asarray(periods_s, dtype=np.float64)
        retention = self._retention + self._anneal_shift
        return (retention[:, None] < periods[None, :]).sum(axis=0)

    def predicted_observable(self, refresh: RefreshConfig) -> float:
        """Model prediction: damaged count × Φ((T − μ_eff)/σ) (Figure 3a)."""
        from scipy.stats import norm

        params = self.parameters
        mean = params.retention_mean_s + self._anneal_shift
        return self.damaged_count * float(
            norm.cdf((refresh.period_s - mean) / params.retention_sigma_s)
        )

"""Columnar containers for the beam/characterization hot path.

The Section 3-5 pipeline used to move corruption around as
``dict[int, np.ndarray]`` — one tiny array per affected entry, one dict per
event, one Python loop iteration per record.  Statistics-scale campaigns
(thousands of SEUs, MBME events spanning up to 6,000 entries) spend nearly
all their time in that plumbing, so this module replaces it with two flat,
NumPy-native tables:

* :class:`FlipTable` — a set of events as four parallel columns: a per-site
  ``(event, entry)`` pair plus a CSR view of each site's flipped data bits.
  Both the ground-truth generator and the reconstructed-event grouper
  produce one.
* :class:`RecordTable` — the columnar mirror of a
  :class:`~repro.beam.microbenchmark.MismatchRecord` list (the campaign's
  time-stamped mismatch log).

Both tables convert losslessly to and from the original scalar objects, so
the retained reference paths remain first-class oracles; the packed
``(N, 5)`` ``uint64`` views reuse PR 1's bit transport
(:func:`repro.gf.gf2.pack_rows`: bit ``i`` lands in word ``i // 64`` at
weight ``2**(i % 64)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arrays import concat_or_empty
from repro.gf.gf2 import pack_rows

__all__ = [
    "FlipTable",
    "RecordTable",
    "pack_positions",
    "unpack_packed_rows",
    "ENTRY_BITS",
    "DATA_BITS",
]

ENTRY_BITS = 288  #: transmitted bits per entry (data + ECC)
DATA_BITS = 256  #: observable data bits per entry
PACKED_WORDS = -(-ENTRY_BITS // 64)  # 5


def pack_positions(site_of_flip: np.ndarray, bit: np.ndarray,
                   n_sites: int) -> np.ndarray:
    """Scatter flat (site, bit) flip pairs into packed ``(n_sites, 5)`` rows."""
    rows = np.zeros((n_sites, PACKED_WORDS), dtype=np.uint64)
    if bit.size:
        word = bit >> 6
        mask = np.uint64(1) << (bit & 63).astype(np.uint64)
        np.bitwise_or.at(rows, (site_of_flip, word), mask)
    return rows


def unpack_packed_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_positions`: flat ``(row_of_flip, bit)`` pairs.

    Bits come back sorted by (row, bit) — the order a per-entry scan would
    report them in.
    """
    rows = np.asarray(rows, dtype=np.uint64)
    bits = np.unpackbits(
        rows.view(np.uint8), axis=-1, bitorder="little"
    )[..., :ENTRY_BITS]
    row_of_flip, bit = np.nonzero(bits)
    return row_of_flip.astype(np.int64), bit.astype(np.int64)


def _csr_from_counts(counts: np.ndarray) -> np.ndarray:
    starts = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return starts


@dataclass
class FlipTable:
    """A batch of SEU events as flat columns.

    ``site_event`` is non-decreasing (events are contiguous site runs) and
    ``flip_bit`` is sorted ascending within each site — the same invariants
    the scalar ``dict[int, np.ndarray]`` representation kept implicitly.
    """

    n_events: int
    site_event: np.ndarray  #: (S,) int64 — owning event id of each site
    site_entry: np.ndarray  #: (S,) int64 — memory entry index of each site
    site_flip_start: np.ndarray  #: (S+1,) int64 — CSR offsets into flip_bit
    flip_bit: np.ndarray  #: (F,) integer — data-bit offsets 0-255 (int64
    #: from the scalar/columnar paths, int16 off the shm transport)
    #: per-event metadata columns, each (n_events,) — e.g. ``time_s``,
    #: ``class_code`` for ground truth; ``run``/``write_cycle``/``read_pass``
    #: for reconstructed events
    event_columns: dict[str, np.ndarray] = field(default_factory=dict)

    # -- shape helpers -----------------------------------------------------
    @property
    def n_sites(self) -> int:
        return self.site_event.size

    @property
    def n_flips(self) -> int:
        return self.flip_bit.size

    def flips_per_site(self) -> np.ndarray:
        return np.diff(self.site_flip_start)

    def event_site_start(self) -> np.ndarray:
        """(E+1,) CSR offsets of each event's site run."""
        return _csr_from_counts(
            np.bincount(self.site_event, minlength=self.n_events)
        ).astype(np.int64)

    def breadths(self) -> np.ndarray:
        """Entries affected per event (Figure 4b's quantity)."""
        return np.bincount(self.site_event, minlength=self.n_events)

    def total_bits(self) -> np.ndarray:
        """Flipped bits per event."""
        counts = np.zeros(self.n_events, dtype=np.int64)
        np.add.at(counts, self.site_event, self.flips_per_site())
        return counts

    def site_of_flip(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.n_sites, dtype=np.int64), self.flips_per_site()
        )

    # -- packed view -------------------------------------------------------
    def packed_site_rows(self) -> np.ndarray:
        """Per-site 288-bit flip vectors, bit-packed to ``(S, 5)`` uint64."""
        return pack_positions(self.site_of_flip(), self.flip_bit, self.n_sites)

    # -- conversions -------------------------------------------------------
    @classmethod
    def from_flips(
        cls,
        site_event: np.ndarray,
        site_entry: np.ndarray,
        flips_per_site: np.ndarray,
        flip_bit: np.ndarray,
        *,
        n_events: int,
        event_columns: dict[str, np.ndarray] | None = None,
    ) -> FlipTable:
        flip_bit = np.asarray(flip_bit)
        if not np.issubdtype(flip_bit.dtype, np.integer):
            flip_bit = flip_bit.astype(np.int64)
        return cls(
            n_events=int(n_events),
            site_event=np.asarray(site_event, dtype=np.int64),
            site_entry=np.asarray(site_entry, dtype=np.int64),
            site_flip_start=_csr_from_counts(
                np.asarray(flips_per_site, dtype=np.int64)
            ),
            # integer width is preserved: the shm engine ships int16 bits
            # (values < ENTRY_BITS) and the statistics kernels accept any
            # integer dtype, so upcasting would only double the footprint
            flip_bit=flip_bit,
            event_columns=dict(event_columns or {}),
        )

    @classmethod
    def from_events(cls, events) -> FlipTable:
        """Columnarize scalar ground-truth
        :class:`~repro.beam.events.SoftErrorEvent` objects (or any object
        with ``.flips``); per-event ``time_s`` is preserved when present."""
        site_event: list[int] = []
        site_entry: list[int] = []
        counts: list[int] = []
        bits: list[np.ndarray] = []
        times = []
        for index, event in enumerate(events):
            times.append(getattr(event, "time_s", 0.0))
            for entry, positions in event.flips.items():
                positions = np.asarray(positions, dtype=np.int64).reshape(-1)
                site_event.append(index)
                site_entry.append(int(entry))
                counts.append(positions.size)
                bits.append(positions)
        return cls.from_flips(
            np.array(site_event, dtype=np.int64),
            np.array(site_entry, dtype=np.int64),
            np.array(counts, dtype=np.int64),
            concat_or_empty(bits, np.int64),
            n_events=len(times),
            event_columns={"time_s": np.array(times, dtype=np.float64)},
        )

    @classmethod
    def from_observed_events(cls, events) -> FlipTable:
        """Columnarize :class:`~repro.beam.postprocess.ObservedEvent`
        objects: one site per ``flips`` item in insertion order, bits
        sorted ascending within each site (the table invariant — observed
        flip tuples already satisfy it, sorting is a cheap no-op then).

        This is how the streaming accumulator folds the beam run's
        recovered events with the same kernels (and therefore the same
        tallies) as the columnar pipeline.
        """
        site_event: list[int] = []
        site_entry: list[int] = []
        counts: list[int] = []
        bits: list[np.ndarray] = []
        runs, cycles, passes = [], [], []
        for index, event in enumerate(events):
            runs.append(event.run)
            cycles.append(event.write_cycle)
            passes.append(event.read_pass)
            for entry, positions in event.flips.items():
                positions = np.sort(
                    np.asarray(positions, dtype=np.int64).reshape(-1)
                )
                site_event.append(index)
                site_entry.append(int(entry))
                counts.append(positions.size)
                bits.append(positions)
        return cls.from_flips(
            np.array(site_event, dtype=np.int64),
            np.array(site_entry, dtype=np.int64),
            np.array(counts, dtype=np.int64),
            concat_or_empty(bits, np.int64),
            n_events=len(runs),
            event_columns={
                "run": np.array(runs, dtype=np.int64),
                "write_cycle": np.array(cycles, dtype=np.int64),
                "read_pass": np.array(passes, dtype=np.int64),
            },
        )

    def to_events(self):
        """Reconstruct scalar :class:`~repro.beam.events.SoftErrorEvent`
        ground-truth objects (requires ``time_s`` and ``class_code``)."""
        from repro.beam.events import EventClass, SoftErrorEvent

        classes = list(EventClass)
        times = self.event_columns["time_s"]
        codes = self.event_columns["class_code"]
        starts = self.event_site_start()
        events = []
        for index in range(self.n_events):
            flips: dict[int, np.ndarray] = {}
            for site in range(int(starts[index]), int(starts[index + 1])):
                lo = int(self.site_flip_start[site])
                hi = int(self.site_flip_start[site + 1])
                flips[int(self.site_entry[site])] = self.flip_bit[lo:hi].copy()
            events.append(SoftErrorEvent(
                time_s=float(times[index]),
                event_class=classes[int(codes[index])],
                flips=flips,
            ))
        return events

    def to_observed_events(self):
        """Reconstruct scalar :class:`~repro.beam.postprocess.ObservedEvent`
        objects (requires ``run``/``write_cycle``/``read_pass`` columns)."""
        from repro.beam.postprocess import ObservedEvent

        runs = self.event_columns["run"]
        cycles = self.event_columns["write_cycle"]
        passes = self.event_columns["read_pass"]
        starts = self.event_site_start()
        events = []
        for index in range(self.n_events):
            flips: dict[int, tuple[int, ...]] = {}
            for site in range(int(starts[index]), int(starts[index + 1])):
                lo = int(self.site_flip_start[site])
                hi = int(self.site_flip_start[site + 1])
                flips[int(self.site_entry[site])] = tuple(
                    int(b) for b in self.flip_bit[lo:hi]
                )
            events.append(ObservedEvent(
                run=int(runs[index]),
                write_cycle=int(cycles[index]),
                read_pass=int(passes[index]),
                flips=flips,
            ))
        return events


@dataclass
class RecordTable:
    """Columnar mirror of a list of
    :class:`~repro.beam.microbenchmark.MismatchRecord` objects."""

    time_s: np.ndarray  #: (R,) float64
    run: np.ndarray  #: (R,) int64
    pattern_code: np.ndarray  #: (R,) int64 — index into :attr:`patterns`
    write_cycle: np.ndarray  #: (R,) int64
    read_pass: np.ndarray  #: (R,) int64
    inverted: np.ndarray  #: (R,) bool
    entry_index: np.ndarray  #: (R,) int64
    flip_start: np.ndarray  #: (R+1,) int64 — CSR offsets into flip_bit
    flip_bit: np.ndarray  #: (F,) int64 — data-bit offsets 0-255
    patterns: tuple[str, ...] = ()  #: pattern-name vocabulary

    @property
    def n_records(self) -> int:
        return self.entry_index.size

    def flips_per_record(self) -> np.ndarray:
        return np.diff(self.flip_start)

    def record_of_flip(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.n_records, dtype=np.int64), self.flips_per_record()
        )

    def select(self, mask: np.ndarray) -> RecordTable:
        """Row subset (order preserved), CSR re-based."""
        mask = np.asarray(mask, dtype=bool)
        keep_flags = np.repeat(mask, self.flips_per_record())
        counts = self.flips_per_record()[mask]
        return RecordTable(
            time_s=self.time_s[mask],
            run=self.run[mask],
            pattern_code=self.pattern_code[mask],
            write_cycle=self.write_cycle[mask],
            read_pass=self.read_pass[mask],
            inverted=self.inverted[mask],
            entry_index=self.entry_index[mask],
            flip_start=_csr_from_counts(counts),
            flip_bit=self.flip_bit[keep_flags],
            patterns=self.patterns,
        )

    @classmethod
    def from_columns(
        cls,
        *,
        time_s,
        run,
        pattern_code,
        write_cycle,
        read_pass,
        inverted,
        entry_index,
        flips_per_record,
        flip_bit,
        patterns: tuple[str, ...],
    ) -> RecordTable:
        return cls(
            time_s=np.asarray(time_s, dtype=np.float64),
            run=np.asarray(run, dtype=np.int64),
            pattern_code=np.asarray(pattern_code, dtype=np.int64),
            write_cycle=np.asarray(write_cycle, dtype=np.int64),
            read_pass=np.asarray(read_pass, dtype=np.int64),
            inverted=np.asarray(inverted, dtype=bool),
            entry_index=np.asarray(entry_index, dtype=np.int64),
            flip_start=_csr_from_counts(
                np.asarray(flips_per_record, dtype=np.int64)
            ),
            flip_bit=np.asarray(flip_bit, dtype=np.int64),
            patterns=patterns,
        )

    @classmethod
    def from_records(cls, records) -> RecordTable:
        """Columnarize a scalar mismatch log (lossless round trip)."""
        vocab: dict[str, int] = {}
        codes = np.empty(len(records), dtype=np.int64)
        counts = np.empty(len(records), dtype=np.int64)
        bits: list[tuple[int, ...]] = []
        for index, record in enumerate(records):
            codes[index] = vocab.setdefault(record.pattern, len(vocab))
            counts[index] = len(record.bit_positions)
            bits.append(record.bit_positions)
        flat = np.array(
            [bit for positions in bits for bit in positions], dtype=np.int64
        )
        return cls.from_columns(
            time_s=[r.time_s for r in records],
            run=[r.run for r in records],
            pattern_code=codes,
            write_cycle=[r.write_cycle for r in records],
            read_pass=[r.read_pass for r in records],
            inverted=[r.inverted for r in records],
            entry_index=[r.entry_index for r in records],
            flips_per_record=counts,
            flip_bit=flat,
            patterns=tuple(vocab),
        )

    def to_records(self):
        """Back to scalar :class:`~repro.beam.microbenchmark.MismatchRecord`
        objects, order preserved."""
        from repro.beam.microbenchmark import MismatchRecord

        records = []
        for index in range(self.n_records):
            lo = int(self.flip_start[index])
            hi = int(self.flip_start[index + 1])
            records.append(MismatchRecord(
                time_s=float(self.time_s[index]),
                run=int(self.run[index]),
                pattern=self.patterns[int(self.pattern_code[index])],
                write_cycle=int(self.write_cycle[index]),
                read_pass=int(self.read_pass[index]),
                inverted=bool(self.inverted[index]),
                entry_index=int(self.entry_index[index]),
                bit_positions=tuple(int(b) for b in self.flip_bit[lo:hi]),
            ))
        return records


def _packed_rows_noop() -> np.ndarray:
    """Placeholder keeping pack_rows imported for re-export convenience."""
    return pack_rows(np.zeros((0, ENTRY_BITS), dtype=np.uint8))

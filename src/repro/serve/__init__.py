"""``repro serve`` — multi-tenant async campaign service.

Layers (stdlib-only, no web framework):

* :mod:`repro.serve.jobs` — job model, parameter normalization, and the
  dedupe registry (identical in-flight submissions collapse to one job);
* :mod:`repro.serve.journal` — write-ahead job journal: fsync'd state
  transitions under the run store, replayed on startup so a daemon
  crash loses no acknowledged work;
* :mod:`repro.serve.scheduler` — bounded priority + weighted-deficit
  round-robin fair-share queue across tenants;
* :mod:`repro.serve.runner` — executes a job as the *exact* CLI command
  body (byte-identical reports) with store-backed resume and
  cooperative cancellation (:class:`~repro.serve.runner.JobCancelled`);
* :mod:`repro.serve.sse` — per-job broadcast channels and server-sent
  event encoding (ids monotonic across restarts);
* :mod:`repro.serve.server` — the asyncio HTTP daemon (``repro serve``);
* :mod:`repro.serve.client` — the thin retrying client (``repro
  submit``, ``repro jobs``).
"""

from repro.serve.jobs import JobError, JobRegistry, UnknownJobError
from repro.serve.journal import JobJournal, JournalReplay
from repro.serve.runner import JobCancelled, execute_job, job_keys
from repro.serve.scheduler import FairShareScheduler, QueueFull
from repro.serve.sse import BroadcastChannel, encode_sse

__all__ = [
    "BroadcastChannel",
    "FairShareScheduler",
    "JobCancelled",
    "JobError",
    "JobJournal",
    "JobRegistry",
    "JournalReplay",
    "QueueFull",
    "UnknownJobError",
    "encode_sse",
    "execute_job",
    "job_keys",
]

"""Thin stdlib client for the ``repro serve`` daemon.

:class:`ServeClient` wraps ``http.client`` (one connection per request —
the daemon speaks ``Connection: close``) and exposes the API as plain
methods; :meth:`ServeClient.watch` parses the SSE stream into event
dicts.  The ``repro submit`` / ``repro jobs`` subcommands are wired here
via :func:`add_client_parsers`.

The daemon URL resolves, in order: explicit ``--url``, the
``REPRO_SERVE_URL`` environment variable, then the default
``http://127.0.0.1:8023``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
from urllib.parse import urlencode, urlsplit

__all__ = [
    "DEFAULT_URL",
    "ServeClient",
    "ServeError",
    "add_client_parsers",
    "cmd_jobs",
    "cmd_submit",
]

DEFAULT_URL = "http://127.0.0.1:8023"

#: events that end a watch
_TERMINAL = {"completed", "failed", "cancelled"}


class ServeError(RuntimeError):
    """The daemon could not be reached or answered with garbage."""


def resolve_url(url: str | None = None) -> str:
    return (url or os.environ.get("REPRO_SERVE_URL") or DEFAULT_URL).rstrip("/")


class ServeClient:
    """One daemon endpoint; every call opens a fresh connection."""

    def __init__(self, url: str | None = None, *,
                 timeout: float = 30.0) -> None:
        self.url = resolve_url(url)
        split = urlsplit(self.url)
        if split.scheme != "http" or not split.hostname:
            raise ServeError(f"unsupported daemon URL {self.url!r} "
                             f"(need http://host:port)")
        self.host = split.hostname
        self.port = split.port or 8023
        self.timeout = timeout

    def _connect(self, timeout: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout)

    def request(self, method: str, path: str,
                body: dict | None = None) -> tuple[int, dict]:
        """One JSON round-trip; returns ``(status, payload)``."""
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach repro serve at {self.url}: {exc}"
                ) from exc
            try:
                decoded = json.loads(raw.decode() or "{}")
            except ValueError as exc:
                raise ServeError(
                    f"non-JSON response from {self.url} "
                    f"({response.status}): {raw[:200]!r}") from exc
            return response.status, decoded
        finally:
            conn.close()

    # -- API calls ------------------------------------------------------------
    def health(self) -> dict:
        return self._expect_ok("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._expect_ok("GET", "/v1/stats")

    def submit(self, kind: str, params: dict | None = None, *,
               tenant: str = "default",
               priority: int = 0) -> tuple[int, dict]:
        """Submit a job; returns the raw ``(status, payload)`` pair.

        201 = newly queued, 200 = attached to an identical in-flight or
        queued job (dedupe), 429 = queue full (payload carries
        ``retry_after_s``).
        """
        return self.request("POST", "/v1/jobs", {
            "kind": kind, "params": params or {},
            "tenant": tenant, "priority": priority,
        })

    def jobs(self, *, tenant: str | None = None,
             state: str | None = None) -> list[dict]:
        query = {k: v for k, v in (("tenant", tenant),
                                   ("state", state)) if v}
        path = "/v1/jobs" + (f"?{urlencode(query)}" if query else "")
        return self._expect_ok("GET", path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._expect_ok("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> tuple[int, dict]:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel")

    def watch(self, job_id: str, *, timeout: float = 3600.0):
        """Yield SSE event dicts until the job reaches a terminal state.

        Each yielded dict is ``{"id", "event", "data"}`` with ``data``
        JSON-decoded.  History is replayed first, so watching a finished
        job still yields its full event trail.
        """
        conn = self._connect(timeout=timeout)
        try:
            try:
                conn.request("GET", f"/v1/jobs/{job_id}/events")
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach repro serve at {self.url}: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                raise ServeError(self._error_text(response.status, raw))
            event: dict = {}
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.decode().rstrip("\r\n")
                if not line:
                    if "event" in event:
                        yield event
                        if event["event"] in _TERMINAL:
                            return
                    event = {}
                    continue
                if line.startswith(":"):  # keepalive comment
                    continue
                field, _, value = line.partition(":")
                value = value.removeprefix(" ")
                if field == "id":
                    event["id"] = int(value)
                elif field == "event":
                    event["event"] = value
                elif field == "data":
                    try:
                        event["data"] = json.loads(value)
                    except ValueError:
                        event["data"] = value
        finally:
            conn.close()

    def _expect_ok(self, method: str, path: str) -> dict:
        status, payload = self.request(method, path)
        if status != 200:
            raise ServeError(self._error_text(status, payload))
        return payload

    def _error_text(self, status: int, payload) -> str:
        if isinstance(payload, dict):
            detail = payload.get("error", payload)
        elif isinstance(payload, bytes):
            try:
                detail = json.loads(payload.decode() or "{}").get(
                    "error", payload[:200])
            except ValueError:
                detail = payload[:200]
        else:
            detail = payload
        return f"repro serve at {self.url} answered {status}: {detail}"


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def _parse_param(pair: str) -> tuple[str, object]:
    name, sep, raw = pair.partition("=")
    if not sep or not name:
        raise SystemExit(
            f"repro submit: error: parameters are NAME=VALUE, got {pair!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw  # bare strings (e.g. scheme=on_die_ecc) stay strings
    return name, value


def add_client_parsers(sub) -> None:
    """Register ``submit`` and ``jobs`` on the main CLI's subparsers."""
    submit = sub.add_parser(
        "submit", help="submit a job to a running repro serve daemon")
    submit.add_argument("kind", choices=("campaign", "evaluate", "fig8"))
    submit.add_argument("params", nargs="*", metavar="NAME=VALUE",
                        help="job parameters, e.g. scheme=on_die_ecc "
                             "samples=20000")
    submit.add_argument("--url", default=None,
                        help="daemon URL (default: $REPRO_SERVE_URL or "
                             f"{DEFAULT_URL})")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--watch", action="store_true",
                        help="stream progress to stderr and print the "
                             "final report to stdout")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        help="watch timeout in seconds (default 3600)")

    jobs = sub.add_parser(
        "jobs", help="inspect or control jobs on a repro serve daemon")
    jobs.add_argument("--url", default=None,
                      help="daemon URL (default: $REPRO_SERVE_URL or "
                           f"{DEFAULT_URL})")
    actions = jobs.add_subparsers(dest="action", required=True)
    listing = actions.add_parser("list", help="list known jobs")
    listing.add_argument("--tenant", default=None)
    listing.add_argument("--state", default=None,
                         choices=("queued", "running", "completed",
                                  "failed", "cancelled"))
    show = actions.add_parser("show", help="one job, result included")
    show.add_argument("job_id")
    watch = actions.add_parser("watch", help="stream a job's SSE events")
    watch.add_argument("job_id")
    watch.add_argument("--timeout", type=float, default=3600.0)
    cancel = actions.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job_id")
    # accept --url after the subaction too (`repro jobs list --url ...`);
    # SUPPRESS keeps an unset subaction flag from clobbering the parent's
    for action in (listing, show, watch, cancel):
        action.add_argument("--url", default=argparse.SUPPRESS,
                            help="daemon URL (default: $REPRO_SERVE_URL "
                                 f"or {DEFAULT_URL})")


def _watch_to_end(client: ServeClient, job_id: str,
                  timeout: float) -> int:
    """Follow a job's events; report to stdout, progress to stderr."""
    final = None
    for event in client.watch(job_id, timeout=timeout):
        name, data = event["event"], event.get("data", {})
        if name == "progress":
            print(data.get("line", ""), file=sys.stderr, flush=True)
        elif name in _TERMINAL:
            final = (name, data)
        else:
            print(f"[repro submit] {name}: {json.dumps(data, sort_keys=True)}",
                  file=sys.stderr, flush=True)
    if final is None:
        print(f"[repro submit] event stream for {job_id} ended without a "
              f"terminal event", file=sys.stderr)
        return 1
    name, data = final
    if name == "completed":
        job = client.job(job_id)
        report = (job.get("result") or {}).get("report", "")
        if report:
            print(report)
        return 0
    detail = data.get("error") or data.get("reason") or ""
    print(f"[repro submit] job {job_id} {name}"
          + (f": {detail}" if detail else ""), file=sys.stderr)
    return 1


def cmd_submit(args) -> int:
    client = ServeClient(args.url)
    params = dict(_parse_param(pair) for pair in args.params)
    try:
        status, payload = client.submit(
            args.kind, params, tenant=args.tenant, priority=args.priority)
    except ServeError as exc:
        print(f"[repro submit] {exc}", file=sys.stderr)
        return 1
    if status == 429:
        print(f"[repro submit] queue full: {payload.get('error')} "
              f"(retry in {payload.get('retry_after_s')}s)",
              file=sys.stderr)
        return 2
    if status not in (200, 201):
        print(f"[repro submit] {payload.get('error', payload)}",
              file=sys.stderr)
        return 1
    job = payload["job"]
    verb = "attached to" if payload.get("deduped") else "submitted"
    print(f"[repro submit] {verb} {job['job_id']} "
          f"(kind={job['kind']}, tenant={job['tenant']}, "
          f"state={job['state']}, precached={job['precached']})",
          file=sys.stderr if args.watch else sys.stdout, flush=True)
    if not args.watch:
        return 0
    try:
        return _watch_to_end(client, job["job_id"], args.timeout)
    except ServeError as exc:
        print(f"[repro submit] {exc}", file=sys.stderr)
        return 1


def cmd_jobs(args) -> int:
    client = ServeClient(args.url)
    try:
        if args.action == "list":
            jobs = client.jobs(tenant=args.tenant, state=args.state)
            if not jobs:
                print("no jobs")
                return 0
            for job in jobs:
                line = (f"{job['job_id']}  {job['state']:<9}  "
                        f"{job['kind']:<8}  tenant={job['tenant']}  "
                        f"priority={job['priority']}")
                if job.get("attached"):
                    line += f"  attached={job['attached']}"
                print(line)
            return 0
        if args.action == "show":
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.action == "watch":
            return _watch_to_end(client, args.job_id, args.timeout)
        if args.action == "cancel":
            status, payload = client.cancel(args.job_id)
            if status == 200:
                print(f"cancelled {args.job_id}")
                return 0
            print(f"[repro jobs] {payload.get('error', payload)}",
                  file=sys.stderr)
            return 1
    except ServeError as exc:
        print(f"[repro jobs] {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unknown action {args.action!r}")

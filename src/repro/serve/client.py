"""Thin stdlib client for the ``repro serve`` daemon.

:class:`ServeClient` wraps ``http.client`` (one connection per request —
the daemon speaks ``Connection: close``) and exposes the API as plain
methods; :meth:`ServeClient.watch` parses the SSE stream into event
dicts.  The ``repro submit`` / ``repro jobs`` subcommands are wired here
via :func:`add_client_parsers`.

Transient failures are survivable: connection-refused and 429
(queue-full) answers are retried with the pool's own
:class:`~repro.core.pool.RetryPolicy` exponential backoff (``--retries``
on the CLI; the sleep is injectable so tests run instantly), and
:meth:`ServeClient.watch` reconnects across daemon restarts by resuming
the SSE stream from its ``Last-Event-ID`` — the journal-backed daemon
keeps event ids monotonic across a crash, so the resume point stays
valid.

The daemon URL resolves, in order: explicit ``--url``, the
``REPRO_SERVE_URL`` environment variable, then the default
``http://127.0.0.1:8023``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import sys
import time
from urllib.parse import urlencode, urlsplit

from repro.core.pool import RetryPolicy

__all__ = [
    "DEFAULT_URL",
    "ServeClient",
    "ServeError",
    "add_client_parsers",
    "cmd_jobs",
    "cmd_submit",
]

DEFAULT_URL = "http://127.0.0.1:8023"

#: events that end a watch
_TERMINAL = {"completed", "failed", "cancelled"}


class ServeError(RuntimeError):
    """The daemon could not be reached or answered with garbage.

    ``retryable`` marks the transient flavours (connection refused /
    reset, a restarting daemon) that back off and try again; protocol
    garbage and HTTP error answers stay fatal.
    """

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


def resolve_url(url: str | None = None) -> str:
    return (url or os.environ.get("REPRO_SERVE_URL") or DEFAULT_URL).rstrip("/")


class ServeClient:
    """One daemon endpoint; every call opens a fresh connection.

    ``retries`` extra attempts are made for retryable failures
    (connection errors and 429 backpressure), spaced by
    ``retry_policy.backoff_s``.  ``sleep`` and ``draw`` are injection
    seams: tests substitute a recording no-op sleep and a constant
    jitter draw to assert the backoff schedule deterministically.
    """

    def __init__(self, url: str | None = None, *,
                 timeout: float = 30.0, retries: int = 0,
                 retry_policy: RetryPolicy | None = None,
                 sleep=None, draw=None) -> None:
        self.url = resolve_url(url)
        split = urlsplit(self.url)
        if split.scheme != "http" or not split.hostname:
            raise ServeError(f"unsupported daemon URL {self.url!r} "
                             f"(need http://host:port)")
        self.host = split.hostname
        self.port = split.port or 8023
        self.timeout = timeout
        self.retries = max(int(retries), 0)
        self.retry_policy = retry_policy or RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep
        self._draw = draw if draw is not None else random.random

    def _connect(self, timeout: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout)

    def _backoff(self, failures: int) -> None:
        """Sleep before retry number ``failures`` (1-based)."""
        self._sleep(self.retry_policy.backoff_s(failures, self._draw()))

    def request(self, method: str, path: str, body: dict | None = None,
                *, retries: int | None = None) -> tuple[int, dict]:
        """One JSON round-trip; returns ``(status, payload)``.

        Connection failures and 429 answers are retried up to
        ``retries`` times (default: the client's setting) with
        exponential backoff; the last outcome is surfaced either way.
        """
        attempts = (self.retries if retries is None else retries) + 1
        for attempt in range(attempts):
            final = attempt == attempts - 1
            if attempt:
                self._backoff(attempt)
            try:
                status, payload = self._request_once(method, path, body)
            except ServeError as exc:
                if final or not exc.retryable:
                    raise
                continue
            if status == 429 and not final:
                continue
            return status, payload
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      body: dict | None) -> tuple[int, dict]:
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach repro serve at {self.url}: {exc}",
                    retryable=True) from exc
            try:
                decoded = json.loads(raw.decode() or "{}")
            except ValueError as exc:
                raise ServeError(
                    f"non-JSON response from {self.url} "
                    f"({response.status}): {raw[:200]!r}") from exc
            return response.status, decoded
        finally:
            conn.close()

    # -- API calls ------------------------------------------------------------
    def health(self) -> dict:
        return self._expect_ok("GET", "/v1/healthz")

    def readyz(self) -> tuple[int, dict]:
        """Readiness probe: ``(200, {...})`` once the journal is
        replayed and the daemon is dispatching, 503 before/while not."""
        return self.request("GET", "/v1/readyz", retries=0)

    def stats(self) -> dict:
        return self._expect_ok("GET", "/v1/stats")

    def submit(self, kind: str, params: dict | None = None, *,
               tenant: str = "default", priority: int = 0,
               deadline_s: float | None = None) -> tuple[int, dict]:
        """Submit a job; returns the raw ``(status, payload)`` pair.

        201 = newly queued, 200 = attached to an identical in-flight or
        queued job (dedupe), 429 = queue full (payload carries
        ``retry_after_s``; retried automatically when the client has
        retries configured).  ``deadline_s`` is a wall-clock budget from
        submission; the daemon cancels the job once it is exceeded.
        """
        body = {
            "kind": kind, "params": params or {},
            "tenant": tenant, "priority": priority,
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self.request("POST", "/v1/jobs", body)

    def jobs(self, *, tenant: str | None = None,
             state: str | None = None) -> list[dict]:
        query = {k: v for k, v in (("tenant", tenant),
                                   ("state", state)) if v}
        path = "/v1/jobs" + (f"?{urlencode(query)}" if query else "")
        return self._expect_ok("GET", path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._expect_ok("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> tuple[int, dict]:
        """``DELETE /v1/jobs/<id>``: 200 cancelled, 202 cancelling
        (running — the job thread unwinds at its next heartbeat), 409
        already terminal."""
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def watch(self, job_id: str, *, timeout: float = 3600.0,
              reconnects: int = 5):
        """Yield SSE event dicts until the job reaches a terminal state.

        Each yielded dict is ``{"id", "event", "data"}`` with ``data``
        JSON-decoded.  History is replayed first, so watching a finished
        job still yields its full event trail.

        If the stream drops without a terminal event (daemon restart),
        the watch reconnects up to ``reconnects`` times with backoff,
        sending ``Last-Event-ID`` so already-seen events are not
        replayed — the daemon keeps event ids monotonic across restarts,
        so the resume point survives a crash.
        """
        last_id = 0
        failures = 0
        while True:
            got_events = False
            try:
                for event in self._watch_once(job_id, last_id, timeout):
                    failures = 0
                    got_events = True
                    if isinstance(event.get("id"), int):
                        last_id = max(last_id, event["id"])
                    yield event
                    if event["event"] in _TERMINAL:
                        return
                # Stream closed with no terminal event: a daemon going
                # down mid-watch.  Treat like a connection failure.
                raise ServeError(
                    f"event stream for {job_id} ended early",
                    retryable=True)
            except ServeError as exc:
                if not exc.retryable or failures >= reconnects:
                    if got_events or not exc.retryable:
                        # surfacing nothing after events flowed would
                        # look like a server-side close; just end
                        return
                    raise
                failures += 1
                self._backoff(failures)

    def _watch_once(self, job_id: str, last_id: int, timeout: float):
        """One SSE connection's worth of events (ends on close)."""
        conn = self._connect(timeout=timeout)
        try:
            headers = {}
            if last_id:
                headers["Last-Event-ID"] = str(last_id)
            try:
                conn.request("GET", f"/v1/jobs/{job_id}/events",
                             headers=headers)
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach repro serve at {self.url}: {exc}",
                    retryable=True) from exc
            if response.status != 200:
                raw = response.read()
                raise ServeError(self._error_text(response.status, raw))
            event: dict = {}
            while True:
                try:
                    line = response.readline()
                except (OSError, http.client.HTTPException):
                    return  # connection dropped mid-stream
                if not line:
                    return
                line = line.decode().rstrip("\r\n")
                if not line:
                    if "event" in event:
                        yield event
                    event = {}
                    continue
                if line.startswith(":"):  # keepalive comment
                    continue
                field, _, value = line.partition(":")
                value = value.removeprefix(" ")
                if field == "id":
                    event["id"] = int(value)
                elif field == "event":
                    event["event"] = value
                elif field == "data":
                    try:
                        event["data"] = json.loads(value)
                    except ValueError:
                        event["data"] = value
        finally:
            conn.close()

    def _expect_ok(self, method: str, path: str) -> dict:
        status, payload = self.request(method, path)
        if status != 200:
            raise ServeError(self._error_text(status, payload))
        return payload

    def _error_text(self, status: int, payload) -> str:
        if isinstance(payload, dict):
            detail = payload.get("error", payload)
        elif isinstance(payload, bytes):
            try:
                detail = json.loads(payload.decode() or "{}").get(
                    "error", payload[:200])
            except ValueError:
                detail = payload[:200]
        else:
            detail = payload
        return f"repro serve at {self.url} answered {status}: {detail}"


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def _parse_param(pair: str) -> tuple[str, object]:
    name, sep, raw = pair.partition("=")
    if not sep or not name:
        raise SystemExit(
            f"repro submit: error: parameters are NAME=VALUE, got {pair!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw  # bare strings (e.g. scheme=on_die_ecc) stay strings
    return name, value


def add_client_parsers(sub) -> None:
    """Register ``submit`` and ``jobs`` on the main CLI's subparsers."""
    submit = sub.add_parser(
        "submit", help="submit a job to a running repro serve daemon")
    submit.add_argument("kind", choices=("campaign", "evaluate", "fig8"))
    submit.add_argument("params", nargs="*", metavar="NAME=VALUE",
                        help="job parameters, e.g. scheme=on_die_ecc "
                             "samples=20000")
    submit.add_argument("--url", default=None,
                        help="daemon URL (default: $REPRO_SERVE_URL or "
                             f"{DEFAULT_URL})")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget from submission; the "
                             "daemon cancels the job once exceeded")
    submit.add_argument("--retries", type=int, default=2, metavar="N",
                        help="extra attempts for connection-refused / "
                             "queue-full answers, with exponential "
                             "backoff (default 2)")
    submit.add_argument("--watch", action="store_true",
                        help="stream progress to stderr and print the "
                             "final report to stdout")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        help="watch timeout in seconds (default 3600)")

    jobs = sub.add_parser(
        "jobs", help="inspect or control jobs on a repro serve daemon")
    jobs.add_argument("--url", default=None,
                      help="daemon URL (default: $REPRO_SERVE_URL or "
                           f"{DEFAULT_URL})")
    actions = jobs.add_subparsers(dest="action", required=True)
    listing = actions.add_parser("list", help="list known jobs")
    listing.add_argument("--tenant", default=None)
    listing.add_argument("--state", default=None,
                         choices=("queued", "running", "completed",
                                  "failed", "cancelled"))
    show = actions.add_parser("show", help="one job, result included")
    show.add_argument("job_id")
    watch = actions.add_parser("watch", help="stream a job's SSE events "
                               "(reconnects across daemon restarts)")
    watch.add_argument("job_id")
    watch.add_argument("--timeout", type=float, default=3600.0)
    cancel = actions.add_parser("cancel",
                                help="cancel a queued or running job")
    cancel.add_argument("job_id")
    # accept --url after the subaction too (`repro jobs list --url ...`);
    # SUPPRESS keeps an unset subaction flag from clobbering the parent's
    for action in (listing, show, watch, cancel):
        action.add_argument("--url", default=argparse.SUPPRESS,
                            help="daemon URL (default: $REPRO_SERVE_URL "
                                 f"or {DEFAULT_URL})")


def _watch_to_end(client: ServeClient, job_id: str,
                  timeout: float) -> int:
    """Follow a job's events; report to stdout, progress to stderr."""
    final = None
    for event in client.watch(job_id, timeout=timeout):
        name, data = event["event"], event.get("data", {})
        if name == "progress":
            print(data.get("line", ""), file=sys.stderr, flush=True)
        elif name in _TERMINAL:
            final = (name, data)
        else:
            print(f"[repro submit] {name}: {json.dumps(data, sort_keys=True)}",
                  file=sys.stderr, flush=True)
    if final is None:
        print(f"[repro submit] event stream for {job_id} ended without a "
              f"terminal event", file=sys.stderr)
        return 1
    name, data = final
    if name == "completed":
        job = client.job(job_id)
        report = (job.get("result") or {}).get("report", "")
        if report:
            print(report)
        return 0
    detail = data.get("error") or data.get("reason") or ""
    print(f"[repro submit] job {job_id} {name}"
          + (f": {detail}" if detail else ""), file=sys.stderr)
    return 1


def cmd_submit(args) -> int:
    client = ServeClient(args.url, retries=getattr(args, "retries", 0))
    params = dict(_parse_param(pair) for pair in args.params)
    try:
        status, payload = client.submit(
            args.kind, params, tenant=args.tenant, priority=args.priority,
            deadline_s=getattr(args, "deadline", None))
    except ServeError as exc:
        print(f"[repro submit] {exc}", file=sys.stderr)
        return 1
    if status == 429:
        print(f"[repro submit] queue full: {payload.get('error')} "
              f"(retry in {payload.get('retry_after_s')}s)",
              file=sys.stderr)
        return 2
    if status not in (200, 201):
        print(f"[repro submit] {payload.get('error', payload)}",
              file=sys.stderr)
        return 1
    job = payload["job"]
    verb = "attached to" if payload.get("deduped") else "submitted"
    print(f"[repro submit] {verb} {job['job_id']} "
          f"(kind={job['kind']}, tenant={job['tenant']}, "
          f"state={job['state']}, precached={job['precached']})",
          file=sys.stderr if args.watch else sys.stdout, flush=True)
    if not args.watch:
        return 0
    try:
        return _watch_to_end(client, job["job_id"], args.timeout)
    except ServeError as exc:
        print(f"[repro submit] {exc}", file=sys.stderr)
        return 1


def cmd_jobs(args) -> int:
    client = ServeClient(args.url)
    try:
        if args.action == "list":
            jobs = client.jobs(tenant=args.tenant, state=args.state)
            if not jobs:
                print("no jobs")
                return 0
            for job in jobs:
                line = (f"{job['job_id']}  {job['state']:<9}  "
                        f"{job['kind']:<8}  tenant={job['tenant']}  "
                        f"priority={job['priority']}")
                if job.get("attached"):
                    line += f"  attached={job['attached']}"
                print(line)
            return 0
        if args.action == "show":
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.action == "watch":
            return _watch_to_end(client, args.job_id, args.timeout)
        if args.action == "cancel":
            status, payload = client.cancel(args.job_id)
            if status == 200:
                print(f"cancelled {args.job_id}")
                return 0
            if status == 202:
                print(f"cancelling {args.job_id} (running; the job "
                      f"observes the request at its next heartbeat)")
                return 0
            print(f"[repro jobs] {payload.get('error', payload)}",
                  file=sys.stderr)
            return 1
    except ServeError as exc:
        print(f"[repro jobs] {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unknown action {args.action!r}")

"""``repro serve`` — the multi-tenant async campaign daemon.

A stdlib-only asyncio HTTP/JSON service over the existing substrate: the
content-addressed run store supplies caching and crash recovery, the
shared :class:`~repro.core.pool.WarmPool` supplies persistent workers,
and the :mod:`repro.obs` heartbeat layer supplies the progress feed that
is bridged into per-job SSE channels.

API (all under ``/v1``; the prefix is optional)::

    GET  /v1/healthz            liveness + version
    GET  /v1/readyz             readiness: journal replayed, daemon
                                dispatching (503 until then)
    GET  /v1/stats              queue / dedupe / journal / job counters
    POST /v1/jobs               submit {kind, params, tenant, priority,
                                deadline_s}
                                → 201 created | 200 attached (deduped)
                                | 429 queue full (backpressure)
    GET  /v1/jobs               list jobs (?tenant=, ?state=)
    GET  /v1/jobs/<id>          one job, result included when finished
    GET  /v1/jobs/<id>/events   server-sent events: queued/started/
                                progress/completed/failed/cancelled
                                (history replayed, then live; honors
                                Last-Event-ID for reconnects)
    DELETE /v1/jobs/<id>        cancel: queued → 200 terminal, running
                                → 202 cancelling (cooperative, observed
                                at the next heartbeat), terminal → 409
    POST /v1/jobs/<id>/cancel   alias of DELETE /v1/jobs/<id>

Scheduling: submissions land in the bounded
:class:`~repro.serve.scheduler.FairShareScheduler` (WDRR across tenants,
priority within), and a dispatch task starts up to ``--slots`` jobs
concurrently on a thread pool — each job being a real CLI command body
whose own process fan-out rides the shared warm pool.  Identical
concurrent submissions collapse onto one job
(:class:`~repro.serve.jobs.JobRegistry`), so a thousand clients asking
for the same sweep cost one computation.

Durability: every job state transition is journaled write-ahead through
:class:`~repro.serve.journal.JobJournal` (fsync'd appends under
``<runs-dir>/serve/journal.jsonl``), and :meth:`ServeApp.replay_journal`
rebuilds the registry on startup — requeueing interrupted jobs (the
runner's resume matching re-attaches them to their run-store manifests)
and preserving the dedupe map, so a kill -9 of the daemon loses no
acknowledged work.  Clean shutdown compacts the journal in place.

One connection serves one request (``Connection: close``); SSE streams
stay open until the job reaches a terminal state.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

from repro.runs.store import resolve_root
from repro.serve.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobError,
    JobRegistry,
    UnknownJobError,
    normalize_params,
)
from repro.serve.journal import JobJournal
from repro.serve.runner import JobCancelled, execute_job, job_keys
from repro.serve.scheduler import FairShareScheduler, QueueFull
from repro.serve.sse import encode_sse

__all__ = ["ServeApp", "add_serve_parser", "cmd_serve", "serve_forever"]

_LOGGER = logging.getLogger(__name__)

#: request bodies larger than this are rejected outright
_MAX_BODY = 1 << 20
#: header-read deadline per connection
_READ_TIMEOUT_S = 10.0
#: SSE keepalive comment cadence while a job is quiet
_KEEPALIVE_S = 15.0

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _BadRequest(Exception):
    """A malformed request; ``status`` rides along."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(reader) -> tuple[str, str, dict, bytes] | None:
    """(method, target, headers, body), or None for an empty connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if length > _MAX_BODY:
        raise _BadRequest("request body too large", status=413)
    body = await reader.readexactly(length) if length > 0 else b""
    return method.upper(), target, headers, body


def _response_bytes(status: int, body: bytes, content_type: str,
                    extra: dict | None = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
        **(extra or {}),
    }
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_response(status: int, payload: dict,
                   extra: dict | None = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _response_bytes(status, body, "application/json", extra)


def _last_event_id(headers: dict, query: dict) -> int:
    """A reconnecting SSE client's resume point (header wins over query)."""
    raw = headers.get("last-event-id")
    if raw is None:
        raw = (query.get("last_event_id") or [None])[0]
    try:
        return max(int(raw), 0) if raw is not None else 0
    except (TypeError, ValueError):
        return 0


class ServeApp:
    """Registry + scheduler + runner glue behind the HTTP surface.

    All state mutates on the event-loop thread; job bodies run on a
    ``--slots``-wide thread pool and marshal progress back with
    ``loop.call_soon_threadsafe``.  ``execute`` is an injection seam
    (tests substitute a stub for the real :func:`execute_job`).
    """

    def __init__(
        self,
        *,
        runs_dir=None,
        workers: int | None = None,
        slots: int = 1,
        max_queue: int = 64,
        quantum: float = 1.0,
        weights: dict[str, float] | None = None,
        history: int = 256,
        progress_interval_s: float = 1.0,
        retry_after_s: float = 2.0,
        reaper_interval_s: float = 0.25,
        execute=None,
    ) -> None:
        self.runs_dir = runs_dir
        self.workers = workers
        self.slots = max(int(slots), 1)
        self.progress_interval_s = progress_interval_s
        self.retry_after_s = retry_after_s
        self.reaper_interval_s = reaper_interval_s
        self.registry = JobRegistry(history=history)
        self.scheduler = FairShareScheduler(
            max_depth=max_queue, quantum=quantum, weights=weights)
        self.journal = JobJournal(resolve_root(runs_dir))
        self.replay_counters: dict = {}
        self._execute = execute or execute_job
        self._threads = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve-job")
        self._wake = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._service_tasks: list[asyncio.Task] = []
        self._active = 0
        self._stopping = False
        self._ready = False
        self.started_at = time.time()

    # -- durability (journal) -------------------------------------------------
    def _journal_best_effort(self, write, *args) -> None:
        """Transition records are at-least-once, never load-bearing.

        Losing one merely requeues the job on the next replay, where its
        content-addressed artifacts turn the recompute into a cache hit —
        so an append failure must not take the transition down with it.
        (Fault-injected ``exit`` modes raise SystemExit, which passes.)
        """
        try:
            write(*args)
        except Exception as exc:
            _LOGGER.warning("journal append failed (%s): %s",
                            getattr(write, "__name__", write), exc)

    def replay_journal(self) -> dict:
        """Rebuild registry + queue from the journal (startup recovery).

        Terminal jobs come back as history — their terminal SSE event is
        republished so late watchers still get stream closure.  Everything
        else is requeued (``force=True``: the bound admitted them once)
        and will resume its interrupted run-store manifest when started.
        """
        replay = self.journal.replay()
        for job in replay.jobs:
            self.registry.restore(job)
            if job.state in TERMINAL_STATES:
                data: dict = {"job_id": job.job_id}
                if job.error is not None:
                    data["error"] = job.error
                if job.cancel_reason is not None:
                    data["reason"] = job.cancel_reason
                if job.result is not None:
                    data["run_id"] = job.result.get("run_id")
                job.channel.publish(job.state, data)
            else:
                self.scheduler.submit(job, force=True)
                job.channel.publish("queued", {
                    "job_id": job.job_id, "kind": job.kind,
                    "tenant": job.tenant, "priority": job.priority,
                    "precached": job.precached,
                    "recovered": job.recovered,
                })
        self.replay_counters = replay.counters()
        if replay.jobs:
            self._wake.set()
        return self.replay_counters

    async def startup(self) -> None:
        """Replay the journal, then start dispatch + deadline reaping."""
        self.replay_journal()
        self._service_tasks = [
            asyncio.create_task(self.dispatch_loop()),
            asyncio.create_task(self.reaper_loop()),
        ]
        self._ready = True
        self._wake.set()

    # -- application operations (event-loop thread only) ----------------------
    def submit(self, payload: dict) -> tuple[int, dict]:
        """Handle one submission; returns ``(http_status, body)``."""
        if not isinstance(payload, dict):
            raise JobError("submission body must be a JSON object")
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise JobError("submission needs a string 'kind'")
        raw_params = payload.get("params")
        if raw_params is not None and not isinstance(raw_params, dict):
            raise JobError("'params' must be an object")
        params = normalize_params(kind, raw_params)
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise JobError("'tenant' must be a non-empty string (<= 64 "
                           "chars)")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise JobError("'priority' must be an integer")
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            if (isinstance(deadline_s, bool)
                    or not isinstance(deadline_s, (int, float))
                    or not deadline_s > 0):
                raise JobError("'deadline_s' must be a positive number")
            deadline_s = float(deadline_s)
        if self._stopping:
            return 429, {"error": "daemon is shutting down",
                         "retry_after_s": self.retry_after_s}
        keys = job_keys(kind, params, runs_dir=self.runs_dir)
        job, attached = self.registry.create(
            kind, params, tenant=tenant, priority=priority,
            key=keys["key"], precached=keys["precached"],
            deadline_s=deadline_s)
        if attached:
            return 200, {"job": job.to_dict(include_result=False),
                         "deduped": True}
        try:
            self.scheduler.submit(job)
        except QueueFull as exc:
            self.registry.discard(job)
            return 429, {"error": str(exc),
                         "retry_after_s": self.retry_after_s}
        # Write-ahead: the submitted record must be on disk before the
        # client hears 201 — an acked job can never be lost to a crash.
        # If the fsync'd append fails, un-admit and report the failure.
        try:
            self.journal.record_submitted(job)
        except Exception as exc:
            self.scheduler.cancel(job)
            self.registry.discard(job)
            _LOGGER.warning("journal write-ahead failed for %s: %s",
                            job.job_id, exc)
            return 500, {"error": "could not journal the submission: "
                                  f"{type(exc).__name__}: {exc}"}
        job.channel.publish("queued", {
            "job_id": job.job_id, "kind": job.kind, "tenant": job.tenant,
            "priority": job.priority, "precached": job.precached,
            "artifacts": keys["artifacts"],
        })
        self._wake.set()
        return 201, {"job": job.to_dict(include_result=False),
                     "deduped": False}

    def cancel(self, job_id: str,
               reason: str = "client cancel") -> tuple[int, dict]:
        """Cancel a job: queued → 200 terminal now, running → 202
        cancelling (the job thread observes the request at its next
        heartbeat and unwinds), terminal → 409."""
        job = self.registry.get(job_id)
        if job.state == QUEUED and self.scheduler.cancel(job):
            job.cancel_reason = reason
            job.finished_at = time.time()
            self.registry.finish(job)
            self._journal_best_effort(self.journal.record_terminal, job)
            job.channel.publish("cancelled", {"job_id": job.job_id,
                                              "reason": reason})
            return 200, {"job": job.to_dict()}
        if job.state in TERMINAL_STATES:
            return 409, {"error": f"job is already {job.state}"}
        # Running — or popped by the dispatcher a tick ago (the cancel
        # flag is then observed before the job body even starts).
        if not job.cancel_requested:
            job.cancel_requested = True
            job.cancel_reason = reason
            self._journal_best_effort(
                self.journal.record_cancel_requested, job, reason)
        return 202, {"job": job.to_dict(include_result=False),
                     "cancelling": True}

    def stats(self) -> dict:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "slots": self.slots,
            "active": self._active,
            "ready": self._ready,
            "jobs": self.registry.state_counts(),
            "deduped": self.registry.deduped,
            "queue": self.scheduler.counters(),
            "journal": {
                "replay": dict(self.replay_counters),
                "appended": self.journal.appended,
                "compactions": self.journal.compactions,
            },
        }

    # -- dispatch -------------------------------------------------------------
    async def dispatch_loop(self) -> None:
        """Start queued jobs whenever slots free up (runs forever)."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            while not self._stopping and self._active < self.slots:
                job = self.scheduler.next_job()
                if job is None:
                    break
                self._active += 1
                task = asyncio.create_task(self._run_job(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _publish(self, job, name: str, data: dict) -> None:
        if not job.channel.closed:
            job.channel.publish(name, data)

    def _finish_cancelled(self, job, reason: str) -> None:
        """Move a job to CANCELLED with journal + SSE bookkeeping."""
        job.state = CANCELLED
        job.cancel_requested = True
        job.cancel_reason = job.cancel_reason or reason
        job.finished_at = time.time()
        self.registry.finish(job)
        self._journal_best_effort(self.journal.record_terminal, job)
        self._publish(job, "cancelled", {"job_id": job.job_id,
                                         "reason": job.cancel_reason})

    async def _run_job(self, job) -> None:
        loop = asyncio.get_running_loop()
        try:
            if job.cancel_requested or job.deadline_exceeded():
                if not job.cancel_requested:
                    job.cancel_reason = "deadline exceeded"
                self._finish_cancelled(job, "cancelled before start")
                return
            job.state = RUNNING
            job.started_at = time.time()
            self._journal_best_effort(self.journal.record_running, job)
            self._publish(job, "started", {
                "job_id": job.job_id, "attached": job.attached,
                "precached": job.precached, "recovered": job.recovered,
            })

            def progress(line: str) -> None:
                loop.call_soon_threadsafe(
                    self._publish, job, "progress", {"line": line})

            def should_abort() -> bool:
                # Polled on the job thread at every heartbeat; plain
                # attribute reads, so no marshaling needed.
                return job.cancel_requested or job.deadline_exceeded()

            try:
                result = await loop.run_in_executor(
                    self._threads,
                    functools.partial(
                        self._execute, job.kind, job.params,
                        runs_dir=self.runs_dir, progress=progress,
                        progress_interval_s=self.progress_interval_s,
                        default_workers=self.workers,
                        should_abort=should_abort,
                    ),
                )
            except JobCancelled as exc:
                # the thread may observe a blown deadline before the
                # reaper labels it; keep the reason deterministic
                if job.cancel_reason is None and job.deadline_exceeded():
                    job.cancel_reason = "deadline exceeded"
                self._finish_cancelled(job, exc.reason)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = FAILED
                job.finished_at = time.time()
                self.registry.finish(job)
                self._journal_best_effort(self.journal.record_terminal,
                                          job)
                _LOGGER.warning("job %s failed: %s", job.job_id, job.error)
                self._publish(job, "failed", {"job_id": job.job_id,
                                              "error": job.error})
            else:
                job.result = result
                job.state = COMPLETED
                job.finished_at = time.time()
                self.registry.finish(job)
                self._journal_best_effort(self.journal.record_terminal,
                                          job)
                self._publish(job, "completed", {
                    "job_id": job.job_id,
                    "run_id": result.get("run_id"),
                    "resumed_from": result.get("resumed_from"),
                    "cache_hits": result.get("cache_hits"),
                    "cache_misses": result.get("cache_misses"),
                    "elapsed_s": round(
                        job.finished_at - job.started_at, 3),
                })
        finally:
            self._active -= 1
            self._wake.set()

    async def reaper_loop(self) -> None:
        """Cancel jobs whose wall-clock deadline passed (runs forever).

        Queued jobs go terminal immediately; running jobs get the
        cooperative flag (journaled), which the job thread observes at
        its next heartbeat.  Deadlines are measured from the *original*
        ``submitted_at``, so they survive a daemon restart.
        """
        while True:
            await asyncio.sleep(self.reaper_interval_s)
            now = time.time()
            for job in self.registry.all_jobs():
                if (job.state in TERMINAL_STATES or job.cancel_requested
                        or not job.deadline_exceeded(now)):
                    continue
                if job.state == QUEUED and self.scheduler.cancel(job):
                    job.cancel_reason = "deadline exceeded"
                    job.finished_at = time.time()
                    self.registry.finish(job)
                    self._journal_best_effort(
                        self.journal.record_terminal, job)
                    self._publish(job, "cancelled", {
                        "job_id": job.job_id,
                        "reason": "deadline exceeded"})
                    continue
                job.cancel_requested = True
                job.cancel_reason = "deadline exceeded"
                self._journal_best_effort(
                    self.journal.record_cancel_requested, job,
                    "deadline exceeded")

    async def shutdown(self, grace_s: float | None = None) -> None:
        """Drain the queue, wait for running jobs, compact the journal."""
        self._stopping = True
        self._ready = False
        while True:
            job = self.scheduler.next_job()
            if job is None:
                break
            job.state = CANCELLED
            job.cancel_reason = "daemon shutdown"
            job.finished_at = time.time()
            self.registry.finish(job)
            self._journal_best_effort(self.journal.record_terminal, job)
            job.channel.publish("cancelled", {"job_id": job.job_id,
                                              "reason": "daemon shutdown"})
        if self._tasks:
            await asyncio.wait(self._tasks, timeout=grace_s)
        self._threads.shutdown(wait=False, cancel_futures=True)
        for task in self._service_tasks:
            task.cancel()
        self._service_tasks = []
        # Clean exit leaves a compacted journal: the minimal record set
        # reproducing the registry, instead of the full append history.
        try:
            self.journal.compact(self.registry.all_jobs())
        except Exception as exc:
            _LOGGER.warning("journal compaction failed: %s", exc)

    # -- HTTP surface ---------------------------------------------------------
    async def handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=_READ_TIMEOUT_S)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            except _BadRequest as exc:
                writer.write(_json_response(exc.status,
                                            {"error": str(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            method, target, headers, body = request
            await self._route(writer, method, target, headers, body)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # pragma: no cover - last-resort guard
            _LOGGER.exception("unhandled error serving a request")
            try:
                writer.write(_json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer, method: str, target: str,
                     headers: dict, body: bytes) -> None:
        split = urlsplit(target)
        path = split.path
        if path.startswith("/v1/") or path == "/v1":
            path = path[len("/v1"):] or "/"
        query = parse_qs(split.query)

        async def respond(status: int, payload: dict,
                          extra: dict | None = None) -> None:
            writer.write(_json_response(status, payload, extra))
            await writer.drain()

        try:
            if path == "/healthz" and method == "GET":
                from repro.cli import version_string

                await respond(200, {"ok": True,
                                    "version": version_string(),
                                    "pid": os.getpid()})
            elif path == "/readyz" and method == "GET":
                if self._ready and not self._stopping:
                    await respond(200, {
                        "ready": True,
                        "journal": dict(self.replay_counters)})
                else:
                    await respond(503, {"ready": False})
            elif path == "/stats" and method == "GET":
                await respond(200, self.stats())
            elif path == "/jobs" and method == "POST":
                try:
                    payload = json.loads(body.decode() or "{}")
                except ValueError:
                    raise JobError("request body is not valid JSON") \
                        from None
                status, result = self.submit(payload)
                extra = None
                if status == 429:
                    extra = {"Retry-After":
                             str(int(self.retry_after_s) or 1)}
                await respond(status, result, extra)
            elif path == "/jobs" and method == "GET":
                tenant = (query.get("tenant") or [None])[0]
                state = (query.get("state") or [None])[0]
                jobs = self.registry.jobs(tenant=tenant, state=state)
                await respond(200, {"jobs": [
                    job.to_dict(include_result=False) for job in jobs]})
            elif path.startswith("/jobs/"):
                await self._route_job(writer, respond, method,
                                      path[len("/jobs/"):], headers,
                                      query)
            else:
                await respond(404, {"error": f"no route {method} {path}"})
        except JobError as exc:
            await respond(400, {"error": str(exc)})
        except UnknownJobError as exc:
            await respond(404, {"error": exc.args[0] if exc.args
                                else str(exc)})

    async def _route_job(self, writer, respond, method: str,
                         rest: str, headers: dict, query: dict) -> None:
        job_id, _, action = rest.partition("/")
        if not action and method == "GET":
            job = self.registry.get(job_id)
            await respond(200, {"job": job.to_dict()})
        elif not action and method == "DELETE":
            status, payload = self.cancel(job_id)
            await respond(status, payload)
        elif action == "cancel" and method == "POST":
            status, payload = self.cancel(job_id)
            await respond(status, payload)
        elif action == "events" and method == "GET":
            job = self.registry.get(job_id)
            await self._stream_events(
                writer, job, last_id=_last_event_id(headers, query))
        else:
            await respond(404, {"error": f"no route {method} /jobs/{rest}"})

    async def _stream_events(self, writer, job, last_id: int = 0) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue = job.channel.subscribe(after_id=last_id)
        try:
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=_KEEPALIVE_S)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if event is None:
                    break
                writer.write(encode_sse(event))
                await writer.drain()
        finally:
            job.channel.unsubscribe(queue)


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def add_serve_parser(sub) -> None:
    """Register the ``serve`` subcommand on the main CLI's subparsers."""
    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant campaign service (HTTP/JSON + SSE)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023,
                       help="TCP port (0 picks a free one; default 8023)")
    serve.add_argument("--runs-dir", default=None, metavar="DIR",
                       help="run-store root (default: $REPRO_RUNS_DIR or "
                            "~/.cache/repro-runs)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="default process fan-out for jobs that don't "
                            "set their own 'workers' parameter")
    serve.add_argument("--slots", type=int, default=1, metavar="N",
                       help="jobs run concurrently (default 1; each job "
                            "fans out over the shared warm pool itself)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="pending-job bound before submissions get "
                            "429 backpressure (default 64)")
    serve.add_argument("--quantum", type=float, default=1.0,
                       help="fair-share deficit quantum per scheduling "
                            "visit (default 1.0)")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="TENANT=WEIGHT",
                       help="fair-share weight for one tenant "
                            "(repeatable; unlisted tenants weigh 1.0)")
    serve.add_argument("--history", type=int, default=256, metavar="N",
                       help="finished jobs kept for list/show (default "
                            "256)")
    serve.add_argument("--progress-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="SSE progress-event cadence (default 1.0)")
    serve.add_argument("--grace", type=float, default=None,
                       metavar="SECONDS",
                       help="shutdown wait for running jobs (default: "
                            "wait until they finish)")
    serve.add_argument("--ready-file", default=None, metavar="FILE",
                       help="write the listening URL here once ready "
                            "(atomic; for harnesses and scripts)")
    serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault injection inside the "
                            "daemon (see DESIGN.md)")
    serve.add_argument("--faults-seed", type=int, default=0)
    serve.add_argument("--faults-ledger", default=None, metavar="FILE")


def _parse_weights(pairs: list[str]) -> dict[str, float]:
    weights: dict[str, float] = {}
    for pair in pairs:
        tenant, sep, raw = pair.partition("=")
        try:
            weight = float(raw)
        except ValueError:
            weight = float("nan")
        if not sep or not tenant or not weight > 0:
            raise SystemExit(
                f"repro serve: error: --tenant-weight needs "
                f"TENANT=POSITIVE_NUMBER, got {pair!r}")
        weights[tenant] = weight
    return weights


def _write_ready_file(path: str, url: str) -> None:
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(url + "\n")
    os.replace(tmp, path)


async def serve_forever(args, app: ServeApp | None = None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit code."""
    app = app or ServeApp(
        runs_dir=args.runs_dir,
        workers=args.workers,
        slots=args.slots,
        max_queue=args.max_queue,
        quantum=args.quantum,
        weights=_parse_weights(args.tenant_weight),
        history=args.history,
        progress_interval_s=args.progress_interval,
    )
    # Replay before accepting connections: the first request must see
    # the recovered registry, not a window of pre-replay emptiness.
    await app.startup()
    replayed = app.replay_counters
    if replayed.get("records"):
        print(f"[repro serve] journal replayed: "
              f"{replayed['jobs']} jobs "
              f"({replayed['requeued']} requeued, "
              f"{replayed['recovered_running']} recovered mid-run, "
              f"{replayed['terminal']} historical)",
              flush=True)
    server = await asyncio.start_server(
        app.handle_connection, args.host, args.port)
    host, port = server.sockets[0].getsockname()[:2]
    url = f"http://{host}:{port}"
    print(f"[repro serve] listening on {url} "
          f"(slots={app.slots}, max_queue={app.scheduler.max_depth})",
          flush=True)
    if args.ready_file:
        _write_ready_file(args.ready_file, url)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stop.wait()
        print("[repro serve] shutting down "
              f"({app.scheduler.pending} queued, {app._active} running)",
              flush=True)
        server.close()
        await server.wait_closed()
        await app.shutdown(grace_s=getattr(args, "grace", None))
    finally:
        for task in app._service_tasks:
            task.cancel()
        from repro.core.pool import release_runtime_resources

        release_runtime_resources()
    print("[repro serve] shutdown complete", flush=True)
    return 0


def cmd_serve(args) -> int:
    """Dispatch ``repro serve``; returns a process exit code."""
    try:
        return asyncio.run(serve_forever(args))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130

"""Executing one submitted job inside the daemon, byte-identical to the CLI.

A job does not reimplement its command — it *is* the command: the runner
builds the same argparse-shaped namespace the CLI would have produced,
points the command body's ``out`` writer at a line collector instead of
stdout, and calls the exact ``repro.cli`` function (``_cmd_campaign``,
``_cmd_evaluate``, ``_cmd_fig8``).  The report a client fetches is
therefore byte-identical to a direct ``repro <kind>`` invocation by
construction — the property ``repro chaos --serve`` asserts end to end.

Content keys are computed *before* scheduling (:func:`job_keys`): the
dedupe key hashes the result-bearing parameters + code fingerprint with
the store's own canonical-JSON machinery, and the per-artifact keys let
the server flag a submission ``precached`` when the content-addressed
store already holds every artifact it would compute.

Crash recovery is the run store's ``--resume`` contract, applied
automatically: before starting, :func:`find_resumable` looks for an
interrupted run of the same command + config in the store, and the job
resumes it — completed cells and checkpoints become cache hits, so a
daemon killed mid-job (chaos's torn-write faults) finishes the remainder
on resubmission instead of recomputing from zero.
"""

from __future__ import annotations

from argparse import Namespace

from repro.runs.fingerprint import code_fingerprint
from repro.runs.store import RunStore
from repro.serve.jobs import JobError, job_identity

__all__ = [
    "JobCancelled",
    "build_namespace",
    "execute_job",
    "find_resumable",
    "job_keys",
]


class JobCancelled(BaseException):
    """A job thread observed a cancellation request (or blown deadline).

    Deliberately a :class:`BaseException` — like ``KeyboardInterrupt`` —
    so the broad ``except Exception`` recovery paths inside the engines
    and pool cannot swallow the abort on its way out of the command
    body.  The partially-completed run stays resumable: every finished
    cell/chunk is already checkpointed in the run store, so a later
    identical submission picks the work back up as cache hits.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason

#: schema stamp inside the dedupe-key material (bump on layout change)
_JOB_KEY_SCHEMA = 1

#: heartbeat cadence bridged into SSE progress events (seconds)
DEFAULT_PROGRESS_INTERVAL_S = 1.0


def _session_config(kind: str, args: Namespace) -> dict:
    from repro import cli

    builders = {
        "campaign": cli.campaign_session_config,
        "evaluate": cli.evaluate_session_config,
        "fig8": cli.fig8_session_config,
    }
    return builders[kind](args)


def _command_body(kind: str):
    from repro import cli

    return {
        "campaign": cli._cmd_campaign,
        "evaluate": cli._cmd_evaluate,
        "fig8": cli._cmd_fig8,
    }[kind]


def build_namespace(
    kind: str,
    params: dict,
    *,
    runs_dir=None,
    resume: str | None = None,
    progress=None,
    progress_interval_s: float = DEFAULT_PROGRESS_INTERVAL_S,
) -> Namespace:
    """The argparse namespace the equivalent CLI invocation would carry."""
    return Namespace(
        command=kind,
        cache=True,
        resume=resume,
        runs_dir=None if runs_dir is None else str(runs_dir),
        heartbeat=progress_interval_s if progress is not None else 0.0,
        heartbeat_callback=progress,
        inject_faults=None,
        faults_seed=0,
        faults_ledger=None,
        **params,
    )


def _artifact_keys(kind: str, identity: dict, store: RunStore,
                   fingerprint: str) -> list[tuple[str, object]]:
    """``(bucket, key)`` pairs for every artifact the job would store.

    ``evaluate``/``fig8`` enumerate their Table-2 cells (the CLI default
    ``exhaustive_triples=False``); ``campaign`` has one whole-campaign
    artifact (its statistics stage recomputes each run by design, so
    "precached" there means the beam half is free).
    """
    from repro.errormodel.patterns import ErrorPattern

    def cells(scheme) -> list[tuple[str, str]]:
        return [
            ("cells", store.cell_key(scheme.name, pattern,
                                     identity["samples"], identity["seed"],
                                     False, fingerprint,
                                     token=scheme.cache_token()))
            for pattern in ErrorPattern
        ]

    if kind == "campaign":
        from dataclasses import asdict

        from repro.cli import beam_campaign_config

        config = beam_campaign_config(identity)
        return [("campaigns",
                 store.campaign_key(asdict(config), fingerprint))]
    if kind == "evaluate":
        from repro.core import get_scheme

        try:
            scheme = get_scheme(identity["scheme"])
        except KeyError:
            raise JobError(
                f"unknown scheme {identity['scheme']!r}") from None
        return cells(scheme)
    if kind == "fig8":
        from repro.core import all_schemes

        keys: list[tuple[str, str]] = []
        for scheme in all_schemes():
            keys.extend(cells(scheme))
        return keys
    raise JobError(f"unknown job kind {kind!r}")


def job_keys(kind: str, params: dict, *, runs_dir=None,
             fingerprint: str | None = None) -> dict:
    """Content identity of a normalized job, computed before scheduling.

    Returns ``{"key", "artifacts", "precached"}``: the dedupe key, the
    number of store artifacts the job maps to, and whether every one of
    them is already present (a submission the store can answer without
    any computation).
    """
    fingerprint = fingerprint or code_fingerprint()
    identity = job_identity(kind, params)
    store = RunStore(runs_dir)
    key = RunStore.cache_key({
        "schema": _JOB_KEY_SCHEMA,
        "kind": "serve-job",
        "job": kind,
        "config": identity,
        "code": fingerprint,
    })
    artifacts = _artifact_keys(kind, identity, store, fingerprint)
    paths = {
        "cells": store.cell_path,
        "campaigns": store.campaign_path,
    }
    precached = bool(artifacts) and all(
        paths[bucket](artifact_key).exists()
        for bucket, artifact_key in artifacts
    )
    return {"key": key, "artifacts": len(artifacts), "precached": precached}


def find_resumable(store: RunStore, command: str,
                   config: dict) -> str | None:
    """Newest interrupted run of the same command + config, if any.

    This is the daemon's ``--resume``: a job whose predecessor died
    mid-run (chaos kills, daemon restarts) picks its manifest back up, so
    completed cells return as cache hits instead of being recomputed.
    """
    for manifest in store.list_runs():  # newest first
        if (manifest.command == command
                and manifest.status != "completed"
                and manifest.config == config):
            return manifest.run_id
    return None


def execute_job(
    kind: str,
    params: dict,
    *,
    runs_dir=None,
    progress=None,
    progress_interval_s: float = DEFAULT_PROGRESS_INTERVAL_S,
    default_workers: int | None = None,
    should_abort=None,
) -> dict:
    """Run one normalized job to completion; returns the result payload.

    ``progress`` (a ``str -> None`` callable) receives the heartbeat
    lines the CLI would have written to stderr — the server bridges them
    into the job's SSE channel.  Runs on a worker thread; everything it
    touches is per-call except the shared warm pool, which is exactly the
    cross-campaign reuse the daemon exists to provide.

    ``should_abort`` (a ``() -> bool`` callable) is the cooperative
    cancellation seam: it is polled at every heartbeat emission — i.e. at
    most once per ``progress_interval_s`` — and a True answer raises
    :class:`JobCancelled` *inside the job thread*, unwinding the command
    body mid-campaign.  The run store's checkpoints make the abandoned
    run resumable, so cancellation never wastes completed work.
    """
    params = dict(params)
    if params.get("workers") is None and default_workers:
        params["workers"] = default_workers
    if should_abort is not None and progress is not None:
        inner_progress = progress

        def progress(line: str) -> None:
            if should_abort():
                raise JobCancelled("cancel requested")
            inner_progress(line)

    args = build_namespace(
        kind, params, runs_dir=runs_dir, progress=progress,
        progress_interval_s=progress_interval_s,
    )
    store = RunStore(runs_dir)
    config = _session_config(kind, args)
    args.resume = find_resumable(store, kind, config)

    lines: list[str] = []

    def out(text="") -> None:
        lines.append(str(text))

    session = _command_body(kind)(args, out=out)
    result = {
        "report": "\n".join(lines),
        "resumed_from": args.resume,
    }
    run_id = getattr(session, "run_id", None)
    if run_id is not None:
        result["run_id"] = run_id
        result["cache_hits"] = session.cell_cache.hits
        result["cache_misses"] = session.cell_cache.misses
    return result

"""Priority + per-tenant fair-share queueing (weighted deficit round-robin).

The daemon serves many tenants from one bounded queue.  Ordering is
decided in two layers:

* **across tenants** — weighted deficit round-robin: each tenant with
  queued work sits in a ring; every visit tops its deficit counter up by
  ``quantum × weight`` and a tenant is served while its deficit covers
  the unit job cost.  A tenant with weight 2 therefore drains twice as
  fast as a weight-1 tenant under contention, and an idle tenant's
  deficit resets to zero (no banking credit while absent — the classic
  DRR rule, so a returning tenant can't burst past everyone else);
* **within a tenant** — strictly by descending ``priority`` (ties in
  submission order).

Depth is bounded: :meth:`FairShareScheduler.submit` raises
:class:`QueueFull` once ``max_depth`` jobs are pending, which the HTTP
layer turns into a 429 with ``Retry-After`` — backpressure instead of an
unbounded in-memory queue.

The scheduler is plain synchronous data structure code (the daemon calls
it only from the event-loop thread); tests drive it directly.
"""

from __future__ import annotations

import heapq
import itertools

from repro.serve.jobs import CANCELLED, Job

__all__ = ["FairShareScheduler", "QueueFull"]

#: every job costs one deficit unit (jobs, not bytes, are the fair unit)
_COST = 1.0


class QueueFull(RuntimeError):
    """The bounded queue is at capacity; the client should retry later."""


class FairShareScheduler:
    """Bounded multi-tenant queue with WDRR draining and priorities."""

    def __init__(self, *, max_depth: int = 64, quantum: float = 1.0,
                 weights: dict[str, float] | None = None,
                 default_weight: float = 1.0) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.quantum = quantum
        self.default_weight = max(float(default_weight), 0.01)
        self._weights = {
            tenant: max(float(weight), 0.01)
            for tenant, weight in (weights or {}).items()
        }
        #: per-tenant heaps of (-priority, seq, job)
        self._queues: dict[str, list] = {}
        self._ring: list[str] = []
        self._cursor = 0
        self._deficit: dict[str, float] = {}
        self._seq = itertools.count()
        self._pending = 0
        # telemetry
        self.submitted = 0
        self.served = 0
        self.rejected = 0
        self.cancelled = 0

    # -- submission -----------------------------------------------------------
    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def submit(self, job: Job, *, force: bool = False) -> None:
        """Queue a job, or raise :class:`QueueFull` at the depth bound.

        ``force`` bypasses the bound — used only by journal replay, which
        must re-enqueue every job the pre-crash daemon already accepted
        (they were admitted under the bound once; rejecting them now
        would drop acknowledged work).
        """
        if self._pending >= self.max_depth and not force:
            self.rejected += 1
            raise QueueFull(
                f"queue is full ({self._pending}/{self.max_depth} pending)")
        queue = self._queues.get(job.tenant)
        if queue is None:
            queue = self._queues[job.tenant] = []
        if not queue and job.tenant not in self._ring:
            self._ring.append(job.tenant)
            self._deficit.setdefault(job.tenant, 0.0)
        heapq.heappush(queue, (-int(job.priority), next(self._seq), job))
        self._pending += 1
        self.submitted += 1

    def cancel(self, job: Job) -> bool:
        """Lazily remove a queued job (it is skipped when popped)."""
        queue = self._queues.get(job.tenant, [])
        for _, _, queued in queue:
            if queued is job:
                job.state = CANCELLED
                self._pending -= 1
                self.cancelled += 1
                return True
        return False

    # -- draining -------------------------------------------------------------
    def _retire(self, tenant: str) -> None:
        """Drop an empty tenant from the ring and reset its deficit."""
        self._deficit[tenant] = 0.0
        try:
            index = self._ring.index(tenant)
        except ValueError:
            return
        del self._ring[index]
        if index < self._cursor:
            self._cursor -= 1

    def _pop(self, tenant: str) -> Job | None:
        """Highest-priority live job of one tenant (skipping cancelled)."""
        queue = self._queues[tenant]
        while queue:
            _, _, job = heapq.heappop(queue)
            if job.state != CANCELLED:
                return job
        return None

    def next_job(self) -> Job | None:
        """The next job under WDRR + priority order, or None when idle."""
        while self._ring:
            self._cursor %= len(self._ring)
            tenant = self._ring[self._cursor]
            queue = self._queues.get(tenant, [])
            if not any(job.state != CANCELLED for _, _, job in queue):
                queue.clear()
                self._retire(tenant)
                continue
            if self._deficit[tenant] >= _COST:
                self._deficit[tenant] -= _COST
                job = self._pop(tenant)
                if not self._queues[tenant]:
                    self._retire(tenant)
                if job is not None:
                    self._pending -= 1
                    self.served += 1
                    return job
                continue
            # out of credit: top up once, then give the next tenant a turn
            self._deficit[tenant] += self.quantum * self.weight(tenant)
            self._cursor += 1
        return None

    # -- introspection --------------------------------------------------------
    @property
    def pending(self) -> int:
        return self._pending

    def depth(self, tenant: str | None = None) -> int:
        if tenant is None:
            return self._pending
        return sum(1 for _, _, job in self._queues.get(tenant, [])
                   if job.state != CANCELLED)

    def counters(self) -> dict:
        return {
            "queue_pending": self._pending,
            "queue_max_depth": self.max_depth,
            "queue_submitted": self.submitted,
            "queue_served": self.served,
            "queue_rejected": self.rejected,
            "queue_cancelled": self.cancelled,
            "queue_tenants": sorted(
                tenant for tenant, queue in self._queues.items() if queue),
        }

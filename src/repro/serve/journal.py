"""Write-ahead job journal: the daemon's registry survives a kill -9.

The in-memory :class:`~repro.serve.jobs.JobRegistry` is fast but mortal
— before this module, a daemon crash silently dropped every queued and
in-flight job even though the run-store artifacts underneath survived.
The journal fixes that with the same discipline the run store already
proved: every job state transition is **appended as one fsync'd JSON
line** (:func:`repro.runs.durable.durable_append_line`) to
``<runs-dir>/serve/journal.jsonl`` *before* the daemon acts on it, and
on startup :meth:`JobJournal.replay` reconstructs the registry from the
journal's valid prefix.

Record grammar (one JSON object per line, ``schema`` stamped on every
record so future layouts can be skipped rather than crashed on)::

    {"schema": 1, "type": "submitted", "job_id": ..., "kind": ...,
     "params": {...}, "tenant": ..., "priority": 0, "key": ...,
     "precached": false, "deadline_s": null, "submitted_at": t}
    {"schema": 1, "type": "running", "job_id": ..., "at": t,
     "event_id": 2}
    {"schema": 1, "type": "cancel_requested", "job_id": ..., "reason": ...}
    {"schema": 1, "type": "completed", "job_id": ..., "at": t,
     "run_id": ..., "event_id": 7}
    {"schema": 1, "type": "failed", ...  "error": ...}
    {"schema": 1, "type": "cancelled", ... "reason": ...}

Replay semantics (the crash-recovery contract):

* a job with a terminal record is restored as **history** — state,
  timestamps, and the ``run_id`` result pointer (the report text itself
  lives in the run store, not the journal);
* a job without one is **requeued**: the scheduler takes it back and the
  runner's resume matching re-attaches it to any interrupted run-store
  manifest, so completed cells and chunks return as cache hits instead
  of being recomputed (``recovered`` marks jobs that were mid-run);
* the dedupe map is rebuilt for every non-terminal job, so a client that
  resubmits the same content key after the restart attaches to the
  *original* job id instead of starting a duplicate computation;
* a torn final line (the kill arrived between ``write`` and ``fsync``)
  ends the valid prefix silently — the same tolerant-tail discipline as
  ``read_checkpoint`` and ``read_trace_tolerant``;
* records with an unknown ``schema`` or ``type`` are counted and
  skipped, never fatal, so an old daemon can replay a newer journal.

Durability tiers: the ``submitted`` record is written *before* the
submission is acknowledged (true write-ahead — an acked job can never be
lost), while transition records are best-effort: losing one merely
requeues a finished job whose artifacts are already content-addressed,
so the recompute is a cache hit.  At-least-once, never lost.

Clean shutdown **compacts** the journal: the file is atomically
rewritten (:func:`~repro.runs.durable.durable_write_text`) with just the
records needed to reproduce the current registry, so it does not grow
without bound across restarts.  ``replay(compact(state))`` is an
identity on every field replay preserves — asserted by the tests.

Fault points: ``serve.journal.append`` guards every line append (torn
journal writes are chaos-testable) and ``serve.journal.compact.pre/
post_rename`` guard the compaction rewrite.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.runs.durable import durable_append_line, durable_write_text
from repro.serve.jobs import (
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
)

__all__ = ["JobJournal", "JournalReplay", "JOURNAL_SCHEMA"]

_LOGGER = logging.getLogger(__name__)

#: journal record schema; bump on incompatible layout changes
JOURNAL_SCHEMA = 1

#: record types this schema understands
_TERMINAL_TYPES = frozenset(TERMINAL_STATES)
_KNOWN_TYPES = _TERMINAL_TYPES | {"submitted", "running", "cancel_requested"}


@dataclass
class JournalReplay:
    """What :meth:`JobJournal.replay` reconstructed, plus its accounting."""

    #: reconstructed jobs in original submission order
    jobs: list[Job] = field(default_factory=list)
    #: parsed records in the valid prefix
    records: int = 0
    #: jobs restored in a terminal state (history only)
    terminal: int = 0
    #: jobs put back on the queue (includes ``recovered`` ones)
    requeued: int = 0
    #: requeued jobs that were mid-run when the daemon died
    recovered_running: int = 0
    #: records skipped for an unknown schema / type (forward compat)
    skipped_unknown: int = 0
    #: state records whose job_id had no submitted record (or bad shape)
    invalid: int = 0
    #: 1 when a torn final line ended the valid prefix
    torn_tail: int = 0

    def counters(self) -> dict:
        """Flat counters for ``/v1/stats`` and the chaos verdict."""
        return {
            "records": self.records,
            "jobs": len(self.jobs),
            "terminal": self.terminal,
            "requeued": self.requeued,
            "recovered_running": self.recovered_running,
            "skipped_unknown": self.skipped_unknown,
            "invalid": self.invalid,
            "torn_tail": self.torn_tail,
        }


class JobJournal:
    """Append-only fsync'd journal of job state under one store root."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.path = Path(root) / "serve" / "journal.jsonl"
        #: lines appended by this process (telemetry, not persisted)
        self.appended = 0
        #: compaction passes performed by this process
        self.compactions = 0

    # -- writing --------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        durable_append_line(
            self.path,
            json.dumps(record, sort_keys=True),
            fault_point="serve.journal.append",
        )
        self.appended += 1

    @staticmethod
    def _submitted_record(job: Job) -> dict:
        return {
            "schema": JOURNAL_SCHEMA,
            "type": "submitted",
            "job_id": job.job_id,
            "kind": job.kind,
            "params": dict(job.params),
            "tenant": job.tenant,
            "priority": job.priority,
            "key": job.key,
            "precached": job.precached,
            "deadline_s": job.deadline_s,
            "submitted_at": job.submitted_at,
        }

    def record_submitted(self, job: Job) -> None:
        """Write-ahead: must land before the submission is acknowledged."""
        self._append(self._submitted_record(job))

    def record_running(self, job: Job) -> None:
        self._append({
            "schema": JOURNAL_SCHEMA,
            "type": "running",
            "job_id": job.job_id,
            "at": job.started_at,
            "event_id": job.channel.last_id,
        })

    def record_cancel_requested(self, job: Job, reason: str) -> None:
        self._append({
            "schema": JOURNAL_SCHEMA,
            "type": "cancel_requested",
            "job_id": job.job_id,
            "reason": reason,
        })

    def record_terminal(self, job: Job) -> None:
        """One terminal record carrying the job's result pointer."""
        record = {
            "schema": JOURNAL_SCHEMA,
            "type": job.state,
            "job_id": job.job_id,
            "at": job.finished_at,
            "event_id": job.channel.last_id,
        }
        if job.state not in TERMINAL_STATES:  # pragma: no cover - guard
            raise ValueError(f"job {job.job_id} is not terminal "
                             f"({job.state!r})")
        if job.error is not None:
            record["error"] = job.error
        if job.cancel_reason is not None:
            record["reason"] = job.cancel_reason
        run_id = (job.result or {}).get("run_id")
        if run_id is not None:
            record["run_id"] = run_id
        self._append(record)

    # -- replay ---------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Reconstruct the registry state from the journal's valid prefix."""
        replay = JournalReplay()
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return replay
        except OSError as exc:  # pragma: no cover - unreadable volume
            _LOGGER.warning("journal %s unreadable: %s", self.path, exc)
            return replay

        jobs: dict[str, Job] = {}
        order: list[str] = []
        was_running: set[str] = set()
        base_ids: dict[str, int] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn final line is the only damage an fsync'd append
                # log can suffer; nothing past it is trustworthy.
                replay.torn_tail = 1
                break
            replay.records += 1
            if not isinstance(record, dict):
                replay.invalid += 1
                continue
            schema = record.get("schema")
            rtype = record.get("type")
            if (not isinstance(schema, int) or schema > JOURNAL_SCHEMA
                    or rtype not in _KNOWN_TYPES):
                replay.skipped_unknown += 1
                continue
            if rtype == "submitted":
                job = self._job_from_submitted(record)
                if job is None:
                    replay.invalid += 1
                    continue
                if job.job_id not in jobs:
                    order.append(job.job_id)
                jobs[job.job_id] = job
                continue
            job = jobs.get(record.get("job_id"))
            if job is None:
                replay.invalid += 1
                continue
            event_id = record.get("event_id")
            if isinstance(event_id, int):
                base_ids[job.job_id] = max(
                    base_ids.get(job.job_id, 0), event_id)
            if rtype == "running":
                job.state = RUNNING
                job.started_at = record.get("at")
                was_running.add(job.job_id)
            elif rtype == "cancel_requested":
                job.cancel_requested = True
                job.cancel_reason = record.get("reason")
            else:  # terminal
                job.state = rtype
                job.finished_at = record.get("at")
                job.error = record.get("error")
                job.cancel_reason = record.get("reason")
                run_id = record.get("run_id")
                if run_id is not None:
                    job.result = {"run_id": run_id}

        for job_id in order:
            job = jobs[job_id]
            # SSE ids must stay monotonic across the restart: new events
            # continue after the highest journaled id, so a watcher's
            # Last-Event-ID from before the crash still filters correctly.
            job.channel.base_id = base_ids.get(job_id, 0)
            if job.state in TERMINAL_STATES:
                replay.terminal += 1
            else:
                job.state = QUEUED
                replay.requeued += 1
                if job_id in was_running:
                    job.recovered = True
                    job.started_at = None
                    replay.recovered_running += 1
            replay.jobs.append(job)
        return replay

    @staticmethod
    def _job_from_submitted(record: dict) -> Job | None:
        job_id = record.get("job_id")
        kind = record.get("kind")
        params = record.get("params")
        key = record.get("key")
        if not (isinstance(job_id, str) and isinstance(kind, str)
                and isinstance(params, dict) and isinstance(key, str)):
            return None
        job = Job(
            job_id=job_id,
            kind=kind,
            params=params,
            tenant=str(record.get("tenant", "default")),
            priority=int(record.get("priority", 0)),
            key=key,
            precached=bool(record.get("precached", False)),
        )
        deadline = record.get("deadline_s")
        if isinstance(deadline, (int, float)) and not isinstance(
                deadline, bool):
            job.deadline_s = float(deadline)
        submitted_at = record.get("submitted_at")
        if isinstance(submitted_at, (int, float)) and not isinstance(
                submitted_at, bool):
            job.submitted_at = float(submitted_at)
        return job

    # -- compaction -----------------------------------------------------------
    def compact(self, jobs: list[Job]) -> int:
        """Atomically rewrite the journal to the minimal record set.

        Emits, per job in submission order, exactly the records replay
        needs to reconstruct its current state — so a replay of the
        compacted journal is identical to a replay of the full one.
        Returns the number of records written.
        """
        lines: list[str] = []
        for job in jobs:
            lines.append(json.dumps(self._submitted_record(job),
                                    sort_keys=True))
            if (job.state == RUNNING or job.recovered
                    or (job.state in TERMINAL_STATES
                        and job.started_at is not None)):
                lines.append(json.dumps({
                    "schema": JOURNAL_SCHEMA,
                    "type": "running",
                    "job_id": job.job_id,
                    "at": job.started_at,
                    "event_id": job.channel.last_id,
                }, sort_keys=True))
            if job.cancel_requested and job.state not in TERMINAL_STATES:
                lines.append(json.dumps({
                    "schema": JOURNAL_SCHEMA,
                    "type": "cancel_requested",
                    "job_id": job.job_id,
                    "reason": job.cancel_reason,
                }, sort_keys=True))
            if job.state in TERMINAL_STATES:
                record = {
                    "schema": JOURNAL_SCHEMA,
                    "type": job.state,
                    "job_id": job.job_id,
                    "at": job.finished_at,
                    "event_id": job.channel.last_id,
                }
                if job.error is not None:
                    record["error"] = job.error
                if job.cancel_reason is not None:
                    record["reason"] = job.cancel_reason
                run_id = (job.result or {}).get("run_id")
                if run_id is not None:
                    record["run_id"] = run_id
                lines.append(json.dumps(record, sort_keys=True))
        if not lines and not self.path.exists():
            return 0  # nothing to write, don't create an empty journal
        self.path.parent.mkdir(parents=True, exist_ok=True)
        durable_write_text(
            self.path,
            "".join(line + "\n" for line in lines),
            fault_point="serve.journal.compact",
        )
        self.compactions += 1
        return len(lines)

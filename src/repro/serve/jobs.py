"""Job model, parameter normalization, and the dedupe registry.

A *job* is one campaign / evaluate / fig8 request.  Its **identity** is
the result-bearing subset of its parameters (seeds, sample counts,
scheme — not ``workers`` or ``engine``, which are bit-identical
execution choices) plus the code fingerprint, hashed with the same
canonical-JSON machinery the run store uses for artifact keys.  Two
submissions with the same identity key *are the same computation*:

* if one is already queued or running, the second **attaches** to it —
  same job id, same SSE channel, one computation for N clients;
* if its artifacts are already in the content-addressed store, the job
  is flagged ``precached`` and completes almost immediately (every cell
  or campaign lookup is a cache hit).

The registry keeps a bounded history of finished jobs so ``repro jobs
list``/``show`` stay useful after completion without growing without
bound in a long-lived daemon.
"""

from __future__ import annotations

import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.serve.sse import BroadcastChannel

__all__ = [
    "Job",
    "JobError",
    "JobRegistry",
    "UnknownJobError",
    "job_identity",
    "new_job_id",
    "normalize_params",
    "JOB_KINDS",
]

#: job states, in lifecycle order
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})


class JobError(ValueError):
    """A submission the server must reject (HTTP 400)."""


class UnknownJobError(KeyError):
    """A job id the registry has no record of (HTTP 404)."""


@dataclass(frozen=True)
class _Param:
    """One accepted parameter of a job kind."""

    name: str
    type: type
    default: object = None
    required: bool = False
    #: identity params feed the dedupe key; the rest only shape execution
    identity: bool = True
    choices: tuple = ()


#: accepted parameters per job kind — defaults mirror the CLI parsers, so
#: a submitted job and the equivalent ``repro <kind>`` invocation build
#: the same run-session config (and therefore the same artifacts)
JOB_KINDS: dict[str, tuple[_Param, ...]] = {
    "campaign": (
        _Param("runs", int, 3),
        _Param("seed", int, 2021),
        _Param("events", int, 3000),
        _Param("engine", str, "columnar", identity=False,
               choices=("shm", "columnar", "reference")),
        _Param("stats", str, "materialize", identity=False,
               choices=("materialize", "streaming")),
        _Param("workers", int, None, identity=False),
        _Param("chunk_timeout", float, None, identity=False),
        _Param("fleet_size", int, None),
        _Param("fleet_scheme", str, "trio"),
    ),
    "evaluate": (
        _Param("scheme", str, required=True),
        _Param("samples", int, 20_000),
        _Param("seed", int, 1234),
        _Param("workers", int, None, identity=False),
        _Param("cell_timeout", float, None, identity=False),
    ),
    "fig8": (
        _Param("samples", int, 20_000),
        _Param("seed", int, 1234),
        _Param("workers", int, None, identity=False),
        _Param("cell_timeout", float, None, identity=False),
    ),
}


def _coerce(param: _Param, value):
    if value is None:
        if param.required:
            raise JobError(f"parameter {param.name!r} is required")
        return param.default
    if param.type is int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise JobError(f"parameter {param.name!r} must be an integer")
        if isinstance(value, float) and not value.is_integer():
            raise JobError(f"parameter {param.name!r} must be an integer")
        return int(value)
    if param.type is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise JobError(f"parameter {param.name!r} must be a number")
        return float(value)
    if param.type is str:
        if not isinstance(value, str):
            raise JobError(f"parameter {param.name!r} must be a string")
        if param.choices and value not in param.choices:
            raise JobError(
                f"parameter {param.name!r} must be one of "
                f"{', '.join(param.choices)} (got {value!r})")
        return value
    raise JobError(f"unsupported parameter type for {param.name!r}")


def normalize_params(kind: str, params: dict | None) -> dict:
    """Validated, default-filled parameters for one job kind.

    Unknown keys are rejected rather than dropped — a typo'd parameter
    silently falling back to its default would dedupe the submission
    against the wrong computation.
    """
    if kind not in JOB_KINDS:
        raise JobError(
            f"unknown job kind {kind!r} "
            f"(expected one of {', '.join(sorted(JOB_KINDS))})")
    params = dict(params or {})
    spec = JOB_KINDS[kind]
    known = {p.name for p in spec}
    unknown = sorted(set(params) - known)
    if unknown:
        raise JobError(f"unknown parameter(s) for {kind!r}: "
                       f"{', '.join(unknown)}")
    return {p.name: _coerce(p, params.get(p.name)) for p in spec}


def job_identity(kind: str, params: dict) -> dict:
    """The result-bearing parameter subset (already normalized)."""
    return {p.name: params[p.name] for p in JOB_KINDS[kind] if p.identity}


def new_job_id(now: float | None = None) -> str:
    """Sortable, collision-resistant job id (UTC stamp + random hex)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
    return f"job-{stamp}-{secrets.token_hex(3)}"


@dataclass
class Job:
    """One submitted computation and everything the API reports about it."""

    job_id: str
    kind: str
    params: dict
    tenant: str
    priority: int
    key: str  #: dedupe / content identity key
    state: str = QUEUED
    precached: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: clients that submitted this identity while it was in flight
    attached: int = 1
    #: wall-clock budget from submission; exceeded -> cancelled
    deadline_s: float | None = None
    cancel_requested: bool = False
    #: why cancellation was requested / happened (client, deadline, ...)
    cancel_reason: str | None = None
    #: requeued by journal replay after dying mid-run
    recovered: bool = False
    result: dict | None = None
    error: str | None = None
    channel: BroadcastChannel = field(default_factory=BroadcastChannel)

    def deadline_exceeded(self, now: float | None = None) -> bool:
        """True once the per-job deadline (if any) has passed."""
        if self.deadline_s is None:
            return False
        return (now if now is not None else time.time()) \
            > self.submitted_at + self.deadline_s

    def to_dict(self, *, include_result: bool = True) -> dict:
        data = {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": dict(self.params),
            "tenant": self.tenant,
            "priority": self.priority,
            "key": self.key,
            "state": self.state,
            "precached": self.precached,
            "attached": self.attached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_s": self.deadline_s,
            "cancel_requested": self.cancel_requested,
            "recovered": self.recovered,
            "events": self.channel.last_id,
        }
        if self.cancel_reason is not None:
            data["cancel_reason"] = self.cancel_reason
        if self.error is not None:
            data["error"] = self.error
        if include_result and self.result is not None:
            data["result"] = self.result
        return data


class JobRegistry:
    """All jobs the daemon knows about, with in-flight dedupe by key."""

    def __init__(self, history: int = 256) -> None:
        self.history = history
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._active_by_key: dict[str, Job] = {}
        #: total submissions absorbed by attaching to an in-flight job
        self.deduped = 0

    def create(self, kind: str, params: dict | None, *, tenant: str,
               priority: int, key: str, precached: bool = False,
               deadline_s: float | None = None) -> tuple[Job, bool]:
        """Register a submission; returns ``(job, attached_to_existing)``.

        ``params`` must already be normalized (the key was derived from
        them).  An in-flight job with the same key absorbs the
        submission: the caller must *not* schedule anything new (the
        original job's deadline keeps governing).
        """
        existing = self._active_by_key.get(key)
        if existing is not None and existing.state not in TERMINAL_STATES:
            existing.attached += 1
            self.deduped += 1
            return existing, True
        job = Job(job_id=new_job_id(), kind=kind, params=params,
                  tenant=tenant, priority=priority, key=key,
                  precached=precached, deadline_s=deadline_s)
        self._jobs[job.job_id] = job
        self._active_by_key[key] = job
        self._trim()
        return job, False

    def restore(self, job: Job) -> None:
        """Re-insert a journal-replayed job (startup recovery path).

        Jobs arrive in original submission order, so insertion order —
        and therefore listing/trim behaviour — matches the pre-crash
        registry.  Non-terminal jobs reclaim their dedupe slot: a
        resubmitted content key attaches to the original job id instead
        of starting a duplicate computation.
        """
        self._jobs[job.job_id] = job
        if job.state not in TERMINAL_STATES:
            self._active_by_key[job.key] = job
        self._trim()

    def finish(self, job: Job) -> None:
        """Release a job's dedupe slot once it reaches a terminal state."""
        if self._active_by_key.get(job.key) is job:
            del self._active_by_key[job.key]
        self._trim()

    def discard(self, job: Job) -> None:
        """Forget a job that was never scheduled (e.g. queue-full 429)."""
        self._jobs.pop(job.job_id, None)
        if self._active_by_key.get(job.key) is job:
            del self._active_by_key[job.key]

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"no job {job_id!r}") from None

    def all_jobs(self) -> list[Job]:
        """Every known job in submission (insertion) order."""
        return list(self._jobs.values())

    def jobs(self, *, tenant: str | None = None,
             state: str | None = None) -> list[Job]:
        """Jobs newest-first, optionally filtered by tenant / state."""
        selected = [
            job for job in self._jobs.values()
            if (tenant is None or job.tenant == tenant)
            and (state is None or job.state == state)
        ]
        selected.sort(key=lambda j: j.submitted_at, reverse=True)
        return selected

    def state_counts(self) -> dict:
        counts: dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def _trim(self) -> None:
        """Evict the oldest *terminal* jobs beyond the history bound."""
        excess = len(self._jobs) - self.history
        if excess <= 0:
            return
        for job_id in [jid for jid, job in self._jobs.items()
                       if job.state in TERMINAL_STATES][:excess]:
            del self._jobs[job_id]

"""Server-sent-event plumbing: per-job broadcast channels.

Every job owns one :class:`BroadcastChannel`.  The daemon publishes
lifecycle and progress events into it (from the event-loop thread —
worker threads marshal through ``loop.call_soon_threadsafe``), and every
``GET /v1/jobs/<id>/events`` subscriber gets an :class:`asyncio.Queue`
that first *replays the full history* and then receives live events, so
a client that attaches after the job completed still sees the terminal
event immediately instead of hanging.

Events are plain dicts — ``{"id": n, "event": name, "data": {...}}`` —
and :func:`encode_sse` renders one as a spec-compliant SSE frame
(``id:`` / ``event:`` / ``data:`` lines terminated by a blank line).
The channel is closed exactly once, when the job reaches a terminal
state; subscribers see the ``None`` sentinel and finish their stream.
"""

from __future__ import annotations

import asyncio
import json
import time

__all__ = ["BroadcastChannel", "encode_sse"]

#: terminal event names — a channel closes after publishing one of these
TERMINAL_EVENTS = frozenset({"completed", "failed", "cancelled"})


def encode_sse(event: dict) -> bytes:
    """One event dict as an SSE frame (id / event / data + blank line)."""
    lines = []
    if event.get("id") is not None:
        lines.append(f"id: {event['id']}")
    lines.append(f"event: {event.get('event', 'message')}")
    payload = json.dumps(event.get("data", {}), sort_keys=True)
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode()


class BroadcastChannel:
    """History-replaying fan-out of one job's events to async readers."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._subscribers: list[asyncio.Queue] = []
        self.closed = False

    def publish(self, name: str, data: dict | None = None) -> dict:
        """Append one event and wake every live subscriber.

        Must run on the event-loop thread; terminal events close the
        channel after delivery (late subscribers still replay history).
        """
        event = {
            "id": len(self.events) + 1,
            "event": name,
            "data": dict(data or {}),
            "t": time.time(),
        }
        self.events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)
        if name in TERMINAL_EVENTS:
            self.close()
        return event

    def close(self) -> None:
        """Send the end-of-stream sentinel to every subscriber (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers.clear()

    def subscribe(self) -> asyncio.Queue:
        """A queue pre-loaded with the full history, then fed live events."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.closed:
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

"""Server-sent-event plumbing: per-job broadcast channels.

Every job owns one :class:`BroadcastChannel`.  The daemon publishes
lifecycle and progress events into it (from the event-loop thread —
worker threads marshal through ``loop.call_soon_threadsafe``), and every
``GET /v1/jobs/<id>/events`` subscriber gets an :class:`asyncio.Queue`
that first *replays the full history* and then receives live events, so
a client that attaches after the job completed still sees the terminal
event immediately instead of hanging.

Events are plain dicts — ``{"id": n, "event": name, "data": {...}}`` —
and :func:`encode_sse` renders one as a spec-compliant SSE frame
(``id:`` / ``event:`` / ``data:`` lines terminated by a blank line).
The channel is closed exactly once, when the job reaches a terminal
state; subscribers see the ``None`` sentinel and finish their stream.
"""

from __future__ import annotations

import asyncio
import json
import time

__all__ = ["BroadcastChannel", "encode_sse"]

#: terminal event names — a channel closes after publishing one of these
TERMINAL_EVENTS = frozenset({"completed", "failed", "cancelled"})


def encode_sse(event: dict) -> bytes:
    """One event dict as an SSE frame (id / event / data + blank line)."""
    lines = []
    if event.get("id") is not None:
        lines.append(f"id: {event['id']}")
    lines.append(f"event: {event.get('event', 'message')}")
    payload = json.dumps(event.get("data", {}), sort_keys=True)
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode()


class BroadcastChannel:
    """History-replaying fan-out of one job's events to async readers.

    ``base_id`` offsets every event id: journal replay sets it to the
    highest id recorded before a daemon restart, so ids stay monotonic
    across the restart and a reconnecting watcher's ``Last-Event-ID``
    filter keeps working against the rebuilt channel.
    """

    def __init__(self, base_id: int = 0) -> None:
        self.base_id = base_id
        self.events: list[dict] = []
        self._subscribers: list[asyncio.Queue] = []
        self.closed = False

    @property
    def last_id(self) -> int:
        """The id of the newest event (or the replayed base)."""
        if self.events:
            return self.events[-1]["id"]
        return self.base_id

    def publish(self, name: str, data: dict | None = None) -> dict:
        """Append one event and wake every live subscriber.

        Must run on the event-loop thread; terminal events close the
        channel after delivery (late subscribers still replay history).
        """
        event = {
            "id": self.last_id + 1,
            "event": name,
            "data": dict(data or {}),
            "t": time.time(),
        }
        self.events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)
        if name in TERMINAL_EVENTS:
            self.close()
        return event

    def close(self) -> None:
        """Send the end-of-stream sentinel to every subscriber (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers.clear()

    def subscribe(self, after_id: int = 0) -> asyncio.Queue:
        """A queue pre-loaded with history after ``after_id``, then live.

        ``after_id`` is a reconnecting client's ``Last-Event-ID``: events
        it already saw are not replayed.  One deliberate exception — when
        the filter would suppress *everything* on a closed channel, the
        terminal event is replayed anyway, so a watcher whose pre-restart
        ``Last-Event-ID`` outruns the rebuilt history (progress events
        are not journaled) still observes the job's terminal state
        instead of hanging on an empty stream.
        """
        queue: asyncio.Queue = asyncio.Queue()
        replayed = 0
        for event in self.events:
            if event["id"] > after_id:
                queue.put_nowait(event)
                replayed += 1
        if self.closed:
            if not replayed and self.events:
                queue.put_nowait(self.events[-1])
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

"""Circuit generators for the expansion-tier code families.

These extend the Table-3 cost model to the registry's expansion schemes:

* **hsiao-v2 / sec-daec** — reuse :func:`repro.hardware.synth.binary_encoder`
  and :func:`~repro.hardware.synth.binary_decoder` (the SEC-DAEC decoder
  exercises the overlapping-pair correction network: a bit inside the
  sliding adjacent-pair window ORs every pair HCM covering it);
* **bch-dec** — a dedicated algebraic DEC netlist per (144,128) codeword:
  parallel syndrome XOR trees for ``S1``/``S3``, a GF(2^8) cube ROM to test
  the single-error invariant ``S3 = S1^3``, the one-shot locator-coefficient
  path ``Λ2 = (S1^3 + S3)/S1`` built from the Reed-Solomon primitives
  (DLogα ROMs, end-around-carry subtractor, an Expα ROM), a fully parallel
  Chien search over all 144 positions, and a population-count root counter
  that only enables double correction when the locator has exactly two
  in-range roots.  The netlist is ROM-complete and functionally simulable.
* **polar** — the syndrome-SC decoder unrolled into combinational logic: an
  XOR butterfly recovers ``u_y``, and the successive-cancellation datapath
  is instantiated node for node with a quantized sign-magnitude LLR bus
  (1 + ``_MAG_BITS`` bits, saturating adders — standard min-sum hardware
  practice; the software evaluator remains the behavioral reference).
  Constant channel LLRs are folded through the tree, so only logic that
  actually depends on the syndrome is charged.  The result is deliberately
  honest about why nobody ships single-cycle SC at N=512: the decoder is
  orders of magnitude larger and slower than any Table-3 organization.

:func:`expansion_rows` summarizes the four families at both design points;
:func:`scheme_hardware` maps *every* registry scheme to its synthesized
encoder/decoder rows (``None`` for the multi-cycle extension tier, which
has no single-cycle netlist by definition) for the ranking report.
"""

from __future__ import annotations

from functools import cache

from repro.codes.hsiao import hsiao_search_code
from repro.gf.gf256 import EXP_TABLE, LOG_TABLE, ORDER
from repro.hardware.circuit import Circuit
from repro.hardware.gates import GateKind
from repro.hardware.synth import (
    Table3Row,
    _eac_subtractor,
    _equality,
    _new_circuit,
    binary_decoder,
    binary_encoder,
    rs_encoder,
    rs_ssc_decoder,
    ssc_dsd_decoder,
)
from repro.hardware.xor_tree import gf_const_mult, xor_combine_bytes, xor_rows

__all__ = [
    "bch_dec_decoder",
    "polar_encoder",
    "polar_decoder",
    "expansion_rows",
    "scheme_hardware",
]

#: Magnitude width of the quantized sign-magnitude LLR datapath.
_MAG_BITS = 5


# ---------------------------------------------------------------------------
# Constant-folding gate helpers
# ---------------------------------------------------------------------------

class _Fold:
    """Gate builder that folds constants instead of instantiating cells.

    The unrolled SC datapath starts from *constant* channel LLRs — real
    synthesis would sweep that logic away, so the cost model must too.
    Folding rules: known-input gates evaluate to constants, identity inputs
    pass through, and muxes degenerate to AND/OR/NOT where a data input is
    constant.  Constants are deduplicated per circuit.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._consts: dict[int, int] = {}

    def const(self, value: int) -> int:
        value = int(bool(value))
        if value not in self._consts:
            self._consts[value] = self.circuit.const(value)
        return self._consts[value]

    def _value(self, node: int) -> int | None:
        return self.circuit.const_value(node)

    def not_(self, a: int) -> int:
        va = self._value(a)
        if va is not None:
            return self.const(va ^ 1)
        return self.circuit.gate(GateKind.NOT, a)

    def xor(self, a: int, b: int) -> int:
        va, vb = self._value(a), self._value(b)
        if va is not None and vb is not None:
            return self.const(va ^ vb)
        if va == 0:
            return b
        if vb == 0:
            return a
        if va == 1:
            return self.not_(b)
        if vb == 1:
            return self.not_(a)
        return self.circuit.gate(GateKind.XOR2, a, b)

    def and_(self, a: int, b: int) -> int:
        va, vb = self._value(a), self._value(b)
        if va == 0 or vb == 0:
            return self.const(0)
        if va == 1:
            return b
        if vb == 1:
            return a
        return self.circuit.gate(GateKind.AND2, a, b)

    def or_(self, a: int, b: int) -> int:
        va, vb = self._value(a), self._value(b)
        if va == 1 or vb == 1:
            return self.const(1)
        if va == 0:
            return b
        if vb == 0:
            return a
        return self.circuit.gate(GateKind.OR2, a, b)

    def mux(self, select: int, low: int, high: int) -> int:
        """``high if select else low`` (the MUX2 fanin convention)."""
        vs = self._value(select)
        if vs is not None:
            return high if vs else low
        if low == high:
            return low
        vl, vh = self._value(low), self._value(high)
        if vl == 0 and vh == 1:
            return select
        if vl == 1 and vh == 0:
            return self.not_(select)
        if vh == 0:
            return self.and_(self.not_(select), low)
        if vh == 1:
            return self.or_(select, low)
        if vl == 0:
            return self.and_(select, high)
        if vl == 1:
            return self.or_(self.not_(select), high)
        return self.circuit.gate(GateKind.MUX2, select, low, high)

    def _reduce(self, op, nodes: list[int]) -> int:
        work = list(nodes)
        if not work:
            raise ValueError("cannot reduce an empty signal list")
        while len(work) > 1:
            nxt = [op(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def or_tree(self, nodes: list[int]) -> int:
        return self._reduce(self.or_, nodes)

    def xor_tree(self, nodes: list[int]) -> int:
        return self._reduce(self.xor, nodes)


def _ripple_add(fold: _Fold, a: list[int], b: list[int]) -> tuple[list[int], int]:
    """Equal-width ripple adder; returns (sum bits, carry-out)."""
    total, carry = [], fold.const(0)
    for x, y in zip(a, b):
        partial = fold.xor(x, y)
        total.append(fold.xor(partial, carry))
        carry = fold.or_(fold.and_(x, y), fold.and_(partial, carry))
    return total, carry


def _ripple_sub(fold: _Fold, a: list[int], b: list[int]) -> list[int]:
    """``a - b`` assuming ``a >= b`` (borrow-ripple subtractor)."""
    out, borrow = [], fold.const(0)
    for x, y in zip(a, b):
        partial = fold.xor(x, y)
        out.append(fold.xor(partial, borrow))
        borrow = fold.or_(
            fold.and_(fold.not_(x), y), fold.and_(fold.not_(partial), borrow)
        )
    return out


def _mag_less(fold: _Fold, a: list[int], b: list[int]) -> int:
    """``a < b`` over unsigned buses (LSB-first), MSB priority."""
    less = fold.const(0)
    for x, y in zip(a, b):  # LSB -> MSB; later (higher) bits override
        differ = fold.xor(x, y)
        less = fold.mux(differ, less, fold.and_(fold.not_(x), y))
    return less


def _popcount(fold: _Fold, bits: list[int]) -> list[int]:
    """Population count as a bus, via a pairwise adder tree."""
    buses: list[list[int]] = [[bit] for bit in bits]
    zero = fold.const(0)
    while len(buses) > 1:
        nxt = []
        for i in range(0, len(buses) - 1, 2):
            a, b = buses[i], buses[i + 1]
            width = max(len(a), len(b))
            a = a + [zero] * (width - len(a))
            b = b + [zero] * (width - len(b))
            total, carry = _ripple_add(fold, a, b)
            nxt.append(total + [carry])
        if len(buses) % 2:
            nxt.append(buses[-1])
        buses = nxt
    return buses[0]


# ---------------------------------------------------------------------------
# BCH DEC decoder
# ---------------------------------------------------------------------------

#: Cube ROM: v -> v^3 in GF(2^8) (the single-error invariant S3 = S1^3).
_CUBE_CONTENTS = [0] + [
    int(EXP_TABLE[(3 * int(LOG_TABLE[value])) % ORDER]) for value in range(1, 256)
]

#: DLogα ROM image (zero entry gated off upstream).
_DLOG_CONTENTS = [0] + [int(LOG_TABLE[value]) for value in range(1, 256)]

#: Expα ROM: antilog of a mod-255 exponent; address 255 is the EAC
#: subtractor's ones'-complement double zero and reads as α^0 = 1.
_EXP_CONTENTS = [int(EXP_TABLE[value % ORDER]) for value in range(256)]


def bch_dec_decoder(*, efficient: bool = False,
                    name: str = "bch-dec-decoder") -> Circuit:
    """The one-shot double-error-correcting decoder, two (144,128) codewords.

    Per codeword: syndrome trees for ``S1``/``S3``, 144 full-width HCMs for
    the single-error path, the ``Λ2`` locator-coefficient path on the RS
    primitives, a parallel Chien search (one constant multiplier and root
    comparator per position), and a popcount gate that arms double
    correction only when exactly two locator roots land in range.
    """
    from repro.codes.bch import BCH_DEC_144_128 as code

    circuit = _new_circuit(name, efficient)
    fold = _Fold(circuit)
    balanced = True
    copies = 288 // code.n
    column_values = code.column_syndromes.tolist()

    for codeword in range(copies):
        received = circuit.add_input(code.n)
        syndrome = xor_rows(circuit, code.h, received, balanced=balanced)
        s1, s3 = syndrome[:8], syndrome[8:]
        s1_nonzero = circuit.or_tree(s1, balanced=balanced)
        any_nonzero = circuit.or_tree(syndrome, balanced=balanced)

        # Single-error path: S3 = S1^3 and the 16-bit syndrome matches a column.
        s1_cubed = circuit.rom(s1, 8, contents=_CUBE_CONTENTS)
        single_consistent = _equality(circuit, s1_cubed, s3, efficient=efficient)
        single_mode = circuit.gate(GateKind.AND2, s1_nonzero, single_consistent)
        hcm = [
            circuit.match_constant(syndrome, int(value), balanced=balanced)
            for value in column_values
        ]

        # Locator coefficient Λ2 = (S1^3 + S3) / S1 via log-domain division.
        numerator = xor_combine_bytes(circuit, [s1_cubed, s3], balanced=balanced)
        log_numerator = circuit.rom(numerator, 8, contents=_DLOG_CONTENTS)
        log_denominator = circuit.rom(s1, 8, contents=_DLOG_CONTENTS)
        log_lambda2 = _eac_subtractor(
            circuit, log_numerator, log_denominator, efficient=efficient
        )
        lambda2 = circuit.rom(log_lambda2, 8, contents=_EXP_CONTENTS)

        # Chien search: position j is a root iff α^{2j} + S1·α^j + Λ2 = 0.
        roots = []
        for j in range(code.n):
            term = gf_const_mult(
                circuit, int(EXP_TABLE[j % ORDER]), s1, balanced=balanced
            )
            trial = xor_combine_bytes(circuit, [term, lambda2], balanced=balanced)
            roots.append(
                circuit.match_constant(
                    trial, int(EXP_TABLE[(2 * j) % ORDER]), balanced=balanced
                )
            )
        root_count = _popcount(fold, roots)
        two_roots = circuit.match_constant(root_count, 2, balanced=balanced)
        double_mode = circuit.and_tree(
            [s1_nonzero, circuit.gate(GateKind.NOT, single_consistent), two_roots],
            balanced=balanced,
        )

        flips = [
            fold.or_(
                fold.and_(hcm[j], single_mode), fold.and_(roots[j], double_mode)
            )
            for j in range(code.n)
        ]
        for index, position in enumerate(code.data_positions.tolist()):
            circuit.mark_output(
                f"cw{codeword}_data{index}",
                fold.xor(received[position], flips[position]),
            )
        corrects = circuit.gate(GateKind.OR2, single_mode, double_mode)
        due = circuit.gate(
            GateKind.AND2, any_nonzero, circuit.gate(GateKind.NOT, corrects)
        )
        circuit.mark_output(f"cw{codeword}_due", due)
    return circuit


# ---------------------------------------------------------------------------
# Polar circuits
# ---------------------------------------------------------------------------

def _butterfly(fold: _Fold, nets: list[int]) -> list[int]:
    """The polar XOR butterfly on signal nets (mirrors ``_polar_transform``)."""
    nets = list(nets)
    n = len(nets)
    step = 1
    while step < n:
        for start in range(0, n, 2 * step):
            for i in range(start, start + step):
                nets[i] = fold.xor(nets[i], nets[i + step])
        step *= 2
    return nets


def _llr_const(fold: _Fold, magnitude: int) -> tuple[int, list[int]]:
    """A constant non-negative LLR as a sign-magnitude bus."""
    magnitude = min(magnitude, (1 << _MAG_BITS) - 1)
    return (
        fold.const(0),
        [fold.const((magnitude >> bit) & 1) for bit in range(_MAG_BITS)],
    )


def _f_node(fold: _Fold, a, b):
    """min-sum check node: sign product, magnitude minimum."""
    sign_a, mag_a = a
    sign_b, mag_b = b
    sign = fold.xor(sign_a, sign_b)
    a_smaller = _mag_less(fold, mag_a, mag_b)
    mag = [fold.mux(a_smaller, mb, ma) for ma, mb in zip(mag_a, mag_b)]
    # Equal magnitudes take either input; a<b strictly takes a. Covered by
    # the mux polarity: a_smaller=1 -> mag_a, else mag_b.
    return sign, mag


def _g_node(fold: _Fold, a, b, partial: int):
    """Variable node ``b + (1-2p)·a`` in saturating sign-magnitude."""
    sign_a, mag_a = a
    sign_b, mag_b = b
    sign_a = fold.xor(sign_a, partial)  # partial sum flips the a operand
    same_sign = fold.not_(fold.xor(sign_a, sign_b))
    total, carry = _ripple_add(fold, mag_a, mag_b)
    saturated = [fold.or_(bit, carry) for bit in total]
    a_smaller = _mag_less(fold, mag_a, mag_b)
    larger = [fold.mux(a_smaller, ma, mb) for ma, mb in zip(mag_a, mag_b)]
    smaller = [fold.mux(a_smaller, mb, ma) for ma, mb in zip(mag_a, mag_b)]
    difference = _ripple_sub(fold, larger, smaller)
    diff_sign = fold.mux(a_smaller, sign_a, sign_b)
    sign = fold.mux(same_sign, diff_sign, sign_a)
    mag = [fold.mux(same_sign, d, s) for d, s in zip(difference, saturated)]
    return sign, mag


def _sc_nets(fold: _Fold, code, buses, offset: int, forced: list[int]) -> list[int]:
    """Unrolled successive cancellation over sign-magnitude LLR buses."""
    size = len(buses)
    if size == 1:
        if code.frozen_mask[offset]:
            return [forced[offset]]
        sign, mag = buses[0]
        # decide 1 iff LLR < 0: negative sign with nonzero magnitude
        # (an LLR of exactly 0 deterministically decides 0).
        return [fold.and_(sign, fold.or_tree(mag))]
    half = size // 2
    llr_f = [_f_node(fold, buses[i], buses[half + i]) for i in range(half)]
    u_a = _sc_nets(fold, code, llr_f, offset, forced)
    partial = _butterfly(fold, u_a)
    llr_g = [
        _g_node(fold, buses[i], buses[half + i], partial[i]) for i in range(half)
    ]
    u_b = _sc_nets(fold, code, llr_g, offset + half, forced)
    return u_a + u_b


def polar_encoder(*, efficient: bool = False,
                  name: str = "polar-encoder") -> Circuit:
    """Non-systematic polar encoder: CRC-8 generation + the XOR butterfly.

    Unlike every other encoder in the cost model the output is the whole
    288-bit transmitted word, not just check bits — polar codes are not
    systematic, which is itself part of their hardware cost story.
    """
    from repro.codes.polar import POLAR_512_288 as code

    circuit = _new_circuit(name, efficient)
    fold = _Fold(circuit)
    data = circuit.add_input(code.data_bits)
    crc = xor_rows(circuit, code._crc_matrix, data, balanced=True)

    u = [fold.const(0)] * code.n
    info = code.info_positions.tolist()
    for index, position in enumerate(info[: code.data_bits]):
        u[position] = data[index]
    for index, position in enumerate(info[code.data_bits:]):
        u[position] = crc[index]
    x = _butterfly(fold, u)
    for j in range(code.transmitted):
        circuit.mark_output(f"x{j}", x[j])
    return circuit


def polar_decoder(*, efficient: bool = False,
                  name: str = "polar-decoder") -> Circuit:
    """Syndrome-SC decoder unrolled into single-cycle combinational logic.

    Structure mirrors :meth:`repro.codes.polar.PolarCode.decode` exactly:
    the received word's butterfly gives ``u_y`` (whose frozen coordinates
    are the syndrome), the SC tree runs on constant channel LLRs with
    frozen leaves forced to those nets, and the payload plus CRC check come
    from ``u_y ⊕ u_e``.  The LLR datapath is quantized to 1+``_MAG_BITS``
    sign-magnitude bits with saturating adders — standard min-sum hardware;
    the int64 software decoder remains the behavioral reference.
    """
    from repro.codes.polar import POLAR_512_288 as code

    circuit = _new_circuit(name, efficient)
    fold = _Fold(circuit)
    received = circuit.add_input(code.transmitted)
    y = list(received) + [fold.const(0)] * (code.n - code.transmitted)
    u_y = _butterfly(fold, y)

    buses = [
        _llr_const(fold, 1 if i < code.transmitted else (1 << _MAG_BITS) - 1)
        for i in range(code.n)
    ]
    u_e = _sc_nets(fold, code, buses, 0, u_y)

    info = code.info_positions.tolist()
    u_hat = {i: fold.xor(u_y[i], u_e[i]) for i in info}
    data = [u_hat[i] for i in info[: code.data_bits]]
    crc_rx = [u_hat[i] for i in info[code.data_bits:]]
    crc_rows = code._crc_matrix
    mismatch = []
    for row in range(crc_rows.shape[0]):
        taps = [data[j] for j in range(code.data_bits) if crc_rows[row, j]]
        mismatch.append(fold.xor(fold.xor_tree(taps), crc_rx[row]))
    for index, net in enumerate(data):
        circuit.mark_output(f"data{index}", net)
    circuit.mark_output("due", fold.or_tree(mismatch))
    return circuit


# ---------------------------------------------------------------------------
# Expansion rows + per-scheme synthesis map
# ---------------------------------------------------------------------------

def _row(name: str, build) -> Table3Row:
    return Table3Row(
        name,
        build(False, f"{name}-perf").stats(),
        build(True, f"{name}-eff").stats(),
    )


@cache
def expansion_rows() -> tuple[list[Table3Row], list[Table3Row]]:
    """Synthesize the expansion-tier circuits; (encoder rows, decoder rows).

    Row order matches :data:`repro.core.registry.EXPANSION_SCHEME_NAMES`.
    Baseline-relative overheads should be computed against the SEC-DED rows
    of :func:`repro.hardware.synth.table3_rows`.
    """
    from repro.codes.bch import BCH_DEC_144_128
    from repro.codes.sec_daec import SEC_DAEC_72_64, SEC_DAEC_PAIRS

    hsiao2 = hsiao_search_code(variant=1)
    encoders = [
        _row("SEC-DED v2", lambda eff, name: binary_encoder(
            hsiao2, efficient=eff, name=name)),
        _row("SEC-DAEC", lambda eff, name: binary_encoder(
            SEC_DAEC_72_64, efficient=eff, name=name)),
        _row("BCH-DEC", lambda eff, name: binary_encoder(
            BCH_DEC_144_128, efficient=eff, name=name)),
        _row("Polar", lambda eff, name: polar_encoder(
            efficient=eff, name=name)),
    ]
    decoders = [
        _row("SEC-DED v2", lambda eff, name: binary_decoder(
            hsiao2, efficient=eff, name=name)),
        _row("SEC-DAEC", lambda eff, name: binary_decoder(
            SEC_DAEC_72_64, pair_table=SEC_DAEC_PAIRS, efficient=eff,
            name=name)),
        _row("BCH-DEC", lambda eff, name: bch_dec_decoder(
            efficient=eff, name=name)),
        _row("Polar", lambda eff, name: polar_decoder(
            efficient=eff, name=name)),
    ]
    return encoders, decoders


@cache
def scheme_hardware() -> dict[str, tuple[Table3Row | None, Table3Row | None]]:
    """``name -> (encoder row, decoder row)`` for every registry scheme.

    Interleaving is wiring only, so interleaved variants share their
    non-interleaved sibling's circuits (the paper's "implemented by wires").
    The extension tier's multi-cycle iterative decoders have no single-cycle
    netlist and map to ``(None, None)``.
    """
    from repro.codes.hsiao import hsiao_code
    from repro.codes.reed_solomon import ReedSolomonCode
    from repro.codes.sec2bec import SEC_2BEC_72_64, paper_pair_table
    from repro.core.registry import known_scheme_names

    hsiao = hsiao_code()
    sec2bec = SEC_2BEC_72_64
    pairs = paper_pair_table()
    rs18 = ReedSolomonCode(18, 16)
    rs36 = ReedSolomonCode(36, 32)

    secded_enc = _row("SEC-DED", lambda eff, name: binary_encoder(
        hsiao, efficient=eff, name=name))
    sec2bec_enc = _row("SEC-2bEC", lambda eff, name: binary_encoder(
        sec2bec, efficient=eff, name=name))
    ssc_enc = _row("I:SSC", lambda eff, name: rs_encoder(
        rs18, copies=2, efficient=eff, name=name))
    dsd_enc = _row("SSC-DSD+", lambda eff, name: rs_encoder(
        rs36, efficient=eff, name=name))

    secded_dec = _row("SEC-DED", lambda eff, name: binary_decoder(
        hsiao, efficient=eff, name=name))
    duet_dec = _row("DuetECC", lambda eff, name: binary_decoder(
        hsiao, csc=True, efficient=eff, name=name))
    sec2bec_dec = _row("SEC-2bEC", lambda eff, name: binary_decoder(
        sec2bec, pair_table=pairs, efficient=eff, name=name))
    trio_dec = _row("TrioECC", lambda eff, name: binary_decoder(
        sec2bec, pair_table=pairs, csc=True, efficient=eff, name=name))
    ssc_dec = _row("I:SSC", lambda eff, name: rs_ssc_decoder(
        csc=False, efficient=eff, name=name))
    ssc_csc_dec = _row("I:SSC+CSC", lambda eff, name: rs_ssc_decoder(
        csc=True, efficient=eff, name=name))
    dsd_dec = _row("SSC-DSD+", lambda eff, name: ssc_dsd_decoder(
        efficient=eff, name=name))

    expansion_enc, expansion_dec = expansion_rows()
    mapping: dict[str, tuple[Table3Row | None, Table3Row | None]] = {
        "ni-secded": (secded_enc, secded_dec),
        "i-secded": (secded_enc, secded_dec),
        "duet": (secded_enc, duet_dec),
        "ni-sec2bec": (sec2bec_enc, sec2bec_dec),
        "i-sec2bec": (sec2bec_enc, sec2bec_dec),
        "trio": (sec2bec_enc, trio_dec),
        "i-ssc": (ssc_enc, ssc_dec),
        "i-ssc-csc": (ssc_enc, ssc_csc_dec),
        "ssc-dsd+": (dsd_enc, dsd_dec),
        "dsc": (None, None),
        "ssc-tsd": (None, None),
        "hsiao-v2": (expansion_enc[0], expansion_dec[0]),
        "sec-daec": (expansion_enc[1], expansion_dec[1]),
        "bch-dec": (expansion_enc[2], expansion_dec[2]),
        "polar": (expansion_enc[3], expansion_dec[3]),
    }
    missing = set(known_scheme_names()) - set(mapping)
    if missing:
        raise AssertionError(f"schemes without hardware mapping: {missing}")
    return mapping

"""Combinational netlists with area and static-timing estimation.

A :class:`Circuit` is a DAG of primitive gates (:mod:`repro.hardware.gates`).
Area is the sum of cell areas in AND2 equivalents; delay is the longest
register-to-register combinational path (static timing over the DAG), the
two quantities Table 3 reports.

The builder offers the reduction trees every ECC circuit is made of, in two
styles reflecting Table 3's "Perf." and "Eff." design points:

* ``balanced=True`` — minimum-depth balanced trees (the performant point);
* ``balanced=False`` — linear chains, which synthesis produces when it
  trades delay slack for area/power in the area-time-efficient point.

:meth:`Circuit.share` provides greedy common-subexpression elimination for
the efficient design points: identical (kind, fanin) gates are merged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gates import GATE_SPECS, ROM_AREA_PER_BIT, ROM_DELAY_NS, GateKind

__all__ = ["Circuit", "CircuitStats"]


@dataclass(frozen=True)
class CircuitStats:
    """Synthesis summary of one circuit (a Table 3 cell pair)."""

    name: str
    area: float
    delay_ns: float
    gate_count: int

    def area_overhead(self, baseline: "CircuitStats") -> float:
        return self.area / baseline.area - 1.0

    def delay_overhead(self, baseline: "CircuitStats") -> float:
        return self.delay_ns / baseline.delay_ns - 1.0


@dataclass
class _Node:
    kind: GateKind
    fanin: tuple[int, ...]
    area: float
    delay_ns: float
    #: ROM blocks carry their contents; ROM taps carry their bit index.
    payload: object = None


class Circuit:
    """A gate-level netlist under construction.

    ``area_scale``/``delay_scale`` model cell sizing: an area-time-efficient
    synthesis run relaxes timing and maps to smaller, slower drive strengths
    (scales < 1 area, > 1 delay), while a performance-constrained run does
    the opposite.  They apply uniformly to every gate added.
    """

    def __init__(self, name: str, *, area_scale: float = 1.0,
                 delay_scale: float = 1.0) -> None:
        self.name = name
        self.area_scale = area_scale
        self.delay_scale = delay_scale
        self._nodes: list[_Node] = []
        self._share_cache: dict[tuple[GateKind, tuple[int, ...]], int] = {}
        self._sharing = False
        self.outputs: dict[str, int] = {}

    # -- construction -----------------------------------------------------
    def enable_sharing(self, enabled: bool = True) -> None:
        """Merge structurally identical gates (the "Eff." design points)."""
        self._sharing = enabled

    def add_input(self, count: int = 1) -> list[int]:
        """Add primary inputs; returns their node ids."""
        ids = []
        for _ in range(count):
            self._nodes.append(_Node(GateKind.INPUT, (), 0.0, 0.0))
            ids.append(len(self._nodes) - 1)
        return ids

    def const(self, value: int) -> int:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        return self._add(kind, ())

    def gate(self, kind: GateKind, *fanin: int) -> int:
        """Add one primitive gate."""
        spec = GATE_SPECS[kind]
        if spec.fanin and len(fanin) != spec.fanin:
            raise ValueError(f"{kind.value} takes {spec.fanin} inputs")
        return self._add(kind, tuple(fanin))

    def rom(self, address_bits: list[int], data_width: int,
            contents: list[int] | None = None) -> list[int]:
        """A combinational lookup table (e.g. the DLogα block).

        Modelled as one block whose area scales with the stored bit count;
        returns one node per output bit (all share the block's delay).
        ``contents`` (one word per address, LSB-first address bits) makes
        the block functionally simulable by :meth:`evaluate`.
        """
        words = 1 << len(address_bits)
        if contents is not None and len(contents) != words:
            raise ValueError(f"ROM contents must have {words} words")
        area = words * data_width * ROM_AREA_PER_BIT
        block = self._add_raw(
            GateKind.ROM, tuple(address_bits), area, ROM_DELAY_NS,
            payload=tuple(contents) if contents is not None else None,
        )
        # Output bits are free taps on the block.
        return [
            self._add_raw(GateKind.ROM, (block,), 0.0, 0.0, payload=bit)
            for bit in range(data_width)
        ]

    def _add(self, kind: GateKind, fanin: tuple[int, ...]) -> int:
        if self._sharing:
            key = (kind, fanin)
            cached = self._share_cache.get(key)
            if cached is not None:
                return cached
        spec = GATE_SPECS[kind]
        node_id = self._add_raw(kind, fanin, spec.area, spec.delay_ns)
        if self._sharing:
            self._share_cache[(kind, fanin)] = node_id
        return node_id

    def _add_raw(self, kind: GateKind, fanin: tuple[int, ...],
                 area: float, delay_ns: float, payload: object = None) -> int:
        self._nodes.append(
            _Node(kind, fanin, area * self.area_scale,
                  delay_ns * self.delay_scale, payload)
        )
        return len(self._nodes) - 1

    def mark_output(self, name: str, node: int) -> None:
        self.outputs[name] = node

    def const_value(self, node: int) -> int | None:
        """0/1 if ``node`` is a constant cell, else None.

        Generators use this to fold gates whose inputs are known — e.g. the
        constant channel LLRs feeding the top of an unrolled SC datapath —
        so the cost model does not charge for logic synthesis would remove.
        """
        kind = self._nodes[node].kind
        if kind is GateKind.CONST0:
            return 0
        if kind is GateKind.CONST1:
            return 1
        return None

    # -- reduction trees ---------------------------------------------------
    def tree(self, kind: GateKind, nodes: list[int], *,
             balanced: bool = True) -> int:
        """Reduce a list of signals with a 2-input gate tree."""
        if not nodes:
            raise ValueError("cannot reduce an empty signal list")
        work = list(nodes)
        if balanced:
            while len(work) > 1:
                nxt = []
                for i in range(0, len(work) - 1, 2):
                    nxt.append(self.gate(kind, work[i], work[i + 1]))
                if len(work) % 2:
                    nxt.append(work[-1])
                work = nxt
            return work[0]
        accumulator = work[0]
        for node in work[1:]:
            accumulator = self.gate(kind, accumulator, node)
        return accumulator

    def xor_tree(self, nodes: list[int], *, balanced: bool = True) -> int:
        return self.tree(GateKind.XOR2, nodes, balanced=balanced)

    def and_tree(self, nodes: list[int], *, balanced: bool = True) -> int:
        return self.tree(GateKind.AND2, nodes, balanced=balanced)

    def or_tree(self, nodes: list[int], *, balanced: bool = True) -> int:
        return self.tree(GateKind.OR2, nodes, balanced=balanced)

    def match_constant(self, bits: list[int], constant: int, *,
                       balanced: bool = True) -> int:
        """A comparator asserting ``bits == constant`` — the HCM circuit."""
        terms = []
        for position, bit in enumerate(bits):
            if (constant >> position) & 1:
                terms.append(bit)
            else:
                terms.append(self.gate(GateKind.NOT, bit))
        return self.and_tree(terms, balanced=balanced)

    # -- analysis -----------------------------------------------------------
    def area(self) -> float:
        return sum(node.area for node in self._nodes)

    def gate_count(self) -> int:
        return sum(
            1
            for node in self._nodes
            if node.kind not in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1)
            and node.area > 0
        )

    def delay_ns(self) -> float:
        """Critical-path delay to any marked output (static timing)."""
        arrival = [0.0] * len(self._nodes)
        for index, node in enumerate(self._nodes):
            latest_input = max((arrival[f] for f in node.fanin), default=0.0)
            arrival[index] = latest_input + node.delay_ns
        if self.outputs:
            return max(arrival[node] for node in self.outputs.values())
        return max(arrival, default=0.0)

    def evaluate(self, input_values: list[int]) -> dict[str, int]:
        """Functionally simulate the netlist.

        ``input_values`` are the primary-input bits in creation order.  The
        return value maps each marked output to 0/1.  Supports every gate
        except ROM blocks (whose contents live in the real decoders'
        tables, not the netlist) — so the binary encoders/decoders are
        fully simulable, which the test-suite uses to prove the cost model
        builds *working* ECC logic, not just plausible gate counts.
        """
        num_inputs = sum(1 for node in self._nodes if node.kind is GateKind.INPUT)
        if len(input_values) != num_inputs:
            raise ValueError(
                f"expected {num_inputs} input bits, got {len(input_values)}"
            )
        values: list[int] = [0] * len(self._nodes)
        input_cursor = 0
        for index, node in enumerate(self._nodes):
            kind = node.kind
            if kind is GateKind.INPUT:
                values[index] = int(input_values[input_cursor]) & 1
                input_cursor += 1
            elif kind is GateKind.CONST0:
                values[index] = 0
            elif kind is GateKind.CONST1:
                values[index] = 1
            elif kind is GateKind.NOT:
                values[index] = values[node.fanin[0]] ^ 1
            elif kind is GateKind.AND2:
                values[index] = values[node.fanin[0]] & values[node.fanin[1]]
            elif kind is GateKind.OR2:
                values[index] = values[node.fanin[0]] | values[node.fanin[1]]
            elif kind is GateKind.NAND2:
                values[index] = (values[node.fanin[0]] & values[node.fanin[1]]) ^ 1
            elif kind is GateKind.NOR2:
                values[index] = (values[node.fanin[0]] | values[node.fanin[1]]) ^ 1
            elif kind is GateKind.XOR2:
                values[index] = values[node.fanin[0]] ^ values[node.fanin[1]]
            elif kind is GateKind.XNOR2:
                values[index] = values[node.fanin[0]] ^ values[node.fanin[1]] ^ 1
            elif kind is GateKind.MUX2:
                select, low, high = node.fanin
                values[index] = values[high] if values[select] else values[low]
            elif kind is GateKind.ROM:
                if node.fanin and isinstance(node.payload, int):
                    # A tap: extract one bit of the block's looked-up word.
                    values[index] = (values[node.fanin[0]] >> node.payload) & 1
                elif isinstance(node.payload, tuple):
                    address = 0
                    for bit, source in enumerate(node.fanin):
                        address |= values[source] << bit
                    values[index] = int(node.payload[address])
                else:
                    raise NotImplementedError(
                        "ROM block was built without contents; pass "
                        "`contents=` to Circuit.rom to simulate it"
                    )
            else:  # pragma: no cover - exhaustive over GateKind
                raise NotImplementedError(f"cannot evaluate {kind}")
        return {name: values[node] for name, node in self.outputs.items()}

    def stats(self) -> CircuitStats:
        return CircuitStats(
            name=self.name,
            area=self.area(),
            delay_ns=self.delay_ns(),
            gate_count=self.gate_count(),
        )

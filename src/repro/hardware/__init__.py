"""Gate-level hardware cost estimation (Table 3)."""

from repro.hardware.circuit import Circuit, CircuitStats
from repro.hardware.gates import GATE_SPECS, GateKind
from repro.hardware.synth import (
    Table3Row,
    binary_decoder,
    binary_encoder,
    rs_encoder,
    rs_ssc_decoder,
    ssc_dsd_decoder,
    table3_rows,
)

__all__ = [
    "Circuit",
    "CircuitStats",
    "GATE_SPECS",
    "GateKind",
    "Table3Row",
    "binary_decoder",
    "binary_encoder",
    "rs_encoder",
    "rs_ssc_decoder",
    "ssc_dsd_decoder",
    "table3_rows",
]

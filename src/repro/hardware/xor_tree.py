"""XOR-network helpers shared by the encoder/decoder generators.

Binary ECC hardware is dominated by XOR networks: encoders are XOR trees
over the H-matrix rows, syndrome generators are the same trees over the
received word, and GF(2^8) constant multipliers are 8×8 XOR matrices.  The
helpers here build those networks on a :class:`~repro.hardware.circuit.Circuit`
from the actual matrices used by the schemes, so the estimated areas track
the real code structure (e.g. Hsiao's balanced row weights directly shrink
the widest tree).
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf256 import gf_mul
from repro.hardware.circuit import Circuit

__all__ = ["xor_rows", "gf_const_mult_matrix", "gf_const_mult", "xor_combine_bytes"]


def xor_rows(circuit: Circuit, matrix: np.ndarray, inputs: list[int], *,
             balanced: bool = True) -> list[int]:
    """One XOR tree per matrix row: output r = ⊕ of inputs where row r is 1."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    outputs = []
    for row in matrix:
        taps = [inputs[i] for i in np.nonzero(row)[0]]
        if not taps:
            outputs.append(circuit.const(0))
        else:
            outputs.append(circuit.xor_tree(taps, balanced=balanced))
    return outputs


def gf_const_mult_matrix(constant: int) -> np.ndarray:
    """The 8×8 GF(2) matrix of multiplication by a GF(2^8) constant.

    Column j is ``constant · x^j``; the multiplier hardware is one XOR tree
    per output bit over this matrix.
    """
    matrix = np.zeros((8, 8), dtype=np.uint8)
    for j in range(8):
        product = gf_mul(constant, 1 << j)
        for i in range(8):
            matrix[i, j] = (product >> i) & 1
    return matrix


def gf_const_mult(circuit: Circuit, constant: int, byte_bits: list[int], *,
                  balanced: bool = True) -> list[int]:
    """Instantiate a constant GF(2^8) multiplier on 8 input bits."""
    matrix = gf_const_mult_matrix(constant)
    return xor_rows(circuit, matrix, byte_bits, balanced=balanced)


def xor_combine_bytes(circuit: Circuit, byte_groups: list[list[int]], *,
                      balanced: bool = True) -> list[int]:
    """Bitwise XOR of several 8-bit buses (syndrome accumulation)."""
    width = len(byte_groups[0])
    return [
        circuit.xor_tree([group[bit] for group in byte_groups], balanced=balanced)
        for bit in range(width)
    ]

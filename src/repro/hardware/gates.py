"""Standard-cell gate models for the synthesis estimator.

The paper reports Table 3 in technology-independent units: circuit area as
the equivalent AND2-gate count and delay in nanoseconds from a 16nm
standard-cell library.  The constants below are representative relative
weights for such a library (an XOR2 cell is roughly twice the area and
delay of an AND2; an inverter half).  Absolute numbers will differ from
Synopsys results, but the *relative* cost of the decoder structures — XOR
trees, H-column-match comparators, GF(2^8) multipliers, discrete-log ROMs —
is preserved, which is what Table 3's comparisons rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["GateKind", "GATE_SPECS", "GateSpec", "ROM_AREA_PER_BIT", "ROM_DELAY_NS"]


class GateKind(Enum):
    """Primitive cells available to the netlist builder."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    NOT = "not"
    AND2 = "and2"
    OR2 = "or2"
    NAND2 = "nand2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    MUX2 = "mux2"
    ROM = "rom"  #: lookup table; area set per instance


@dataclass(frozen=True)
class GateSpec:
    """Area (AND2 equivalents) and propagation delay (ns) of one cell."""

    area: float
    delay_ns: float
    fanin: int


GATE_SPECS: dict[GateKind, GateSpec] = {
    GateKind.INPUT: GateSpec(0.0, 0.0, 0),
    GateKind.CONST0: GateSpec(0.0, 0.0, 0),
    GateKind.CONST1: GateSpec(0.0, 0.0, 0),
    GateKind.NOT: GateSpec(0.5, 0.006, 1),
    GateKind.AND2: GateSpec(1.0, 0.012, 2),
    GateKind.OR2: GateSpec(1.0, 0.012, 2),
    GateKind.NAND2: GateSpec(0.8, 0.010, 2),
    GateKind.NOR2: GateSpec(0.8, 0.010, 2),
    GateKind.XOR2: GateSpec(2.2, 0.024, 2),
    GateKind.XNOR2: GateSpec(2.2, 0.024, 2),
    GateKind.MUX2: GateSpec(2.0, 0.020, 3),
    # ROM is sized per instance; spec here is unused for area.
    GateKind.ROM: GateSpec(0.0, 0.080, 0),
}

#: Synthesized-ROM density: AND2 equivalents per stored bit (after
#: minimization, a random 256×8 table costs roughly a third of a gate/bit).
ROM_AREA_PER_BIT = 0.35

#: Access delay of a combinational ROM/LUT block, ns.
ROM_DELAY_NS = 0.080

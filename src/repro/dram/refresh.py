"""DRAM refresh and cell-retention model.

A DRAM cell holds charge that leaks away; it must be refreshed within its
*retention time* or the stored value decays toward the cell's discharge
state.  Healthy HBM2 cells retain data far longer than the default 16ms
refresh period; displacement-damaged cells can have retention reduced by
orders of magnitude (Section 4), which is what makes them observable as
"weak" cells when the refresh period exceeds their retention.

The model here is intentionally simple and matches what the paper's
experiments can observe:

* a cell with ``retention >= refresh_period`` never leaks;
* a cell with ``retention < refresh_period`` leaks before its next refresh,
  reading as its discharge value whenever the stored value differs.

Leak direction is per-cell: 99.8% of damaged cells discharge 1 → 0 (the
paper's measurement for this memory, suggesting true-cell storage) and the
remainder 0 → 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RefreshConfig", "WeakCell", "DEFAULT_REFRESH_PERIOD_S"]

#: The HBM2 default: 16 ms.
DEFAULT_REFRESH_PERIOD_S = 16e-3


@dataclass(frozen=True)
class RefreshConfig:
    """Refresh-rate setting of the (BIOS-modifiable) memory controller."""

    period_s: float = DEFAULT_REFRESH_PERIOD_S

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("refresh period must be positive")

    @property
    def period_ms(self) -> float:
        return self.period_s * 1e3


@dataclass(frozen=True)
class WeakCell:
    """A displacement-damaged cell.

    ``bit_address`` is (entry_index, bit offset 0-287); ``retention_s`` is
    the degraded retention time; ``leaks_to`` is the logical value the cell
    decays toward (0 for the dominant 1 → 0 direction).
    """

    entry_index: int
    bit: int
    retention_s: float
    leaks_to: int = 0

    def leaks_under(self, refresh: RefreshConfig) -> bool:
        """True when this cell is observable at the given refresh period."""
        return self.retention_s < refresh.period_s

    def corrupts(self, stored_bit: int, refresh: RefreshConfig) -> bool:
        """True when a read returns the wrong value for ``stored_bit``."""
        return self.leaks_under(refresh) and stored_bit != self.leaks_to

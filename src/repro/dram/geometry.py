"""HBM2 address geometry (Section 2.4).

The hierarchy modelled, from the top:

* a GPU carries several HBM2 **stacks** (a 32GB V100 has eight 4GB stacks);
* each stack has eight 512MB **channels** with private pins;
* each channel has 16 **banks**;
* each bank has 32 **subarrays**, each with its own 2KB row buffer;
* each subarray has 36 **mats** (32 data + 4 ECC in this model), each a
  512 × 512 bit-cell array contributing an 8-bit slice of every access;
* a row activation selects one of 512 **rows**; reads then fetch one of 64
  32B **columns** (a *memory entry*) from the row buffer.

Every 32B read draws its data from a single subarray, and each byte of the
36B entry (data + ECC) comes from its own mat — the physical origin of the
byte-aligned multi-bit error pattern.

Addresses are decomposed entry-major:  ``entry_index`` counts 32B entries
from 0; the split is (stack, channel, bank, subarray, row, column) from
most to least significant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HBM2Geometry", "EntryAddress", "BitAddress"]


@dataclass(frozen=True, order=True)
class EntryAddress:
    """Hierarchical address of one 32B memory entry."""

    stack: int
    channel: int
    bank: int
    subarray: int
    row: int
    column: int


@dataclass(frozen=True, order=True)
class BitAddress:
    """A single DRAM bit cell: an entry plus a bit offset (0-287).

    ``mat`` is the mat serving the bit — byte granularity within the entry.
    """

    entry: EntryAddress
    bit: int

    @property
    def mat(self) -> int:
        return self.bit // 8


@dataclass(frozen=True)
class HBM2Geometry:
    """Sizes of every level of the hierarchy, with conversion helpers."""

    num_stacks: int = 8  #: 8 stacks × 4GB = a 32GB V100-class GPU
    channels_per_stack: int = 8
    banks_per_channel: int = 16
    subarrays_per_bank: int = 32
    rows_per_subarray: int = 512  #: mat height
    columns_per_row: int = 64  #: 2KB row buffer / 32B entries
    entry_bytes: int = 32  #: data payload per entry
    ecc_bytes: int = 4

    # -- capacities -------------------------------------------------------
    @property
    def entries_per_subarray(self) -> int:
        return self.rows_per_subarray * self.columns_per_row

    @property
    def entries_per_bank(self) -> int:
        return self.entries_per_subarray * self.subarrays_per_bank

    @property
    def entries_per_channel(self) -> int:
        return self.entries_per_bank * self.banks_per_channel

    @property
    def entries_per_stack(self) -> int:
        return self.entries_per_channel * self.channels_per_stack

    @property
    def total_entries(self) -> int:
        return self.entries_per_stack * self.num_stacks

    @property
    def data_bytes_total(self) -> int:
        """Usable capacity in bytes (ECC excluded)."""
        return self.total_entries * self.entry_bytes

    @property
    def data_gigabytes(self) -> float:
        return self.data_bytes_total / 2**30

    @property
    def channel_bytes(self) -> int:
        return self.entries_per_channel * self.entry_bytes

    @property
    def entry_bits(self) -> int:
        """Transmitted bits per entry, ECC included."""
        return (self.entry_bytes + self.ecc_bytes) * 8

    # -- address conversion -------------------------------------------------
    def decompose(self, entry_index: int) -> EntryAddress:
        """Split a flat entry index into its hierarchical address."""
        if not 0 <= entry_index < self.total_entries:
            raise ValueError(f"entry index {entry_index} out of range")
        index, column = divmod(entry_index, self.columns_per_row)
        index, row = divmod(index, self.rows_per_subarray)
        index, subarray = divmod(index, self.subarrays_per_bank)
        index, bank = divmod(index, self.banks_per_channel)
        stack, channel = divmod(index, self.channels_per_stack)
        return EntryAddress(stack, channel, bank, subarray, row, column)

    def compose(self, address: EntryAddress) -> int:
        """Inverse of :func:`decompose`."""
        index = address.stack
        index = index * self.channels_per_stack + address.channel
        index = index * self.banks_per_channel + address.bank
        index = index * self.subarrays_per_bank + address.subarray
        index = index * self.rows_per_subarray + address.row
        index = index * self.columns_per_row + address.column
        return index

    def same_subarray(self, first: int, second: int) -> bool:
        """True when two entries share a subarray (hence a row buffer)."""
        per = self.entries_per_subarray
        return first // per == second // per

    @staticmethod
    def for_gpu(capacity_gb: int = 32) -> "HBM2Geometry":
        """Geometry for a GPU with the given HBM2 capacity (multiple of 4GB)."""
        if capacity_gb % 4 != 0:
            raise ValueError("capacity must be a whole number of 4GB stacks")
        return HBM2Geometry(num_stacks=capacity_gb // 4)

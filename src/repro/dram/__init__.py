"""Simulated HBM2 DRAM substrate."""

from repro.dram.controller import (
    ProtectedMemory,
    RasCounters,
    UncorrectableError,
    bits_to_bytes,
    bytes_to_bits,
)
from repro.dram.device import Mismatch, PatternFn, SimulatedHBM2
from repro.dram.geometry import BitAddress, EntryAddress, HBM2Geometry
from repro.dram.refresh import DEFAULT_REFRESH_PERIOD_S, RefreshConfig, WeakCell

__all__ = [
    "ProtectedMemory",
    "RasCounters",
    "UncorrectableError",
    "bits_to_bytes",
    "bytes_to_bits",
    "Mismatch",
    "PatternFn",
    "SimulatedHBM2",
    "BitAddress",
    "EntryAddress",
    "HBM2Geometry",
    "DEFAULT_REFRESH_PERIOD_S",
    "RefreshConfig",
    "WeakCell",
]

"""A simulated multi-gigabyte HBM2 device.

Storing 32GB of cell state is neither possible nor necessary: the beam
experiments only ever observe *differences* from the pattern the
microbenchmark wrote.  The device therefore keeps

* a **background pattern** — a function from entry index to the 288
  transmitted bits last written over the whole device (bulk writes are
  O(1)),
* an **overlay** of explicitly written entries (sparse),
* an **upset overlay** of persistent bit flips deposited by soft-error
  events (sparse; cleared by the next write, like a real soft error), and
* a set of **weak cells** installed by the displacement-damage model,
  whose misreads depend on the refresh period.

Reads reconstruct ``pattern ⊕ upsets ⊕ leaks`` on demand, and
:meth:`SimulatedHBM2.scan_mismatches` visits only the sparse fault sites, so
a full-device read pass costs O(#faults) rather than O(capacity) — the
trick that makes a multi-hour beam campaign simulable in seconds.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig, WeakCell

__all__ = ["PatternFn", "SimulatedHBM2", "Mismatch"]

#: A background data pattern: entry index -> 288 transmitted bits.
PatternFn = Callable[[int], np.ndarray]


@dataclass(frozen=True)
class Mismatch:
    """One erroneous entry observed by a read pass."""

    entry_index: int
    bit_positions: tuple[int, ...]


class SimulatedHBM2:
    """Sparse-state simulation of a whole GPU's HBM2 memory."""

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        refresh: RefreshConfig | None = None,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.refresh = refresh or RefreshConfig()
        self._background: PatternFn = lambda index: np.zeros(
            self.geometry.entry_bits, dtype=np.uint8
        )
        self._written: dict[int, np.ndarray] = {}
        self._upsets: dict[int, np.ndarray] = {}
        # Weak cells indexed by entry so reads touch only that entry's cells.
        self._weak_cells: dict[int, dict[int, WeakCell]] = {}

    # -- configuration ---------------------------------------------------------
    def set_refresh(self, refresh: RefreshConfig) -> None:
        """Change the refresh period (the paper's modified-BIOS experiment)."""
        self.refresh = refresh

    def install_weak_cell(self, cell: WeakCell) -> None:
        """Register a displacement-damaged cell."""
        self._check_index(cell.entry_index)
        self._weak_cells.setdefault(cell.entry_index, {})[cell.bit] = cell

    def remove_weak_cell(self, entry_index: int, bit: int) -> None:
        per_entry = self._weak_cells.get(entry_index)
        if per_entry is not None:
            per_entry.pop(bit, None)
            if not per_entry:
                del self._weak_cells[entry_index]

    @property
    def weak_cells(self) -> list[WeakCell]:
        return [cell for cells in self._weak_cells.values() for cell in cells.values()]

    # -- writes ---------------------------------------------------------------
    def write_all(self, pattern: PatternFn) -> None:
        """Bulk write: the microbenchmark's "write a known pattern to every
        memory entry".  Clears all explicit writes and pending upsets."""
        self._background = pattern
        self._written.clear()
        self._upsets.clear()

    def write_entry(self, entry_index: int, bits: np.ndarray) -> None:
        """Targeted write; clears any upset pending on the entry."""
        self._check_index(entry_index)
        bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
        if bits.size != self.geometry.entry_bits:
            raise ValueError(f"expected {self.geometry.entry_bits} bits")
        self._written[entry_index] = bits.copy()
        self._upsets.pop(entry_index, None)

    # -- faults -----------------------------------------------------------------
    def inject_upset(self, entry_index: int, flip_bits: np.ndarray) -> None:
        """XOR a soft-error flip pattern into an entry (persists until the
        next write of that entry)."""
        self._check_index(entry_index)
        flips = np.asarray(flip_bits, dtype=np.uint8).reshape(-1)
        if flips.size != self.geometry.entry_bits:
            raise ValueError(f"expected {self.geometry.entry_bits} bits")
        if not flips.any():
            return
        current = self._upsets.get(entry_index)
        combined = flips if current is None else current ^ flips
        if combined.any():
            self._upsets[entry_index] = combined
        else:
            self._upsets.pop(entry_index, None)

    # -- reads -----------------------------------------------------------------
    def stored_bits(self, entry_index: int) -> np.ndarray:
        """The value the cells *hold* (writes + upsets, before leakage)."""
        self._check_index(entry_index)
        base = self._written.get(entry_index)
        if base is None:
            base = np.asarray(self._background(entry_index), dtype=np.uint8)
        bits = base.copy()
        upset = self._upsets.get(entry_index)
        if upset is not None:
            bits ^= upset
        return bits

    def read_entry(self, entry_index: int) -> np.ndarray:
        """The value a read returns: stored bits plus retention leakage."""
        bits = self.stored_bits(entry_index)
        for bit, cell in self._weak_cells.get(entry_index, {}).items():
            if cell.corrupts(int(bits[bit]), self.refresh):
                bits[bit] ^= 1
        return bits

    # -- efficient full-device scan ------------------------------------------------
    def _fault_sites(self) -> set[int]:
        sites = set(self._upsets)
        sites.update(self._written)
        sites.update(self._weak_cells)
        return sites

    def scan_mismatches(self, expected: PatternFn) -> Iterator[Mismatch]:
        """Compare every entry against ``expected``, visiting only fault
        sites.  Entries that hold the unmodified background pattern can only
        mismatch if ``expected`` differs from the background — callers pass
        the same pattern object they wrote, so those entries are skipped."""
        for entry_index in sorted(self._fault_sites()):
            observed = self.read_entry(entry_index)
            wanted = np.asarray(expected(entry_index), dtype=np.uint8)
            difference = np.nonzero(observed ^ wanted)[0]
            if difference.size:
                yield Mismatch(entry_index, tuple(int(b) for b in difference))

    # -- bookkeeping -----------------------------------------------------------
    def _check_index(self, entry_index: int) -> None:
        if not 0 <= entry_index < self.geometry.total_entries:
            raise ValueError(f"entry index {entry_index} out of range")

    @property
    def upset_entries(self) -> int:
        return len(self._upsets)

"""A simulated multi-gigabyte HBM2 device.

Storing 32GB of cell state is neither possible nor necessary: the beam
experiments only ever observe *differences* from the pattern the
microbenchmark wrote.  The device therefore keeps

* a **background pattern** — a function from entry index to the 288
  transmitted bits last written over the whole device (bulk writes are
  O(1)),
* an **overlay** of explicitly written entries (sparse),
* an **upset overlay** of persistent bit flips deposited by soft-error
  events (sparse; cleared by the next write, like a real soft error), and
* a set of **weak cells** installed by the displacement-damage model,
  whose misreads depend on the refresh period.

Reads reconstruct ``pattern ⊕ upsets ⊕ leaks`` on demand, and
:meth:`SimulatedHBM2.scan_mismatches` visits only the sparse fault sites, so
a full-device read pass costs O(#faults) rather than O(capacity) — the
trick that makes a multi-hour beam campaign simulable in seconds.

The fault state is held *columnar*: the upset overlay is a sorted
``(entries, packed-rows)`` pair of flat arrays (bit-packed ``(N, 5)``
``uint64`` rows, PR 1's transport format) and weak cells are parallel
entry/bit/retention/direction columns.  Appends land in pending buffers
and are consolidated lazily — a stable sort plus an XOR ``reduceat`` merge
— so injecting a thousand-entry MBME event costs one array append, and
:meth:`SimulatedHBM2.scan_mismatches_batch` can diff every fault site in
one packed XOR.  The scalar per-entry API is preserved on top as the
compatibility/oracle surface.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig, WeakCell
from repro.gf.gf2 import pack_rows, unpack_rows

__all__ = [
    "PatternFn",
    "BatchPatternFn",
    "SimulatedHBM2",
    "Mismatch",
    "mismatches_from_packed",
]

#: A background data pattern: entry index -> 288 transmitted bits.
PatternFn = Callable[[int], np.ndarray]

#: Batch form: int64 entry-index array -> bit-packed ``(len, 5)`` uint64 rows.
BatchPatternFn = Callable[[np.ndarray], np.ndarray]

_PACKED_WORDS = 5  # ceil(288 / 64)


@dataclass(frozen=True)
class Mismatch:
    """One erroneous entry observed by a read pass."""

    entry_index: int
    bit_positions: tuple[int, ...]


def mismatches_from_packed(entries: np.ndarray,
                           rows: np.ndarray) -> list[Mismatch]:
    """Expand a batch scan's ``(entries, packed rows)`` into
    :class:`Mismatch` objects — the scalar scan's output format."""
    bits = unpack_rows(rows, 288)
    return [
        Mismatch(int(entry), tuple(int(b) for b in np.nonzero(row)[0]))
        for entry, row in zip(entries, bits)
    ]


class SimulatedHBM2:
    """Sparse-state simulation of a whole GPU's HBM2 memory."""

    def __init__(
        self,
        geometry: HBM2Geometry | None = None,
        refresh: RefreshConfig | None = None,
    ) -> None:
        self.geometry = geometry or HBM2Geometry.for_gpu(32)
        self.refresh = refresh or RefreshConfig()
        self._background: PatternFn = lambda index: np.zeros(
            self.geometry.entry_bits, dtype=np.uint8
        )
        self._background_packed: BatchPatternFn | None = None
        self._written: dict[int, np.ndarray] = {}
        # Upset overlay: consolidated sorted-unique entries + packed rows,
        # with unconsolidated appends buffered in _upset_pending_*.
        self._upset_entries_arr = np.empty(0, dtype=np.int64)
        self._upset_rows = np.empty((0, _PACKED_WORDS), dtype=np.uint64)
        self._upset_pending_entries: list[np.ndarray] = []
        self._upset_pending_rows: list[np.ndarray] = []
        # Weak cells: parallel columns, consolidated sorted by (entry, bit)
        # with later installs overriding earlier ones.
        self._weak_entry = np.empty(0, dtype=np.int64)
        self._weak_bit = np.empty(0, dtype=np.int64)
        self._weak_retention = np.empty(0, dtype=np.float64)
        self._weak_leaks = np.empty(0, dtype=np.int64)
        self._weak_pending: list[tuple[int, int, float, int]] = []

    # -- configuration ---------------------------------------------------------
    def set_refresh(self, refresh: RefreshConfig) -> None:
        """Change the refresh period (the paper's modified-BIOS experiment)."""
        self.refresh = refresh

    def install_weak_cell(self, cell: WeakCell) -> None:
        """Register a displacement-damaged cell."""
        self._check_index(cell.entry_index)
        self._weak_pending.append(
            (cell.entry_index, cell.bit, cell.retention_s, cell.leaks_to)
        )

    def install_weak_cells_batch(
        self,
        entry_index: np.ndarray,
        bit: np.ndarray,
        retention_s: np.ndarray,
        leaks_to: np.ndarray,
    ) -> None:
        """Register many damaged cells from parallel columns at once."""
        entry_index = np.asarray(entry_index, dtype=np.int64)
        if entry_index.size and (
            entry_index.min() < 0
            or entry_index.max() >= self.geometry.total_entries
        ):
            raise ValueError("entry index out of range")
        self._weak_pending.extend(zip(
            entry_index.tolist(),
            np.asarray(bit, dtype=np.int64).tolist(),
            np.asarray(retention_s, dtype=np.float64).tolist(),
            np.asarray(leaks_to, dtype=np.int64).tolist(),
        ))

    def _consolidate_weak(self) -> None:
        if not self._weak_pending:
            return
        pending = self._weak_pending
        self._weak_pending = []
        entry = np.concatenate([
            self._weak_entry, np.array([p[0] for p in pending], np.int64)
        ])
        bit = np.concatenate([
            self._weak_bit, np.array([p[1] for p in pending], np.int64)
        ])
        retention = np.concatenate([
            self._weak_retention, np.array([p[2] for p in pending])
        ])
        leaks = np.concatenate([
            self._weak_leaks, np.array([p[3] for p in pending], np.int64)
        ])
        key = entry * self.geometry.entry_bits + bit
        order = np.argsort(key, kind="stable")
        key = key[order]
        run_start = np.flatnonzero(np.r_[True, np.diff(key) != 0])
        # stable sort keeps install order within a key; the run's last
        # element is the most recent install, which wins (dict semantics)
        last = np.r_[run_start[1:], key.size] - 1
        pick = order[last]
        self._weak_entry = entry[pick]
        self._weak_bit = bit[pick]
        self._weak_retention = retention[pick]
        self._weak_leaks = leaks[pick]

    def remove_weak_cell(self, entry_index: int, bit: int) -> None:
        self._consolidate_weak()
        keep = ~((self._weak_entry == entry_index) & (self._weak_bit == bit))
        self._weak_entry = self._weak_entry[keep]
        self._weak_bit = self._weak_bit[keep]
        self._weak_retention = self._weak_retention[keep]
        self._weak_leaks = self._weak_leaks[keep]

    @property
    def weak_cells(self) -> list[WeakCell]:
        self._consolidate_weak()
        return [
            WeakCell(int(entry), int(bit), float(retention), int(leaks))
            for entry, bit, retention, leaks in zip(
                self._weak_entry, self._weak_bit,
                self._weak_retention, self._weak_leaks,
            )
        ]

    # -- writes ---------------------------------------------------------------
    def write_all(self, pattern: PatternFn,
                  packed_pattern: BatchPatternFn | None = None) -> None:
        """Bulk write: the microbenchmark's "write a known pattern to every
        memory entry".  Clears all explicit writes and pending upsets.

        ``packed_pattern``, when supplied, is the same pattern as a batch
        of bit-packed rows; it lets :meth:`scan_mismatches_batch` evaluate
        the background without per-entry Python calls.
        """
        self._background = pattern
        self._background_packed = packed_pattern
        self._written.clear()
        self._upset_entries_arr = np.empty(0, dtype=np.int64)
        self._upset_rows = np.empty((0, _PACKED_WORDS), dtype=np.uint64)
        self._upset_pending_entries.clear()
        self._upset_pending_rows.clear()

    def write_entry(self, entry_index: int, bits: np.ndarray) -> None:
        """Targeted write; clears any upset pending on the entry."""
        self._check_index(entry_index)
        bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
        if bits.size != self.geometry.entry_bits:
            raise ValueError(f"expected {self.geometry.entry_bits} bits")
        self._written[entry_index] = bits.copy()
        self._consolidate_upsets()
        keep = self._upset_entries_arr != entry_index
        if not keep.all():
            self._upset_entries_arr = self._upset_entries_arr[keep]
            self._upset_rows = self._upset_rows[keep]

    # -- faults -----------------------------------------------------------------
    def inject_upset(self, entry_index: int, flip_bits: np.ndarray) -> None:
        """XOR a soft-error flip pattern into an entry (persists until the
        next write of that entry)."""
        self._check_index(entry_index)
        flips = np.asarray(flip_bits, dtype=np.uint8).reshape(-1)
        if flips.size != self.geometry.entry_bits:
            raise ValueError(f"expected {self.geometry.entry_bits} bits")
        if not flips.any():
            return
        self._upset_pending_entries.append(
            np.array([entry_index], dtype=np.int64)
        )
        self._upset_pending_rows.append(pack_rows(flips[None, :]))

    def inject_upsets_batch(self, entries: np.ndarray,
                            packed_rows: np.ndarray) -> None:
        """XOR many flip patterns at once (entries may repeat; a repeated
        entry's rows XOR-accumulate, exactly like repeated scalar injects).
        """
        entries = np.asarray(entries, dtype=np.int64).reshape(-1)
        packed_rows = np.asarray(packed_rows, dtype=np.uint64)
        if packed_rows.shape != (entries.size, _PACKED_WORDS):
            raise ValueError("packed rows must be (len(entries), 5) uint64")
        if not entries.size:
            return
        if entries.min() < 0 or entries.max() >= self.geometry.total_entries:
            raise ValueError("entry index out of range")
        self._upset_pending_entries.append(entries.copy())
        self._upset_pending_rows.append(packed_rows.copy())

    def _consolidate_upsets(self) -> None:
        if not self._upset_pending_entries:
            return
        entries = np.concatenate(
            [self._upset_entries_arr] + self._upset_pending_entries
        )
        rows = np.concatenate([self._upset_rows] + self._upset_pending_rows)
        self._upset_pending_entries.clear()
        self._upset_pending_rows.clear()
        order = np.argsort(entries, kind="stable")
        entries = entries[order]
        rows = rows[order]
        run_start = np.flatnonzero(np.r_[True, np.diff(entries) != 0])
        merged = np.bitwise_xor.reduceat(rows, run_start, axis=0)
        unique_entries = entries[run_start]
        nonzero = merged.any(axis=1)
        self._upset_entries_arr = unique_entries[nonzero]
        self._upset_rows = merged[nonzero]

    def _upset_bits(self, entry_index: int) -> np.ndarray | None:
        self._consolidate_upsets()
        position = np.searchsorted(self._upset_entries_arr, entry_index)
        if (position < self._upset_entries_arr.size
                and self._upset_entries_arr[position] == entry_index):
            return unpack_rows(
                self._upset_rows[position], self.geometry.entry_bits
            ).astype(np.uint8)
        return None

    # -- reads -----------------------------------------------------------------
    def stored_bits(self, entry_index: int) -> np.ndarray:
        """The value the cells *hold* (writes + upsets, before leakage)."""
        self._check_index(entry_index)
        base = self._written.get(entry_index)
        if base is None:
            base = np.asarray(self._background(entry_index), dtype=np.uint8)
        bits = base.copy()
        upset = self._upset_bits(entry_index)
        if upset is not None:
            bits ^= upset
        return bits

    def read_entry(self, entry_index: int) -> np.ndarray:
        """The value a read returns: stored bits plus retention leakage."""
        bits = self.stored_bits(entry_index)
        self._consolidate_weak()
        lo = np.searchsorted(self._weak_entry, entry_index, side="left")
        hi = np.searchsorted(self._weak_entry, entry_index, side="right")
        for index in range(lo, hi):
            bit = int(self._weak_bit[index])
            leaks_to = int(self._weak_leaks[index])
            if (self._weak_retention[index] < self.refresh.period_s
                    and int(bits[bit]) != leaks_to):
                bits[bit] ^= 1
        return bits

    # -- efficient full-device scan ------------------------------------------------
    def _fault_sites(self) -> set[int]:
        self._consolidate_upsets()
        self._consolidate_weak()
        sites = set(self._upset_entries_arr.tolist())
        sites.update(self._written)
        sites.update(self._weak_entry.tolist())
        return sites

    def scan_mismatches(self, expected: PatternFn) -> Iterator[Mismatch]:
        """Compare every entry against ``expected``, visiting only fault
        sites.  Entries that hold the unmodified background pattern can only
        mismatch if ``expected`` differs from the background — callers pass
        the same pattern object they wrote, so those entries are skipped."""
        for entry_index in sorted(self._fault_sites()):
            observed = self.read_entry(entry_index)
            wanted = np.asarray(expected(entry_index), dtype=np.uint8)
            difference = np.nonzero(observed ^ wanted)[0]
            if difference.size:
                yield Mismatch(entry_index, tuple(int(b) for b in difference))

    def scan_mismatches_batch(
        self,
        expected: PatternFn,
        expected_packed: BatchPatternFn | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One packed XOR over every fault site.

        Returns ``(entries, diff_rows)``: the ascending entry indices that
        mismatch ``expected`` and their 288-bit observed-vs-expected
        differences, bit-packed to ``(len, 5)`` uint64 — exactly the sites
        :meth:`scan_mismatches` would yield, in the same order.
        ``expected_packed`` (and a ``packed_pattern`` given to
        :meth:`write_all`) keep the whole scan free of per-entry Python.
        """
        self._consolidate_upsets()
        self._consolidate_weak()
        entries = np.union1d(
            np.union1d(
                self._upset_entries_arr,
                np.fromiter(self._written, dtype=np.int64,
                            count=len(self._written)),
            ),
            self._weak_entry,
        ).astype(np.int64)
        if not entries.size:
            return entries, np.empty((0, _PACKED_WORDS), dtype=np.uint64)

        stored = self._packed_background(entries)
        # Scanning against the very pattern that was written (the usual
        # call shape) needs only one pattern evaluation: the pristine
        # background rows *are* the expected rows.
        wanted = stored.copy() \
            if expected_packed is not None \
            and expected_packed is self._background_packed else None
        if self._written:
            written = np.fromiter(self._written, dtype=np.int64,
                                  count=len(self._written))
            rows = pack_rows(np.stack(
                [self._written[int(e)] for e in written]
            ).astype(np.uint8))
            stored[np.searchsorted(entries, written)] = rows
        if self._upset_entries_arr.size:
            stored[np.searchsorted(entries, self._upset_entries_arr)] ^= \
                self._upset_rows

        if self._weak_entry.size:
            position = np.searchsorted(entries, self._weak_entry)
            word = (self._weak_bit >> 6).astype(np.int64)
            shift = (self._weak_bit & 63).astype(np.uint64)
            stored_bit = (stored[position, word] >> shift) & np.uint64(1)
            corrupts = (
                (self._weak_retention < self.refresh.period_s)
                & (stored_bit.astype(np.int64) != self._weak_leaks)
            )
            np.bitwise_xor.at(
                stored,
                (position[corrupts], word[corrupts]),
                np.uint64(1) << shift[corrupts],
            )

        if wanted is not None:
            pass
        elif expected_packed is not None:
            wanted = np.asarray(expected_packed(entries), dtype=np.uint64)
        else:
            wanted = pack_rows(np.stack([
                np.asarray(expected(int(e)), dtype=np.uint8) for e in entries
            ]))
        diff = stored ^ wanted
        keep = diff.any(axis=1)
        return entries[keep], diff[keep]

    def _packed_background(self, entries: np.ndarray) -> np.ndarray:
        if self._background_packed is not None:
            return np.array(self._background_packed(entries),
                            dtype=np.uint64, copy=True)
        return pack_rows(np.stack([
            np.asarray(self._background(int(e)), dtype=np.uint8)
            for e in entries
        ])) if entries.size else np.empty((0, _PACKED_WORDS), dtype=np.uint64)

    # -- bookkeeping -----------------------------------------------------------
    def _check_index(self, entry_index: int) -> None:
        if not 0 <= entry_index < self.geometry.total_entries:
            raise ValueError(f"entry index {entry_index} out of range")

    @property
    def upset_entries(self) -> int:
        self._consolidate_upsets()
        return int(self._upset_entries_arr.size)

"""A protected-memory controller: the deployment-facing facade.

Ties an ECC organization (:mod:`repro.core`) to the simulated HBM2 device
(:mod:`repro.dram.device`) the way a GPU memory controller would:

* writes take 32-byte payloads, encode them, and store the 36B entry;
* reads decode, deliver corrected payloads, and raise
  :class:`UncorrectableError` on a DUE;
* every outcome is tallied in driver-style RAS counters (corrected errors,
  DUEs, scrub passes), the statistics a fleet operator actually monitors;
* :meth:`ProtectedMemory.scrub` sweeps the device, rewriting every entry
  whose stored bits no longer form a valid codeword — bounding soft-error
  accumulation exactly like the background scrubber modelled in
  :mod:`repro.system.scrubbing`.

The controller is also the bridge for end-to-end field simulation: inject
:class:`~repro.beam.events.SoftErrorEvent` flips into the device, keep
reading, and the counters reproduce the analytic DCE/DUE/SDC split of
Figure 8 (see ``tests/test_field_simulation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.layout import DATA_BITS
from repro.core.scheme import DecodeStatus, ECCScheme
from repro.dram.device import SimulatedHBM2

__all__ = [
    "UncorrectableError",
    "RasCounters",
    "ProtectedMemory",
    "bytes_to_bits",
    "bits_to_bytes",
]


def bytes_to_bits(payload: bytes) -> np.ndarray:
    """Expand a 32-byte payload into 256 data bits (LSB-first per byte)."""
    if len(payload) != DATA_BITS // 8:
        raise ValueError(f"payload must be {DATA_BITS // 8} bytes")
    raw = np.frombuffer(payload, dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`."""
    bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
    if bits.size != DATA_BITS:
        raise ValueError(f"expected {DATA_BITS} bits")
    return np.packbits(bits, bitorder="little").tobytes()


class UncorrectableError(Exception):
    """Raised when a read hits a detected-uncorrectable error (DUE).

    Real GPUs poison the destination and interrupt the context; callers of
    the simulated controller get this exception instead.
    """

    def __init__(self, entry_index: int) -> None:
        super().__init__(f"uncorrectable memory error at entry {entry_index}")
        self.entry_index = entry_index


@dataclass
class RasCounters:
    """Driver-style reliability/availability/serviceability counters."""

    reads: int = 0
    writes: int = 0
    corrected_errors: int = 0  #: DCE events (ECC fixed the data)
    uncorrectable_errors: int = 0  #: DUE events (entry discarded)
    scrub_passes: int = 0
    scrub_corrections: int = 0  #: entries rewritten by the scrubber

    def snapshot(self) -> dict[str, int]:
        """A plain-dict view (what a monitoring agent would export)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "corrected_errors": self.corrected_errors,
            "uncorrectable_errors": self.uncorrectable_errors,
            "scrub_passes": self.scrub_passes,
            "scrub_corrections": self.scrub_corrections,
        }


class ProtectedMemory:
    """ECC-protected view of a simulated HBM2 device."""

    def __init__(self, device: SimulatedHBM2, scheme: ECCScheme) -> None:
        self.device = device
        self.scheme = scheme
        self.counters = RasCounters()

    # -- data path -----------------------------------------------------------
    def write(self, entry_index: int, payload: bytes) -> None:
        """Encode and store one 32B payload."""
        self.device.write_entry(entry_index, self.scheme.encode(
            bytes_to_bits(payload)
        ))
        self.counters.writes += 1

    def write_bits(self, entry_index: int, data_bits: np.ndarray) -> None:
        """Bit-level variant of :meth:`write`."""
        self.device.write_entry(entry_index, self.scheme.encode(data_bits))
        self.counters.writes += 1

    def read(self, entry_index: int) -> bytes:
        """Decode one entry; raises :class:`UncorrectableError` on a DUE."""
        return bits_to_bytes(self.read_bits(entry_index))

    def read_bits(self, entry_index: int) -> np.ndarray:
        """Bit-level variant of :meth:`read`."""
        result = self.scheme.decode(self.device.read_entry(entry_index))
        self.counters.reads += 1
        if result.status is DecodeStatus.DETECTED:
            self.counters.uncorrectable_errors += 1
            raise UncorrectableError(entry_index)
        if result.status is DecodeStatus.CORRECTED:
            self.counters.corrected_errors += 1
        return result.data

    # -- maintenance -----------------------------------------------------------
    def scrub(self) -> tuple[int, int]:
        """Sweep all fault sites; rewrite entries whose stored bits decode
        with a correction.  Returns ``(corrected, uncorrectable)`` counts.

        Entries that decode cleanly are left alone; DUE entries are left
        in place for diagnosis (a real scrubber would retire the page).
        """
        corrected = uncorrectable = 0
        for entry_index in sorted(self.device._fault_sites()):
            result = self.scheme.decode(self.device.read_entry(entry_index))
            if result.status is DecodeStatus.DETECTED:
                uncorrectable += 1
            elif result.status is DecodeStatus.CORRECTED:
                self.device.write_entry(
                    entry_index, self.scheme.encode(result.data)
                )
                corrected += 1
        self.counters.scrub_passes += 1
        self.counters.scrub_corrections += corrected
        return corrected, uncorrectable

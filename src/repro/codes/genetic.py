"""Genetic search for SEC-2bEC parity-check matrices.

The paper derives its (72, 64) SEC-2bEC code "using a genetic algorithm",
optimized so that non-aligned 2-bit errors rarely alias an aligned-pair
syndrome (a ~20% miscorrection-risk reduction over the prior
SEC-DED-DAEC construction it cites).  This module reproduces that search so
new codes with the same structural guarantees can be generated:

* every column is a distinct, non-zero, odd-weight R-bit vector (SEC-DED
  behaviour when 2-bit correction is disabled),
* the 36 aligned-pair syndromes are mutually distinct (and, because they
  have even weight, automatically distinct from the odd single-bit
  syndromes), and
* the last R columns are the identity block, keeping the check bits at
  positions 64-71 like both the Hsiao baseline and the paper's matrix.

Fitness is the number of *non-aligned* double-bit errors whose syndrome
collides with an aligned-pair syndrome — each such collision is a potential
miscorrection, i.e. an SDC.  The search is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.linear import BinaryLinearCode
from repro.codes.sec2bec import adjacent_pairs, validate_sec2bec

__all__ = ["GeneticSearchResult", "search_sec2bec", "miscorrection_count"]


def _odd_weight_values(num_rows: int) -> np.ndarray:
    """All odd-weight column values on ``num_rows`` bits, excluding weight 1
    (reserved for the identity block)."""
    values = np.arange(1, 1 << num_rows, dtype=np.int64)
    weights = np.array([bin(v).count("1") for v in values.tolist()])
    return values[(weights % 2 == 1) & (weights > 1)]


def _columns_valid(columns: np.ndarray) -> bool:
    """Distinct columns and distinct aligned-pair syndromes (full codeword,
    identity block included — the check-bit pairs also form 2b symbols)."""
    if len(set(columns.tolist())) != columns.size:
        return False
    pair_syn = columns[0::2] ^ columns[1::2]
    return len(set(pair_syn.tolist())) == pair_syn.size


def miscorrection_count(columns: np.ndarray) -> int:
    """Number of non-aligned double-bit errors aliasing an aligned pair.

    ``columns`` is the full length-N integer column vector (identity block
    included).  This is the quantity the paper's GA minimizes.
    """
    n = columns.size
    pair_syndromes = set((columns[0::2] ^ columns[1::2]).tolist())
    xors = columns[:, None] ^ columns[None, :]
    upper = np.triu_indices(n, k=1)
    count = 0
    for i, j in zip(*upper):
        if j == i + 1 and i % 2 == 0:
            continue  # aligned pair — correctable by design
        if int(xors[i, j]) in pair_syndromes:
            count += 1
    return count


@dataclass(frozen=True)
class GeneticSearchResult:
    """Outcome of a genetic SEC-2bEC search."""

    code: BinaryLinearCode
    miscorrections: int
    generations_run: int


def _random_genome(rng: np.random.Generator, pool: np.ndarray,
                   num_data: int, num_rows: int) -> np.ndarray:
    """A random valid data-column arrangement (identity block appended later)."""
    while True:
        genome = rng.choice(pool, size=num_data, replace=False)
        if _columns_valid(_with_identity(genome, num_rows)):
            return genome


def _with_identity(genome: np.ndarray, num_rows: int) -> np.ndarray:
    identity = np.array([1 << row for row in range(num_rows)], dtype=np.int64)
    return np.concatenate([genome, identity])


def _fitness(genome: np.ndarray, num_rows: int) -> int:
    return miscorrection_count(_with_identity(genome, num_rows))


def _mutate(rng: np.random.Generator, genome: np.ndarray,
            pool: np.ndarray) -> np.ndarray:
    """Replace one column with an unused pool value, or swap two positions."""
    child = genome.copy()
    if rng.random() < 0.5:
        unused = np.setdiff1d(pool, child, assume_unique=False)
        child[rng.integers(child.size)] = rng.choice(unused)
    else:
        a, b = rng.choice(child.size, size=2, replace=False)
        child[a], child[b] = child[b], child[a]
    return child


def _crossover(rng: np.random.Generator, mother: np.ndarray,
               father: np.ndarray) -> np.ndarray:
    """Pair-granular one-point crossover with duplicate repair."""
    num_pairs = mother.size // 2
    cut = int(rng.integers(1, num_pairs))
    child = np.concatenate([mother[: 2 * cut], father[2 * cut :]])
    # Repair duplicates introduced by mixing parents.
    seen: set[int] = set()
    duplicates = []
    for index, value in enumerate(child.tolist()):
        if value in seen:
            duplicates.append(index)
        seen.add(value)
    if duplicates:
        replacements = np.setdiff1d(np.union1d(mother, father), child)
        extra = np.setdiff1d(mother, child)
        pool = np.union1d(replacements, extra)
        for index, value in zip(duplicates, pool[: len(duplicates)]):
            child[index] = value
    return child


def search_sec2bec(
    *,
    num_rows: int = 8,
    num_data: int = 64,
    population: int = 24,
    generations: int = 40,
    seed: int = 2021,
) -> GeneticSearchResult:
    """Run the genetic search and return the best valid code found.

    The defaults are sized to run in seconds; the resulting codes satisfy
    every structural SEC-2bEC property (enforced by
    :func:`repro.codes.sec2bec.validate_sec2bec` before returning), with
    miscorrection counts approaching the paper's published matrix when run
    for more generations.
    """
    rng = np.random.default_rng(seed)
    pool = _odd_weight_values(num_rows)
    genomes = [_random_genome(rng, pool, num_data, num_rows) for _ in range(population)]
    scores = [_fitness(genome, num_rows) for genome in genomes]

    for generation in range(generations):
        order = np.argsort(scores)
        elite = [genomes[i] for i in order[: max(2, population // 4)]]
        next_generation = list(elite)
        while len(next_generation) < population:
            mother, father = (
                elite[int(rng.integers(len(elite)))] for _ in range(2)
            )
            child = _crossover(rng, mother, father)
            if rng.random() < 0.8:
                child = _mutate(rng, child, pool)
            if _columns_valid(_with_identity(child, num_rows)):
                next_generation.append(child)
        genomes = next_generation
        scores = [_fitness(genome, num_rows) for genome in genomes]

    best_index = int(np.argmin(scores))
    columns = _with_identity(genomes[best_index], num_rows)
    h_matrix = np.zeros((num_rows, columns.size), dtype=np.uint8)
    for position, value in enumerate(columns.tolist()):
        for row in range(num_rows):
            h_matrix[row, position] = (value >> row) & 1
    code = BinaryLinearCode(h_matrix, name=f"ga-sec-2bec({columns.size},{num_data})")
    validate_sec2bec(code, adjacent_pairs(columns.size))
    return GeneticSearchResult(
        code=code,
        miscorrections=int(scores[best_index]),
        generations_run=generations,
    )

"""Crockford Base32 codec for parity-check matrices.

The paper publishes its SEC-2bEC H-matrix (Equation 3) with each row printed
as a Crockford Base32 string, most-significant character first.  This module
round-trips that representation so the embedded matrix in
:mod:`repro.codes.sec2bec` is byte-identical to the paper's, and so newly
searched codes (:mod:`repro.codes.genetic`) can be printed the same way.
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf2 import bits_from_int, int_from_bits

__all__ = [
    "CROCKFORD_ALPHABET",
    "b32_decode_int",
    "b32_encode_int",
    "decode_h_matrix",
    "encode_h_matrix",
]

#: Crockford's alphabet: digits then letters, excluding I, L, O and U.
CROCKFORD_ALPHABET = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

_DECODE_MAP = {char: index for index, char in enumerate(CROCKFORD_ALPHABET)}
# Crockford decoding treats easily-confused letters as their digit lookalikes.
_DECODE_MAP.update({"O": 0, "I": 1, "L": 1})


def b32_decode_int(text: str) -> int:
    """Decode a Crockford Base32 string (MSB character first) to an int."""
    value = 0
    for char in text.strip().upper():
        if char == "-":
            continue  # Crockford permits cosmetic hyphens
        if char not in _DECODE_MAP:
            raise ValueError(f"invalid Crockford Base32 character: {char!r}")
        value = value * 32 + _DECODE_MAP[char]
    return value


def b32_encode_int(value: int, length: int) -> str:
    """Encode an int as ``length`` Crockford Base32 characters."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> (5 * length):
        raise ValueError(f"value does not fit in {length} base32 characters")
    chars = []
    for _ in range(length):
        chars.append(CROCKFORD_ALPHABET[value & 31])
        value >>= 5
    return "".join(reversed(chars))


def decode_h_matrix(rows: list[str], num_cols: int) -> np.ndarray:
    """Decode Base32 row strings into an (R, num_cols) GF(2) matrix.

    Bit 0 of each decoded integer is the *last* (rightmost) column, matching
    how the paper prints rows left-to-right from column 0.
    """
    matrix = np.zeros((len(rows), num_cols), dtype=np.uint8)
    for row_index, text in enumerate(rows):
        value = b32_decode_int(text)
        matrix[row_index] = bits_from_int(value, num_cols, msb_first=True)
    return matrix


def encode_h_matrix(matrix: np.ndarray) -> list[str]:
    """Inverse of :func:`decode_h_matrix` (rows padded to whole characters)."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    num_cols = matrix.shape[1]
    length = -(-num_cols // 5)  # ceil division: 5 bits per character
    return [
        b32_encode_int(int_from_bits(row, msb_first=True), length) for row in matrix
    ]

"""Code-construction substrate: binary linear codes and Reed-Solomon codes."""

from repro.codes.base32 import b32_decode_int, b32_encode_int, decode_h_matrix, encode_h_matrix
from repro.codes.genetic import search_sec2bec
from repro.codes.bch import BCH_DEC_144_128, bch_dec_code, bch_dec_h_matrix
from repro.codes.hsiao import (
    HSIAO_72_64,
    hsiao_code,
    hsiao_h_matrix,
    hsiao_search_code,
    hsiao_search_h_matrix,
    row_weight_spread,
)
from repro.codes.linear import BinaryLinearCode, PairTable
from repro.codes.polar import POLAR_512_288, PolarCode
from repro.codes.sec_daec import SEC_DAEC_72_64, sec_daec_code, sec_daec_h_matrix
from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeResult, RSDecodeStatus
from repro.codes.sec2bec import (
    PAPER_H_ROWS_BASE32,
    SEC_2BEC_72_64,
    adjacent_pairs,
    interleave_column_permutation,
    paper_pair_table,
    stride4_pairs,
    validate_sec2bec,
)

__all__ = [
    "b32_decode_int",
    "b32_encode_int",
    "decode_h_matrix",
    "encode_h_matrix",
    "search_sec2bec",
    "HSIAO_72_64",
    "hsiao_code",
    "hsiao_h_matrix",
    "hsiao_search_code",
    "hsiao_search_h_matrix",
    "row_weight_spread",
    "BCH_DEC_144_128",
    "bch_dec_code",
    "bch_dec_h_matrix",
    "POLAR_512_288",
    "PolarCode",
    "SEC_DAEC_72_64",
    "sec_daec_code",
    "sec_daec_h_matrix",
    "BinaryLinearCode",
    "PairTable",
    "ReedSolomonCode",
    "RSDecodeResult",
    "RSDecodeStatus",
    "PAPER_H_ROWS_BASE32",
    "SEC_2BEC_72_64",
    "adjacent_pairs",
    "interleave_column_permutation",
    "paper_pair_table",
    "stride4_pairs",
    "validate_sec2bec",
]

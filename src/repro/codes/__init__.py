"""Code-construction substrate: binary linear codes and Reed-Solomon codes."""

from repro.codes.base32 import b32_decode_int, b32_encode_int, decode_h_matrix, encode_h_matrix
from repro.codes.genetic import search_sec2bec
from repro.codes.hsiao import HSIAO_72_64, hsiao_code, hsiao_h_matrix
from repro.codes.linear import BinaryLinearCode, PairTable
from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeResult, RSDecodeStatus
from repro.codes.sec2bec import (
    PAPER_H_ROWS_BASE32,
    SEC_2BEC_72_64,
    adjacent_pairs,
    interleave_column_permutation,
    paper_pair_table,
    stride4_pairs,
    validate_sec2bec,
)

__all__ = [
    "b32_decode_int",
    "b32_encode_int",
    "decode_h_matrix",
    "encode_h_matrix",
    "search_sec2bec",
    "HSIAO_72_64",
    "hsiao_code",
    "hsiao_h_matrix",
    "BinaryLinearCode",
    "PairTable",
    "ReedSolomonCode",
    "RSDecodeResult",
    "RSDecodeStatus",
    "PAPER_H_ROWS_BASE32",
    "SEC_2BEC_72_64",
    "adjacent_pairs",
    "interleave_column_permutation",
    "paper_pair_table",
    "stride4_pairs",
    "validate_sec2bec",
]

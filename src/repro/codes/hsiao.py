"""Hsiao minimum-odd-weight-column SEC-DED codes.

The paper's binary baseline is the "(72, 64) SEC-DED version 1" Hsiao code:
every H column has odd weight (so any double-bit error produces an
even-weight syndrome, which cannot alias a column — DED comes for free) and
row weights are balanced to minimize the widest XOR tree in the encoder.

The construction below is deterministic: it takes the 8 weight-1 columns for
the check bits, all 56 weight-3 columns, and completes the 64 data columns
with 8 weight-5 columns chosen greedily to keep row weights balanced —
Hsiao's published selection criterion.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.codes.linear import BinaryLinearCode

__all__ = [
    "hsiao_h_matrix",
    "hsiao_code",
    "HSIAO_72_64",
    "hsiao_search_h_matrix",
    "hsiao_search_code",
    "row_weight_spread",
]


def _columns_of_weight(num_rows: int, weight: int) -> list[int]:
    """All ``num_rows``-bit column values of the given Hamming weight."""
    columns = []
    for rows in combinations(range(num_rows), weight):
        value = 0
        for row in rows:
            value |= 1 << row
        columns.append(value)
    return columns


def hsiao_h_matrix(num_check: int = 8, num_data: int = 64) -> np.ndarray:
    """Construct an (num_check, num_data + num_check) Hsiao H-matrix.

    Data columns occupy positions ``0..num_data-1`` and the weight-1 check
    columns occupy the last ``num_check`` positions (matching the layout of
    the paper's SEC-2bEC matrix, whose identity block also sits at columns
    64-71).
    """
    data_columns: list[int] = []
    row_weights = np.zeros(num_check, dtype=np.int64)

    def add(column: int) -> None:
        data_columns.append(column)
        for row in range(num_check):
            if (column >> row) & 1:
                row_weights[row] += 1

    remaining = num_data
    for weight in range(3, num_check + 1, 2):
        candidates = _columns_of_weight(num_check, weight)
        if len(candidates) <= remaining:
            for column in candidates:
                add(column)
            remaining -= len(candidates)
            continue
        # Partial tier: choose columns greedily so row weights stay balanced.
        available = set(candidates)
        for _ in range(remaining):
            best = min(
                sorted(available),
                key=lambda col: (
                    sum(int(row_weights[row]) for row in range(num_check)
                        if (col >> row) & 1),
                    col,
                ),
            )
            available.remove(best)
            add(best)
        remaining = 0
        break
    if remaining:
        raise ValueError("not enough odd-weight columns for requested size")

    check_columns = [1 << row for row in range(num_check)]
    all_columns = data_columns + check_columns
    matrix = np.zeros((num_check, len(all_columns)), dtype=np.uint8)
    for position, column in enumerate(all_columns):
        for row in range(num_check):
            matrix[row, position] = (column >> row) & 1
    return matrix


def row_weight_spread(h: np.ndarray) -> int:
    """``max - min`` of the H-matrix row weights (encoder XOR-tree balance)."""
    weights = np.asarray(h, dtype=np.int64).sum(axis=1)
    return int(weights.max() - weights.min())


def _column_row_weights(columns: list[int], num_check: int) -> np.ndarray:
    weights = np.zeros(num_check, dtype=np.int64)
    for column in columns:
        for row in range(num_check):
            weights[row] += (column >> row) & 1
    return weights


def _tier_plan(num_check: int, num_data: int) -> tuple[list[int], list[int], int]:
    """Full odd-weight tiers, the partial tier's candidates, and its count."""
    base: list[int] = []
    remaining = num_data
    for weight in range(3, num_check + 1, 2):
        candidates = _columns_of_weight(num_check, weight)
        if len(candidates) <= remaining:
            base.extend(candidates)
            remaining -= len(candidates)
            continue
        return base, candidates, remaining
    if remaining:
        raise ValueError("not enough odd-weight columns for requested size")
    return base, [], 0


def _spread_key(weights: np.ndarray) -> tuple[int, int]:
    return int(weights.max() - weights.min()), int(weights.max())


def _exhaustive_partial(
    tier: list[int], count: int, base_weights: np.ndarray,
    num_check: int, variant: int,
) -> list[int]:
    """Rank every partial-tier subset by balance; return the variant-th."""
    scored: list[tuple[tuple[int, int], tuple[int, ...]]] = []
    for subset in combinations(sorted(tier), count):
        weights = base_weights + _column_row_weights(list(subset), num_check)
        scored.append((_spread_key(weights), subset))
    scored.sort()
    if variant >= len(scored):
        raise ValueError(
            f"variant {variant} out of range: only {len(scored)} subsets"
        )
    return list(scored[variant][1])


def _greedy_partial(
    tier: list[int], count: int, base_weights: np.ndarray,
    num_check: int, variant: int,
) -> list[int]:
    """Forward greedy balance search; ``variant`` perturbs the first pick."""
    if variant >= len(tier) - count + 1:
        raise ValueError(f"variant {variant} out of range for greedy search")
    available = sorted(tier)
    weights = base_weights.copy()
    chosen: list[int] = []
    for step in range(count):
        ranked = sorted(
            available,
            key=lambda col: (
                _spread_key(weights + _column_row_weights([col], num_check)),
                col,
            ),
        )
        pick = ranked[variant] if step == 0 else ranked[0]
        available.remove(pick)
        chosen.append(pick)
        weights += _column_row_weights([pick], num_check)
    return chosen


def hsiao_search_h_matrix(
    num_check: int = 8,
    num_data: int = 64,
    *,
    variant: int = 0,
    exhaustive_limit: int = 100_000,
) -> np.ndarray:
    """Search for a balanced-row Hsiao H-matrix (alternative constructions).

    Full lower odd-weight tiers are always taken whole (any (72, 64) Hsiao
    code contains all 56 weight-3 columns); the search is over the *partial*
    tier.  When the subset space is small (``C(len(tier), count)`` at most
    ``exhaustive_limit``) every subset is scored by row-weight spread and
    ``variant`` indexes the ranked list; otherwise a forward greedy search
    minimizes the spread step by step, with ``variant`` perturbing the first
    pick to emit alternative near-balanced matrices.
    """
    base, tier, count = _tier_plan(num_check, num_data)
    base_weights = _column_row_weights(base, num_check)
    if count == 0:
        if variant:
            raise ValueError("code has no partial tier; only variant 0 exists")
        chosen: list[int] = []
    elif comb(len(tier), count) <= exhaustive_limit:
        chosen = _exhaustive_partial(tier, count, base_weights, num_check, variant)
    else:
        chosen = _greedy_partial(tier, count, base_weights, num_check, variant)

    check_columns = [1 << row for row in range(num_check)]
    all_columns = base + chosen + check_columns
    matrix = np.zeros((num_check, len(all_columns)), dtype=np.uint8)
    for position, column in enumerate(all_columns):
        for row in range(num_check):
            matrix[row, position] = (column >> row) & 1
    return matrix


def hsiao_search_code(
    num_check: int = 8,
    num_data: int = 64,
    *,
    variant: int = 0,
    exhaustive_limit: int = 100_000,
) -> BinaryLinearCode:
    """A searched balanced-row Hsiao code as a :class:`BinaryLinearCode`."""
    h = hsiao_search_h_matrix(
        num_check, num_data, variant=variant, exhaustive_limit=exhaustive_limit
    )
    return BinaryLinearCode(
        h, name=f"hsiao-search({num_data + num_check},{num_data})v{variant}"
    )


def hsiao_code(num_check: int = 8, num_data: int = 64) -> BinaryLinearCode:
    """The Hsiao SEC-DED code as a :class:`BinaryLinearCode`."""
    return BinaryLinearCode(
        hsiao_h_matrix(num_check, num_data), name=f"hsiao({num_data + num_check},{num_data})"
    )


#: The paper's baseline (72, 64) SEC-DED code.
HSIAO_72_64 = hsiao_code()

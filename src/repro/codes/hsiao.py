"""Hsiao minimum-odd-weight-column SEC-DED codes.

The paper's binary baseline is the "(72, 64) SEC-DED version 1" Hsiao code:
every H column has odd weight (so any double-bit error produces an
even-weight syndrome, which cannot alias a column — DED comes for free) and
row weights are balanced to minimize the widest XOR tree in the encoder.

The construction below is deterministic: it takes the 8 weight-1 columns for
the check bits, all 56 weight-3 columns, and completes the 64 data columns
with 8 weight-5 columns chosen greedily to keep row weights balanced —
Hsiao's published selection criterion.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.linear import BinaryLinearCode

__all__ = ["hsiao_h_matrix", "hsiao_code", "HSIAO_72_64"]


def _columns_of_weight(num_rows: int, weight: int) -> list[int]:
    """All ``num_rows``-bit column values of the given Hamming weight."""
    columns = []
    for rows in combinations(range(num_rows), weight):
        value = 0
        for row in rows:
            value |= 1 << row
        columns.append(value)
    return columns


def hsiao_h_matrix(num_check: int = 8, num_data: int = 64) -> np.ndarray:
    """Construct an (num_check, num_data + num_check) Hsiao H-matrix.

    Data columns occupy positions ``0..num_data-1`` and the weight-1 check
    columns occupy the last ``num_check`` positions (matching the layout of
    the paper's SEC-2bEC matrix, whose identity block also sits at columns
    64-71).
    """
    data_columns: list[int] = []
    row_weights = np.zeros(num_check, dtype=np.int64)

    def add(column: int) -> None:
        data_columns.append(column)
        for row in range(num_check):
            if (column >> row) & 1:
                row_weights[row] += 1

    remaining = num_data
    for weight in range(3, num_check + 1, 2):
        candidates = _columns_of_weight(num_check, weight)
        if len(candidates) <= remaining:
            for column in candidates:
                add(column)
            remaining -= len(candidates)
            continue
        # Partial tier: choose columns greedily so row weights stay balanced.
        available = set(candidates)
        for _ in range(remaining):
            best = min(
                sorted(available),
                key=lambda col: (
                    sum(int(row_weights[row]) for row in range(num_check)
                        if (col >> row) & 1),
                    col,
                ),
            )
            available.remove(best)
            add(best)
        remaining = 0
        break
    if remaining:
        raise ValueError("not enough odd-weight columns for requested size")

    check_columns = [1 << row for row in range(num_check)]
    all_columns = data_columns + check_columns
    matrix = np.zeros((num_check, len(all_columns)), dtype=np.uint8)
    for position, column in enumerate(all_columns):
        for row in range(num_check):
            matrix[row, position] = (column >> row) & 1
    return matrix


def hsiao_code(num_check: int = 8, num_data: int = 64) -> BinaryLinearCode:
    """The Hsiao SEC-DED code as a :class:`BinaryLinearCode`."""
    return BinaryLinearCode(
        hsiao_h_matrix(num_check, num_data), name=f"hsiao({num_data + num_check},{num_data})"
    )


#: The paper's baseline (72, 64) SEC-DED code.
HSIAO_72_64 = hsiao_code()

"""Generic binary linear block codes defined by a parity-check matrix.

A :class:`BinaryLinearCode` wraps an ``(R, N)`` H-matrix and provides:

* a systematic encoder (check bits solved from the data bits through the
  inverse of the check-column submatrix),
* syndrome computation (scalar and batch),
* precomputed syndrome-to-location tables for single-bit and aligned
  two-bit-symbol correction — the software analogues of the paper's
  H-column-match (HCM) circuits in Figure 7, and
* structural property checks (SEC, DED, unique pair syndromes) used both by
  the test-suite and by the genetic code search.

Decoding *policies* (plain SEC-DED, SEC-2bEC, interleaving, the correction
sanity check) are composed on top of this class in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.gf.gf2 import (
    gf2_inverse,
    gf2_matmul,
    pack_bits,
    syndromes_batch,
)

__all__ = ["BinaryLinearCode", "PairTable"]


@dataclass(frozen=True)
class PairTable:
    """Aligned 2-bit symbol definitions and their syndrome lookup.

    ``pairs[t]`` is the (low, high) bit-position tuple of symbol ``t``;
    ``syndrome_to_pair`` maps a packed syndrome to the symbol index it
    corrects, with -1 meaning "no aligned pair produces this syndrome".
    """

    pairs: tuple[tuple[int, int], ...]
    syndrome_to_pair: np.ndarray


class BinaryLinearCode:
    """A binary (N, K) linear code given by its parity-check matrix."""

    def __init__(self, h_matrix: np.ndarray, name: str = "linear") -> None:
        h_matrix = np.asarray(h_matrix, dtype=np.uint8)
        if h_matrix.ndim != 2:
            raise ValueError("H must be a 2-D matrix")
        self.h = h_matrix
        self.name = name
        self.r, self.n = h_matrix.shape
        self.k = self.n - self.r
        if self.r > 62:
            raise ValueError("syndromes wider than 62 bits are not supported")

        self._syndrome_weights = np.int64(1) << np.arange(self.r, dtype=np.int64)
        #: packed syndrome of each column, i.e. the column read as an integer
        self.column_syndromes = pack_bits(self.h.T)

        self.check_positions = self._find_check_positions()
        self.data_positions = np.array(
            [i for i in range(self.n) if i not in set(self.check_positions.tolist())],
            dtype=np.int64,
        )
        if self.data_positions.size != self.k:
            raise AssertionError("data/check position split is inconsistent")

        # Systematic encoder: H_c @ c = H_d @ d  =>  c = inv(H_c) @ H_d @ d.
        h_checks = self.h[:, self.check_positions]
        h_data = self.h[:, self.data_positions]
        self._encode_matrix = gf2_matmul(gf2_inverse(h_checks), h_data)

        #: syndrome -> bit position for single-bit correction (-1: no match)
        self.syndrome_to_bit = np.full(1 << self.r, -1, dtype=np.int64)
        for position, syndrome in enumerate(self.column_syndromes.tolist()):
            self.syndrome_to_bit[syndrome] = position

    # -- construction helpers ----------------------------------------------
    def _find_check_positions(self) -> np.ndarray:
        """Choose R columns forming an invertible submatrix.

        Unit columns (weight 1) are preferred — both the Hsiao and the
        paper's SEC-2bEC matrices carry an explicit identity block — and the
        remainder is completed greedily by rank.
        """
        chosen: list[int] = []
        seen_units: set[int] = set()
        weights = self.h.sum(axis=0)
        for position in range(self.n):
            if weights[position] == 1:
                row = int(np.nonzero(self.h[:, position])[0][0])
                if row not in seen_units:
                    seen_units.add(row)
                    chosen.append(position)
        if len(chosen) < self.r:
            from repro.gf.gf2 import gf2_rank

            for position in range(self.n):
                if position in chosen:
                    continue
                trial = chosen + [position]
                if gf2_rank(self.h[:, trial]) == len(trial):
                    chosen.append(position)
                if len(chosen) == self.r:
                    break
        if len(chosen) != self.r:
            raise ValueError("H matrix does not have full row rank")
        return np.array(sorted(chosen), dtype=np.int64)

    # -- encode / syndrome ---------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode K data bits into an N-bit codeword (systematic placement)."""
        data_bits = np.asarray(data_bits, dtype=np.uint8).reshape(-1)
        if data_bits.size != self.k:
            raise ValueError(f"expected {self.k} data bits, got {data_bits.size}")
        codeword = np.zeros(self.n, dtype=np.uint8)
        codeword[self.data_positions] = data_bits
        codeword[self.check_positions] = gf2_matmul(
            self._encode_matrix, data_bits.reshape(-1, 1)
        ).reshape(-1)
        return codeword

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        """Return the K data bits of a codeword."""
        return np.asarray(codeword, dtype=np.uint8)[self.data_positions].copy()

    def syndrome(self, received: np.ndarray) -> int:
        """Packed syndrome of a single received word."""
        return int(self.syndromes_packed(np.asarray(received).reshape(1, -1))[0])

    def syndromes_packed(self, received: np.ndarray) -> np.ndarray:
        """Packed syndromes of a batch of received words, shape (B,)."""
        return pack_bits(syndromes_batch(self.h, received))

    # -- 2-bit symbol support -------------------------------------------------
    def build_pair_table(self, pairs: list[tuple[int, int]]) -> PairTable:
        """Build the aligned-pair syndrome lookup for SEC-2bEC decoding.

        Raises :class:`ValueError` if any pair syndrome collides with another
        pair or with a single-bit syndrome — the property the paper's genetic
        algorithm optimizes for.
        """
        table = np.full(1 << self.r, -1, dtype=np.int64)
        for index, (low, high) in enumerate(pairs):
            syndrome = int(self.column_syndromes[low] ^ self.column_syndromes[high])
            if syndrome == 0 or self.syndrome_to_bit[syndrome] != -1:
                raise ValueError(f"pair {index} aliases a single-bit syndrome")
            if table[syndrome] != -1:
                raise ValueError(f"pair {index} aliases pair {int(table[syndrome])}")
            table[syndrome] = index
        return PairTable(pairs=tuple(pairs), syndrome_to_pair=table)

    # -- structural properties -------------------------------------------------
    def columns_distinct_nonzero(self) -> bool:
        """True iff the code corrects all single-bit errors (SEC)."""
        syndromes = self.column_syndromes.tolist()
        return 0 not in syndromes and len(set(syndromes)) == self.n

    def columns_all_odd_weight(self) -> bool:
        """True for Hsiao-style codes; implies DED given distinct columns."""
        return bool(np.all(self.h.sum(axis=0) % 2 == 1))

    def detects_all_double_errors(self) -> bool:
        """True iff no double-bit error aliases a correctable single bit.

        Equivalent to minimum distance >= 4.  Odd-weight columns make this
        trivially true; the general check is exhaustive over column pairs.
        """
        if self.columns_all_odd_weight() and self.columns_distinct_nonzero():
            return True
        singles = set(self.column_syndromes.tolist())
        for i, j in combinations(range(self.n), 2):
            doubled = int(self.column_syndromes[i] ^ self.column_syndromes[j])
            if doubled == 0 or doubled in singles:
                return False
        return True

    def column_permuted(self, permutation: np.ndarray, name: str | None = None
                        ) -> "BinaryLinearCode":
        """A new code whose column ``i`` is this code's column ``permutation[i]``.

        This is the paper's "swizzle the H matrix" operation used to adapt
        the SEC-2bEC code's bit-adjacent symbols to the stride-4 symbols
        induced by logical codeword interleaving.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(self.n)):
            raise ValueError("not a permutation of column indices")
        return BinaryLinearCode(self.h[:, permutation], name=name or self.name)

"""Binary BCH double-error-correcting (DEC) codes over GF(2^8).

A narrow-sense binary BCH code of designed distance 5 has the parity-check
matrix

    H = | α^0   α^1   ...  α^(n-1)  |
        | α^0   α^3   ...  α^(3(n-1)) |

over GF(2^8) (each field element contributing 8 binary rows), giving 16
check bits and guaranteed correction of any one- or two-bit error.  We
shorten the natural length-255 code to n = 144 so that *two* codewords tile
the 288-bit memory entry exactly: 2 x 128 data bits fill the 256-bit
payload, and 2 x 16 check bits fill the 32-bit ECC field — the same storage
budget as the paper's organizations.

Because d >= 5, every single column and every pairwise column XOR is a
distinct nonzero syndrome, so the generic :class:`PairTable` machinery of
``codes/linear.py`` realizes the DEC decode: the pair table enumerates all
C(144, 2) = 10,296 unordered bit pairs and its constructor proves the
no-aliasing property by raising on any collision.  A pin error lands as two
bits in each 144-bit codeword (one per beat), inside the DEC budget; a byte
error concentrates eight bits in one codeword, far beyond it.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.linear import BinaryLinearCode, PairTable
from repro.gf.gf256 import EXP_TABLE, ORDER

__all__ = [
    "bch_dec_h_matrix",
    "bch_dec_code",
    "bch_dec_pair_table",
    "BCH_DEC_144_128",
    "BCH_DEC_PAIRS",
]


def bch_dec_h_matrix(num_columns: int = 144) -> np.ndarray:
    """The (16, num_columns) binary H of the shortened d=5 BCH code."""
    if not 17 <= num_columns <= ORDER:
        raise ValueError(f"BCH length must be in [17, {ORDER}]")
    matrix = np.zeros((16, num_columns), dtype=np.uint8)
    for j in range(num_columns):
        alpha_j = int(EXP_TABLE[j % ORDER])
        alpha_3j = int(EXP_TABLE[(3 * j) % ORDER])
        for bit in range(8):
            matrix[bit, j] = (alpha_j >> bit) & 1
            matrix[8 + bit, j] = (alpha_3j >> bit) & 1
    return matrix


def bch_dec_code(num_columns: int = 144) -> BinaryLinearCode:
    """The shortened binary BCH DEC code as a :class:`BinaryLinearCode`."""
    return BinaryLinearCode(
        bch_dec_h_matrix(num_columns),
        name=f"bch-dec({num_columns},{num_columns - 16})",
    )


def bch_dec_pair_table(code: BinaryLinearCode) -> PairTable:
    """The all-pairs correction table (d >= 5 guarantees no aliasing)."""
    return code.build_pair_table(list(combinations(range(code.n), 2)))


#: The shortened (144, 128) BCH DEC code and its all-pairs table.
BCH_DEC_144_128 = bch_dec_code()
BCH_DEC_PAIRS = bch_dec_pair_table(BCH_DEC_144_128)

"""Reed-Solomon codes over GF(2^8) for the paper's symbol-based organizations.

Three decoders are provided, mirroring Section 6.2:

* :meth:`ReedSolomonCode.decode_one_shot_ssc` — the single-cycle decoder of
  Figure 7c for (18, 16) SSC codewords: the error location is the discrete-log
  quotient of the two syndromes (``DLogα`` + end-around-carry subtract).
* :meth:`ReedSolomonCode.decode_dsd_plus` — SSC-DSD+ for a (36, 32) codeword
  with four check symbols: three independent one-shot locators (one per
  adjacent syndrome pair) must agree before correction is allowed, giving
  single-symbol correction, full double-symbol detection and
  nearly-complete triple-symbol detection without solving the error-locator
  polynomial.
* :meth:`ReedSolomonCode.decode_algebraic` — textbook Berlekamp-Massey +
  Chien + Forney decoding, used to model the DSC and SSC-TSD organizations
  the paper rejects for their >= 8-cycle iterative decoders, and as a
  cross-check oracle in tests.

Symbol ``j`` of a codeword has locator ``α^j``; syndromes are
``S_m = Σ_j c_j · α^{j·m}`` and a valid codeword has all syndromes zero.

Batch (vectorized) syndrome/decode paths used by the Monte Carlo harness live
in :mod:`repro.core.rs_ssc` and :mod:`repro.core.ssc_dsd`; this module is the
scalar reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.gf.gf256 import ORDER, dlog, gf_div, gf_inv, gf_mul, gf_pow_generator
from repro.gf.polynomial import Poly

__all__ = ["RSDecodeStatus", "RSDecodeResult", "ReedSolomonCode"]


class RSDecodeStatus(Enum):
    """Decoder-visible result of a Reed-Solomon decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"  # detected-yet-uncorrectable (DUE)


@dataclass(frozen=True)
class RSDecodeResult:
    """Outcome of decoding one codeword.

    ``codeword`` is the post-correction word (valid for CLEAN/CORRECTED);
    ``error_locations``/``error_values`` describe the applied correction.
    """

    status: RSDecodeStatus
    codeword: np.ndarray | None
    error_locations: tuple[int, ...] = ()
    error_values: tuple[int, ...] = ()


class ReedSolomonCode:
    """An (n, k) Reed-Solomon code over GF(2^8) with ``r = n - k`` checks."""

    def __init__(self, n: int, k: int, name: str | None = None) -> None:
        if not 0 < k < n <= ORDER:
            raise ValueError("require 0 < k < n <= 255")
        self.n = n
        self.k = k
        self.r = n - k
        self.name = name or f"rs({n},{k})"
        self.generator = Poly.rs_generator(self.r)
        #: locator_powers[m, j] = α^(j*m); syndrome m is the GF dot product
        #: of the codeword with row m.
        self.locator_powers = gf_pow_generator(
            np.outer(np.arange(self.r), np.arange(n)) % ORDER
        ).astype(np.uint8)
        self.locator_powers[np.outer(np.arange(self.r), np.arange(n)) % ORDER == 0] = 1
        # α^0 == 1 for every (m=0, j) and (m, j=0) entry.

    # -- encode ---------------------------------------------------------------
    def encode(self, data_symbols: np.ndarray) -> np.ndarray:
        """Systematic encode: data in positions ``r..n-1``, checks in ``0..r-1``.

        The message polynomial is shifted up by ``x^r`` and the checks are the
        long-division remainder, so every codeword is a multiple of the
        generator polynomial (all syndromes zero).
        """
        data_symbols = np.asarray(data_symbols, dtype=np.uint8).reshape(-1)
        if data_symbols.size != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {data_symbols.size}")
        message = Poly(data_symbols).shift(self.r)
        parity = message % self.generator
        codeword = np.zeros(self.n, dtype=np.uint8)
        codeword[self.r :] = data_symbols
        for power in range(min(self.r, parity.degree + 1)):
            codeword[power] = parity[power]
        return codeword

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        """Data symbols of a systematic codeword."""
        return np.asarray(codeword, dtype=np.uint8)[self.r :].copy()

    # -- syndromes --------------------------------------------------------------
    def syndromes(self, received: np.ndarray) -> np.ndarray:
        """The ``r`` syndromes of a received word."""
        received = np.asarray(received, dtype=np.uint8).reshape(-1)
        if received.size != self.n:
            raise ValueError(f"expected {self.n} symbols")
        products = gf_mul(self.locator_powers, received[None, :])
        return np.bitwise_xor.reduce(products, axis=1).astype(np.uint8)

    def is_codeword(self, received: np.ndarray) -> bool:
        return bool(np.all(self.syndromes(received) == 0))

    # -- one-shot decoders ----------------------------------------------------
    def decode_one_shot_ssc(self, received: np.ndarray) -> RSDecodeResult:
        """Single-symbol-correct decode with two syndromes (Figure 7c).

        For a single error of value ``v`` at position ``j``: ``S0 = v`` and
        ``S1 = v·α^j``, so ``j = dlog(S1) - dlog(S0) (mod 255)`` — computed in
        hardware by the DLogα tables feeding an end-around-carry subtractor.
        """
        if self.r != 2:
            raise ValueError("one-shot SSC requires exactly 2 check symbols")
        received = np.asarray(received, dtype=np.uint8).copy()
        s0, s1 = (int(s) for s in self.syndromes(received))
        if s0 == 0 and s1 == 0:
            return RSDecodeResult(RSDecodeStatus.CLEAN, received)
        if s0 == 0 or s1 == 0:
            # A single error makes both syndromes non-zero; this must be a
            # multi-symbol error.
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        location = (dlog(s1) - dlog(s0)) % ORDER
        if location >= self.n:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        received[location] ^= s0
        return RSDecodeResult(
            RSDecodeStatus.CORRECTED, received, (location,), (s0,)
        )

    def decode_dsd_plus(self, received: np.ndarray) -> RSDecodeResult:
        """SSC-DSD+ decode with four check symbols.

        Each adjacent syndrome pair ``(S_m, S_{m+1})`` yields an independent
        single-error location estimate; correction proceeds only when all
        three agree and point inside the codeword.  Any disagreement — which
        every double error and almost every triple error produces — raises a
        DUE instead, the "conceptually similar to the correction sanity
        check" behaviour of Section 6.3.
        """
        if self.r != 4:
            raise ValueError("SSC-DSD+ requires exactly 4 check symbols")
        received = np.asarray(received, dtype=np.uint8).copy()
        syn = [int(s) for s in self.syndromes(received)]
        if all(s == 0 for s in syn):
            return RSDecodeResult(RSDecodeStatus.CLEAN, received)
        if any(s == 0 for s in syn):
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        locations = {
            (dlog(syn[m + 1]) - dlog(syn[m])) % ORDER for m in range(3)
        }
        if len(locations) != 1:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        location = locations.pop()
        if location >= self.n:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        received[location] ^= syn[0]
        return RSDecodeResult(
            RSDecodeStatus.CORRECTED, received, (location,), (syn[0],)
        )

    # -- algebraic decoder -------------------------------------------------------
    def decode_algebraic(self, received: np.ndarray,
                         max_errors: int | None = None) -> RSDecodeResult:
        """Berlekamp-Massey + Chien + Forney decode up to ``max_errors`` symbols.

        ``max_errors`` defaults to ``r // 2`` (DSC for r=4).  Setting
        ``max_errors=1`` with ``r=4`` models SSC-TSD: correct one symbol,
        detect up to three.  This is the iterative, >= 8-cycle style of
        decoder the paper deems too slow for GPU DRAM.
        """
        received = np.asarray(received, dtype=np.uint8).copy()
        budget = self.r // 2 if max_errors is None else max_errors
        syndrome_poly = Poly(self.syndromes(received))
        if syndrome_poly.is_zero():
            return RSDecodeResult(RSDecodeStatus.CLEAN, received)

        locator = _berlekamp_massey(self.syndromes(received))
        num_errors = locator.degree
        if num_errors == 0 or num_errors > budget:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)

        # Chien search: roots of the locator are the inverse error locators.
        locations = []
        for position in range(self.n):
            inverse_locator = gf_pow_generator(-position)
            if locator.eval(inverse_locator) == 0:
                locations.append(position)
        if len(locations) != num_errors:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)

        # Forney's formula with the evaluator Ω = S·Λ mod x^r.  With the
        # first consecutive generator root at α^0 the error value carries an
        # extra X_j factor: e_j = X_j · Ω(X_j^{-1}) / Λ'(X_j^{-1}).
        evaluator = (syndrome_poly * locator) % Poly.monomial(self.r)
        locator_odd = locator.derivative()
        values = []
        for position in locations:
            inverse_locator = gf_pow_generator(-position)
            denominator = locator_odd.eval(inverse_locator)
            if denominator == 0:
                return RSDecodeResult(RSDecodeStatus.DETECTED, None)
            value = gf_mul(
                gf_pow_generator(position),
                gf_div(evaluator.eval(inverse_locator), denominator),
            )
            values.append(int(value))

        for position, value in zip(locations, values):
            received[position] ^= value
        if not self.is_codeword(received):
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        return RSDecodeResult(
            RSDecodeStatus.CORRECTED, received, tuple(locations), tuple(values)
        )


def _berlekamp_massey(syndromes: np.ndarray) -> Poly:
    """Error-locator polynomial Λ(x) from the syndrome sequence."""
    locator = Poly.one()
    previous = Poly.one()
    shift = 1
    errors = 0
    for step, syndrome in enumerate(int(s) for s in syndromes):
        # Discrepancy: S_step + Σ_i Λ_i · S_{step-i}.
        discrepancy = syndrome
        for i in range(1, errors + 1):
            discrepancy ^= gf_mul(locator[i], int(syndromes[step - i]))
        if discrepancy == 0:
            shift += 1
        elif 2 * errors <= step:
            old_locator = locator
            locator = locator + previous.shift(shift).scale(discrepancy)
            previous = old_locator.scale(gf_inv(discrepancy))
            errors = step + 1 - errors
            shift = 1
        else:
            locator = locator + previous.shift(shift).scale(discrepancy)
            shift += 1
    return locator

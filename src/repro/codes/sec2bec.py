"""The paper's SEC-2bEC code (Equation 3).

The (72, 64) single-bit-error-correcting, aligned-2-bit-symbol-correcting
code is published in the paper as eight Crockford Base32 row strings.  We
embed those strings verbatim and decode them MSB-first, which yields an
H-matrix with:

* 72 distinct, non-zero, odd-weight columns — so the code operates as a
  plain SEC-DED code whenever 2-bit correction is not attempted (the
  property that lets one decoder implement both DuetECC and TrioECC), and
* 36 aligned-pair syndromes (columns ``2t ⊕ 2t+1``) that are mutually
  distinct and disjoint from every single-bit syndrome — so aligned 2-bit
  symbol errors are correctable.

The identity block sits at columns 64-71: data bits occupy positions 0-63
and check bits 64-71, exactly like the Hsiao baseline.

All properties are re-validated at import time; a transcription error in the
embedded strings would fail loudly rather than silently degrade coverage.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base32 import decode_h_matrix
from repro.codes.linear import BinaryLinearCode, PairTable

__all__ = [
    "PAPER_H_ROWS_BASE32",
    "SEC_2BEC_72_64",
    "adjacent_pairs",
    "stride4_pairs",
    "interleave_column_permutation",
    "validate_sec2bec",
]

#: Equation 3 of the paper, verbatim.
PAPER_H_ROWS_BASE32 = [
    "2JZXMJP4K6FNWM0",
    "0CRW9M5962TJMA0",
    "1N9NJ8ZACKPQGH0",
    "1B5B40P8S9A8H0G",
    "2V3K9DWNJE0Z6G8",
    "1ZDTJP8Z0CHGQR4",
    "3MMQ5N4E4H1CA02",
    "1FEYAZNM9J64DR1",
]


def adjacent_pairs(num_bits: int = 72) -> list[tuple[int, int]]:
    """Bit-adjacent aligned 2-bit symbols ``(2t, 2t+1)`` — the layout the
    paper prints the code for ("non-interleaved use")."""
    return [(2 * t, 2 * t + 1) for t in range(num_bits // 2)]


def stride4_pairs(num_bits: int = 72) -> list[tuple[int, int]]:
    """Stride-4 aligned symbols ``(8s + r, 8s + r + 4)``.

    Under logical codeword interleaving (Equation 1), a transmitted byte
    error lands in each codeword as two bits exactly 4 positions apart, with
    the byte's codeword footprint aligned to an 8-bit boundary.  These are
    the "2b symbols composed of bits that are stride-4 apart" the paper
    describes for the interleaved organization.
    """
    pairs = []
    for base in range(0, num_bits, 8):
        for offset in range(4):
            pairs.append((base + offset, base + offset + 4))
    return pairs


def interleave_column_permutation(num_bits: int = 72) -> np.ndarray:
    """Column permutation adapting the printed H to stride-4 symbols.

    Maps codeword position ``8s + r`` (low half of stride-4 symbol
    ``t = 4s + r``) to printed position ``2t``, and ``8s + r + 4`` to
    ``2t + 1``.  Applying :meth:`BinaryLinearCode.column_permuted` with this
    array is the paper's "swizzle the H matrix" step: the swizzled code
    corrects stride-4 symbols with the identical syndrome structure the
    printed code has for adjacent symbols.
    """
    permutation = np.zeros(num_bits, dtype=np.int64)
    for base in range(0, num_bits, 8):
        for offset in range(4):
            symbol = base // 2 + offset
            permutation[base + offset] = 2 * symbol
            permutation[base + offset + 4] = 2 * symbol + 1
    return permutation


def validate_sec2bec(code: BinaryLinearCode,
                     pairs: list[tuple[int, int]]) -> PairTable:
    """Check every structural property the paper claims for Equation 3.

    Returns the pair table on success; raises :class:`ValueError` otherwise.
    """
    if not code.columns_distinct_nonzero():
        raise ValueError("code is not single-error-correcting")
    if not code.columns_all_odd_weight():
        raise ValueError("columns are not all odd weight (SEC-DED fallback broken)")
    covered = sorted(position for pair in pairs for position in pair)
    if covered != list(range(code.n)):
        raise ValueError("pairs do not partition the codeword bits")
    return code.build_pair_table(pairs)


def _load_paper_code() -> tuple[BinaryLinearCode, PairTable]:
    h_matrix = decode_h_matrix(PAPER_H_ROWS_BASE32, num_cols=72)
    code = BinaryLinearCode(h_matrix, name="sec-2bec(72,64)")
    table = validate_sec2bec(code, adjacent_pairs())
    return code, table


#: The paper's code with its bit-adjacent pair table, validated at import.
SEC_2BEC_72_64, _PAPER_PAIR_TABLE = _load_paper_code()


def paper_pair_table() -> PairTable:
    """Aligned-pair lookup for the printed (non-interleaved) layout."""
    return _PAPER_PAIR_TABLE

"""SEC-DAEC codes: single + adjacent-double error correction.

A SEC-DAEC code corrects any single-bit error and any *adjacent* double-bit
error — the dominant multi-bit failure mode when physically neighboring
cells or pins upset together.  Unlike the paper's SEC-2bEC code (whose 2b
symbols are aligned pairs), SEC-DAEC must give every sliding window pair
``(i, i+1)`` its own syndrome, so its H-matrix cannot be a symbol code; it
has to be searched column by column.

The search is a depth-first backtracking walk over 8-bit column values: a
column is admissible when its own syndrome and the XOR with its left
neighbor are both unused by every previously committed single and adjacent
pair.  With 72 + 71 = 143 syndromes in a 255-value space the greedy frontier
almost never backtracks, but the fallback keeps the construction total.

Non-adjacent double errors remain uncorrectable: their syndromes may alias
a single column (miscorrection — an SDC) or no pattern at all (a DUE).
That asymmetry is the honest price of DAEC and shows up directly in the
Monte-Carlo tables.
"""

from __future__ import annotations

import numpy as np

from repro.codes.linear import BinaryLinearCode, PairTable

__all__ = [
    "adjacent_pair_list",
    "search_sec_daec_columns",
    "sec_daec_h_matrix",
    "sec_daec_code",
    "sec_daec_pair_table",
    "SEC_DAEC_72_64",
    "SEC_DAEC_PAIRS",
]


def adjacent_pair_list(num_columns: int = 72) -> list[tuple[int, int]]:
    """The sliding-window adjacent pairs ``(i, i+1)``."""
    return [(i, i + 1) for i in range(num_columns - 1)]


def search_sec_daec_columns(
    num_check: int = 8, num_columns: int = 72, max_steps: int = 1_000_000
) -> list[int]:
    """DFS for column values giving distinct single + adjacent-pair syndromes.

    Invariant maintained while extending the partial assignment: the set of
    all committed column values and all committed adjacent XORs contains no
    repeats and no zeros.  That is exactly the SEC-DAEC condition — every
    correctable pattern owns a unique nonzero syndrome.
    """
    space = 1 << num_check
    if num_columns + (num_columns - 1) > space - 1:
        raise ValueError("syndrome space too small for SEC-DAEC")

    columns: list[int] = []
    used: set[int] = set()
    steps = 0

    def extend() -> bool:
        nonlocal steps
        if len(columns) == num_columns:
            return True
        for value in range(1, space):
            steps += 1
            if steps > max_steps:
                raise RuntimeError("SEC-DAEC search exceeded its step budget")
            if value in used:
                continue
            if columns:
                pair = columns[-1] ^ value
                if pair == 0 or pair in used or pair == value:
                    continue
                used.add(pair)
            used.add(value)
            columns.append(value)
            if extend():
                return True
            columns.pop()
            used.remove(value)
            if columns:
                used.remove(columns[-1] ^ value)
        return False

    if not extend():
        raise RuntimeError("SEC-DAEC search found no assignment")
    return columns


def sec_daec_h_matrix(num_check: int = 8, num_columns: int = 72) -> np.ndarray:
    """The searched (num_check, num_columns) SEC-DAEC parity-check matrix."""
    columns = search_sec_daec_columns(num_check, num_columns)
    matrix = np.zeros((num_check, num_columns), dtype=np.uint8)
    for position, column in enumerate(columns):
        for row in range(num_check):
            matrix[row, position] = (column >> row) & 1
    return matrix


def sec_daec_code(num_check: int = 8, num_columns: int = 72) -> BinaryLinearCode:
    """The SEC-DAEC code as a :class:`BinaryLinearCode`."""
    return BinaryLinearCode(
        sec_daec_h_matrix(num_check, num_columns),
        name=f"sec-daec({num_columns},{num_columns - num_check})",
    )


def sec_daec_pair_table(code: BinaryLinearCode) -> PairTable:
    """The adjacent-pair correction table (raises if any syndrome aliases)."""
    return code.build_pair_table(adjacent_pair_list(code.n))


#: The searched (72, 64) SEC-DAEC code and its adjacent-pair table.
SEC_DAEC_72_64 = sec_daec_code()
SEC_DAEC_PAIRS = sec_daec_pair_table(SEC_DAEC_72_64)

"""Polar codes with syndrome-based successive-cancellation decoding.

Construction
------------
The mother code is the Arikan transform ``T = F^{(x)n}`` (no bit reversal)
over ``N = 2^n`` bits, with ``F = [[1, 0], [1, 1]]``.  ``T`` is its own
inverse over GF(2), and ``T[i, j] != 0`` exactly when the bit support of
``j`` is contained in the bit support of ``i``.  That containment order is
what makes *shortening* exact: freezing every ``u[i]`` with ``i >= E``
forces ``x[j] = 0`` for all ``j >= E`` (every ``i`` covering such a ``j``
is itself ``>= E``), so only the first ``E`` transmitted bits ever carry
information and the channel never sees the tail.

Reliabilities come from the Bhattacharyya recursion (``z- = a + b - ab``
for the f half, ``z+ = ab`` for the g half) seeded with ``z = 0.5`` for
transmitted positions and ``z = 0`` for shortened ones (the receiver knows
them perfectly).  The ``K`` most reliable in-range leaves carry the
payload: ``data_bits`` message bits plus an 8-bit CRC that provides the
error-detection verdict SC cannot give on its own.

Decoding
--------
Decoding is *syndrome* successive cancellation, which makes the decoder an
exact function of the error pattern alone:

1. ``u_y = T(y || 0)`` — the received word's transform.  For any codeword
   ``x`` and error ``e``, ``u_y = u_x + u_e`` and ``u_x`` vanishes on the
   frozen set, so ``s = u_y[frozen]`` depends only on ``e``.
2. Run min-sum SC over *constant* channel LLRs (+1 for transmitted
   positions, a large constant for shortened ones), forcing each frozen
   leaf to its syndrome value.  The result is an estimate ``u_e`` of the
   error's transform; ties (LLR 0) deterministically decide 0.
3. ``e = T(u_e)`` gives the estimated error; ``u = u_y + u_e`` recovers
   the payload, and the CRC over the recovered data bits accepts or
   rejects (a CRC mismatch is a DUE).

Because step 2's inputs are the syndrome and constants only, two received
words that differ by a codeword decode to bit-identical corrections — the
linearity property every scheme in the registry is tested against.

Both a pure-Python scalar decoder and a vectorized numpy batch decoder are
provided; they mirror each other operation for operation (integer LLRs,
identical tie-breaking) so the batch path can be held bit-identical to the
scalar oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PolarCode", "crc8_matrix", "POLAR_512_288"]

#: LLR magnitude assigned to shortened (known-zero) positions.
_SHORT_LLR = 1 << 10

#: CRC-8 generator polynomial x^8 + x^2 + x + 1 (0x07), init 0 — linear.
_CRC_POLY = 0x07


def crc8_matrix(num_bits: int) -> np.ndarray:
    """The (8, num_bits) GF(2) matrix of the linear CRC-8 over a message."""
    matrix = np.zeros((8, num_bits), dtype=np.uint8)
    for j in range(num_bits):
        crc = 0
        for bit_index in range(num_bits):
            bit = 1 if bit_index == j else 0
            crc ^= bit << 7
            crc <<= 1
            if crc & 0x100:
                crc ^= _CRC_POLY | 0x100
        for row in range(8):
            matrix[row, j] = (crc >> row) & 1
    return matrix


def _polar_transform(bits: np.ndarray) -> np.ndarray:
    """``x = u T`` via the XOR butterfly; works on (..., N) arrays."""
    x = np.array(bits, dtype=np.uint8, copy=True)
    n = x.shape[-1]
    lead = x.shape[:-1]
    step = 1
    while step < n:
        x = x.reshape(*lead, n // (2 * step), 2, step)
        x[..., 0, :] ^= x[..., 1, :]
        x = x.reshape(*lead, n)
        step *= 2
    return x


def _leaf_bhattacharyya(z: np.ndarray) -> np.ndarray:
    """Leaf reliabilities in SC decode order (f half first, then g half)."""
    if z.shape[0] == 1:
        return z
    half = z.shape[0] // 2
    za, zb = z[:half], z[half:]
    z_f = za + zb - za * zb
    z_g = za * zb
    return np.concatenate([_leaf_bhattacharyya(z_f), _leaf_bhattacharyya(z_g)])


class PolarCode:
    """A shortened polar code filling ``transmitted`` bits of an ``n`` mother.

    Parameters
    ----------
    n:
        Mother-code length, a power of two.
    transmitted:
        Number of transmitted bits ``E`` (the rest are shortened away).
    data_bits:
        Message payload size.
    crc_bits:
        CRC width appended to the payload (0 disables the CRC, leaving the
        decoder with no detection verdict — only useful for tiny test
        instances).
    """

    def __init__(
        self,
        n: int = 512,
        transmitted: int = 288,
        data_bits: int = 256,
        crc_bits: int = 8,
    ) -> None:
        if n & (n - 1) or n <= 0:
            raise ValueError("mother length must be a power of two")
        if not 0 < transmitted <= n:
            raise ValueError("transmitted length out of range")
        if crc_bits not in (0, 8):
            raise ValueError("crc_bits must be 0 or 8")
        k = data_bits + crc_bits
        if k > transmitted:
            raise ValueError("payload does not fit the transmitted bits")
        self.n = n
        self.transmitted = transmitted
        self.data_bits = data_bits
        self.crc_bits = crc_bits
        self.k = k

        z = np.full(n, 0.5)
        z[transmitted:] = 0.0
        leaf = _leaf_bhattacharyya(z)
        in_range = np.arange(transmitted)
        order = in_range[np.argsort(leaf[:transmitted], kind="stable")]
        #: ascending leaf indices carrying data + CRC bits
        self.info_positions = np.sort(order[:k])
        self.frozen_mask = np.ones(n, dtype=bool)
        self.frozen_mask[self.info_positions] = False

        self._channel_llr = np.full(n, 1, dtype=np.int64)
        self._channel_llr[transmitted:] = _SHORT_LLR
        self._crc_matrix = (
            crc8_matrix(data_bits) if crc_bits else np.zeros((0, data_bits), np.uint8)
        )

    # -- encode ---------------------------------------------------------------
    def crc(self, data: np.ndarray) -> np.ndarray:
        """CRC bits of one message (or a batch with a leading axis)."""
        flat = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        bits = (flat.astype(np.int64) @ self._crc_matrix.T.astype(np.int64)) & 1
        bits = bits.astype(np.uint8)
        return bits[0] if np.asarray(data).ndim == 1 else bits

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data_bits`` message bits into ``transmitted`` bits."""
        data = np.asarray(data, dtype=np.uint8)
        u = np.zeros(self.n, dtype=np.uint8)
        u[self.info_positions[: self.data_bits]] = data
        if self.crc_bits:
            u[self.info_positions[self.data_bits:]] = self.crc(data)
        return _polar_transform(u)[: self.transmitted]

    # -- scalar syndrome-SC decode (pure python, the reference oracle) --------
    def decode(self, received: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool]:
        """Decode one received word.

        Returns ``(error_positions_mask, data, crc_ok)`` where the mask is
        the estimated ``transmitted``-bit error pattern.
        """
        y = np.zeros(self.n, dtype=np.uint8)
        y[: self.transmitted] = np.asarray(received, dtype=np.uint8)
        u_y = _polar_transform(y)

        llr = [int(v) for v in self._channel_llr]
        frozen = [bool(b) for b in self.frozen_mask]
        forced = [int(v) for v in u_y]
        u_e = self._sc_scalar(llr, frozen, forced)

        e_hat = _polar_transform(np.array(u_e, dtype=np.uint8))
        u_hat = u_y ^ np.array(u_e, dtype=np.uint8)
        data = u_hat[self.info_positions[: self.data_bits]]
        if self.crc_bits:
            crc_rx = u_hat[self.info_positions[self.data_bits:]]
            crc_ok = bool(np.array_equal(self.crc(data), crc_rx))
        else:
            crc_ok = True
        return e_hat[: self.transmitted], data, crc_ok

    def _sc_scalar(
        self, llr: list[int], frozen: list[bool], forced: list[int]
    ) -> list[int]:
        if len(llr) == 1:
            if frozen[0]:
                return [forced[0]]
            return [1 if llr[0] < 0 else 0]
        half = len(llr) // 2
        a, b = llr[:half], llr[half:]

        def sign(v: int) -> int:
            return (v > 0) - (v < 0)

        l_f = [sign(a[i]) * sign(b[i]) * min(abs(a[i]), abs(b[i]))
               for i in range(half)]
        u_a = self._sc_scalar(l_f, frozen[:half], forced[:half])
        partial = _polar_transform(np.array(u_a, dtype=np.uint8))
        l_g = [b[i] + (1 - 2 * int(partial[i])) * a[i] for i in range(half)]
        u_b = self._sc_scalar(l_g, frozen[half:], forced[half:])
        return u_a + u_b

    # -- batch syndrome-SC decode (vectorized numpy fast path) ----------------
    def decode_batch(
        self, received: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode a (B, transmitted) batch.

        Returns ``(error_masks, data, crc_fail)`` with shapes
        ``(B, transmitted)``, ``(B, data_bits)`` and ``(B,)``.
        """
        received = np.asarray(received, dtype=np.uint8)
        batch = received.shape[0]
        y = np.zeros((batch, self.n), dtype=np.uint8)
        y[:, : self.transmitted] = received
        u_y = _polar_transform(y)

        llr = np.broadcast_to(self._channel_llr, (batch, self.n))
        u_e = self._sc_batch(llr, 0, u_y)

        e_hat = _polar_transform(u_e)
        u_hat = u_y ^ u_e
        data = u_hat[:, self.info_positions[: self.data_bits]]
        if self.crc_bits:
            crc_rx = u_hat[:, self.info_positions[self.data_bits:]]
            crc_fail = (self.crc(data) != crc_rx).any(axis=1)
        else:
            crc_fail = np.zeros(batch, dtype=bool)
        return e_hat[:, : self.transmitted], data, crc_fail

    def _sc_batch(
        self, llr: np.ndarray, offset: int, forced: np.ndarray
    ) -> np.ndarray:
        size = llr.shape[1]
        if size == 1:
            if self.frozen_mask[offset]:
                return forced[:, offset : offset + 1].astype(np.uint8)
            return (llr[:, :1] < 0).astype(np.uint8)
        half = size // 2
        a, b = llr[:, :half], llr[:, half:]
        l_f = np.sign(a) * np.sign(b) * np.minimum(np.abs(a), np.abs(b))
        u_a = self._sc_batch(l_f, offset, forced)
        partial = _polar_transform(u_a)
        l_g = b + (1 - 2 * partial.astype(np.int64)) * a
        u_b = self._sc_batch(l_g, offset + half, forced)
        return np.concatenate([u_a, u_b], axis=1)


#: The entry-sized instance: 512-bit mother shortened to 288 transmitted
#: bits carrying 256 data bits + CRC-8.
POLAR_512_288 = PolarCode()

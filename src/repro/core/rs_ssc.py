"""Interleaved Reed-Solomon SSC organization (with optional sanity check).

The symbol-based baseline of Section 6.2: two (18, 16) single-symbol-correct
Reed-Solomon codewords per memory entry, using a **4-pin × 2-beat symbol
layout** interleaved in a checkerboard:

* a symbol is the 8 bits carried by one 4-pin group over one beat-pair
  (bits 0-3 on the even beat, bits 4-7 on the odd beat);
* symbol ``(group, beat_pair)`` belongs to codeword ``(group + beat_pair) % 2``.

The checkerboard gives each codeword at most one erroneous symbol for both
of the structured fault modes the paper cares about: a *byte* error (8
adjacent pins, one beat) straddles two neighbouring pin groups — one symbol
in each codeword — and a *pin* error (one wire, four beats) straddles the
two beat-pairs of one pin group — again one symbol per codeword.  Hence the
organization corrects all byte errors *and* preserves single-pin correction,
"akin to TrioECC".

Decoding uses the one-shot decoder of Figure 7c (discrete-log locator), and
optionally the same correction sanity check as the binary schemes: when both
codewords correct, the corrected bits must be confined to a single byte or a
single pin.
"""

from __future__ import annotations

import numpy as np

from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeStatus
from repro.core.layout import BITS_PER_BYTE, ENTRY_BITS, NUM_PINS
from repro.core.sanity_check import csc_violation, csc_violation_batch
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme
from repro.gf.gf256 import EXP_TABLE, LOG_TABLE, ORDER, gf_mul

__all__ = ["InterleavedSSCScheme"]

_NUM_CODEWORDS = 2
_SYMBOLS_PER_CW = 18
_CHECK_SYMBOLS = 2
_DATA_SYMBOLS = _SYMBOLS_PER_CW - _CHECK_SYMBOLS  # 16 bytes per codeword
_PIN_GROUPS = NUM_PINS // 4  # 18
_BEAT_PAIRS = 2

_BIT_WEIGHTS = (1 << np.arange(BITS_PER_BYTE)).astype(np.int64)


def _symbol_bit_positions(group: int, beat_pair: int) -> np.ndarray:
    """Transmitted bit indices of one 4-pin × 2-beat symbol, bit 0 first."""
    positions = []
    for bit in range(BITS_PER_BYTE):
        beat = 2 * beat_pair + bit // 4
        pin = 4 * group + bit % 4
        positions.append(beat * NUM_PINS + pin)
    return np.array(positions, dtype=np.int64)


def _build_layout() -> np.ndarray:
    """``layout[cw, j]`` — the 8 transmitted bit indices of codeword ``cw``'s
    RS symbol ``j`` (check symbols at j = 0, 1)."""
    layout = np.zeros((_NUM_CODEWORDS, _SYMBOLS_PER_CW, BITS_PER_BYTE), dtype=np.int64)
    counters = [0, 0]
    for beat_pair in range(_BEAT_PAIRS):
        for group in range(_PIN_GROUPS):
            codeword = (group + beat_pair) % 2
            layout[codeword, counters[codeword]] = _symbol_bit_positions(
                group, beat_pair
            )
            counters[codeword] += 1
    if counters != [_SYMBOLS_PER_CW, _SYMBOLS_PER_CW]:
        raise AssertionError("checkerboard symbol assignment is unbalanced")
    return layout


class InterleavedSSCScheme(ECCScheme):
    """Two interleaved (18, 16) RS SSC codewords; the I:SSC / I:SSC+CSC rows."""

    def __init__(self, *, csc: bool = False) -> None:
        self.csc = csc
        self.name = "i-ssc-csc" if csc else "i-ssc"
        self.label = "I:SSC+CSC" if csc else "I:SSC"
        self.corrects_pins = True
        self.rs = ReedSolomonCode(_SYMBOLS_PER_CW, _DATA_SYMBOLS)
        self.layout = _build_layout()
        #: α^j locators for syndrome S1
        self._alpha = EXP_TABLE[np.arange(_SYMBOLS_PER_CW) % ORDER].astype(np.uint8)

    # -- bits <-> symbols -------------------------------------------------------
    def _gather_symbols(self, bits: np.ndarray, codeword: int) -> np.ndarray:
        """(B, 288) bits -> (B, 18) symbol values for one codeword."""
        gathered = bits[:, self.layout[codeword].reshape(-1)]
        grouped = gathered.reshape(bits.shape[0], _SYMBOLS_PER_CW, BITS_PER_BYTE)
        return (grouped.astype(np.int64) @ _BIT_WEIGHTS).astype(np.uint8)

    def _scatter_symbols(self, entry: np.ndarray, codeword: int,
                         symbols: np.ndarray) -> None:
        """(18,) symbol values -> their 144 transmitted bits, one scatter."""
        values = np.asarray(symbols, dtype=np.int64)
        bits = ((values[:, None] >> np.arange(BITS_PER_BYTE)) & 1).astype(np.uint8)
        entry[self.layout[codeword].reshape(-1)] = bits.reshape(-1)

    # -- encode ---------------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = self._check_data(data_bits)
        data_bytes = data_bits.reshape(32, BITS_PER_BYTE).astype(np.int64) @ _BIT_WEIGHTS
        entry = np.zeros(ENTRY_BITS, dtype=np.uint8)
        for cw in range(_NUM_CODEWORDS):
            symbols = self.rs.encode(
                data_bytes[_DATA_SYMBOLS * cw : _DATA_SYMBOLS * (cw + 1)].astype(
                    np.uint8
                )
            )
            self._scatter_symbols(entry, cw, symbols)
        return entry

    # -- scalar decode -----------------------------------------------------------
    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        entry_bits = self._check_entry(entry_bits)
        corrected_entry = entry_bits.copy()
        corrected_bits: list[int] = []
        codewords_correcting = 0
        data_bytes = np.zeros(32, dtype=np.uint8)

        for cw in range(_NUM_CODEWORDS):
            symbols = self._gather_symbols(entry_bits[None, :], cw)[0]
            result = self.rs.decode_one_shot_ssc(symbols)
            if result.status is RSDecodeStatus.DETECTED:
                return DecodeResult(DecodeStatus.DETECTED, None)
            if result.status is RSDecodeStatus.CORRECTED:
                codewords_correcting += 1
                location = result.error_locations[0]
                value = result.error_values[0]
                for bit in range(BITS_PER_BYTE):
                    if (value >> bit) & 1:
                        position = int(self.layout[cw, location, bit])
                        corrected_bits.append(position)
                        corrected_entry[position] ^= 1
            data_bytes[_DATA_SYMBOLS * cw : _DATA_SYMBOLS * (cw + 1)] = (
                self.rs.extract_data(result.codeword)
            )

        if self.csc and csc_violation(corrected_bits, codewords_correcting):
            return DecodeResult(DecodeStatus.DETECTED, None)

        data = ((data_bytes[:, None] >> np.arange(BITS_PER_BYTE)) & 1).astype(
            np.uint8
        ).reshape(-1)
        status = DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        return DecodeResult(status, data, tuple(corrected_bits))

    # -- batch decode -----------------------------------------------------------
    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        batch = errors.shape[0]
        due = np.zeros(batch, dtype=bool)
        residual_data = np.zeros(batch, dtype=bool)
        codewords_correcting = np.zeros(batch, dtype=np.int64)
        positions = np.full((batch, _NUM_CODEWORDS * BITS_PER_BYTE), -1, dtype=np.int64)

        for cw in range(_NUM_CODEWORDS):
            symbols = self._gather_symbols(errors, cw)
            s0 = np.bitwise_xor.reduce(symbols, axis=1)
            s1 = np.bitwise_xor.reduce(gf_mul(symbols, self._alpha[None, :]), axis=1)

            nonzero = (s0 != 0) & (s1 != 0)
            log_diff = (LOG_TABLE[s1] - LOG_TABLE[s0]) % ORDER
            location = np.where(nonzero, log_diff, 0)
            corrects = nonzero & (location < _SYMBOLS_PER_CW)
            cw_due = ((s0 != 0) | (s1 != 0)) & ~corrects
            due |= cw_due
            codewords_correcting += corrects

            # Apply the symbol correction and test the data residue.
            residual_symbols = symbols.copy()
            rows = np.nonzero(corrects)[0]
            residual_symbols[rows, location[rows]] ^= s0[rows]
            residual_data |= residual_symbols[:, _CHECK_SYMBOLS:].any(axis=1)

            # Corrected bit positions (for the CSC), one slot per value bit.
            symbol_bits = self.layout[cw][np.minimum(location, _SYMBOLS_PER_CW - 1)]
            for bit in range(BITS_PER_BYTE):
                flips = corrects & (((s0.astype(np.int64) >> bit) & 1) == 1)
                slot = cw * BITS_PER_BYTE + bit
                positions[:, slot] = np.where(flips, symbol_bits[:, bit], -1)

        if self.csc:
            due |= csc_violation_batch(positions, codewords_correcting)

        corrected = (codewords_correcting > 0) & ~due
        return BatchDecode(due=due, residual_data=residual_data, corrected=corrected)

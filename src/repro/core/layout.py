"""Physical layout of an HBM2 memory entry.

A GPU memory entry is 32B of data plus 4B of ECC, fetched as four 72-bit
DRAM *beats* over 72 pins (64 data + 8 ECC pins per beat in the
non-interleaved layout).  Throughout :mod:`repro.core` and
:mod:`repro.errormodel` an entry is a flat vector of 288 *transmitted* bits
in beat-major order:

    transmitted bit ``i``  ⇔  beat ``i // 72``, pin ``i % 72``

Derived coordinates:

* **pin** — one of 72 wires; a pin error spans all four beats of that wire.
* **byte** — 8 adjacent pins within one beat; 9 byte columns × 4 beats give
  36 byte positions per entry.  Beam testing shows most multi-bit soft
  errors are confined to one such byte (Section 5).
* **beat** — one 72-bit burst.
* **word** — the 64 data bits + 8 check bits moving in one beat of the
  non-interleaved layout (the paper's "64b word" granularity).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DATA_BITS",
    "ECC_BITS",
    "ENTRY_BITS",
    "ENTRY_BYTES",
    "ENTRY_WORDS",
    "NUM_BEATS",
    "NUM_PINS",
    "BITS_PER_BYTE",
    "BYTES_PER_BEAT",
    "NUM_BYTES",
    "DATA_BYTES",
    "pin_of",
    "beat_of",
    "byte_of",
    "bits_of_pin",
    "bits_of_byte",
    "bits_of_beat",
]

DATA_BITS = 256  #: 32B of data per entry
ECC_BITS = 32  #: 4B of ECC per entry (12.5% redundancy)
ENTRY_BITS = DATA_BITS + ECC_BITS  #: 288 transmitted bits
ENTRY_BYTES = ENTRY_BITS // 8  #: 36 bytes in the byte-packed representation
ENTRY_WORDS = -(-ENTRY_BITS // 64)  #: 5 uint64 words in the packed representation
NUM_BEATS = 4
NUM_PINS = ENTRY_BITS // NUM_BEATS  # 72
BITS_PER_BYTE = 8
BYTES_PER_BEAT = NUM_PINS // BITS_PER_BYTE  # 9
NUM_BYTES = BYTES_PER_BEAT * NUM_BEATS  # 36 byte positions per entry
DATA_BYTES = DATA_BITS // BITS_PER_BYTE  # 32


def pin_of(index):
    """Pin (0-71) carrying transmitted bit ``index``.  Vectorized."""
    return np.asarray(index) % NUM_PINS


def beat_of(index):
    """Beat (0-3) carrying transmitted bit ``index``.  Vectorized."""
    return np.asarray(index) // NUM_PINS


def byte_of(index):
    """Byte position (0-35) of transmitted bit ``index``: 9 per beat."""
    index = np.asarray(index)
    return (index // NUM_PINS) * BYTES_PER_BEAT + (index % NUM_PINS) // BITS_PER_BYTE


def bits_of_pin(pin: int) -> np.ndarray:
    """The four transmitted bit indices on one pin."""
    return pin + NUM_PINS * np.arange(NUM_BEATS)


def bits_of_byte(byte_position: int) -> np.ndarray:
    """The eight transmitted bit indices of one byte position (0-35)."""
    beat, column = divmod(byte_position, BYTES_PER_BEAT)
    start = beat * NUM_PINS + column * BITS_PER_BYTE
    return start + np.arange(BITS_PER_BYTE)


def bits_of_beat(beat: int) -> np.ndarray:
    """The 72 transmitted bit indices of one beat."""
    return beat * NUM_PINS + np.arange(NUM_PINS)

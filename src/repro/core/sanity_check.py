"""The correction sanity check (CSC).

When several codewords of one memory entry each perform a correction, the
CSC inspects *where* the corrected bits sit in the transmitted entry.  Real
multi-codeword events observed in the beam are either pin faults (one wire,
four beats) or mat-local byte faults (8 adjacent pins, one beat); a set of
corrections that is neither byte- nor pin-aligned is far more likely to be a
constellation of miscorrections caused by a severe beat or whole-entry
error, so the decoder raises a DUE instead.  This trades a sliver of
opportunistic correction for orders-of-magnitude SDC reduction (Section 6.1).

Corrected bit positions are exchanged as fixed-width integer arrays with a
``-1`` sentinel so the batch path stays fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import byte_of, pin_of

__all__ = ["csc_violation", "csc_violation_batch"]


def csc_violation(corrected_bits: list[int], codewords_correcting: int) -> bool:
    """True if the CSC must convert this entry's corrections into a DUE.

    ``corrected_bits`` are transmitted bit indices; the check only applies
    when at least two codewords performed a correction.
    """
    if codewords_correcting < 2 or not corrected_bits:
        return False
    positions = np.asarray(corrected_bits, dtype=np.int64)
    same_pin = bool(np.all(pin_of(positions) == pin_of(positions[0])))
    same_byte = bool(np.all(byte_of(positions) == byte_of(positions[0])))
    return not (same_pin or same_byte)


def csc_violation_batch(positions: np.ndarray,
                        codewords_correcting: np.ndarray) -> np.ndarray:
    """Vectorized CSC over a ``(B, S)`` array of corrected bit positions.

    ``positions`` uses ``-1`` for unused slots; ``codewords_correcting``
    counts how many codewords applied a correction in each entry.  Returns a
    boolean DUE mask of shape ``(B,)``.
    """
    positions = np.asarray(positions, dtype=np.int64)
    valid = positions >= 0
    safe = np.where(valid, positions, 0)

    pins = pin_of(safe)
    bytes_ = byte_of(safe)

    # Reference location: the first valid slot of each row.
    has_any = valid.any(axis=1)
    first_slot = np.argmax(valid, axis=1)
    rows = np.arange(positions.shape[0])
    ref_pin = pins[rows, first_slot]
    ref_byte = bytes_[rows, first_slot]

    same_pin = np.all(~valid | (pins == ref_pin[:, None]), axis=1)
    same_byte = np.all(~valid | (bytes_ == ref_byte[:, None]), axis=1)

    applies = (np.asarray(codewords_correcting) >= 2) & has_any
    return applies & ~(same_pin | same_byte)

"""Common interface for memory-entry ECC schemes.

Every organization evaluated in the paper operates on a full 36-byte memory
entry (see :mod:`repro.core.layout`) and is exposed through two paths:

* a scalar path — :meth:`ECCScheme.encode` / :meth:`ECCScheme.decode` — the
  readable reference implementation used by applications and as the oracle
  in tests, and
* a vectorized path — :meth:`ECCScheme.decode_batch_errors` — which decodes
  a *batch of error patterns* laid over the all-zero codeword.  Every scheme
  here is linear, so the decoder's behaviour depends only on the error
  pattern; this is what makes the Table 2 / Figure 8 Monte Carlo runs
  tractable in pure Python.

The decoder cannot see silent data corruption by definition; the evaluation
harness (:mod:`repro.errormodel.montecarlo`) derives DCE/DUE/SDC labels by
comparing decoder output with ground truth.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.layout import DATA_BITS, ENTRY_BITS, ENTRY_WORDS
from repro.gf.gf2 import unpack_rows

__all__ = ["DecodeStatus", "DecodeResult", "BatchDecode", "ECCScheme"]


class DecodeStatus(Enum):
    """Decoder-visible outcome for one memory entry."""

    CLEAN = "clean"  #: no error observed
    CORRECTED = "corrected"  #: one or more corrections applied (DCE claim)
    DETECTED = "detected"  #: detected-yet-uncorrectable (DUE)


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one received entry.

    ``data`` is the 256 delivered data bits (``None`` on a DUE), and
    ``corrected_bits`` lists the transmitted bit positions the decoder
    flipped — the inputs to the correction sanity check.
    """

    status: DecodeStatus
    data: np.ndarray | None
    corrected_bits: tuple[int, ...] = ()


@dataclass
class BatchDecode:
    """Vectorized decode of ``B`` error patterns over the zero codeword.

    ``due``             — entry raised a DUE.
    ``residual_data``   — after corrections, some *data* bit is still wrong
                          (an SDC unless ``due`` is set).
    ``corrected``       — the decoder applied at least one correction.
    """

    due: np.ndarray
    residual_data: np.ndarray
    corrected: np.ndarray

    def __post_init__(self) -> None:
        if not (self.due.shape == self.residual_data.shape == self.corrected.shape):
            raise ValueError("batch outcome arrays must share one shape")

    @property
    def size(self) -> int:
        return int(self.due.size)

    def sdc(self) -> np.ndarray:
        """Silent data corruption: wrong data delivered with no DUE."""
        return ~self.due & self.residual_data

    def dce(self) -> np.ndarray:
        """Detected-and-corrected (or data untouched): correct data, no DUE."""
        return ~self.due & ~self.residual_data


class ECCScheme(ABC):
    """A single-tier ECC organization for one 288-bit memory entry."""

    #: short identifier, e.g. ``"trio"``
    name: str = "abstract"
    #: label as printed in the paper's tables, e.g. ``"I:SEC-2bEC+CSC"``
    label: str = "abstract"
    #: True if the organization preserves single-pin correction
    corrects_pins: bool = True

    def cache_token(self) -> str:
        """Content identity of the scheme for run-store cache keys.

        The default is the registry name, which is correct for schemes whose
        construction is fully determined by it.  Searched or parameterized
        schemes (alternative H-matrices, different code variants) must
        override this with a digest of their actual construction so two
        variants sharing a name never collide in the artifact cache.
        """
        return self.name

    @abstractmethod
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode 256 data bits into a 288-bit transmitted entry."""

    @abstractmethod
    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        """Decode one received 288-bit entry."""

    @abstractmethod
    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        """Decode a ``(B, 288)`` batch of error patterns (zero codeword)."""

    def decode_batch_packed(self, words: np.ndarray) -> BatchDecode:
        """Decode a ``(B, 5)`` uint64 bit-packed error batch (zero codeword).

        The packed transport format of :func:`repro.gf.gf2.pack_rows`: bit
        ``i`` of the entry sits in word ``i // 64`` at weight ``2**(i % 64)``.
        Schemes with a native packed fast path override this; the default
        unpacks and delegates to :meth:`decode_batch_errors`.
        """
        words = self._check_packed(words)
        return self.decode_batch_errors(unpack_rows(words, ENTRY_BITS))

    # -- shared input validation -------------------------------------------
    @staticmethod
    def _check_data(data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8).reshape(-1)
        if data_bits.size != DATA_BITS:
            raise ValueError(f"expected {DATA_BITS} data bits, got {data_bits.size}")
        return data_bits

    @staticmethod
    def _check_entry(entry_bits: np.ndarray) -> np.ndarray:
        entry_bits = np.asarray(entry_bits, dtype=np.uint8).reshape(-1)
        if entry_bits.size != ENTRY_BITS:
            raise ValueError(
                f"expected {ENTRY_BITS} entry bits, got {entry_bits.size}"
            )
        return entry_bits

    @staticmethod
    def _check_errors(errors: np.ndarray) -> np.ndarray:
        errors = np.asarray(errors, dtype=np.uint8)
        if errors.ndim != 2 or errors.shape[1] != ENTRY_BITS:
            raise ValueError(f"expected a (B, {ENTRY_BITS}) error batch")
        return errors

    @staticmethod
    def _check_packed(words: np.ndarray) -> np.ndarray:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != ENTRY_WORDS:
            raise ValueError(f"expected a (B, {ENTRY_WORDS}) packed error batch")
        return words

    def roundtrip(self, data_bits: np.ndarray,
                  error_bits: np.ndarray | None = None) -> DecodeResult:
        """Encode, optionally corrupt, and decode — a convenience for
        examples and tests."""
        entry = self.encode(data_bits)
        if error_bits is not None:
            entry = entry ^ np.asarray(error_bits, dtype=np.uint8)
        return self.decode(entry)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, label={self.label!r})"

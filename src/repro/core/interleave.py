"""Logical codeword interleaving (Equations 1 and 2 of the paper).

The four 72-bit codewords of a memory entry are spread across the 288
transmitted bits by the modular swizzle

    ``I_bits[i] = NI_bits[(i * 73) mod 288]``

Because ``gcd(73, 288) = 1`` this is a permutation, and because
``73 ≡ 1 (mod 72)`` with ``73 · 72 ≡ 72 (mod 288)`` it has the two
properties the paper relies on:

* a **byte** error (8 consecutive transmitted bits in one beat) lands in
  every codeword as exactly two bits, four positions apart and aligned to an
  8-bit boundary — the stride-4 "2b symbols" of TrioECC; and
* a **pin** error (the same pin across the four beats) lands as one bit per
  codeword at the *same* codeword offset — the per-beat rotation
  ("checkerboard") that preserves single-pin correction.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import ENTRY_BITS

__all__ = [
    "INTERLEAVE_STEP",
    "interleave_permutation",
    "deinterleave_permutation",
    "interleave",
    "deinterleave",
]

#: The codeword length plus one — coprime with the 288-bit entry.
INTERLEAVE_STEP = 73

_STEP_INVERSE = pow(INTERLEAVE_STEP, -1, ENTRY_BITS)  # 217


def interleave_permutation() -> np.ndarray:
    """``perm[i]`` = non-interleaved index transmitted as bit ``i`` (Eq. 1)."""
    return (np.arange(ENTRY_BITS, dtype=np.int64) * INTERLEAVE_STEP) % ENTRY_BITS


def deinterleave_permutation() -> np.ndarray:
    """``perm[n]`` = transmitted index carrying non-interleaved bit ``n`` (Eq. 2)."""
    return (np.arange(ENTRY_BITS, dtype=np.int64) * _STEP_INVERSE) % ENTRY_BITS


_INTERLEAVE = interleave_permutation()
_DEINTERLEAVE = deinterleave_permutation()


def interleave(ni_bits: np.ndarray) -> np.ndarray:
    """Swizzle a non-interleaved 288-bit entry into transmission order.

    Works on the trailing axis, so batches of entries pass through unchanged
    in shape.
    """
    ni_bits = np.asarray(ni_bits)
    if ni_bits.shape[-1] != ENTRY_BITS:
        raise ValueError(f"expected trailing axis of {ENTRY_BITS} bits")
    return ni_bits[..., _INTERLEAVE]


def deinterleave(i_bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    i_bits = np.asarray(i_bits)
    if i_bits.shape[-1] != ENTRY_BITS:
        raise ValueError(f"expected trailing axis of {ENTRY_BITS} bits")
    return i_bits[..., _DEINTERLEAVE]

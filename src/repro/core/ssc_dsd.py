"""SSC-DSD+ — the paper's strongest symbol-based organization.

A single (36, 32) Reed-Solomon codeword covers the whole memory entry, one
8-bit symbol per transmitted byte (8 adjacent pins × 1 beat; check symbols
occupy the first four bytes of beat 0).  The four check symbols give
syndromes S0..S3, and the one-shot decoder of Figure 7c derives *three
independent* single-error location estimates — one per adjacent syndrome
pair, via discrete-log division.  Correction is allowed only when all three
agree and point inside the codeword, which yields:

* single-symbol (full byte) correction,
* complete double-symbol detection, and
* nearly-complete (> 99.999964%) triple-symbol detection,

all in a single cycle, without solving the error-locator polynomial.  The
price (Section 6.2): a *pin* error spans four symbols — one byte per beat —
so it exceeds single-symbol correction and becomes a DUE; SSC-DSD+ is the
only evaluated scheme that cannot correct permanent pin failures.
"""

from __future__ import annotations

import numpy as np

from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeStatus
from repro.core.layout import BITS_PER_BYTE, NUM_BYTES
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme
from repro.gf.gf256 import EXP_TABLE, LOG_TABLE, ORDER, gf_mul

__all__ = ["SSCDSDPlusScheme"]

_CHECK_SYMBOLS = 4
_DATA_SYMBOLS = NUM_BYTES - _CHECK_SYMBOLS  # 32

_BIT_WEIGHTS = (1 << np.arange(BITS_PER_BYTE)).astype(np.int64)


class SSCDSDPlusScheme(ECCScheme):
    """The (36, 32) SSC-DSD+ organization."""

    def __init__(self) -> None:
        self.name = "ssc-dsd+"
        self.label = "SSC-DSD+"
        self.corrects_pins = False  # a pin fault spans 4 symbols
        self.rs = ReedSolomonCode(NUM_BYTES, _DATA_SYMBOLS)
        #: locators[m, j] = α^(j·m) for syndromes S1..S3 (S0 is plain XOR)
        self._locators = EXP_TABLE[
            (np.outer(np.arange(1, _CHECK_SYMBOLS), np.arange(NUM_BYTES))) % ORDER
        ].astype(np.uint8)

    # -- bits <-> symbols -------------------------------------------------------
    @staticmethod
    def _to_symbols(bits: np.ndarray) -> np.ndarray:
        """(B, 288) bits -> (B, 36) byte symbols (transmitted byte order)."""
        grouped = bits.reshape(bits.shape[0], NUM_BYTES, BITS_PER_BYTE)
        return (grouped.astype(np.int64) @ _BIT_WEIGHTS).astype(np.uint8)

    @staticmethod
    def _to_bits(symbols: np.ndarray) -> np.ndarray:
        """(36,) symbols -> (288,) transmitted bits."""
        return (
            (symbols[:, None].astype(np.int64) >> np.arange(BITS_PER_BYTE)) & 1
        ).astype(np.uint8).reshape(-1)

    # -- encode ---------------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = self._check_data(data_bits)
        data_bytes = (
            data_bits.reshape(_DATA_SYMBOLS, BITS_PER_BYTE).astype(np.int64)
            @ _BIT_WEIGHTS
        ).astype(np.uint8)
        return self._to_bits(self.rs.encode(data_bytes))

    # -- scalar decode -----------------------------------------------------------
    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        entry_bits = self._check_entry(entry_bits)
        symbols = self._to_symbols(entry_bits[None, :])[0]
        result = self.rs.decode_dsd_plus(symbols)
        if result.status is RSDecodeStatus.DETECTED:
            return DecodeResult(DecodeStatus.DETECTED, None)

        corrected_bits: list[int] = []
        if result.status is RSDecodeStatus.CORRECTED:
            location = result.error_locations[0]
            value = result.error_values[0]
            corrected_bits = [
                location * BITS_PER_BYTE + bit
                for bit in range(BITS_PER_BYTE)
                if (value >> bit) & 1
            ]
        data_bytes = self.rs.extract_data(result.codeword)
        data = (
            (data_bytes[:, None].astype(np.int64) >> np.arange(BITS_PER_BYTE)) & 1
        ).astype(np.uint8).reshape(-1)
        status = (
            DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        )
        return DecodeResult(status, data, tuple(corrected_bits))

    # -- batch decode -----------------------------------------------------------
    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        symbols = self._to_symbols(errors)

        s0 = np.bitwise_xor.reduce(symbols, axis=1)
        higher = [
            np.bitwise_xor.reduce(
                gf_mul(symbols, self._locators[m][None, :]), axis=1
            )
            for m in range(_CHECK_SYMBOLS - 1)
        ]
        syndromes = [s0, *higher]  # S0..S3

        any_error = np.zeros(errors.shape[0], dtype=bool)
        all_nonzero = np.ones(errors.shape[0], dtype=bool)
        for syndrome in syndromes:
            any_error |= syndrome != 0
            all_nonzero &= syndrome != 0

        # Three independent location estimates must agree (EAC subtract of
        # the discrete logs, modulo 255).
        logs = [LOG_TABLE[syndrome] for syndrome in syndromes]
        loc01 = (logs[1] - logs[0]) % ORDER
        loc12 = (logs[2] - logs[1]) % ORDER
        loc23 = (logs[3] - logs[2]) % ORDER
        agree = (loc01 == loc12) & (loc12 == loc23)
        corrects = all_nonzero & agree & (loc01 < NUM_BYTES)
        due = any_error & ~corrects

        residual = symbols.copy()
        rows = np.nonzero(corrects)[0]
        residual[rows, loc01[rows]] ^= s0[rows]
        residual_data = residual[:, _CHECK_SYMBOLS:].any(axis=1)

        return BatchDecode(due=due, residual_data=residual_data, corrected=corrects)

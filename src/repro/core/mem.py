"""Process-wide allocator tuning for campaign-scale columnar passes.

A whole-campaign pass allocates the same few-hundred-MB temporaries over
and over (gathers, sorts, bincounts on tens of millions of flips).  Two
allocator behaviours make that far slower than the arithmetic on hosts
where first-touch of anonymous memory is expensive (lazily provisioned
VMs, overcommitted hypervisors):

1. glibc serves every allocation past the mmap threshold from a *fresh*
   anonymous mapping and unmaps it on free, so each temporary re-faults
   all of its pages even when the same bytes were just returned.
2. Faults are taken 4 KiB at a time; a campaign's working set is
   hundreds of thousands of them.

:func:`enable_heap_reuse` addresses both: ``mallopt(M_MMAP_MAX, 0)``
routes large allocations through the ordinary heap and
``M_TRIM_THRESHOLD`` stops the allocator from giving it back, so a page
is faulted once per process rather than once per temporary; an optional
``reserve_bytes`` pre-grows the heap once and tags it ``MADV_HUGEPAGE``,
letting transparent huge pages cut the number of first-touch faults by
512x where the kernel supports them.  The switch is Linux/glibc-specific
and silently unavailable elsewhere; it never changes results, only where
``malloc`` finds its bytes.
"""

from __future__ import annotations

import ctypes
import logging

__all__ = ["enable_heap_reuse"]

_LOGGER = logging.getLogger(__name__)

#: ``mallopt`` parameter ids (glibc ``malloc.h``).
_M_TRIM_THRESHOLD = -1
_M_MMAP_MAX = -4
#: ``madvise`` advice (linux ``mman.h``).
_MADV_HUGEPAGE = 14
_PAGE = 4096

#: upper bound on the one-time heap reservation
_MAX_RESERVE = 8 << 30

_TUNED = None  # tri-state: None until attempted, then True/False
_RESERVED = 0


def _libc():
    return ctypes.CDLL(None, use_errno=True)


def _tune() -> bool:
    global _TUNED
    if _TUNED is not None:
        return _TUNED
    try:
        libc = _libc()
        mallopt = libc.mallopt
        mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
        mallopt.restype = ctypes.c_int
        _TUNED = bool(mallopt(_M_MMAP_MAX, 0)) \
            and bool(mallopt(_M_TRIM_THRESHOLD, 2 ** 31 - 1))
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        _TUNED = False
    return _TUNED


def _reserve(nbytes: int) -> None:
    """Grow the heap once by ``nbytes`` and advise huge pages on it.

    The block is freed immediately — with trimming disabled the heap
    keeps the (now hugepage-tagged) range, and every later temporary is
    carved out of it.  Growing is monotonic: repeat calls only extend by
    the difference, so per-campaign estimates never stack.
    """
    global _RESERVED
    nbytes = min(int(nbytes), _MAX_RESERVE)
    if nbytes <= _RESERVED:
        return
    grow, _RESERVED = nbytes - _RESERVED, nbytes
    try:
        libc = _libc()
        libc.malloc.argtypes = (ctypes.c_size_t,)
        libc.malloc.restype = ctypes.c_void_p
        libc.free.argtypes = (ctypes.c_void_p,)
        libc.madvise.argtypes = (
            ctypes.c_void_p, ctypes.c_size_t, ctypes.c_int)
        libc.madvise.restype = ctypes.c_int
        block = libc.malloc(grow)
        if not block:  # pragma: no cover - allocation refused
            return
        start = (block + _PAGE - 1) & ~(_PAGE - 1)
        length = grow - (start - block)
        if length > 0:
            libc.madvise(start, length, _MADV_HUGEPAGE)
        libc.free(block)
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


def enable_heap_reuse(reserve_bytes: int = 0) -> bool:
    """Keep large temporaries on the reusable heap; True when applied.

    Idempotent and safe to call from pool workers (each process tunes
    its own allocator).  ``reserve_bytes`` sizes the one-time hugepage
    reservation to the expected working set — passing 0 skips it.
    Returns False on platforms without glibc's ``mallopt`` — the
    campaign still runs, just with the default map-and-discard
    behaviour.
    """
    if not _tune():
        return False
    if reserve_bytes > 0:
        _reserve(reserve_bytes)
    return True

"""Binary (bit- and 2b-symbol-correcting) entry schemes.

One parametric class covers the paper's six binary organizations:

=====================  ==========  ============  ===========  =====
Organization           base code   interleaved   2b symbols   CSC
=====================  ==========  ============  ===========  =====
NI:SEC-DED (baseline)  Hsiao       no            —            no
I:SEC-DED              Hsiao       yes           —            no
DuetECC                Hsiao       yes           —            yes
NI:SEC-2bEC            Eq. 3       no            adjacent     no
I:SEC-2bEC             Eq. 3       yes           stride-4     no
TrioECC                Eq. 3       yes           stride-4     yes
=====================  ==========  ============  ===========  =====

Each memory entry holds four 72-bit codewords.  In the non-interleaved
layout codeword ``c`` *is* beat ``c``; in the interleaved layout the
codewords are spread by Equation 1 (:mod:`repro.core.interleave`).  For the
interleaved SEC-2bEC the printed H-matrix is column-swizzled so its
bit-adjacent symbols line up with the stride-4 bit pairs that a transmitted
byte error produces in each codeword (Section 6.1, "we swizzle the H
matrix").

Decoding per codeword follows the hardware of Figure 7b: a zero syndrome
passes through; a syndrome matching an H column corrects that bit; with 2b
correction enabled, a syndrome matching an aligned-pair XOR corrects the
pair; anything else is a codeword DUE which discards the whole entry.  The
optional correction sanity check then cross-examines the corrected bit
locations of all four codewords (:mod:`repro.core.sanity_check`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.codes.linear import BinaryLinearCode, PairTable
from repro.core.interleave import deinterleave_permutation
from repro.core.layout import DATA_BITS, ENTRY_BITS, ENTRY_BYTES, NUM_BEATS, NUM_PINS
from repro.core.sanity_check import csc_violation, csc_violation_batch
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme
from repro.gf.gf2 import (
    bytes_from_rows,
    bytes_from_words,
    pack_bits,
    syndrome_byte_table,
    syndromes_batch,
    syndromes_from_bytes,
)

__all__ = ["BinaryEntryScheme"]


class BinaryEntryScheme(ECCScheme):
    """A multi-codeword binary ECC organization over one memory entry.

    The paper's organizations tile the 288-bit entry with four 72-bit
    codewords; the expansion schemes reuse the same machinery with any
    ``(n, k)`` code whose codewords tile the entry exactly (``288 % n == 0``)
    and whose data bits fill the 256-bit payload (``(288 // n) * k == 256``).
    Interleaving and the correction sanity check are specific to the paper's
    4x72 geometry and stay gated to it.
    """

    def __init__(
        self,
        code: BinaryLinearCode,
        *,
        interleaved: bool,
        pair_table: PairTable | None = None,
        csc: bool = False,
        name: str,
        label: str,
    ) -> None:
        if ENTRY_BITS % code.n != 0:
            raise ValueError(
                f"{code.n}-bit codewords do not tile a {ENTRY_BITS}-bit entry"
            )
        num_codewords = ENTRY_BITS // code.n
        if num_codewords * code.k != DATA_BITS:
            raise ValueError(
                f"{num_codewords} codewords of {code.k} data bits do not "
                f"fill the {DATA_BITS}-bit payload"
            )
        if (interleaved or csc) and code.n != NUM_PINS:
            raise ValueError(
                "interleaving and the CSC require the paper's "
                f"{NUM_BEATS}x{NUM_PINS} geometry"
            )
        self.code = code
        self.num_codewords = num_codewords
        self.cw_bits = code.n
        self.interleaved = interleaved
        self.pair_table = pair_table
        self.csc = csc
        self.name = name
        self.label = label
        self.corrects_pins = True

        #: trans_index[c, off] — transmitted bit carrying codeword c, offset off
        ni_positions = np.arange(ENTRY_BITS, dtype=np.int64).reshape(
            num_codewords, code.n
        )
        if interleaved:
            self.trans_index = deinterleave_permutation()[ni_positions]
        else:
            self.trans_index = ni_positions
        self._gather = self.trans_index.reshape(-1)

        #: transmitted indices of the 256 data bits, in user order
        self.data_index = np.concatenate(
            [self.trans_index[c, code.data_positions] for c in range(num_codewords)]
        )

        if pair_table is not None:
            self._pair_low = np.array(
                [pair[0] for pair in pair_table.pairs], dtype=np.int64
            )
            self._pair_high = np.array(
                [pair[1] for pair in pair_table.pairs], dtype=np.int64
            )

        # All codeword syndromes must share one int64 for the packed
        # fast path; wider codes fall back to the reference decoder.
        self._packed_ok = num_codewords * code.r <= 62
        if self._packed_ok:
            self._build_packed_tables()

    def cache_token(self) -> str:
        """Digest of the full construction: H, pairs, interleave, CSC."""
        material = hashlib.sha256()
        material.update(np.ascontiguousarray(self.code.h, dtype=np.uint8))
        if self.pair_table is not None:
            for low, high in self.pair_table.pairs:
                material.update(f"{low},{high};".encode())
        material.update(f"i={int(self.interleaved)},c={int(self.csc)}".encode())
        return material.hexdigest()

    # -- packed decode tables ---------------------------------------------------
    def _build_packed_tables(self) -> None:
        """Precompute the syndrome LUTs behind the packed fast path.

        An entry-wide ``(4R, 288)`` parity check stacks each codeword's H on
        its transmitted bit positions, so one byte-table gather yields all
        four packed syndromes in disjoint R-bit lanes of a single int64.
        Each lane then indexes per-syndrome tables: DUE flag, correction
        flag, corrected transmitted positions (for the CSC), and the
        byte-packed correction mask whose XOR with the received entry gives
        the residual.
        """
        ncw = self.num_codewords
        r = self.code.r
        space = 1 << r
        h_entry = np.zeros((ncw * r, ENTRY_BITS), dtype=np.uint8)
        for cw in range(ncw):
            h_entry[cw * r : (cw + 1) * r, self.trans_index[cw]] = self.code.h
        self._entry_syndrome_table = syndrome_byte_table(h_entry)
        self._syndrome_shifts = (r * np.arange(ncw)).astype(np.int64)
        self._syndrome_mask = np.int64(space - 1)

        # Derive the per-syndrome actions from the same logic the reference
        # decoder uses, over the whole syndrome space at once.
        every = np.tile(np.arange(space, dtype=np.int64)[:, None], (1, ncw))
        offsets, cw_due, cw_corrects = self._corrections(every)
        lut_offsets = offsets[:, 0, :].copy()  # (space, 2), codeword-agnostic
        self._lut_due = cw_due[:, 0].copy()
        self._lut_corrects = cw_corrects[:, 0].copy()

        #: corrected transmitted positions per (codeword, syndrome, slot)
        self._lut_positions = np.where(
            lut_offsets[None, :, :] >= 0,
            self.trans_index[:, np.maximum(lut_offsets, 0)],
            -1,
        )

        corr_bits = np.zeros((ncw, space, ENTRY_BITS), dtype=np.uint8)
        for cw in range(ncw):
            for slot in range(2):
                valid = np.nonzero(lut_offsets[:, slot] >= 0)[0]
                corr_bits[cw, valid,
                          self.trans_index[cw, lut_offsets[valid, slot]]] = 1
        self._corr_byte_table = bytes_from_rows(corr_bits)

        data_mask = np.zeros(ENTRY_BITS, dtype=np.uint8)
        data_mask[self.data_index] = 1
        self._data_mask_bytes = bytes_from_rows(data_mask)

    # -- encode ---------------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = self._check_data(data_bits)
        entry = np.zeros(ENTRY_BITS, dtype=np.uint8)
        k = self.code.k
        for cw in range(self.num_codewords):
            codeword = self.code.encode(data_bits[k * cw : k * (cw + 1)])
            entry[self.trans_index[cw]] = codeword
        return entry

    # -- shared syndrome-to-correction logic -----------------------------------
    def _corrections(self, packed_syndromes: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map per-codeword packed syndromes to correction offsets.

        ``packed_syndromes`` has shape (B, ncw).  Returns ``(offsets, cw_due,
        cw_corrects)`` where ``offsets`` is (B, ncw, 2) within-codeword bit
        offsets with -1 sentinels.
        """
        syn = packed_syndromes
        batch = syn.shape[0]
        offsets = np.full((batch, self.num_codewords, 2), -1, dtype=np.int64)

        single = self.code.syndrome_to_bit[syn]  # (B, ncw); -1 = no column match
        has_single = single >= 0
        offsets[..., 0] = np.where(has_single, single, -1)

        if self.pair_table is not None:
            pair = self.pair_table.syndrome_to_pair[syn]
            has_pair = (pair >= 0) & ~has_single
            offsets[..., 0] = np.where(has_pair, self._pair_low[pair], offsets[..., 0])
            offsets[..., 1] = np.where(has_pair, self._pair_high[pair], -1)
            matched = has_single | has_pair
        else:
            matched = has_single

        cw_due = (syn != 0) & ~matched
        cw_corrects = (syn != 0) & matched
        return offsets, cw_due, cw_corrects

    # -- scalar decode -----------------------------------------------------------
    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        entry_bits = self._check_entry(entry_bits)
        cw_bits = entry_bits[self._gather].reshape(self.num_codewords, self.cw_bits)
        packed = pack_bits(syndromes_batch(self.code.h, cw_bits))[None, :]
        offsets, cw_due, cw_corrects = self._corrections(packed)

        if bool(cw_due.any()):
            return DecodeResult(DecodeStatus.DETECTED, None)

        corrected_bits: list[int] = []
        for cw in range(self.num_codewords):
            for slot in range(2):
                offset = int(offsets[0, cw, slot])
                if offset >= 0:
                    corrected_bits.append(int(self.trans_index[cw, offset]))

        codewords_correcting = int(cw_corrects.sum())
        if self.csc and csc_violation(corrected_bits, codewords_correcting):
            return DecodeResult(DecodeStatus.DETECTED, None)

        corrected = entry_bits.copy()
        for position in corrected_bits:
            corrected[position] ^= 1
        data = corrected[self.data_index].copy()
        status = DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        return DecodeResult(status, data, tuple(corrected_bits))

    # -- batch decode (packed syndrome-LUT fast path) ---------------------------
    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        if not self._packed_ok:
            return self.decode_batch_errors_reference(errors)
        return self._decode_packed_bytes(bytes_from_rows(errors))

    def decode_batch_packed(self, words: np.ndarray) -> BatchDecode:
        words = self._check_packed(words)
        if not self._packed_ok:
            return super().decode_batch_packed(words)
        return self._decode_packed_bytes(bytes_from_words(words, ENTRY_BYTES))

    def _decode_packed_bytes(self, entry_bytes: np.ndarray) -> BatchDecode:
        """Decode byte-packed error rows through the syndrome LUTs."""
        combined = syndromes_from_bytes(self._entry_syndrome_table, entry_bytes)
        syn = (combined[:, None] >> self._syndrome_shifts) & self._syndrome_mask

        due = self._lut_due[syn].any(axis=1)
        codewords_correcting = self._lut_corrects[syn].sum(axis=1)

        if self.csc:
            # The CSC only applies when at least two codewords correct.
            applies = np.nonzero(codewords_correcting >= 2)[0]
            if applies.size:
                positions = np.concatenate(
                    [self._lut_positions[cw][syn[applies, cw]]
                     for cw in range(self.num_codewords)],
                    axis=1,
                )
                due[applies] |= csc_violation_batch(
                    positions, codewords_correcting[applies]
                )

        correction = self._corr_byte_table[0, syn[:, 0]]
        for cw in range(1, self.num_codewords):
            correction = correction ^ self._corr_byte_table[cw, syn[:, cw]]
        residual = entry_bytes ^ correction
        residual_data = ((residual & self._data_mask_bytes) != 0).any(axis=1)

        corrected = (codewords_correcting > 0) & ~due
        return BatchDecode(due=due, residual_data=residual_data, corrected=corrected)

    # -- batch decode (unpacked reference — the oracle for the fast path) -------
    def decode_batch_errors_reference(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        batch = errors.shape[0]
        ncw = self.num_codewords
        cw_bits = errors[:, self._gather].reshape(batch * ncw, self.cw_bits)
        packed = pack_bits(syndromes_batch(self.code.h, cw_bits)).reshape(batch, ncw)
        offsets, cw_due, cw_corrects = self._corrections(packed)

        # Transmitted positions of every correction slot, -1 preserved.
        positions = np.where(
            offsets >= 0,
            np.take_along_axis(
                np.broadcast_to(self.trans_index, (batch, ncw, self.cw_bits)),
                np.maximum(offsets, 0),
                axis=2,
            ),
            -1,
        ).reshape(batch, ncw * 2)

        due = cw_due.any(axis=1)
        codewords_correcting = cw_corrects.sum(axis=1)
        if self.csc:
            due |= csc_violation_batch(positions, codewords_correcting)

        residual = errors.copy()
        rows = np.arange(batch)
        for slot in range(positions.shape[1]):
            pos = positions[:, slot]
            mask = pos >= 0
            residual[rows[mask], pos[mask]] ^= 1

        residual_data = residual[:, self.data_index].any(axis=1)
        corrected = (codewords_correcting > 0) & ~due
        return BatchDecode(due=due, residual_data=residual_data, corrected=corrected)

"""Requeue-then-serial process-pool degradation, shared by every fan-out.

The Monte Carlo harness (:mod:`repro.errormodel.montecarlo`) and the
columnar statistics engine (:mod:`repro.beam.engine`) fan independent,
deterministically seeded jobs out over a :class:`ProcessPoolExecutor`.
Both need the same robustness story: a job that misses its timeout, hits
a worker-side exception, or rides a pool that breaks mid-sweep is
requeued onto a fresh pool (with exponential backoff between attempts),
and whatever is still unfinished after the pool budget runs serially
in-process — per-job seeding makes every path bit-identical.  This
module is the single implementation of that story; it used to be copied
(with subtly different accounting) into both call sites.

Accounting is reconciled here: a job that fails any number of pool
attempts before completing counts as *requeued exactly once* (it is a
member of :attr:`PoolReport.requeued_keys`, a set), while raw timeout,
pool-break, and job-error incidents are tallied per occurrence — so a
chunk that times out on both attempts is one requeued chunk, two
timeouts.

Poison jobs — jobs that fail every pool attempt *and* every serial
retry — are quarantined rather than looping or tearing down the sweep:
their keys land in :attr:`PoolReport.poisoned` with the final error, and
:func:`run_with_requeue` raises :class:`PoisonedJobs` (carrying the
partial results) unless the caller opts into ``allow_poisoned=True``.
A failure on the *pure-serial* path (no pool ever involved) still
propagates immediately, as it always has: there is no healthier
execution tier left to try, and quarantining would hide a plain bug.

Callers pass ``executor_factory`` as a closure over their own module's
``ProcessPoolExecutor`` global, preserving the established monkeypatch
seam (tests substitute fake pools per call site), and pass their own
``logger`` so warnings keep their historical logger names.

:class:`WarmPool` layers pool *reuse* on top: one CLI invocation that
runs many campaigns or cell sweeps pays the interpreter-spawn cost once
— its :meth:`WarmPool.executor_factory` plugs into the same seam but
returns a handle whose ``shutdown()`` keeps the underlying executor
alive when the attempt ended cleanly, and retires it (broken pool, or
futures still in flight after a timeout) so the next attempt gets a
fresh one — the requeue-then-serial degradation semantics are unchanged.
"""

from __future__ import annotations

import atexit
import logging
import os
import random
import signal
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field

__all__ = [
    "PoisonedJobs",
    "PoolReport",
    "RetryPolicy",
    "WarmPool",
    "close_warm_pools",
    "install_shutdown_hooks",
    "pool_worker_init",
    "release_runtime_resources",
    "run_with_requeue",
    "shared_warm_pool",
]

_LOGGER = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budgets and backoff shape for :func:`run_with_requeue`."""

    #: fresh-pool attempts before degrading to serial
    pool_attempts: int = 2
    #: in-process tries per job on the serial path before quarantine
    serial_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    #: fraction of the backoff randomized away (0 = fixed delays)
    jitter: float = 0.25

    def backoff_s(self, attempt: int, u: float = 0.0) -> float:
        """Delay before retry ``attempt`` (1-based), jittered by ``u`` in
        [0, 1).  Jitter *subtracts* up to ``jitter`` of the delay, so the
        cap holds and a fleet of retriers decorrelates."""
        delay = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        return delay * (1.0 - self.jitter * u)


class PoisonedJobs(RuntimeError):
    """Some jobs failed every retry tier and were quarantined.

    Carries everything the caller needs to degrade gracefully anyway:
    ``poisoned`` (key -> final error string), the full :class:`PoolReport`
    and the partial ``results`` dict.
    """

    def __init__(self, poisoned: dict, report: PoolReport,
                 results: dict) -> None:
        names = ", ".join(str(k) for k in sorted(poisoned, key=str))
        super().__init__(
            f"{len(poisoned)} job(s) failed every retry and were "
            f"quarantined: {names}"
        )
        self.poisoned = poisoned
        self.report = report
        self.results = results


@dataclass
class PoolReport:
    """How a :func:`run_with_requeue` call got to a full result set."""

    jobs: int = 0
    #: pool attempts actually started (0 = pure serial, no pool used)
    attempts: int = 0
    pool_completed: int = 0
    serial_completed: int = 0
    #: timeout incidents (the same job timing out twice counts twice)
    timeouts: int = 0
    #: pool-break incidents (:class:`BrokenExecutor` observations)
    pool_breaks: int = 0
    pool_start_failures: int = 0
    #: worker-side exception incidents observed on the pool path
    job_errors: int = 0
    #: keys of jobs that survived at least one failed pool attempt —
    #: a set, so each requeued job is counted exactly once
    requeued_keys: set = field(default_factory=set)
    #: quarantined poison jobs: key -> final error string
    poisoned: dict = field(default_factory=dict)

    @property
    def requeued(self) -> int:
        return len(self.requeued_keys)

    def counters(self) -> dict:
        """Flat JSON-safe counters for manifests and span records.

        Empty when no pool was involved, so serial runs don't pollute
        their manifests with all-zero pool telemetry; the incident-class
        keys (``pool_job_errors``, ``pool_poisoned``) appear only when
        nonzero, so healthy sweeps keep their historical counter shape.
        """
        if not self.attempts and not self.pool_start_failures:
            return {}
        counters = {
            "pool_jobs": self.jobs,
            "pool_attempts": self.attempts,
            "pool_completed": self.pool_completed,
            "pool_serial_fallback": self.serial_completed,
            "pool_requeued": self.requeued,
            "pool_timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
        }
        if self.job_errors:
            counters["pool_job_errors"] = self.job_errors
        if self.poisoned:
            counters["pool_poisoned"] = len(self.poisoned)
        return counters


def run_with_requeue(
    jobs,
    *,
    key,
    describe,
    submit,
    run_serial,
    workers: int | None,
    timeout: float | None = None,
    executor_factory=None,
    noun: str = "jobs",
    logger: logging.Logger | None = None,
    on_result=None,
    retry: RetryPolicy | None = None,
    allow_poisoned: bool = False,
    sleep=time.sleep,
    jitter_draw=random.random,
) -> tuple[dict, PoolReport]:
    """Evaluate ``jobs``, fanned out when asked, robust to worker failure.

    ``key(job)`` names a job's result slot, ``describe(job)`` renders it
    for log lines, ``submit(pool, job)`` schedules it on an executor, and
    ``run_serial(job)`` evaluates it in-process.  ``on_result(job,
    result)`` fires for every completed job on whichever path completed
    it — the hook the observability layer uses for heartbeats and
    worker-span merging.

    ``retry`` shapes the budgets and backoff (default
    :class:`RetryPolicy`); ``sleep``/``jitter_draw`` are injection seams
    so tests assert backoff schedules without waiting them out.

    Returns ``(results, report)``: results keyed by ``key(job)``
    (complete unless poison jobs were quarantined under
    ``allow_poisoned=True``) and the :class:`PoolReport` accounting.
    Raises :class:`PoisonedJobs` when a pool-path job exhausts every
    retry tier and ``allow_poisoned`` is False.
    """
    logger = logger or _LOGGER
    retry = retry or RetryPolicy()
    results: dict = {}
    report = PoolReport(jobs=len(jobs))

    def _finish(job, result) -> None:
        results[key(job)] = result
        if on_result is not None:
            on_result(job, result)

    def _backoff(attempt: int, why: str) -> None:
        delay = retry.backoff_s(attempt, jitter_draw())
        if delay > 0:
            logger.warning("backing off %.3gs before retry (%s)",
                           delay, why)
            sleep(delay)

    pending = list(jobs)
    pool_used = False
    if workers is not None and workers > 1 and len(pending) > 1 \
            and executor_factory is not None:
        for attempt in range(1, retry.pool_attempts + 1):
            if not pending:
                break
            try:
                pool = executor_factory()
            except OSError as exc:
                report.pool_start_failures += 1
                logger.warning(
                    "cannot start worker pool (%s); evaluating %d %s "
                    "in-process", exc, len(pending), noun,
                )
                break
            pool_used = True
            report.attempts = attempt
            try:
                try:
                    futures = {key(job): submit(pool, job)
                               for job in pending}
                except BrokenExecutor as exc:
                    # A pool can break *at submit time* (its workers died
                    # between creation and the first submit).  That is one
                    # pool-break incident and a plain requeue — the same
                    # accounting as a break observed through a future —
                    # not an error that tears down the whole sweep.
                    report.pool_breaks += 1
                    logger.warning(
                        "worker pool broke during submission (%s); "
                        "requeueing %d %s", exc, len(pending), noun,
                    )
                    futures = None
                for job in pending if futures is not None else ():
                    try:
                        result = futures[key(job)].result(timeout=timeout)
                    except _FuturesTimeout:
                        futures[key(job)].cancel()
                        report.timeouts += 1
                        logger.warning(
                            "%s exceeded the %.3gs timeout; requeueing",
                            describe(job), timeout,
                        )
                    except BrokenExecutor as exc:
                        report.pool_breaks += 1
                        logger.warning(
                            "worker pool broke on %s (%s); requeueing "
                            "unfinished %s", describe(job), exc, noun,
                        )
                        break
                    except Exception as exc:
                        report.job_errors += 1
                        logger.warning(
                            "%s failed on the pool (%s: %s); requeueing",
                            describe(job), type(exc).__name__, exc,
                        )
                    else:
                        report.pool_completed += 1
                        _finish(job, result)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            pending = [job for job in pending if key(job) not in results]
            report.requeued_keys.update(key(job) for job in pending)
            if pending and attempt < retry.pool_attempts:
                _backoff(attempt, f"{len(pending)} {noun} unfinished")
            elif pending:
                logger.warning(
                    "fan-out failed twice; falling back to in-process "
                    "serial evaluation for %d %s", len(pending), noun,
                )
    for job in pending:
        for serial_attempt in range(1, retry.serial_attempts + 1):
            try:
                result = run_serial(job)
            except Exception as exc:
                if serial_attempt < retry.serial_attempts:
                    logger.warning(
                        "%s failed in-process (%s: %s); retrying",
                        describe(job), type(exc).__name__, exc,
                    )
                    _backoff(serial_attempt, f"serial retry of "
                             f"{describe(job)}")
                    continue
                if not pool_used:
                    # Pure-serial configurations keep their historical
                    # contract: the error is the caller's to see.
                    raise
                report.poisoned[key(job)] = f"{type(exc).__name__}: {exc}"
                logger.error(
                    "%s failed every pool and serial attempt; "
                    "quarantining as a poison job (%s)",
                    describe(job), exc,
                )
                break
            else:
                report.serial_completed += 1
                _finish(job, result)
                break
    if report.poisoned and not allow_poisoned:
        raise PoisonedJobs(dict(report.poisoned), report, results)
    return results, report


# ---------------------------------------------------------------------------
# Warm pool reuse
# ---------------------------------------------------------------------------

class _WarmHandle:
    """What :meth:`WarmPool.executor_factory` hands to ``run_with_requeue``.

    ``run_with_requeue`` unconditionally calls ``shutdown(wait=False,
    cancel_futures=True)`` after every attempt; the handle translates
    that into "keep the executor warm when the attempt ended cleanly,
    retire it when it is broken or still has futures in flight" (a hung
    or timed-out worker leaves the pool's state unknowable, so the next
    attempt must get a fresh one).
    """

    def __init__(self, pool: WarmPool, executor) -> None:
        self._pool = pool
        self._executor = executor
        self._futures: list = []

    def submit(self, fn, /, *args, **kwargs):
        future = self._executor.submit(fn, *args, **kwargs)
        self._futures.append(future)
        return future

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        broken = bool(getattr(self._executor, "_broken", False))
        in_flight = any(not future.done() for future in self._futures)
        if broken or in_flight:
            self._pool._retire(self._executor)


def pool_worker_init() -> None:
    """Reset inherited signal state in a freshly forked pool worker.

    Forked workers inherit the parent's signal dispositions — including,
    when the parent is the ``repro serve`` daemon, asyncio's wakeup-fd
    handler whose socketpair is *shared* with the parent's event loop.  A
    worker that then receives a signal (``ProcessPoolExecutor`` SIGTERMs
    surviving workers when a sibling dies and breaks the pool) would
    write the signal number into the shared socket and the *daemon's*
    loop would dispatch its own SIGTERM callback — a worker-pool incident
    masquerading as a shutdown request.  Detaching the wakeup fd and
    restoring default dispositions confines signals to the process they
    were sent to.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass


class WarmPool:
    """A process pool that survives across campaigns within one invocation.

    Use :meth:`executor_factory` wherever ``run_with_requeue`` takes an
    ``executor_factory``: the first call spawns the executor, later calls
    reuse it (``spawns``/``reuses`` count both for telemetry), and a
    retirement — broken executor, futures left in flight — makes the next
    call spawn fresh, preserving the requeue-onto-a-fresh-pool semantics.
    """

    def __init__(self, workers: int | None = None, factory=None) -> None:
        self.workers = workers
        self._factory = factory or (
            lambda: ProcessPoolExecutor(max_workers=workers,
                                        initializer=pool_worker_init)
        )
        self._executor = None
        self.spawns = 0
        self.reuses = 0

    def executor_factory(self):
        """A live executor behind a shutdown-deferring handle."""
        if self._executor is None:
            self._executor = self._factory()
            self.spawns += 1
        else:
            self.reuses += 1
        return _WarmHandle(self, self._executor)

    def _retire(self, executor) -> None:
        if executor is self._executor:
            self._executor = None
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown best-effort
            pass

    def close(self) -> None:
        """Shut the warm executor down (idempotent)."""
        if self._executor is not None:
            self._retire(self._executor)

    def counters(self) -> dict:
        """Manifest-ready reuse telemetry."""
        return {"warm_pool_spawns": self.spawns,
                "warm_pool_reuses": self.reuses}

    def __enter__(self) -> WarmPool:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_SHARED_WARM_POOLS: dict = {}


def shared_warm_pool(workers: int | None) -> WarmPool:
    """The invocation-wide warm pool for a worker count (lazily created).

    The CLI threads this through beam campaigns and Monte Carlo sweeps so
    one ``repro`` invocation spawns each pool size at most once; call
    :func:`close_warm_pools` on the way out.
    """
    if workers not in _SHARED_WARM_POOLS:
        _SHARED_WARM_POOLS[workers] = WarmPool(workers)
    return _SHARED_WARM_POOLS[workers]


def close_warm_pools() -> None:
    """Close and forget every shared warm pool (invocation teardown)."""
    while _SHARED_WARM_POOLS:
        _, pool = _SHARED_WARM_POOLS.popitem()
        pool.close()


# ---------------------------------------------------------------------------
# Process-exit cleanup: signals + atexit
# ---------------------------------------------------------------------------
#
# A warm pool holds live worker processes and a campaign holds live
# /dev/shm arena segments; a SIGTERM'd invocation (or a long-running
# ``repro serve`` daemon) that never reaches its ``finally`` blocks would
# strand both — workers as orphans, segments until the next opportunistic
# ``cleanup_stale`` scan.  ``install_shutdown_hooks`` makes teardown a
# process-level guarantee: ``atexit`` covers every normal exit, and
# SIGTERM/SIGINT handlers cover the killed ones, chaining to whatever
# handler was installed before (so Ctrl-C still raises KeyboardInterrupt
# and a plain SIGTERM still terminates with the conventional status).

_HOOKS_INSTALLED = False
_PREVIOUS_HANDLERS: dict = {}


def release_runtime_resources() -> None:
    """Close every shared warm pool and unlink this process's arenas.

    Idempotent and safe to call from a signal handler — both halves only
    touch in-process registries plus ``os`` calls.
    """
    close_warm_pools()
    from repro.core.shm import release_arenas

    release_arenas()


def _on_shutdown_signal(signum, frame) -> None:
    release_runtime_resources()
    previous = _PREVIOUS_HANDLERS.get(signum, signal.SIG_DFL)
    if callable(previous):
        previous(signum, frame)
    elif previous == signal.SIG_DFL:
        # Re-deliver with the default disposition so the exit status
        # still says "killed by signal" to whoever is watching.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)
    # SIG_IGN: swallow, as the prior configuration asked.


def install_shutdown_hooks() -> bool:
    """Hook SIGTERM/SIGINT + ``atexit`` to release pools and shm arenas.

    Returns True the first time (hooks installed), False on repeat calls.
    Signal handlers are only touched from the main thread (Python forbids
    anything else); the ``atexit`` half installs regardless.
    """
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return False
    _HOOKS_INSTALLED = True
    atexit.register(release_runtime_resources)
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                _PREVIOUS_HANDLERS[signum] = signal.signal(
                    signum, _on_shutdown_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
    return True

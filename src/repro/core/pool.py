"""Requeue-then-serial process-pool degradation, shared by every fan-out.

The Monte Carlo harness (:mod:`repro.errormodel.montecarlo`) and the
columnar statistics engine (:mod:`repro.beam.engine`) fan independent,
deterministically seeded jobs out over a :class:`ProcessPoolExecutor`.
Both need the same robustness story: a job that misses its timeout or a
pool that breaks mid-sweep is requeued once onto a fresh pool, and
whatever is still unfinished after the second attempt runs serially
in-process — per-job seeding makes every path bit-identical.  This
module is the single implementation of that story; it used to be copied
(with subtly different accounting) into both call sites.

Accounting is reconciled here: a job that fails any number of pool
attempts before completing counts as *requeued exactly once* (it is a
member of :attr:`PoolReport.requeued_keys`, a set), while raw timeout
incidents are tallied separately — so a chunk that times out on both
attempts is one requeued chunk, two timeouts.

Callers pass ``executor_factory`` as a closure over their own module's
``ProcessPoolExecutor`` global, preserving the established monkeypatch
seam (tests substitute fake pools per call site), and pass their own
``logger`` so warnings keep their historical logger names.
"""

from __future__ import annotations

import logging
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field

__all__ = ["PoolReport", "run_with_requeue"]

_LOGGER = logging.getLogger(__name__)


@dataclass
class PoolReport:
    """How a :func:`run_with_requeue` call got to a full result set."""

    jobs: int = 0
    #: pool attempts actually started (0 = pure serial, no pool used)
    attempts: int = 0
    pool_completed: int = 0
    serial_completed: int = 0
    #: timeout incidents (the same job timing out twice counts twice)
    timeouts: int = 0
    #: pool-break incidents (:class:`BrokenExecutor` observations)
    pool_breaks: int = 0
    pool_start_failures: int = 0
    #: keys of jobs that survived at least one failed pool attempt —
    #: a set, so each requeued job is counted exactly once
    requeued_keys: set = field(default_factory=set)

    @property
    def requeued(self) -> int:
        return len(self.requeued_keys)

    def counters(self) -> dict:
        """Flat JSON-safe counters for manifests and span records.

        Empty when no pool was involved, so serial runs don't pollute
        their manifests with all-zero pool telemetry.
        """
        if not self.attempts and not self.pool_start_failures:
            return {}
        return {
            "pool_jobs": self.jobs,
            "pool_attempts": self.attempts,
            "pool_completed": self.pool_completed,
            "pool_serial_fallback": self.serial_completed,
            "pool_requeued": self.requeued,
            "pool_timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
        }


def run_with_requeue(
    jobs,
    *,
    key,
    describe,
    submit,
    run_serial,
    workers: int | None,
    timeout: float | None = None,
    executor_factory=None,
    noun: str = "jobs",
    logger: logging.Logger | None = None,
    on_result=None,
) -> tuple[dict, PoolReport]:
    """Evaluate ``jobs``, fanned out when asked, robust to worker failure.

    ``key(job)`` names a job's result slot, ``describe(job)`` renders it
    for log lines, ``submit(pool, job)`` schedules it on an executor, and
    ``run_serial(job)`` evaluates it in-process.  ``on_result(job,
    result)`` fires for every completed job on whichever path completed
    it — the hook the observability layer uses for heartbeats and
    worker-span merging.

    Returns ``(results, report)``: results keyed by ``key(job)`` (always
    complete — degradation never drops work), and the
    :class:`PoolReport` accounting of how the pool behaved.
    """
    logger = logger or _LOGGER
    results: dict = {}
    report = PoolReport(jobs=len(jobs))

    def _finish(job, result) -> None:
        results[key(job)] = result
        if on_result is not None:
            on_result(job, result)

    pending = list(jobs)
    if workers is not None and workers > 1 and len(pending) > 1 \
            and executor_factory is not None:
        for attempt in (1, 2):
            if not pending:
                break
            try:
                pool = executor_factory()
            except OSError as exc:
                report.pool_start_failures += 1
                logger.warning(
                    "cannot start worker pool (%s); evaluating %d %s "
                    "in-process", exc, len(pending), noun,
                )
                break
            report.attempts = attempt
            try:
                futures = {key(job): submit(pool, job) for job in pending}
                for job in pending:
                    try:
                        result = futures[key(job)].result(timeout=timeout)
                    except _FuturesTimeout:
                        futures[key(job)].cancel()
                        report.timeouts += 1
                        logger.warning(
                            "%s exceeded the %.3gs timeout; requeueing",
                            describe(job), timeout,
                        )
                    except BrokenExecutor as exc:
                        report.pool_breaks += 1
                        logger.warning(
                            "worker pool broke on %s (%s); requeueing "
                            "unfinished %s", describe(job), exc, noun,
                        )
                        break
                    else:
                        report.pool_completed += 1
                        _finish(job, result)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            pending = [job for job in pending if key(job) not in results]
            report.requeued_keys.update(key(job) for job in pending)
            if pending and attempt == 2:
                logger.warning(
                    "fan-out failed twice; falling back to in-process "
                    "serial evaluation for %d %s", len(pending), noun,
                )
    for job in pending:
        result = run_serial(job)
        report.serial_completed += 1
        _finish(job, result)
    return results, report

"""The rejected Section-6.2 organizations: DSC and SSC-TSD.

The 12.5% HBM2 redundancy can fund a single (36, 32) Reed-Solomon codeword
used either as DSC (double-symbol correct) or SSC-TSD (single-symbol
correct, triple-symbol detect).  The paper rules both out for GPU DRAM
because their decoders must solve the error-locator polynomial —
"requiring at least 8 cycles based on iterative algebraic decoding
procedures" — but they complete the design space and make two interesting
ablations possible:

* **DSC vs TrioECC** — more raw correction (any two bytes) against a higher
  miscorrection surface on severe errors and a multi-cycle decoder;
* **SSC-TSD vs SSC-DSD+** — the guaranteed-detection decoder against the
  paper's one-shot heuristic.  For this (36, 32) code the two are in fact
  *equivalent*: the DSD+ agreement test (all four syndromes non-zero and
  the three discrete-log location estimates equal) holds exactly when the
  received word lies within Hamming distance 1 of a codeword, which is the
  bounded-distance-1 rule of SSC-TSD.  `tests/core/test_algebraic_schemes.py`
  asserts this equivalence on random errors.

Both schemes use the same byte-per-symbol entry layout as SSC-DSD+ and,
like it, cannot correct pin faults (a pin spans four symbols).

The batch DSC decoder is a vectorized Peterson-Gorenstein-Zierler solver:
for two errors the locator coefficients come from a closed-form 2×2 GF
solve, roots from evaluating Λ at the 36 inverse locators, and values from
the order-2 syndrome system; every correction is verified against the two
remaining syndromes before being accepted.
"""

from __future__ import annotations

import numpy as np

from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeStatus
from repro.core.layout import BITS_PER_BYTE, NUM_BYTES
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme
from repro.core.ssc_dsd import SSCDSDPlusScheme
from repro.gf.gf256 import EXP_TABLE, LOG_TABLE, ORDER, gf_mul

__all__ = ["DSCScheme", "SSCTSDScheme", "DECODER_CYCLES"]

_CHECK_SYMBOLS = 4
_DATA_SYMBOLS = NUM_BYTES - _CHECK_SYMBOLS

#: The paper's latency argument: one-shot decoders finish in a single
#: (sub-)cycle; iterative algebraic decoding needs at least eight.
DECODER_CYCLES = {"ssc-dsd+": 1, "ssc-tsd": 8, "dsc": 8}


def _gf_mul_arr(a, b):
    """gf_mul for same-shape uint8 arrays (thin local alias)."""
    return gf_mul(a, b)


class DSCScheme(ECCScheme):
    """Double-symbol-correcting (36, 32) Reed-Solomon organization."""

    def __init__(self) -> None:
        self.name = "dsc"
        self.label = "DSC (36,32)"
        self.corrects_pins = False
        self.decoder_cycles = DECODER_CYCLES["dsc"]
        self.rs = ReedSolomonCode(NUM_BYTES, _DATA_SYMBOLS)
        self._locators = EXP_TABLE[
            (np.outer(np.arange(1, _CHECK_SYMBOLS), np.arange(NUM_BYTES))) % ORDER
        ].astype(np.uint8)
        #: α^j and α^(-j) for every symbol position
        self._alpha = EXP_TABLE[np.arange(NUM_BYTES) % ORDER].astype(np.uint8)
        self._alpha_inv = EXP_TABLE[(-np.arange(NUM_BYTES)) % ORDER].astype(np.uint8)

    # -- bits <-> symbols (same layout as SSC-DSD+) ---------------------------
    _to_symbols = staticmethod(SSCDSDPlusScheme._to_symbols)
    _to_bits = staticmethod(SSCDSDPlusScheme._to_bits)

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = self._check_data(data_bits)
        weights = (1 << np.arange(BITS_PER_BYTE)).astype(np.int64)
        data_bytes = (
            data_bits.reshape(_DATA_SYMBOLS, BITS_PER_BYTE).astype(np.int64)
            @ weights
        ).astype(np.uint8)
        return self._to_bits(self.rs.encode(data_bytes))

    # -- scalar decode ---------------------------------------------------------
    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        entry_bits = self._check_entry(entry_bits)
        symbols = self._to_symbols(entry_bits[None, :])[0]
        result = self.rs.decode_algebraic(symbols, max_errors=2)
        if result.status is RSDecodeStatus.DETECTED:
            return DecodeResult(DecodeStatus.DETECTED, None)
        corrected_bits = [
            int(location) * BITS_PER_BYTE + bit
            for location, value in zip(result.error_locations, result.error_values)
            for bit in range(BITS_PER_BYTE)
            if (value >> bit) & 1
        ]
        data_bytes = self.rs.extract_data(result.codeword)
        data = (
            (data_bytes[:, None].astype(np.int64) >> np.arange(BITS_PER_BYTE)) & 1
        ).astype(np.uint8).reshape(-1)
        status = DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        return DecodeResult(status, data, tuple(sorted(corrected_bits)))

    # -- batch decode (vectorized PGZ) ------------------------------------------
    def _syndromes(self, symbols: np.ndarray) -> list[np.ndarray]:
        syndromes = [np.bitwise_xor.reduce(symbols, axis=1)]
        for power in range(_CHECK_SYMBOLS - 1):
            syndromes.append(
                np.bitwise_xor.reduce(
                    _gf_mul_arr(symbols, self._locators[power][None, :]), axis=1
                )
            )
        return syndromes

    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        batch = errors.shape[0]
        symbols = self._to_symbols(errors)
        s0, s1, s2, s3 = self._syndromes(symbols)

        any_error = (s0 != 0) | (s1 != 0) | (s2 != 0) | (s3 != 0)
        residual = symbols.copy()
        handled = ~any_error  # clean rows need nothing further
        corrected = np.zeros(batch, dtype=bool)

        # --- single-error branch: all syndromes form a geometric sequence.
        nz = (s0 != 0) & (s1 != 0) & (s2 != 0) & (s3 != 0)
        log0, log1 = LOG_TABLE[s0], LOG_TABLE[s1]
        log2, log3 = LOG_TABLE[s2], LOG_TABLE[s3]
        loc01 = (log1 - log0) % ORDER
        agree = nz & (loc01 == (log2 - log1) % ORDER) \
                   & (loc01 == (log3 - log2) % ORDER)
        single = agree & (loc01 < NUM_BYTES) & ~handled
        rows = np.nonzero(single)[0]
        residual[rows, loc01[rows]] ^= s0[rows]
        corrected |= single
        handled |= single

        # --- double-error branch: PGZ with Λ(x) = 1 + λ1·x + λ2·x².
        det = _gf_mul_arr(s0, s2) ^ _gf_mul_arr(s1, s1)
        try_double = any_error & ~handled & (det != 0)
        inv_det = np.zeros(batch, dtype=np.uint8)
        nz_det = det != 0
        inv_det[nz_det] = EXP_TABLE[(ORDER - LOG_TABLE[det[nz_det]]) % ORDER]
        lam1 = _gf_mul_arr(_gf_mul_arr(s0, s3) ^ _gf_mul_arr(s1, s2), inv_det)
        lam2 = _gf_mul_arr(_gf_mul_arr(s1, s3) ^ _gf_mul_arr(s2, s2), inv_det)

        # Chien over the 36 positions: Λ(α^{-j}) = 0 at error locators.
        lam_eval = (
            np.uint8(1)
            ^ _gf_mul_arr(lam1[:, None], self._alpha_inv[None, :])
            ^ _gf_mul_arr(
                lam2[:, None],
                _gf_mul_arr(self._alpha_inv, self._alpha_inv)[None, :],
            )
        )
        is_root = lam_eval == 0
        num_roots = is_root.sum(axis=1)
        first = np.argmax(is_root, axis=1)
        flipped = is_root.copy()
        flipped[np.arange(batch), first] = False
        second = np.argmax(flipped, axis=1)

        two_roots = try_double & (num_roots == 2)
        x1 = self._alpha[first]
        x2 = self._alpha[second]
        # e1 = (S1 ^ S0·X2) / (X1 ^ X2);  e2 = S0 ^ e1.
        denom = x1 ^ x2
        safe = two_roots & (denom != 0)
        inv_denom = np.zeros(batch, dtype=np.uint8)
        nz_den = denom != 0
        inv_denom[nz_den] = EXP_TABLE[(ORDER - LOG_TABLE[denom[nz_den]]) % ORDER]
        e1 = _gf_mul_arr(s1 ^ _gf_mul_arr(s0, x2), inv_denom)
        e2 = s0 ^ e1
        values_ok = safe & (e1 != 0) & (e2 != 0)

        # Verify the two unused syndrome constraints (S2, S3).
        x1_sq = _gf_mul_arr(x1, x1)
        x2_sq = _gf_mul_arr(x2, x2)
        check2 = _gf_mul_arr(e1, x1_sq) ^ _gf_mul_arr(e2, x2_sq) ^ s2
        check3 = (_gf_mul_arr(_gf_mul_arr(e1, x1_sq), x1)
                  ^ _gf_mul_arr(_gf_mul_arr(e2, x2_sq), x2) ^ s3)
        double = values_ok & (check2 == 0) & (check3 == 0)

        rows = np.nonzero(double)[0]
        residual[rows, first[rows]] ^= e1[rows]
        residual[rows, second[rows]] ^= e2[rows]
        corrected |= double
        handled |= double

        due = any_error & ~corrected
        residual_data = residual[:, _CHECK_SYMBOLS:].any(axis=1)
        return BatchDecode(due=due, residual_data=residual_data,
                           corrected=corrected)


class SSCTSDScheme(SSCDSDPlusScheme):
    """SSC-TSD on the (36, 32) code — behaviourally identical to SSC-DSD+.

    The bounded-distance-1 decode that guarantees triple detection is
    exactly the DSD+ agreement rule (see module docstring); what the paper
    rejects is its assumed *implementation* — an iterative locator solver —
    so this class only re-labels the organization and carries the 8-cycle
    latency tag used by the ablation benchmark.
    """

    def __init__(self) -> None:
        super().__init__()
        self.name = "ssc-tsd"
        self.label = "SSC-TSD (36,32)"
        self.decoder_cycles = DECODER_CYCLES["ssc-tsd"]

    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        """Scalar path through the algebraic decoder (t = 1) for fidelity."""
        entry_bits = self._check_entry(entry_bits)
        symbols = self._to_symbols(entry_bits[None, :])[0]
        result = self.rs.decode_algebraic(symbols, max_errors=1)
        if result.status is RSDecodeStatus.DETECTED:
            return DecodeResult(DecodeStatus.DETECTED, None)
        corrected_bits = [
            int(location) * BITS_PER_BYTE + bit
            for location, value in zip(result.error_locations, result.error_values)
            for bit in range(BITS_PER_BYTE)
            if (value >> bit) & 1
        ]
        data_bytes = self.rs.extract_data(result.codeword)
        data = (
            (data_bytes[:, None].astype(np.int64) >> np.arange(BITS_PER_BYTE)) & 1
        ).astype(np.uint8).reshape(-1)
        status = DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        return DecodeResult(status, data, tuple(sorted(corrected_bits)))

"""Small shared numpy-array helpers.

The engines accumulate per-chunk output blocks in Python lists and stitch
them together at a merge point; every one of those merge points needs the
same two-line dance (``np.concatenate`` unless the list is empty, in which
case a *typed* empty array — ``np.concatenate([])`` raises).  This module
is the one home for that dance so the engine, transport and table code
stop growing private ``_cat`` clones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_or_empty"]


def concat_or_empty(parts: list, dtype, *, consume: bool = False) -> np.ndarray:
    """``np.concatenate(parts)``, or an empty ``dtype`` array for no parts.

    With ``consume=True`` the input list is cleared after stacking, so the
    per-part blocks become garbage immediately — the memory-footprint
    contract the fused range pass relies on when it folds chunk outputs.
    """
    if not parts:
        return np.empty(0, dtype=dtype)
    stacked = np.concatenate(parts)
    if consume:
        parts.clear()
    return stacked

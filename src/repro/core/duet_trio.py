"""The reconfigurable DuetECC / TrioECC decoder.

Section 6.3: because the Equation-3 SEC-2bEC code is constrained to operate
as a SEC-DED code whenever 2-bit symbol correction is not attempted, a
single decoder can implement *both* DuetECC (detection-oriented) and TrioECC
(correction-oriented) — "system architects can toggle between the two codes,
either with a global setting per GPU or potentially on a per-CUDA-context
basis".

This class models exactly that: one physical code (the swizzled Equation-3
matrix with interleaving and the correction sanity check) and a mode switch
that enables or disables the half-width pair-HCM outputs.  In ``duet`` mode
an aligned 2-bit symbol error is *detected* (DUE); in ``trio`` mode it is
*corrected*.
"""

from __future__ import annotations

import numpy as np

from repro.codes.sec2bec import (
    SEC_2BEC_72_64,
    interleave_column_permutation,
    stride4_pairs,
)
from repro.core.binary import BinaryEntryScheme
from repro.core.scheme import BatchDecode, DecodeResult, ECCScheme

__all__ = ["ReconfigurableDuetTrio"]

_MODES = ("duet", "trio")


class ReconfigurableDuetTrio(ECCScheme):
    """One decoder, two codes: DuetECC or TrioECC selected at runtime."""

    def __init__(self, mode: str = "trio") -> None:
        swizzled = SEC_2BEC_72_64.column_permuted(
            interleave_column_permutation(), name="sec-2bec(72,64)/swizzled"
        )
        pair_table = swizzled.build_pair_table(stride4_pairs())
        # Both modes share the H matrix, interleave wiring and CSC output
        # logic — only the pair-correction enable differs, mirroring the
        # "DuetECC/TrioECC enable signal" of Figure 7b.
        self._duet = BinaryEntryScheme(
            swizzled,
            interleaved=True,
            pair_table=None,
            csc=True,
            name="duet(reconfig)",
            label="DuetECC (reconfigurable decoder)",
        )
        self._trio = BinaryEntryScheme(
            swizzled,
            interleaved=True,
            pair_table=pair_table,
            csc=True,
            name="trio(reconfig)",
            label="TrioECC (reconfigurable decoder)",
        )
        self.corrects_pins = True
        self.mode = mode

    @property
    def mode(self) -> str:
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self._mode = value

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self._mode}(reconfig)"

    @property
    def label(self) -> str:  # type: ignore[override]
        return self._active.label

    @property
    def _active(self) -> BinaryEntryScheme:
        return self._trio if self._mode == "trio" else self._duet

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        # Encoding is mode-independent: both modes share one H matrix.
        return self._trio.encode(data_bits)

    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        return self._active.decode(entry_bits)

    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        return self._active.decode_batch_errors(errors)

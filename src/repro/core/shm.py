"""Zero-copy shared-memory column transport for campaign fan-outs.

A campaign that fans chunk ranges out over a process pool used to get its
result columns back by pickling them through the executor's result queue
— at 1e6 events that is hundreds of megabytes of numpy arrays serialized,
piped, and deserialized per run.  This module replaces that channel with
one ``multiprocessing.shared_memory`` segment per campaign (an *arena*):

* the host creates the arena and assigns each range job a fixed slice
  ``(offset, capacity)`` up front (capacity is proportional to the job's
  event count, so the layout is deterministic);
* a worker writes its result columns directly into its slice with
  :func:`write_columns` and returns only a :class:`SliceDescriptor` —
  per-column ``(offset, count, dtype)`` blocks plus a CRC32 of the bytes
  written — over the ordinary result channel;
* the host maps the descriptors back to zero-copy views with
  :func:`read_columns`, verifies the checksum, and unlinks the arena when
  the campaign finishes (or dies trying — see below).

Slices a worker outgrows (the flip-count tail is heavy) degrade to the
inline pickled path rather than failing: :func:`write_columns` returns
``None`` and the caller ships the columns the old way.

Crash safety: the arena name embeds the creating pid, so a segment whose
creator is no longer alive is *stale* by construction.
:func:`cleanup_stale` reclaims such leftovers (a host killed mid-campaign
cannot unlink its own arena) and runs at every arena creation;
``faultpoint()`` hooks at create/attach/detach let ``repro chaos`` kill
processes at exactly those moments and assert the recovery story.

Python 3.11/3.12 note: ``SharedMemory`` registers every mapping — created
*or* attached — with the ``resource_tracker``, whose bookkeeping is a set;
concurrent worker attach/detach pairs race the host's create/unlink pair
and either side can strand or double-remove the entry (3.13's
``track=False`` is not available on the floor version we support).  All
arena mappings therefore run under :func:`_untracked`, which silences the
tracker for the duration; leak recovery is this module's own pid-based
orphan scan, not the tracker.
"""

from __future__ import annotations

import contextlib
import os
import secrets
import stat
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.faults import faultpoint

__all__ = [
    "ColumnBlock",
    "ShmArena",
    "SliceDescriptor",
    "align",
    "cleanup_stale",
    "orphaned_segments",
    "read_attached",
    "read_columns",
    "release_arenas",
    "write_columns",
]

#: segment-name prefix — the orphan scanner keys on it
PREFIX = "repro-shm"

#: /dev/shm on every Linux; segment names become files here
_SHM_DIR = "/dev/shm"

#: slice offsets and column starts stay 16-byte aligned (float64/int64
#: views must not straddle alignment, and 16 keeps room for wider dtypes)
_ALIGN = 16


def align(n: int) -> int:
    """``n`` rounded up to the arena alignment quantum."""
    return (int(n) + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ColumnBlock:
    """One column inside a slice: where it starts and how to view it."""

    key: str
    dtype: str  #: numpy dtype string, e.g. ``"<i8"``
    count: int  #: element count
    offset: int  #: absolute byte offset into the segment


@dataclass(frozen=True)
class SliceDescriptor:
    """What a worker sends back instead of pickled columns."""

    segment: str  #: arena segment name
    offset: int  #: slice base (bytes)
    length: int  #: bytes actually written
    checksum: int  #: CRC32 over the written column bytes, in block order
    columns: tuple  #: :class:`ColumnBlock` per column, write order


def _segment_name() -> str:
    """A fresh arena name: prefix, creator pid, random token."""
    return f"{PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


@contextlib.contextmanager
def _untracked():
    """Keep the resource tracker out of arena segment (un)mapping."""
    register = resource_tracker.register
    unregister = resource_tracker.unregister
    resource_tracker.register = lambda name, rtype: None
    resource_tracker.unregister = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = register
        resource_tracker.unregister = unregister


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption."""
    with _untracked():
        return shared_memory.SharedMemory(name=name)


#: every arena this process created and has not yet closed — the hook
#: :func:`release_arenas` (wired to SIGTERM/SIGINT/atexit by
#: :func:`repro.core.pool.install_shutdown_hooks`) unlinks them so a
#: killed host doesn't strand segments until the next stale-scan
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def release_arenas() -> list[str]:
    """Close (detach + unlink) every live arena of this process.

    Returns the released segment names; idempotent — an arena already
    closed by its campaign is skipped.
    """
    released = []
    for arena in list(_LIVE_ARENAS):
        if arena._segment is not None:
            released.append(arena.name)
            try:
                arena.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
    return sorted(released)


class ShmArena:
    """The host side of one campaign's shared-memory arena.

    Create with the total byte budget, hand workers ``(name, offset,
    capacity)`` triples, and :meth:`close` (or use as a context manager)
    when every descriptor has been read back — close unlinks, so views
    into the buffer must be copied out first.  Creation reclaims stale
    segments from dead processes and fires the ``shm.arena.create``
    faultpoint after the segment exists, which is how the chaos harness
    manufactures an orphaned arena.
    """

    def __init__(self, nbytes: int, *, name: str | None = None) -> None:
        self.reclaimed = cleanup_stale()
        self.nbytes = max(align(nbytes), _ALIGN)
        with _untracked():
            self._segment = shared_memory.SharedMemory(
                name=name or _segment_name(), create=True, size=self.nbytes,
            )
        self.name = self._segment.name
        _LIVE_ARENAS.add(self)
        faultpoint("shm.arena.create", segment=self.name)

    @property
    def buf(self) -> memoryview:
        return self._segment.buf

    def close(self) -> None:
        """Detach and unlink (idempotent)."""
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        try:
            segment.close()
        finally:
            with _untracked():
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> ShmArena:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def write_columns(segment_name: str, offset: int, capacity: int,
                  columns: dict) -> SliceDescriptor | None:
    """Write ``columns`` into an arena slice; ``None`` when they don't fit.

    Fires ``shm.arena.attach`` before mapping the segment and
    ``shm.arena.detach`` after the bytes (and their checksum) are in
    place, bracketing exactly the window where a killed worker leaves a
    partially-written slice behind — which is harmless: descriptors only
    exist for jobs that returned, and a requeued job deterministically
    rewrites the same bytes.
    """
    total = sum(align(array.nbytes) for array in columns.values())
    if total > capacity:
        return None
    faultpoint("shm.arena.attach", segment=segment_name, offset=offset)
    segment = _attach(segment_name)
    try:
        blocks = []
        cursor = int(offset)
        checksum = 0
        for key, array in columns.items():
            array = np.ascontiguousarray(array)
            raw = array.view(np.uint8).reshape(-1)
            segment.buf[cursor:cursor + raw.size] = raw.tobytes()
            checksum = zlib.crc32(
                segment.buf[cursor:cursor + raw.size], checksum
            )
            blocks.append(ColumnBlock(
                key=key, dtype=array.dtype.str, count=int(array.size),
                offset=cursor,
            ))
            cursor += align(raw.size)
        descriptor = SliceDescriptor(
            segment=segment_name, offset=int(offset),
            length=cursor - int(offset), checksum=checksum,
            columns=tuple(blocks),
        )
    finally:
        segment.close()
    faultpoint("shm.arena.detach", segment=segment_name, offset=offset)
    return descriptor


def read_columns(buf: memoryview,
                 descriptor: SliceDescriptor) -> dict:
    """Zero-copy column views for one descriptor, checksum-verified.

    The returned arrays alias ``buf`` — copy (e.g. concatenate) before
    the arena is closed.
    """
    checksum = 0
    columns: dict = {}
    for block in descriptor.columns:
        dtype = np.dtype(block.dtype)
        end = block.offset + block.count * dtype.itemsize
        checksum = zlib.crc32(buf[block.offset:end], checksum)
        columns[block.key] = np.frombuffer(
            buf, dtype=dtype, count=block.count, offset=block.offset,
        )
    if checksum != descriptor.checksum:
        raise ValueError(
            f"shm slice checksum mismatch in {descriptor.segment} at "
            f"offset {descriptor.offset}: expected "
            f"{descriptor.checksum:#010x}, read {checksum:#010x}"
        )
    return columns


def read_attached(descriptor: SliceDescriptor) -> dict:
    """Attach the descriptor's segment, copy its columns out, detach.

    The worker-side counterpart of :func:`read_columns`, for host→worker
    broadcasts (the streaming engine ships its global damaged-entry set
    this way).  The returned arrays own their data, so they stay valid
    after the segment is unmapped — and after the host unlinks the arena.
    """
    faultpoint("shm.arena.attach", segment=descriptor.segment,
               offset=descriptor.offset)
    segment = _attach(descriptor.segment)
    try:
        columns = {
            key: np.array(view)
            for key, view in read_columns(segment.buf, descriptor).items()
        }
    finally:
        segment.close()
    faultpoint("shm.arena.detach", segment=descriptor.segment,
               offset=descriptor.offset)
    return columns


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def orphaned_segments() -> list[str]:
    """Arena segments whose creating process is gone (name-embedded pid)."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return []
    orphans = []
    for entry in entries:
        if not entry.startswith(PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        try:
            if not stat.S_ISREG(os.stat(os.path.join(_SHM_DIR, entry))
                                .st_mode):
                continue
        except OSError:
            continue
        if not _pid_alive(pid):
            orphans.append(entry)
    return sorted(orphans)


def cleanup_stale() -> list[str]:
    """Unlink orphaned arena segments; returns the reclaimed names."""
    reclaimed = []
    for name in orphaned_segments():
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:
            continue
        reclaimed.append(name)
    return reclaimed

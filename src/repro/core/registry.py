"""Factory registry for the nine evaluated ECC organizations.

Names and labels follow the paper's Table 2:

=============  =================  =======================================
name           label              notes
=============  =================  =======================================
ni-secded      NI:SEC-DED         the GPU baseline (Hsiao 72,64 per beat)
i-secded       I:SEC-DED          + logical interleaving
duet           I:SEC-DED+CSC      **DuetECC**
ni-sec2bec     NI:SEC-2bEC        Equation-3 code, bit-adjacent symbols
i-sec2bec      I:SEC-2bEC         swizzled stride-4 symbols
trio           I:SEC-2bEC+CSC     **TrioECC**
i-ssc          I:SSC              two (18,16) RS codewords, checkerboard
i-ssc-csc      I:SSC+CSC          + correction sanity check
ssc-dsd+       SSC-DSD+           one (36,32) RS codeword, no pin correct
=============  =================  =======================================

Schemes are constructed lazily and cached — the SEC-2bEC pair tables and
RS locator tables are built once per process.
"""

from __future__ import annotations

from functools import cache

from repro.codes.hsiao import hsiao_code
from repro.codes.sec2bec import (
    SEC_2BEC_72_64,
    interleave_column_permutation,
    paper_pair_table,
    stride4_pairs,
)
from repro.core.binary import BinaryEntryScheme
from repro.core.rs_ssc import InterleavedSSCScheme
from repro.core.scheme import ECCScheme
from repro.core.ssc_dsd import SSCDSDPlusScheme

__all__ = [
    "SCHEME_NAMES",
    "EXTENSION_SCHEME_NAMES",
    "get_scheme",
    "all_schemes",
    "binary_scheme_names",
]

#: Table-2 order.
SCHEME_NAMES = (
    "ni-secded",
    "i-secded",
    "duet",
    "ni-sec2bec",
    "i-sec2bec",
    "trio",
    "i-ssc",
    "i-ssc-csc",
    "ssc-dsd+",
)

#: The Section-6.2 organizations the paper describes but rejects for their
#: multi-cycle iterative decoders; available for ablation studies.
EXTENSION_SCHEME_NAMES = ("dsc", "ssc-tsd")

#: Aliases accepted by :func:`get_scheme`.
_ALIASES = {
    "secded": "ni-secded",
    "duetecc": "duet",
    "i-secded-csc": "duet",
    "trioecc": "trio",
    "i-sec2bec-csc": "trio",
    "ssc-dsd": "ssc-dsd+",
    "sscdsd+": "ssc-dsd+",
}


@cache
def _swizzled_sec2bec():
    """The Equation-3 code with columns permuted for stride-4 symbols."""
    code = SEC_2BEC_72_64.column_permuted(
        interleave_column_permutation(), name="sec-2bec(72,64)/swizzled"
    )
    return code, code.build_pair_table(stride4_pairs())


@cache
def get_scheme(name: str) -> ECCScheme:
    """Construct (and cache) an ECC scheme by registry name or alias."""
    name = _ALIASES.get(name.lower(), name.lower())
    if name == "ni-secded":
        return BinaryEntryScheme(
            hsiao_code(), interleaved=False, name=name, label="NI:SEC-DED"
        )
    if name == "i-secded":
        return BinaryEntryScheme(
            hsiao_code(), interleaved=True, name=name, label="I:SEC-DED"
        )
    if name == "duet":
        return BinaryEntryScheme(
            hsiao_code(),
            interleaved=True,
            csc=True,
            name=name,
            label="I:SEC-DED+CSC (DuetECC)",
        )
    if name == "ni-sec2bec":
        return BinaryEntryScheme(
            SEC_2BEC_72_64,
            interleaved=False,
            pair_table=paper_pair_table(),
            name=name,
            label="NI:SEC-2bEC",
        )
    if name == "i-sec2bec":
        code, pairs = _swizzled_sec2bec()
        return BinaryEntryScheme(
            code, interleaved=True, pair_table=pairs, name=name, label="I:SEC-2bEC"
        )
    if name == "trio":
        code, pairs = _swizzled_sec2bec()
        return BinaryEntryScheme(
            code,
            interleaved=True,
            pair_table=pairs,
            csc=True,
            name=name,
            label="I:SEC-2bEC+CSC (TrioECC)",
        )
    if name == "i-ssc":
        return InterleavedSSCScheme(csc=False)
    if name == "i-ssc-csc":
        return InterleavedSSCScheme(csc=True)
    if name == "ssc-dsd+":
        return SSCDSDPlusScheme()
    if name == "dsc":
        from repro.core.algebraic_schemes import DSCScheme

        return DSCScheme()
    if name == "ssc-tsd":
        from repro.core.algebraic_schemes import SSCTSDScheme

        return SSCTSDScheme()
    raise KeyError(
        f"unknown ECC scheme: {name!r} "
        f"(known: {SCHEME_NAMES + EXTENSION_SCHEME_NAMES})"
    )


def all_schemes() -> list[ECCScheme]:
    """All nine organizations in Table-2 order."""
    return [get_scheme(name) for name in SCHEME_NAMES]


def binary_scheme_names() -> tuple[str, ...]:
    """The six binary organizations (Section 6.1)."""
    return SCHEME_NAMES[:6]

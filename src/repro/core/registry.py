"""Factory registry for the evaluated ECC organizations.

Names and labels follow the paper's Table 2:

=============  =================  =======================================
name           label              notes
=============  =================  =======================================
ni-secded      NI:SEC-DED         the GPU baseline (Hsiao 72,64 per beat)
i-secded       I:SEC-DED          + logical interleaving
duet           I:SEC-DED+CSC      **DuetECC**
ni-sec2bec     NI:SEC-2bEC        Equation-3 code, bit-adjacent symbols
i-sec2bec      I:SEC-2bEC         swizzled stride-4 symbols
trio           I:SEC-2bEC+CSC     **TrioECC**
i-ssc          I:SSC              two (18,16) RS codewords, checkerboard
i-ssc-csc      I:SSC+CSC          + correction sanity check
ssc-dsd+       SSC-DSD+           one (36,32) RS codeword, no pin correct
=============  =================  =======================================

Two further tiers widen the code space beyond the paper's evaluation:

* :data:`EXTENSION_SCHEME_NAMES` — the Section-6.2 organizations the paper
  describes but rejects for their multi-cycle iterative decoders, and
* :data:`EXPANSION_SCHEME_NAMES` — the code families the related work
  builds for real (searched balanced-row Hsiao variants, BCH DEC, polar
  with syndrome-SC decoding, SEC-DAEC), evaluated under the same
  equivalence-oracle discipline as everything else.

Schemes are constructed lazily and cached — the pair tables, RS locator
tables, and polar reliability ordering are built once per process.  Alias
and case normalization happens in the *uncached* :func:`get_scheme`
wrapper so every accepted spelling resolves to the one cached instance of
its canonical scheme.
"""

from __future__ import annotations

from functools import cache

from repro.codes.hsiao import hsiao_code, hsiao_search_code
from repro.codes.sec2bec import (
    SEC_2BEC_72_64,
    interleave_column_permutation,
    paper_pair_table,
    stride4_pairs,
)
from repro.core.binary import BinaryEntryScheme
from repro.core.rs_ssc import InterleavedSSCScheme
from repro.core.scheme import ECCScheme
from repro.core.ssc_dsd import SSCDSDPlusScheme

__all__ = [
    "SCHEME_NAMES",
    "EXTENSION_SCHEME_NAMES",
    "EXPANSION_SCHEME_NAMES",
    "SCHEME_ALIASES",
    "get_scheme",
    "all_schemes",
    "expanded_schemes",
    "binary_scheme_names",
    "known_scheme_names",
]

#: Table-2 order.
SCHEME_NAMES = (
    "ni-secded",
    "i-secded",
    "duet",
    "ni-sec2bec",
    "i-sec2bec",
    "trio",
    "i-ssc",
    "i-ssc-csc",
    "ssc-dsd+",
)

#: The Section-6.2 organizations the paper describes but rejects for their
#: multi-cycle iterative decoders; available for ablation studies.
EXTENSION_SCHEME_NAMES = ("dsc", "ssc-tsd")

#: The related-work code families: a searched balanced-row Hsiao variant,
#: SEC-DAEC, shortened BCH DEC, and a shortened polar code with CRC-8.
EXPANSION_SCHEME_NAMES = ("hsiao-v2", "sec-daec", "bch-dec", "polar")

#: Aliases accepted by :func:`get_scheme`.
_ALIASES = {
    "secded": "ni-secded",
    "duetecc": "duet",
    "i-secded-csc": "duet",
    "trioecc": "trio",
    "i-sec2bec-csc": "trio",
    "ssc-dsd": "ssc-dsd+",
    "sscdsd+": "ssc-dsd+",
    "hsiao": "hsiao-v2",
    "secdaec": "sec-daec",
    "bch": "bch-dec",
    "polar-sc": "polar",
}

#: Read-only view for error messages and docs.
SCHEME_ALIASES = dict(_ALIASES)


def known_scheme_names() -> tuple[str, ...]:
    """Every canonical registry name, in tier order."""
    return SCHEME_NAMES + EXTENSION_SCHEME_NAMES + EXPANSION_SCHEME_NAMES


@cache
def _swizzled_sec2bec():
    """The Equation-3 code with columns permuted for stride-4 symbols."""
    code = SEC_2BEC_72_64.column_permuted(
        interleave_column_permutation(), name="sec-2bec(72,64)/swizzled"
    )
    return code, code.build_pair_table(stride4_pairs())


def get_scheme(name: str) -> ECCScheme:
    """Construct (and cache) an ECC scheme by registry name or alias.

    Normalization happens *here*, outside the cache, so ``"Trio"``,
    ``"trioecc"``, and ``"trio"`` all return the identical cached object.
    """
    return _build_scheme(_ALIASES.get(name.lower(), name.lower()))


@cache
def _build_scheme(name: str) -> ECCScheme:
    """Build the scheme for one *canonical* registry name (cached)."""
    if name == "ni-secded":
        return BinaryEntryScheme(
            hsiao_code(), interleaved=False, name=name, label="NI:SEC-DED"
        )
    if name == "i-secded":
        return BinaryEntryScheme(
            hsiao_code(), interleaved=True, name=name, label="I:SEC-DED"
        )
    if name == "duet":
        return BinaryEntryScheme(
            hsiao_code(),
            interleaved=True,
            csc=True,
            name=name,
            label="I:SEC-DED+CSC (DuetECC)",
        )
    if name == "ni-sec2bec":
        return BinaryEntryScheme(
            SEC_2BEC_72_64,
            interleaved=False,
            pair_table=paper_pair_table(),
            name=name,
            label="NI:SEC-2bEC",
        )
    if name == "i-sec2bec":
        code, pairs = _swizzled_sec2bec()
        return BinaryEntryScheme(
            code, interleaved=True, pair_table=pairs, name=name, label="I:SEC-2bEC"
        )
    if name == "trio":
        code, pairs = _swizzled_sec2bec()
        return BinaryEntryScheme(
            code,
            interleaved=True,
            pair_table=pairs,
            csc=True,
            name=name,
            label="I:SEC-2bEC+CSC (TrioECC)",
        )
    if name == "i-ssc":
        return InterleavedSSCScheme(csc=False)
    if name == "i-ssc-csc":
        return InterleavedSSCScheme(csc=True)
    if name == "ssc-dsd+":
        return SSCDSDPlusScheme()
    if name == "dsc":
        from repro.core.algebraic_schemes import DSCScheme

        return DSCScheme()
    if name == "ssc-tsd":
        from repro.core.algebraic_schemes import SSCTSDScheme

        return SSCTSDScheme()
    if name == "hsiao-v2":
        # variant 1: equally row-balanced but distinct from the paper's
        # baseline matrix (variant 0 of the search reproduces it exactly)
        return BinaryEntryScheme(
            hsiao_search_code(variant=1),
            interleaved=False,
            name=name,
            label="NI:SEC-DED v2 (searched)",
        )
    if name == "sec-daec":
        from repro.codes.sec_daec import SEC_DAEC_72_64, SEC_DAEC_PAIRS

        return BinaryEntryScheme(
            SEC_DAEC_72_64,
            interleaved=False,
            pair_table=SEC_DAEC_PAIRS,
            name=name,
            label="NI:SEC-DAEC",
        )
    if name == "bch-dec":
        from repro.codes.bch import BCH_DEC_144_128, BCH_DEC_PAIRS

        return BinaryEntryScheme(
            BCH_DEC_144_128,
            interleaved=False,
            pair_table=BCH_DEC_PAIRS,
            name=name,
            label="BCH-DEC (144,128)x2",
        )
    if name == "polar":
        from repro.core.polar_scheme import PolarEntryScheme

        return PolarEntryScheme()
    raise KeyError(
        f"unknown ECC scheme: {name!r} "
        f"(known: {known_scheme_names()}; "
        f"aliases: {tuple(sorted(_ALIASES))})"
    )


def all_schemes() -> list[ECCScheme]:
    """All nine organizations in Table-2 order."""
    return [get_scheme(name) for name in SCHEME_NAMES]


def expanded_schemes() -> list[ECCScheme]:
    """Every registered organization: paper, extension, and expansion tiers."""
    return [get_scheme(name) for name in known_scheme_names()]


def binary_scheme_names() -> tuple[str, ...]:
    """The six binary organizations (Section 6.1)."""
    return SCHEME_NAMES[:6]

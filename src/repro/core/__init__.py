"""The paper's contribution: tailored ECC organizations for GPU HBM2."""

from repro.core.binary import BinaryEntryScheme
from repro.core.duet_trio import ReconfigurableDuetTrio
from repro.core.interleave import deinterleave, interleave
from repro.core.layout import DATA_BITS, ECC_BITS, ENTRY_BITS, NUM_BEATS, NUM_PINS
from repro.core.registry import (
    EXPANSION_SCHEME_NAMES,
    EXTENSION_SCHEME_NAMES,
    SCHEME_NAMES,
    all_schemes,
    expanded_schemes,
    get_scheme,
    known_scheme_names,
)
from repro.core.rs_ssc import InterleavedSSCScheme
from repro.core.sanity_check import csc_violation, csc_violation_batch
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme
from repro.core.ssc_dsd import SSCDSDPlusScheme

__all__ = [
    "BinaryEntryScheme",
    "ReconfigurableDuetTrio",
    "InterleavedSSCScheme",
    "SSCDSDPlusScheme",
    "interleave",
    "deinterleave",
    "DATA_BITS",
    "ECC_BITS",
    "ENTRY_BITS",
    "NUM_BEATS",
    "NUM_PINS",
    "SCHEME_NAMES",
    "EXTENSION_SCHEME_NAMES",
    "EXPANSION_SCHEME_NAMES",
    "all_schemes",
    "expanded_schemes",
    "known_scheme_names",
    "get_scheme",
    "csc_violation",
    "csc_violation_batch",
    "BatchDecode",
    "DecodeResult",
    "DecodeStatus",
    "ECCScheme",
]

"""Entry-level ECC scheme built on the shortened polar code.

One :class:`repro.codes.polar.PolarCode` covers the whole 288-bit entry:
512-bit mother code shortened to 288 transmitted bits, 256 data bits plus
a CRC-8 on the most reliable leaves.  Decode is syndrome successive
cancellation (see ``codes/polar.py``), so correction is an exact function
of the error pattern and the registry's linearity/equivalence discipline
holds bit for bit.

The CRC supplies the DUE verdict: a failed check after SC is a detected
uncorrectable; a passed check with residual data damage is an SDC (the
CRC's 2^-8 escape rate is part of the honest resilience picture).  The
scheme does not guarantee single-pin correction — a pin error is four
spread bit flips, beyond what min-sum SC at unit LLRs always fixes — so
``corrects_pins`` is False.
"""

from __future__ import annotations

from hashlib import sha256

import numpy as np

from repro.codes.polar import PolarCode
from repro.core.scheme import BatchDecode, DecodeResult, DecodeStatus, ECCScheme

__all__ = ["PolarEntryScheme"]

#: rows decoded per vectorized SC pass; bounds the (B, 512) int64 LLR
#: working set of the depth-9 recursion to a few tens of megabytes
_SC_CHUNK = 4096


class PolarEntryScheme(ECCScheme):
    """The polar organization over one memory entry."""

    def __init__(self, code: PolarCode | None = None, *,
                 name: str = "polar", label: str = "Polar+CRC8") -> None:
        self.code = code if code is not None else PolarCode()
        self.name = name
        self.label = label
        self.corrects_pins = False
        self.data_index = np.arange(self.code.data_bits, dtype=np.int64)

    def cache_token(self) -> str:
        material = (
            f"polar:{self.code.n}:{self.code.transmitted}:"
            f"{self.code.data_bits}:{self.code.crc_bits}:"
        ).encode() + self.code.info_positions.astype(np.int64).tobytes()
        return sha256(material).hexdigest()

    # -- scalar path ----------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = self._check_data(data_bits)
        return self.code.encode(data_bits)

    def decode(self, entry_bits: np.ndarray) -> DecodeResult:
        entry_bits = self._check_entry(entry_bits)
        e_hat, data, crc_ok = self.code.decode(entry_bits)
        if not crc_ok:
            return DecodeResult(DecodeStatus.DETECTED, None)
        corrected_bits = tuple(int(p) for p in np.nonzero(e_hat)[0])
        status = DecodeStatus.CORRECTED if corrected_bits else DecodeStatus.CLEAN
        return DecodeResult(status, data, corrected_bits)

    # -- batch path (vectorized syndrome SC) ----------------------------------
    def decode_batch_errors(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        batch = errors.shape[0]
        due = np.zeros(batch, dtype=bool)
        residual_data = np.zeros(batch, dtype=bool)
        corrected = np.zeros(batch, dtype=bool)
        for start in range(0, batch, _SC_CHUNK):
            rows = errors[start : start + _SC_CHUNK]
            e_hat, data, crc_fail = self.code.decode_batch(rows)
            stop = start + rows.shape[0]
            due[start:stop] = crc_fail
            residual_data[start:stop] = data.any(axis=1)
            corrected[start:stop] = ~crc_fail & e_hat.any(axis=1)
        return BatchDecode(due=due, residual_data=residual_data,
                           corrected=corrected)

    # -- scalar-loop reference (the oracle for the vectorized path) -----------
    def decode_batch_errors_reference(self, errors: np.ndarray) -> BatchDecode:
        errors = self._check_errors(errors)
        batch = errors.shape[0]
        due = np.zeros(batch, dtype=bool)
        residual_data = np.zeros(batch, dtype=bool)
        corrected = np.zeros(batch, dtype=bool)
        for i in range(batch):
            e_hat, data, crc_ok = self.code.decode(errors[i])
            due[i] = not crc_ok
            residual_data[i] = bool(data.any())
            corrected[i] = crc_ok and bool(e_hat.any())
        return BatchDecode(due=due, residual_data=residual_data,
                           corrected=corrected)

"""Streaming mergeable statistics (`repro.stats`).

Bounded-memory campaign analytics: :class:`CampaignAccumulator` holds
every Figure 4/5 and Table 1 statistic as fixed-size integer tallies with
an exact (associative, commutative) ``merge``; :class:`EntryOccupancy`
answers the global intermittent-filter question in one bit per device
entry; :mod:`repro.stats.table1` is the canonical tally → float helper
shared with the materialized oracles in :mod:`repro.beam.postprocess`.
"""

from repro.stats.accumulators import STATS_KEYS, CampaignAccumulator
from repro.stats.dedupe import EntryOccupancy
from repro.stats.table1 import merge_tallies, table1_tally, table1_weights

__all__ = [
    "CampaignAccumulator",
    "EntryOccupancy",
    "STATS_KEYS",
    "merge_tallies",
    "table1_tally",
    "table1_weights",
]

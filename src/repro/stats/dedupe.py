"""Fixed-size entry-occupancy index for the global intermittent filter.

The post-processing contract says an entry with records in two or more
distinct write cycles — *anywhere in the campaign* — is displacement
damage, and every record it produced must be excluded.  The materialized
engines see all records at once, so a ``np.unique`` answers it; a
streaming engine never holds the campaign's records, so the multiplicity
question needs a structure that is O(device), not O(events): one bit per
memory entry (2^30 entries on the default A100 geometry → a flat 128 MB
bitmap, the same for a 1e5-event smoke run and a 1e9-event fleet
campaign).

Fold order does not matter: an entry is damaged exactly when its global
multiplicity is ≥ 2, and any interleaving of per-range folds sees the
second occurrence either as an intra-range duplicate or as an
already-set bit.  The damaged *set* is therefore identical for every
range partition — the property the streaming engine's float-identity
contract rests on.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import concat_or_empty

__all__ = ["EntryOccupancy"]


class EntryOccupancy:
    """One-bit-per-entry occupancy with duplicate (damaged) collection."""

    def __init__(self, total_entries: int) -> None:
        if total_entries <= 0:
            raise ValueError("total_entries must be positive")
        self.total_entries = int(total_entries)
        self._bits = np.zeros((self.total_entries + 7) // 8, dtype=np.uint8)
        self._damaged_parts: list[np.ndarray] = []

    @property
    def nbytes(self) -> int:
        return int(self._bits.nbytes)

    def fold(self, unique_entries: np.ndarray,
             duplicated: np.ndarray) -> None:
        """Fold one range's entries: ``unique_entries`` are the distinct
        entry indices the range touched, ``duplicated`` the subset it
        already saw at least twice *within* the range (both int64,
        ``duplicated ⊆ unique_entries``)."""
        unique_entries = np.asarray(unique_entries, dtype=np.int64)
        if unique_entries.size:
            if int(unique_entries.max()) >= self.total_entries \
                    or int(unique_entries.min()) < 0:
                raise ValueError("entry index outside the device")
            word = unique_entries >> 3
            mask = (np.uint8(1) << (unique_entries & 7).astype(np.uint8))
            seen = (self._bits[word] & mask) != 0
            if seen.any():
                self._damaged_parts.append(unique_entries[seen])
            # |= via indexed or — duplicate words in one fold are fine,
            # each entry's bit is set regardless of scatter order
            np.bitwise_or.at(self._bits, word, mask)
        duplicated = np.asarray(duplicated, dtype=np.int64)
        if duplicated.size:
            self._damaged_parts.append(duplicated)

    def damaged(self) -> np.ndarray:
        """Sorted unique damaged entries folded so far (int64)."""
        if not self._damaged_parts:
            return np.empty(0, dtype=np.int64)
        merged = np.unique(concat_or_empty(self._damaged_parts, np.int64))
        # keep the deduped form so repeated calls stay cheap
        self._damaged_parts = [merged]
        return merged

"""Canonical Table-1 weight computation from integer pattern tallies.

Table 1 weights each *event* equally: an event of breadth ``b`` gives
every one of its ``b`` per-entry patterns a ``1/b`` share.  Historically
the scalar and columnar paths accumulated those float shares in site
order, which made the result depend on event ordering — harmless within
one pass, but fatal for a streaming engine that folds arbitrary range
splits and must stay float-identical to the materialized oracle.

The canonical form factors the float work out of the accumulation
entirely: every path first counts **integers** — how many sites of
pattern code ``c`` belong to events of breadth ``b`` — and only then
converts the tally to float weights here, with one fixed summation order
(ascending breadth within each pattern, patterns in ``PATTERN_ORDER``).
Integer tallies merge exactly (addition is associative), so the scalar
oracle, the columnar tables and any streamed/merged accumulator produce
bit-identical Table-1 probabilities by construction.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errormodel.classify import PATTERN_ORDER
from repro.errormodel.patterns import ErrorPattern

__all__ = ["table1_tally", "table1_weights", "merge_tallies"]


def table1_tally(codes: np.ndarray, breadths: np.ndarray) -> Counter:
    """Integer site tally keyed by ``(pattern_code, event_breadth)``.

    ``codes`` is one pattern code per site (an index into
    ``PATTERN_ORDER``) and ``breadths`` the owning event's breadth per
    site, aligned element-wise.
    """
    codes = np.asarray(codes)
    breadths = np.asarray(breadths)
    if codes.size != breadths.size:
        raise ValueError("codes and breadths must align per site")
    tally: Counter = Counter()
    if not codes.size:
        return tally
    # one pass over the distinct (code, breadth) pairs, not the sites
    span = int(breadths.max()) + 1
    keys, counts = np.unique(
        codes.astype(np.int64) * span + breadths.astype(np.int64),
        return_counts=True,
    )
    for key, count in zip(keys.tolist(), counts.tolist()):
        tally[(key // span, key % span)] = count
    return tally


def merge_tallies(*tallies: Counter) -> Counter:
    """Exact (integer) union of per-range tallies."""
    merged: Counter = Counter()
    for tally in tallies:
        merged.update(tally)
    return merged


def table1_weights(tally) -> dict[ErrorPattern, float]:
    """Normalized Table-1 probabilities from an integer tally.

    The float accumulation order is fixed — per pattern, ascending
    breadth; the normalizing total in ``PATTERN_ORDER`` — so any two
    tallies with equal counts yield bit-identical probabilities.
    """
    per_code: dict[int, list[tuple[int, int]]] = {}
    for (code, breadth), count in tally.items():
        if count:
            per_code.setdefault(int(code), []).append(
                (int(breadth), int(count))
            )
    weights = []
    for code in range(len(PATTERN_ORDER)):
        acc = 0.0
        for breadth, count in sorted(per_code.get(code, ())):
            acc += count * (1.0 / breadth)
        weights.append(acc)
    total = 0.0
    for weight in weights:
        total += weight
    if total <= 0.0:
        raise ValueError("no events to classify")
    return {
        pattern: weight / total
        for pattern, weight in zip(PATTERN_ORDER, weights)
    }

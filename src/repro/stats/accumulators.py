"""Fixed-size, mergeable streaming accumulators for campaign statistics.

Every statistic the campaign engines report — the Figure 4a class
mixture, the Figure 4b MBME breadth histogram, the Figure 4c alignment
and words-per-entry numbers, the Figure 5 bits-per-word severities and
the Table 1 pattern probabilities — is a ratio of **integer tallies**
over the observed events.  A :class:`CampaignAccumulator` keeps exactly
those tallies, in O(1) space (a few hundred counters), so a worker can
fold an arbitrary slice of the campaign into one and ship back kilobytes
instead of per-event columns.

The contract, asserted by the property suite and the engine equivalence
tests:

* ``merge`` is associative and commutative with :meth:`empty` as
  identity — integer addition, nothing else;
* folding any partition of one event stream and merging in any order
  yields tallies equal to one fold of the whole stream;
* :meth:`finalize` computes every float exactly once, from the tallies,
  in one canonical order — so a streamed campaign's statistics are
  **float-identical** to the materialized ``*_table`` oracles in
  :mod:`repro.beam.postprocess`, which share the same tally → float
  helpers.

The per-site pattern codes, word segments and alignment predicates reuse
the postprocess kernels (one source of truth for the classification
semantics); only the aggregation differs.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro.stats.table1 import table1_tally, table1_weights

__all__ = ["CampaignAccumulator", "STATS_KEYS"]

#: the statistics dictionaries :meth:`CampaignAccumulator.finalize`
#: produces, in :class:`repro.beam.engine.StatisticsResult` field order
STATS_KEYS = (
    "class_fractions",
    "mbme_histogram",
    "byte_alignment",
    "bits_per_word_aligned",
    "bits_per_word_non_aligned",
    "table1",
)

_STATE_VERSION = 1

#: a flipped site never exceeds the entry's data bits, so one word's
#: segment length is bounded far below this — sized generously so a
#: malformed input fails loudly in bincount, not by silent truncation
_MAX_SEG_BITS = 256


class CampaignAccumulator:
    """Streaming statistics state for one (slice of a) campaign."""

    def __init__(self) -> None:
        from repro.beam.events import WORDS_PER_ENTRY
        from repro.beam.postprocess import _MBME_EDGES

        self.n_events = 0  #: synthesized events folded (pre-observation)
        self.n_records = 0  #: mismatch records folded (pre-filter)
        self.n_observed = 0  #: observed (grouped, post-filter) events
        self.class_counts = np.zeros(4, dtype=np.int64)  #: Figure 4a
        self.aligned_multibit = 0  #: byte-aligned events among multi-bit
        self.mbme_bins = np.zeros(len(_MBME_EDGES) - 1, dtype=np.int64)
        #: per-site words-affected histogram, rows = (aligned, non-aligned)
        self.words_hist = np.zeros((2, WORDS_PER_ENTRY + 1), dtype=np.int64)
        #: per-segment bits-per-word histogram, rows = (aligned, non-aligned)
        self.bits_hist = np.zeros((2, _MAX_SEG_BITS + 1), dtype=np.int64)
        self.table1_tally: Counter = Counter()  #: (code, breadth) -> sites
        self.fold_ns = 0  #: integer fold wall-clock, exactly mergeable

    # -- folding -----------------------------------------------------------
    def add_raw(self, *, n_events: int = 0, n_records: int = 0) -> None:
        """Count synthesized events / raw records that fed this slice."""
        self.n_events += int(n_events)
        self.n_records += int(n_records)

    def update_from_flip_table(self, grouped) -> None:
        """Fold one grouped (filtered) event table — the worker hot path.

        ``grouped`` is a :class:`repro.beam.fliptable.FlipTable` of
        observed events, the same object the ``*_table`` statistics
        consume; the kernels are shared, so code/segment/alignment
        semantics cannot drift between the paths.
        """
        from repro.beam.postprocess import (
            _MBME_EDGES,
            _site_alignment,
            _word_segments,
            observed_class_codes,
            table1_site_codes,
        )

        started = time.monotonic_ns()
        if grouped.n_events:
            codes = observed_class_codes(grouped)
            self.class_counts += np.bincount(codes, minlength=4)
            self.n_observed += int(grouped.n_events)

            breadths = grouped.breadths()
            edges = np.asarray(_MBME_EDGES)
            mbme = breadths[codes == 3]
            mbme = mbme[(mbme >= edges[0]) & (mbme < edges[-1])]
            self.mbme_bins += np.bincount(
                np.searchsorted(edges, mbme, side="right") - 1,
                minlength=edges.size - 1,
            )

            words_per_site, _, event_aligned = _site_alignment(grouped)
            multibit = codes >= 2
            self.aligned_multibit += int((multibit & event_aligned).sum())
            seg_site, seg_len, _ = _word_segments(grouped)
            for row, aligned in ((0, True), (1, False)):
                event_mask = multibit & (event_aligned == aligned)
                site_mask = event_mask[grouped.site_event]
                self.words_hist[row] += np.bincount(
                    words_per_site[site_mask],
                    minlength=self.words_hist.shape[1],
                )[:self.words_hist.shape[1]]
                lengths = seg_len[site_mask[seg_site]]
                self.bits_hist[row] += np.bincount(
                    lengths, minlength=self.bits_hist.shape[1],
                )
            self.table1_tally.update(table1_tally(
                table1_site_codes(grouped),
                breadths[grouped.site_event],
            ))
        self.fold_ns += time.monotonic_ns() - started

    def update_from_events(self, events) -> None:
        """Fold scalar :class:`~repro.beam.postprocess.ObservedEvent`
        objects (the beam run's recovered events, or test streams) —
        identical tallies to folding their columnar form."""
        from repro.beam.fliptable import FlipTable

        if events:
            self.update_from_flip_table(
                FlipTable.from_observed_events(events)
            )

    # -- merging -----------------------------------------------------------
    @classmethod
    def empty(cls) -> CampaignAccumulator:
        """The merge identity."""
        return cls()

    def merge(self, other: CampaignAccumulator) -> CampaignAccumulator:
        """Exact element-wise sum; associative and commutative."""
        merged = CampaignAccumulator()
        merged.n_events = self.n_events + other.n_events
        merged.n_records = self.n_records + other.n_records
        merged.n_observed = self.n_observed + other.n_observed
        merged.class_counts = self.class_counts + other.class_counts
        merged.aligned_multibit = self.aligned_multibit \
            + other.aligned_multibit
        merged.mbme_bins = self.mbme_bins + other.mbme_bins
        merged.words_hist = self.words_hist + other.words_hist
        merged.bits_hist = self.bits_hist + other.bits_hist
        merged.table1_tally = self.table1_tally + other.table1_tally
        merged.fold_ns = self.fold_ns + other.fold_ns
        return merged

    # -- transport ---------------------------------------------------------
    def state(self) -> dict:
        """Plain-type snapshot — what a streaming worker ships back."""
        return {
            "version": _STATE_VERSION,
            "n_events": int(self.n_events),
            "n_records": int(self.n_records),
            "n_observed": int(self.n_observed),
            "class_counts": self.class_counts.tolist(),
            "aligned_multibit": int(self.aligned_multibit),
            "mbme_bins": self.mbme_bins.tolist(),
            "words_hist": self.words_hist.tolist(),
            "bits_hist": self.bits_hist.tolist(),
            "table1": sorted(
                (int(code), int(breadth), int(count))
                for (code, breadth), count in self.table1_tally.items()
                if count
            ),
            "fold_ns": int(self.fold_ns),
        }

    @classmethod
    def from_state(cls, state: dict) -> CampaignAccumulator:
        if state.get("version") != _STATE_VERSION:
            raise ValueError(
                f"unsupported accumulator state version "
                f"{state.get('version')!r}")
        acc = cls()
        acc.n_events = int(state["n_events"])
        acc.n_records = int(state["n_records"])
        acc.n_observed = int(state["n_observed"])
        acc.class_counts = np.asarray(state["class_counts"], dtype=np.int64)
        acc.aligned_multibit = int(state["aligned_multibit"])
        acc.mbme_bins = np.asarray(state["mbme_bins"], dtype=np.int64)
        acc.words_hist = np.asarray(state["words_hist"], dtype=np.int64)
        acc.bits_hist = np.asarray(state["bits_hist"], dtype=np.int64)
        acc.table1_tally = Counter({
            (int(code), int(breadth)): int(count)
            for code, breadth, count in state["table1"]
        })
        acc.fold_ns = int(state["fold_ns"])
        return acc

    # -- finalization ------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Fold throughput over the summed worker fold time."""
        if self.fold_ns <= 0:
            return 0.0
        return self.n_events / (self.fold_ns / 1e9)

    def finalize(self) -> dict:
        """The statistics dictionaries, floats computed canonically.

        Raises exactly where the materialized oracles raise (no observed
        events / no multi-bit events), so the two paths stay
        interchangeable failure-for-failure.
        """
        from repro.beam.events import EventClass
        from repro.beam.postprocess import _MBME_EDGES

        if not self.n_observed:
            raise ValueError("no events to classify")
        class_fractions = {
            klass: int(count) / self.n_observed
            for klass, count in zip(EventClass, self.class_counts)
        }
        mbme_histogram = {
            f"{low}-{high - 1}": int(count)
            for low, high, count in zip(
                _MBME_EDGES[:-1], _MBME_EDGES[1:], self.mbme_bins,
            )
        }
        byte_alignment = self._byte_alignment()
        return {
            "class_fractions": class_fractions,
            "mbme_histogram": mbme_histogram,
            "byte_alignment": byte_alignment,
            "bits_per_word_aligned": self._bits_per_word(0),
            "bits_per_word_non_aligned": self._bits_per_word(1),
            "table1": table1_weights(self.table1_tally),
        }

    def _byte_alignment(self) -> dict:
        n_multibit = int(self.class_counts[2] + self.class_counts[3])
        if not n_multibit:
            raise ValueError("no multi-bit events observed")
        stats: dict[str, float] = {
            "byte_aligned_fraction": self.aligned_multibit / n_multibit,
        }
        for row, label in ((0, "aligned"), (1, "non_aligned")):
            counts = self.words_hist[row]
            total = int(counts.sum())
            if not total:
                continue
            for words in range(1, self.words_hist.shape[1]):
                stats[f"{label}_words_{words}"] = int(counts[words]) / total
        return stats

    def _bits_per_word(self, row: int) -> dict:
        counts = self.bits_hist[row]
        total = int(counts.sum())
        if not total:
            return {}
        return {
            int(severity): int(count) / total
            for severity, count in enumerate(counts.tolist()) if count
        }

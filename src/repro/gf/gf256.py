"""Arithmetic in GF(2^8) over the paper's primitive polynomial.

The paper's Reed-Solomon organizations (Section 6.2) use the primitive
polynomial ``x^8 + x^6 + x^5 + x + 1`` (``0x163``).  Elements are represented
as Python ints or numpy ``uint8`` arrays in the range [0, 255]; all operations
are vectorized so that the Monte Carlo harness can decode hundreds of
thousands of codewords per call.

The field is exposed through module-level functions backed by exp/log tables
built once at import time.  The discrete-log table is exactly the ``DLogα``
logic block of the paper's one-shot Reed-Solomon decoder (Figure 7c).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PRIMITIVE_POLY",
    "GENERATOR",
    "FIELD_SIZE",
    "ORDER",
    "EXP_TABLE",
    "LOG_TABLE",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_pow_generator",
    "dlog",
    "is_primitive",
]

#: The paper's irreducible polynomial, x^8 + x^6 + x^5 + x + 1.
PRIMITIVE_POLY = 0x163

#: The primitive element α — the polynomial "x".
GENERATOR = 0x02

FIELD_SIZE = 256
ORDER = FIELD_SIZE - 1  # multiplicative order of the group, 255


def _carryless_mul(a: int, b: int) -> int:
    """Polynomial (carry-less) product of two GF(2)[x] polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _poly_mod(value: int, modulus: int) -> int:
    """Reduce a GF(2)[x] polynomial modulo ``modulus``."""
    mod_degree = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_degree:
        shift = value.bit_length() - 1 - mod_degree
        value ^= modulus << shift
    return value


def is_primitive(poly: int) -> bool:
    """Return True iff ``x`` generates the full multiplicative group mod ``poly``.

    Only meaningful for degree-8 polynomials over GF(2); used to sanity-check
    :data:`PRIMITIVE_POLY` at import.
    """
    if poly.bit_length() - 1 != 8:
        return False
    element = 1
    for step in range(1, ORDER + 1):
        element = _poly_mod(element << 1, poly)  # multiply by x
        if element == 1:
            return step == ORDER
    return False


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables.  ``exp`` has length 512 so that products of two
    logs (each < 255) can be looked up without a modulo operation."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int64)
    value = 1
    for power in range(ORDER):
        exp[power] = value
        log[value] = power
        value = _poly_mod(value << 1, PRIMITIVE_POLY)
    if value != 1:
        raise AssertionError("PRIMITIVE_POLY is not primitive")
    exp[ORDER : 2 * ORDER] = exp[:ORDER]
    exp[2 * ORDER :] = exp[: 512 - 2 * ORDER]
    log[0] = -1  # sentinel: log of zero is undefined
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_mul(a, b):
    """Element-wise product in GF(2^8).  Accepts ints or uint8 arrays."""
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    logs = LOG_TABLE[a_arr] + LOG_TABLE[b_arr]
    product = EXP_TABLE[np.maximum(logs, 0)]
    product = np.where((a_arr == 0) | (b_arr == 0), 0, product)
    if np.isscalar(a) and np.isscalar(b):
        return int(product)
    return product.astype(np.uint8)


def gf_div(a, b):
    """Element-wise quotient a / b in GF(2^8).  Division by zero raises."""
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    if np.any(b_arr == 0):
        raise ZeroDivisionError("division by zero in GF(2^8)")
    logs = LOG_TABLE[a_arr] - LOG_TABLE[b_arr] + ORDER
    quotient = EXP_TABLE[logs % ORDER]
    quotient = np.where(a_arr == 0, 0, quotient)
    if np.isscalar(a) and np.isscalar(b):
        return int(quotient)
    return quotient.astype(np.uint8)


def gf_inv(a):
    """Element-wise multiplicative inverse.  Zero raises."""
    return gf_div(1, a)


def gf_pow(base, exponent):
    """``base ** exponent`` for a field element and integer exponent ≥ 0."""
    base_arr = np.asarray(base, dtype=np.uint8)
    exp_arr = np.asarray(exponent, dtype=np.int64)
    logs = (LOG_TABLE[base_arr] * exp_arr) % ORDER
    result = EXP_TABLE[logs]
    result = np.where((base_arr == 0) & (exp_arr != 0), 0, result)
    result = np.where(exp_arr == 0, 1, result)
    if np.isscalar(base) and np.isscalar(exponent):
        return int(result)
    return result.astype(np.uint8)


def gf_pow_generator(exponent):
    """``α ** exponent`` (element-wise), for any integer exponent (may be negative)."""
    exp_arr = np.asarray(exponent, dtype=np.int64)
    result = EXP_TABLE[exp_arr % ORDER]
    if np.isscalar(exponent):
        return int(result)
    return result.astype(np.uint8)


def dlog(a):
    """Discrete logarithm base α.  Returns -1 for zero inputs.

    This is the software analogue of the decoder's ``DLogα`` block: the error
    position of a single-symbol RS error is ``dlog(S1) - dlog(S0) mod 255``.
    """
    result = LOG_TABLE[np.asarray(a, dtype=np.uint8)]
    if np.isscalar(a):
        return int(result)
    return result

"""Galois-field substrate: GF(2) linear algebra and GF(2^8) arithmetic."""

from repro.gf.gf2 import (
    bits_from_int,
    gf2_inverse,
    gf2_matmul,
    gf2_rank,
    gf2_row_reduce,
    int_from_bits,
    pack_bits,
    syndromes_batch,
    unpack_bits,
)
from repro.gf.gf256 import (
    GENERATOR,
    PRIMITIVE_POLY,
    dlog,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_pow_generator,
)
from repro.gf.polynomial import Poly

__all__ = [
    "bits_from_int",
    "int_from_bits",
    "pack_bits",
    "unpack_bits",
    "gf2_matmul",
    "gf2_rank",
    "gf2_row_reduce",
    "gf2_inverse",
    "syndromes_batch",
    "PRIMITIVE_POLY",
    "GENERATOR",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_pow_generator",
    "dlog",
    "Poly",
]

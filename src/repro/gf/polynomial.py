"""Polynomials over GF(2^8).

Used by the algebraic Reed-Solomon decoders in
:mod:`repro.codes.reed_solomon` (generator-polynomial construction,
Berlekamp-Massey error-locator synthesis, and Chien-style root search).

Coefficients are stored ascending — ``coeffs[i]`` multiplies ``x**i`` — as a
numpy ``uint8`` array with no trailing zeros (the zero polynomial is the empty
array, with degree -1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gf.gf256 import EXP_TABLE, ORDER, gf_inv, gf_mul

__all__ = ["Poly"]


def _trim(coeffs: np.ndarray) -> np.ndarray:
    nonzero = np.nonzero(coeffs)[0]
    if nonzero.size == 0:
        return np.zeros(0, dtype=np.uint8)
    return coeffs[: int(nonzero[-1]) + 1].astype(np.uint8)


@dataclass(frozen=True)
class Poly:
    """An immutable polynomial over GF(2^8)."""

    coeffs: np.ndarray

    def __init__(self, coeffs) -> None:
        object.__setattr__(self, "coeffs", _trim(np.asarray(coeffs, dtype=np.uint8)))

    # -- constructors ------------------------------------------------------
    @staticmethod
    def zero() -> "Poly":
        return Poly([])

    @staticmethod
    def one() -> "Poly":
        return Poly([1])

    @staticmethod
    def x() -> "Poly":
        return Poly([0, 1])

    @staticmethod
    def monomial(degree: int, coeff: int = 1) -> "Poly":
        coeffs = np.zeros(degree + 1, dtype=np.uint8)
        coeffs[degree] = coeff
        return Poly(coeffs)

    # -- structure ---------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return len(self.coeffs) == 0

    def __getitem__(self, power: int) -> int:
        if 0 <= power < len(self.coeffs):
            return int(self.coeffs[power])
        return 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.coeffs.shape == other.coeffs.shape and bool(
            np.all(self.coeffs == other.coeffs)
        )

    def __hash__(self) -> int:
        return hash(self.coeffs.tobytes())

    def __repr__(self) -> str:
        if self.is_zero():
            return "Poly(0)"
        terms = [
            f"{coeff:#04x}·x^{power}" if power else f"{coeff:#04x}"
            for power, coeff in enumerate(self.coeffs.tolist())
            if coeff
        ]
        return f"Poly({' + '.join(terms)})"

    # -- ring operations ---------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        width = max(len(self.coeffs), len(other.coeffs))
        total = np.zeros(width, dtype=np.uint8)
        total[: len(self.coeffs)] ^= self.coeffs
        total[: len(other.coeffs)] ^= other.coeffs
        return Poly(total)

    # Characteristic 2: subtraction is addition.
    __sub__ = __add__

    def __mul__(self, other: "Poly") -> "Poly":
        if self.is_zero() or other.is_zero():
            return Poly.zero()
        product = np.zeros(self.degree + other.degree + 1, dtype=np.uint8)
        for power, coeff in enumerate(self.coeffs.tolist()):
            if coeff:
                product[power : power + len(other.coeffs)] ^= gf_mul(
                    coeff, other.coeffs
                )
        return Poly(product)

    def scale(self, scalar: int) -> "Poly":
        """Multiply every coefficient by a field scalar."""
        if scalar == 0:
            return Poly.zero()
        return Poly(gf_mul(self.coeffs, np.uint8(scalar)))

    def shift(self, places: int) -> "Poly":
        """Multiply by ``x**places``."""
        if self.is_zero():
            return self
        return Poly(np.concatenate([np.zeros(places, dtype=np.uint8), self.coeffs]))

    def divmod(self, divisor: "Poly") -> tuple["Poly", "Poly"]:
        """Quotient and remainder of polynomial long division."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = self.coeffs.copy()
        quotient = np.zeros(max(self.degree - divisor.degree + 1, 0), dtype=np.uint8)
        lead_inv = gf_inv(int(divisor.coeffs[-1]))
        for power in range(self.degree - divisor.degree, -1, -1):
            top = int(remainder[power + divisor.degree]) if remainder.size else 0
            if top == 0:
                continue
            factor = gf_mul(top, lead_inv)
            quotient[power] = factor
            remainder[power : power + len(divisor.coeffs)] ^= gf_mul(
                np.uint8(factor), divisor.coeffs
            )
        return Poly(quotient), Poly(remainder)

    def __mod__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[0]

    # -- evaluation --------------------------------------------------------
    def eval(self, points):
        """Evaluate at one or many field points via Horner's rule."""
        points_arr = np.asarray(points, dtype=np.uint8)
        result = np.zeros_like(points_arr)
        for coeff in self.coeffs[::-1].tolist():
            result = gf_mul(result, points_arr) ^ np.uint8(coeff)
        if np.isscalar(points):
            return int(result)
        return result

    def roots(self) -> list[int]:
        """All roots in GF(2^8), by exhaustive (Chien-style) search."""
        candidates = np.arange(256, dtype=np.uint8)
        values = self.eval(candidates)
        return [int(c) for c in candidates[values == 0]]

    def derivative(self) -> "Poly":
        """Formal derivative; in characteristic 2, even-power terms vanish."""
        if self.degree < 1:
            return Poly.zero()
        deriv = self.coeffs[1:].copy()
        deriv[1::2] = 0  # coefficient i+1 scaled by (i+1) mod 2
        return Poly(deriv)

    @staticmethod
    def from_roots(roots: list[int]) -> "Poly":
        """The monic polynomial ∏ (x - r) over the given roots."""
        result = Poly.one()
        for root in roots:
            result = result * Poly([root, 1])  # (x + r) == (x - r) in char 2
        return result

    @staticmethod
    def rs_generator(num_check: int, first_root: int = 0) -> "Poly":
        """Reed-Solomon generator polynomial ∏_{i} (x - α^{first_root+i})."""
        return Poly.from_roots(
            [int(EXP_TABLE[(first_root + i) % ORDER]) for i in range(num_check)]
        )

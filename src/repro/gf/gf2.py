"""Linear algebra over GF(2).

Bit vectors and matrices are represented as :class:`numpy.ndarray` objects of
dtype ``uint8`` containing only 0s and 1s.  A parity-check matrix ``H`` has
shape ``(R, N)`` — ``R`` check equations over ``N`` code bits — and the
syndrome of an error vector ``e`` is ``H @ e (mod 2)``.

All routines are pure functions; none mutate their arguments.  Batch variants
accept a 2-D array whose *rows* are vectors and are fully vectorized, which is
what makes the Monte Carlo evaluation in :mod:`repro.errormodel` practical in
pure Python.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_from_int",
    "int_from_bits",
    "pack_bits",
    "unpack_bits",
    "pack_rows",
    "unpack_rows",
    "bytes_from_rows",
    "bytes_from_words",
    "syndrome_byte_table",
    "syndromes_from_bytes",
    "gf2_matmul",
    "gf2_mat_vec",
    "syndromes_of",
    "syndromes_batch",
    "pack_syndromes",
    "column_weights",
    "row_weights",
    "gf2_rank",
    "gf2_row_reduce",
    "gf2_inverse",
    "gf2_solve",
]


def bits_from_int(value: int, width: int, *, msb_first: bool = False) -> np.ndarray:
    """Expand a non-negative integer into a bit vector of ``width`` bits.

    With ``msb_first=False`` (the default) ``bits[i]`` is the coefficient of
    ``2**i``; with ``msb_first=True`` the vector is reversed, matching the
    left-to-right order in which the paper prints H-matrix rows.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    if msb_first:
        bits = bits[::-1].copy()
    return bits


def int_from_bits(bits: np.ndarray, *, msb_first: bool = False) -> int:
    """Inverse of :func:`bits_from_int`."""
    seq = np.asarray(bits, dtype=np.uint8)
    if msb_first:
        seq = seq[::-1]
    value = 0
    for i, bit in enumerate(seq.tolist()):
        if bit:
            value |= 1 << i
    return value


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack the trailing axis of a 0/1 array into little-endian integers.

    The trailing axis must have at most 63 bits.  Returns an ``int64`` array
    with the trailing axis removed.  Used to turn per-sample syndromes into
    dictionary-lookup keys.
    """
    bits = np.asarray(bits)
    width = bits.shape[-1]
    if width > 63:
        raise ValueError("pack_bits supports at most 63 bits")
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))
    return bits.astype(np.int64) @ weights


def unpack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` — expand integers into 0/1 ``uint8`` bits."""
    values = np.asarray(values, dtype=np.int64)
    shifts = np.arange(width, dtype=np.int64)
    return ((values[..., None] >> shifts) & 1).astype(np.uint8)


def bytes_from_rows(bits: np.ndarray) -> np.ndarray:
    """Pack the trailing 0/1 axis into bytes, bit ``i`` at weight ``2**(i%8)``.

    A length-N trailing axis becomes ``ceil(N/8)`` bytes.  This is the byte
    view of the packed-word representation below, and the index space of
    :func:`syndrome_byte_table`.
    """
    return np.packbits(np.asarray(bits, dtype=np.uint8), axis=-1,
                       bitorder="little")


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack the trailing 0/1 axis into little-endian ``uint64`` words.

    Bit ``i`` of a row lands in word ``i // 64`` at weight ``2**(i % 64)``,
    so a ``(B, 288)`` error batch packs into ``(B, 5)`` words.  Unlike
    :func:`pack_bits` there is no 63-bit width limit; this is the dense
    transport format of the fast decode path.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    width = bits.shape[-1]
    num_words = -(-width // 64) if width else 0
    byte_rows = bytes_from_rows(bits)
    pad = num_words * 8 - byte_rows.shape[-1]
    if pad:
        byte_rows = np.concatenate(
            [byte_rows, np.zeros(byte_rows.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    grouped = byte_rows.reshape(byte_rows.shape[:-1] + (num_words, 8))
    shifts = (np.uint64(8) * np.arange(8, dtype=np.uint64))
    return np.bitwise_or.reduce(grouped.astype(np.uint64) << shifts, axis=-1)


def bytes_from_words(words: np.ndarray, num_bytes: int) -> np.ndarray:
    """Expand packed ``uint64`` words into their first ``num_bytes`` bytes.

    Inverse of the byte-grouping in :func:`pack_rows`; endian-independent.
    """
    words = np.asarray(words, dtype=np.uint64)
    shifts = (np.uint64(8) * np.arange(8, dtype=np.uint64))
    byte_rows = ((words[..., None] >> shifts) & np.uint64(0xFF)).astype(np.uint8)
    return byte_rows.reshape(words.shape[:-1] + (-1,))[..., :num_bytes]


def unpack_rows(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_rows` — expand words into ``width`` 0/1 bits."""
    byte_rows = bytes_from_words(words, -(-width // 8))
    return np.unpackbits(byte_rows, axis=-1, bitorder="little")[..., :width]


def syndrome_byte_table(h_matrix: np.ndarray) -> np.ndarray:
    """Per-byte-position packed-syndrome contribution table for ``H``.

    For an ``(R, N)`` parity-check matrix (R <= 62) the table has shape
    ``(ceil(N/8), 256)`` and satisfies, for any error vector ``e`` packed
    into bytes ``b`` by :func:`bytes_from_rows`::

        pack_bits(H @ e mod 2)  ==  XOR_j table[j, b[j]]

    which turns batch syndrome computation into one fancy gather plus an
    XOR reduction (:func:`syndromes_from_bytes`) — no GF(2) matmul.
    """
    h_matrix = np.asarray(h_matrix, dtype=np.uint8)
    rows, cols = h_matrix.shape
    if rows > 62:
        raise ValueError("syndrome_byte_table supports at most 62 check rows")
    column_syndromes = pack_bits(h_matrix.T)  # (N,)
    num_bytes = -(-cols // 8)
    padded = np.zeros(num_bytes * 8, dtype=np.int64)
    padded[:cols] = column_syndromes
    # values[v, k] — bit k of byte value v
    values = ((np.arange(256)[:, None] >> np.arange(8)) & 1).astype(bool)
    table = np.zeros((num_bytes, 256), dtype=np.int64)
    segments = padded.reshape(num_bytes, 8)
    for bit in range(8):
        table ^= np.where(values[:, bit], segments[:, bit : bit + 1], 0)
    return table


def syndromes_from_bytes(table: np.ndarray, byte_rows: np.ndarray) -> np.ndarray:
    """Packed syndromes of byte-packed rows via a :func:`syndrome_byte_table`.

    ``byte_rows`` has shape ``(B, num_bytes)``; the result is ``(B,)``.
    """
    byte_rows = np.asarray(byte_rows, dtype=np.uint8)
    positions = np.arange(table.shape[0])
    return np.bitwise_xor.reduce(table[positions, byte_rows], axis=-1)


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2) (i.e. ordinary product reduced mod 2)."""
    prod = np.asarray(a, dtype=np.int32) @ np.asarray(b, dtype=np.int32)
    return (prod & 1).astype(np.uint8)


def gf2_mat_vec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Matrix–vector product over GF(2)."""
    return gf2_matmul(matrix, np.asarray(vector).reshape(-1))


def syndromes_of(h_matrix: np.ndarray, error: np.ndarray) -> np.ndarray:
    """Syndrome ``H @ e`` of a single error vector, as a length-R bit vector."""
    return gf2_mat_vec(h_matrix, error)


def syndromes_batch(h_matrix: np.ndarray, errors: np.ndarray) -> np.ndarray:
    """Syndromes of a batch of error vectors.

    ``errors`` has shape ``(n, N)``; the result has shape ``(n, R)``.  The
    accumulation is done in ``int16`` (row sums never exceed N ≤ 32767), which
    keeps the intermediate small for large batches.
    """
    errors = np.asarray(errors, dtype=np.int16)
    prod = errors @ np.asarray(h_matrix, dtype=np.int16).T
    return (prod & 1).astype(np.uint8)


def pack_syndromes(h_matrix: np.ndarray, errors: np.ndarray) -> np.ndarray:
    """Batch syndromes packed into integers (see :func:`pack_bits`)."""
    return pack_bits(syndromes_batch(h_matrix, errors))


def column_weights(matrix: np.ndarray) -> np.ndarray:
    """Hamming weight of each column."""
    return np.asarray(matrix, dtype=np.int64).sum(axis=0)


def row_weights(matrix: np.ndarray) -> np.ndarray:
    """Hamming weight of each row."""
    return np.asarray(matrix, dtype=np.int64).sum(axis=1)


def gf2_row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref, pivot_columns)``.  The input is not modified.
    """
    work = np.asarray(matrix, dtype=np.uint8).copy()
    rows, cols = work.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot_rows = np.nonzero(work[row:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = row + int(pivot_rows[0])
        if pivot != row:
            work[[row, pivot]] = work[[pivot, row]]
        # Eliminate this column from every other row.
        others = np.nonzero(work[:, col])[0]
        for other in others:
            if other != row:
                work[other] ^= work[row]
        pivots.append(col)
        row += 1
    return work, pivots


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2)."""
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix over GF(2).

    Raises :class:`ValueError` if the matrix is singular.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError("matrix must be square")
    augmented = np.concatenate([matrix, np.eye(size, dtype=np.uint8)], axis=1)
    rref, pivots = gf2_row_reduce(augmented)
    if pivots[:size] != list(range(size)):
        raise ValueError("matrix is singular over GF(2)")
    return rref[:, size:].copy()


def gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2) for square invertible ``matrix``."""
    return gf2_mat_vec(gf2_inverse(matrix), rhs)

"""repro — reproduction of "Characterizing and Mitigating Soft Errors in
GPU DRAM" (Sullivan et al., MICRO 2021).

The package has two halves, mirroring the paper:

* **Characterization** (:mod:`repro.dram`, :mod:`repro.beam`) — a simulated
  32GB HBM2 GPU memory bombarded by a neutron-beam model, the DRAM
  microbenchmark, displacement-damage (intermittent error) physics, and the
  post-processing pipeline that filters intermittents and derives the
  soft-error patterns of Table 1 / Figures 3-5.
* **Mitigation** (:mod:`repro.core`, :mod:`repro.codes`, :mod:`repro.gf`,
  :mod:`repro.errormodel`, :mod:`repro.hardware`, :mod:`repro.system`) —
  the nine evaluated ECC organizations (SEC-DED baselines, DuetECC,
  TrioECC, interleaved Reed-Solomon SSC, and SSC-DSD+), the Monte Carlo
  resilience evaluation of Table 2 / Figure 8, the gate-level cost model of
  Table 3, and the HPC / automotive system models of Figure 9 / Section 7.3.

Quick start::

    import numpy as np
    from repro import get_scheme, DecodeStatus

    trio = get_scheme("trio")
    data = np.random.default_rng(0).integers(0, 2, 256, dtype=np.uint8)
    entry = trio.encode(data)          # 32B data -> 36B memory entry
    entry[5] ^= 1                      # a soft error on pin 5, beat 0
    result = trio.decode(entry)
    assert result.status is DecodeStatus.CORRECTED
    assert np.array_equal(result.data, data)
"""

from repro.core import (
    SCHEME_NAMES,
    BatchDecode,
    DecodeResult,
    DecodeStatus,
    ECCScheme,
    ReconfigurableDuetTrio,
    all_schemes,
    get_scheme,
)
from repro.errormodel import (
    TABLE1_PROBABILITIES,
    ErrorPattern,
    evaluate_scheme,
    weighted_outcomes,
)

__version__ = "1.0.0"

__all__ = [
    "SCHEME_NAMES",
    "BatchDecode",
    "DecodeResult",
    "DecodeStatus",
    "ECCScheme",
    "ReconfigurableDuetTrio",
    "all_schemes",
    "get_scheme",
    "TABLE1_PROBABILITIES",
    "ErrorPattern",
    "evaluate_scheme",
    "weighted_outcomes",
    "__version__",
]

"""Autonomous-vehicle safety analysis — Section 7.3.

Two analyses from the paper:

* **ISO 26262** — the highest automotive safety level (ASIL D) requires at
  most 10 FIT of silent data corruption.  With 12.51 FIT/Gbit of raw HBM2
  events on a 320 Gbit A100, SEC-DED's ~5.4% SDC probability yields ~216
  FIT — failing the standard — while TrioECC (~0.29 FIT) and DuetECC
  (~0.045 FIT) pass comfortably.
* **Fleet exposure** — 225.8 million U.S. drivers averaging 51 minutes per
  day is 1.92e8 driving hours/day.  With one GPU per (hypothetically
  autonomous) car, the per-event outcome probabilities convert directly
  into expected SDC events on the road per day and into how many cars per
  day need soft-error-related recovery after a DUE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errormodel.montecarlo import SchemeOutcome
from repro.system.fit import HOURS_PER_BILLION, GpuMemoryModel

__all__ = ["ISO26262_SDC_FIT_LIMIT", "FleetModel", "AutomotiveAssessment",
           "assess_scheme"]

#: Maximum SDC rate for the highest ISO 26262 safety level, FIT.
ISO26262_SDC_FIT_LIMIT = 10.0


@dataclass(frozen=True)
class FleetModel:
    """The national driving-exposure model used in Section 7.3."""

    drivers: float = 225.8e6
    minutes_per_day: float = 51.0

    @property
    def driving_hours_per_day(self) -> float:
        return self.drivers * self.minutes_per_day / 60.0


@dataclass(frozen=True)
class AutomotiveAssessment:
    """Per-scheme safety numbers for one GPU per vehicle."""

    scheme: str
    sdc_fit: float
    due_fit: float
    meets_iso26262: bool
    fleet_sdc_per_day: float
    fleet_due_cars_per_day: float

    @property
    def days_between_fleet_sdc(self) -> float:
        if self.fleet_sdc_per_day <= 0:
            return float("inf")
        return 1.0 / self.fleet_sdc_per_day


def assess_scheme(
    outcome: SchemeOutcome,
    *,
    gpu: GpuMemoryModel | None = None,
    fleet: FleetModel | None = None,
) -> AutomotiveAssessment:
    """Evaluate one ECC organization against ISO 26262 and the fleet model."""
    gpu = gpu or GpuMemoryModel()
    fleet = fleet or FleetModel()
    split = gpu.split(outcome.correct, outcome.detect, outcome.sdc)
    events_per_hour = split.raw / HOURS_PER_BILLION
    fleet_events_per_day = events_per_hour * fleet.driving_hours_per_day
    return AutomotiveAssessment(
        scheme=outcome.scheme,
        sdc_fit=split.sdc,
        due_fit=split.due,
        meets_iso26262=split.sdc <= ISO26262_SDC_FIT_LIMIT,
        fleet_sdc_per_day=fleet_events_per_day * outcome.sdc,
        fleet_due_cars_per_day=fleet_events_per_day * outcome.detect,
    )

"""Memory scrubbing and soft-error accumulation.

Soft errors are "non-destructive events that corrupt memory until a
following write" (Section 2.1), and the per-event analysis of Table 2 /
Figure 8 implicitly assumes each memory entry suffers at most one event
before it is rewritten.  Production GPUs guarantee that assumption with a
background *scrubber* that periodically reads, corrects and writes back
every entry.  This extension quantifies the assumption:

* the rate at which a second, independent SEU lands on an entry that is
  already corrupted (turning two correctable single-bit errors into an
  uncorrectable — or worse, miscorrectable — double error), and
* the scrub interval needed to keep that accumulation risk below a target.

Events arrive per GPU at the raw FIT rate; an event touches
``mean_entries_per_event`` entries (broad MBME events raise the effective
collision cross-section).  For a scrub interval T the expected number of
entries collecting two or more independent events is the Poisson tail
``entries · (1 − e^{−λT}(1 + λT))`` with per-entry rate λ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp

from repro.system.fit import HOURS_PER_BILLION, GpuMemoryModel

__all__ = ["ScrubbingModel"]


@dataclass(frozen=True)
class ScrubbingModel:
    """Accumulation risk for one GPU's memory under periodic scrubbing."""

    gpu: GpuMemoryModel = field(default_factory=GpuMemoryModel)
    total_entries: int = 2**30  #: 32GB of 32B entries
    #: average 32B entries corrupted per SEU (breadth-weighted; Figure 4b's
    #: long tail pulls this above 1)
    mean_entries_per_event: float = 3.0

    @property
    def events_per_hour(self) -> float:
        """Raw SEU events per GPU-hour."""
        return self.gpu.raw_fit / HOURS_PER_BILLION

    @property
    def per_entry_rate(self) -> float:
        """Corruption events per entry per hour."""
        return (
            self.events_per_hour * self.mean_entries_per_event
            / self.total_entries
        )

    def expected_double_hit_entries(self, scrub_interval_hours: float) -> float:
        """Expected entries hit by >= 2 independent events in one interval."""
        if scrub_interval_hours <= 0:
            raise ValueError("scrub interval must be positive")
        lam = self.per_entry_rate * scrub_interval_hours
        if lam < 1e-4:
            # Series expansion: 1 − e^{−λ}(1+λ) = λ²/2 − λ³/3 + O(λ⁴); the
            # direct form cancels catastrophically at field rates (λ ~ 1e-13).
            tail = lam * lam / 2.0 * (1.0 - 2.0 * lam / 3.0)
        else:
            tail = 1.0 - exp(-lam) * (1.0 + lam)
        return self.total_entries * tail

    def double_hit_rate_per_hour(self, scrub_interval_hours: float) -> float:
        """Long-run rate of accumulated (multi-event) entries per hour."""
        return (
            self.expected_double_hit_entries(scrub_interval_hours)
            / scrub_interval_hours
        )

    def accumulation_fit(self, scrub_interval_hours: float) -> float:
        """The accumulation risk expressed in FIT (events per 1e9 hours)."""
        return self.double_hit_rate_per_hour(scrub_interval_hours) * (
            HOURS_PER_BILLION
        )

    def recommended_interval_hours(self, target_fit: float = 1.0) -> float:
        """Largest scrub interval keeping accumulation below ``target_fit``.

        Uses the small-λ closed form (rate ≈ entries · λ²T/2), which is
        exact to many digits at realistic rates, then verifies it.
        """
        if target_fit <= 0:
            raise ValueError("target FIT must be positive")
        lam = self.per_entry_rate
        target_rate = target_fit / HOURS_PER_BILLION
        interval = 2.0 * target_rate / (self.total_entries * lam * lam)
        # Conservative nudge if the approximation undershot.
        while self.accumulation_fit(interval) > target_fit:
            interval *= 0.9
        return interval

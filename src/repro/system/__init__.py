"""System-level resilience and availability models (Section 7.3)."""

from repro.system.automotive import (
    ISO26262_SDC_FIT_LIMIT,
    AutomotiveAssessment,
    FleetModel,
    assess_scheme,
)
from repro.system.fit import (
    FleetReliability,
    GpuFleetModel,
    GpuMemoryModel,
    RateSplit,
)
from repro.system.scrubbing import ScrubbingModel
from repro.system.hpc import ExascaleSystem, Figure9Point, figure9_series

__all__ = [
    "ISO26262_SDC_FIT_LIMIT",
    "AutomotiveAssessment",
    "FleetModel",
    "assess_scheme",
    "FleetReliability",
    "GpuFleetModel",
    "GpuMemoryModel",
    "RateSplit",
    "ScrubbingModel",
    "ExascaleSystem",
    "Figure9Point",
    "figure9_series",
]

"""FIT-rate arithmetic shared by the HPC and automotive models (Section 7.3).

A FIT is one failure per 10^9 device-hours.  The paper's calibration:

* raw HBM2 soft-error rate of **12.51 FIT/Gbit** (inspired by the GDDR5
  rates observed on the Titan supercomputer);
* an NVIDIA A100 GPU with 40GB (320 Gbit) of HBM2, hence ~4,003 raw
  FIT/GPU — which under SEC-DED's ~5.4% per-event SDC probability yields
  the paper's 216 FIT of SDC per GPU.

Given any ECC scheme's per-event outcome probabilities (Figure 8), the raw
event rate splits into corrected/DUE/SDC rates; everything in
:mod:`repro.system.hpc` and :mod:`repro.system.automotive` is built on this
split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HOURS_PER_BILLION", "FleetReliability", "GpuFleetModel",
           "GpuMemoryModel", "RateSplit"]

HOURS_PER_BILLION = 1e9


@dataclass(frozen=True)
class RateSplit:
    """Event-rate decomposition for one GPU under one ECC scheme (FIT)."""

    raw: float
    corrected: float
    due: float
    sdc: float

    def mtbf_hours(self, rate_fit: float) -> float:
        """Mean time between failures for any of the component rates."""
        if rate_fit <= 0:
            return float("inf")
        return HOURS_PER_BILLION / rate_fit


@dataclass(frozen=True)
class GpuMemoryModel:
    """Raw soft-error rate of one GPU's HBM2."""

    fit_per_gbit: float = 12.51
    memory_gbit: float = 320.0  #: A100: 40 GB of HBM2

    @property
    def raw_fit(self) -> float:
        """Raw SEU event rate per GPU, in FIT."""
        return self.fit_per_gbit * self.memory_gbit

    def split(self, correct_probability: float, due_probability: float,
              sdc_probability: float) -> RateSplit:
        """Split the raw event rate by a scheme's per-event outcomes."""
        total = correct_probability + due_probability + sdc_probability
        if not 0.999 <= total <= 1.001:
            raise ValueError("outcome probabilities must sum to 1")
        return RateSplit(
            raw=self.raw_fit,
            corrected=self.raw_fit * correct_probability,
            due=self.raw_fit * due_probability,
            sdc=self.raw_fit * sdc_probability,
        )


@dataclass(frozen=True)
class FleetReliability:
    """One ECC scheme's failure arithmetic scaled to ``devices`` GPUs.

    FIT rates add across independent devices, so the fleet totals are the
    per-GPU split times the fleet size; arrivals are Poisson, so the
    probability of at least one event in a window follows from the
    expected count.
    """

    devices: int
    per_gpu: RateSplit

    @property
    def raw_fit(self) -> float:
        return self.per_gpu.raw * self.devices

    @property
    def corrected_fit(self) -> float:
        return self.per_gpu.corrected * self.devices

    @property
    def due_fit(self) -> float:
        return self.per_gpu.due * self.devices

    @property
    def sdc_fit(self) -> float:
        return self.per_gpu.sdc * self.devices

    @property
    def mtbf_sdc_hours(self) -> float:
        """Mean time between silent corruptions, fleet-wide."""
        return self.per_gpu.mtbf_hours(self.sdc_fit)

    @property
    def mtbf_due_hours(self) -> float:
        """Mean time between detected-uncorrectable errors, fleet-wide."""
        return self.per_gpu.mtbf_hours(self.due_fit)

    def expected_events(self, rate_fit: float, hours: float) -> float:
        """Expected failure count for a component rate over ``hours``."""
        return rate_fit * hours / HOURS_PER_BILLION

    def sdc_risk(self, hours: float) -> float:
        """P(at least one silent corruption in ``hours``), Poisson."""
        return 1.0 - math.exp(-self.expected_events(self.sdc_fit, hours))

    def due_risk(self, hours: float) -> float:
        """P(at least one DUE in ``hours``), Poisson."""
        return 1.0 - math.exp(-self.expected_events(self.due_fit, hours))


@dataclass(frozen=True)
class GpuFleetModel:
    """Fleet-scale reliability driven by campaign statistics.

    Bridges the measurement side (a campaign's derived Table 1 — e.g. a
    streamed :class:`repro.stats.CampaignAccumulator`'s pattern weights)
    to the consequence side: weight an ECC scheme's per-pattern outcomes
    by the campaign's pattern mixture, split each GPU's raw FIT by the
    result, and scale to ``devices``.  Distinct from the automotive
    :class:`repro.system.automotive.FleetModel`, which models driving
    exposure, not device counts.
    """

    devices: int
    gpu: GpuMemoryModel = GpuMemoryModel()

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("fleet needs at least one device")

    def reliability(self, outcome) -> FleetReliability:
        """Fleet numbers for a Table-1-weighted
        :class:`~repro.errormodel.montecarlo.SchemeOutcome`."""
        return FleetReliability(
            devices=self.devices,
            per_gpu=self.gpu.split(outcome.correct, outcome.detect,
                                   outcome.sdc),
        )

    def from_table1(self, scheme, table1: dict, *,
                    samples: int = 20_000, seed: int = 1234,
                    per_pattern: dict | None = None) -> FleetReliability:
        """Fleet numbers for a *campaign-derived* Table 1.

        ``table1`` maps each :class:`~repro.errormodel.ErrorPattern` to
        its observed probability (what ``derive_table1`` or a streaming
        accumulator's ``finalize()["table1"]`` returns); pass
        ``per_pattern`` to reuse an existing scheme evaluation instead of
        re-sampling.
        """
        from repro.errormodel.montecarlo import weighted_outcomes

        outcome = weighted_outcomes(
            scheme, probabilities=table1, samples=samples, seed=seed,
            per_pattern=per_pattern,
        )
        return self.reliability(outcome)

"""FIT-rate arithmetic shared by the HPC and automotive models (Section 7.3).

A FIT is one failure per 10^9 device-hours.  The paper's calibration:

* raw HBM2 soft-error rate of **12.51 FIT/Gbit** (inspired by the GDDR5
  rates observed on the Titan supercomputer);
* an NVIDIA A100 GPU with 40GB (320 Gbit) of HBM2, hence ~4,003 raw
  FIT/GPU — which under SEC-DED's ~5.4% per-event SDC probability yields
  the paper's 216 FIT of SDC per GPU.

Given any ECC scheme's per-event outcome probabilities (Figure 8), the raw
event rate splits into corrected/DUE/SDC rates; everything in
:mod:`repro.system.hpc` and :mod:`repro.system.automotive` is built on this
split.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HOURS_PER_BILLION", "GpuMemoryModel", "RateSplit"]

HOURS_PER_BILLION = 1e9


@dataclass(frozen=True)
class RateSplit:
    """Event-rate decomposition for one GPU under one ECC scheme (FIT)."""

    raw: float
    corrected: float
    due: float
    sdc: float

    def mtbf_hours(self, rate_fit: float) -> float:
        """Mean time between failures for any of the component rates."""
        if rate_fit <= 0:
            return float("inf")
        return HOURS_PER_BILLION / rate_fit


@dataclass(frozen=True)
class GpuMemoryModel:
    """Raw soft-error rate of one GPU's HBM2."""

    fit_per_gbit: float = 12.51
    memory_gbit: float = 320.0  #: A100: 40 GB of HBM2

    @property
    def raw_fit(self) -> float:
        """Raw SEU event rate per GPU, in FIT."""
        return self.fit_per_gbit * self.memory_gbit

    def split(self, correct_probability: float, due_probability: float,
              sdc_probability: float) -> RateSplit:
        """Split the raw event rate by a scheme's per-event outcomes."""
        total = correct_probability + due_probability + sdc_probability
        if not 0.999 <= total <= 1.001:
            raise ValueError("outcome probabilities must sum to 1")
        return RateSplit(
            raw=self.raw_fit,
            corrected=self.raw_fit * correct_probability,
            due=self.raw_fit * due_probability,
            sdc=self.raw_fit * sdc_probability,
        )

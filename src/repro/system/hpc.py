"""Exascale supercomputer failure rates — Figure 9.

The paper plots, for 0.5-2 exaflop machines built from A100-class GPUs,

* **MTTI** (mean time to interrupt): one DUE anywhere crashes a job; and
* **MTTF** (mean time to failure): one SDC anywhere silently corrupts it.

The GPU count per exaflop is not stated explicitly; we solved it from the
published curve endpoints — Duet's 6.3 h MTTI, Trio's 37.6 h MTTI and
SEC-DED's 22.5 h SDC period, all at 0.5 EF, agree on ~409,600 GPUs per
exaflop (~2.4 sustained TFLOP/s per GPU).  With that single constant and
the 12.51 FIT/Gbit raw rate, every Figure 9 endpoint and the "SDC every
22.5 hours" prose number follow from the per-event outcome probabilities of
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.errormodel.montecarlo import SchemeOutcome
from repro.system.fit import HOURS_PER_BILLION, GpuMemoryModel

__all__ = ["ExascaleSystem", "Figure9Point", "figure9_series"]

#: Solved from the paper's Figure 9 endpoints (see module docstring).
GPUS_PER_EXAFLOP = 409_600


@dataclass(frozen=True)
class Figure9Point:
    """System failure rates at one machine scale."""

    exaflops: float
    gpus: int
    mtti_hours: float
    mttf_hours: float

    @property
    def mttf_months(self) -> float:
        return self.mttf_hours / (30.44 * 24.0)


@dataclass(frozen=True)
class ExascaleSystem:
    """A GPU supercomputer whose failure rates scale with GPU count."""

    gpu: GpuMemoryModel = field(default_factory=GpuMemoryModel)
    gpus_per_exaflop: int = GPUS_PER_EXAFLOP

    def gpu_count(self, exaflops: float) -> int:
        return int(round(self.gpus_per_exaflop * exaflops))

    def point(self, exaflops: float, outcome: SchemeOutcome) -> Figure9Point:
        """MTTI/MTTF for one scheme at one machine scale."""
        gpus = self.gpu_count(exaflops)
        split = self.gpu.split(outcome.correct, outcome.detect, outcome.sdc)
        due_rate = split.due * gpus  # FIT summed over the machine
        sdc_rate = split.sdc * gpus
        return Figure9Point(
            exaflops=exaflops,
            gpus=gpus,
            mtti_hours=(HOURS_PER_BILLION / due_rate) if due_rate > 0 else float("inf"),
            mttf_hours=(HOURS_PER_BILLION / sdc_rate) if sdc_rate > 0 else float("inf"),
        )


def figure9_series(
    outcomes: dict[str, SchemeOutcome],
    *,
    exaflops: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    system: ExascaleSystem | None = None,
) -> dict[str, list[Figure9Point]]:
    """Both Figure 9 panels for any set of evaluated schemes."""
    system = system or ExascaleSystem()
    return {
        name: [system.point(ef, outcome) for ef in exaflops]
        for name, outcome in outcomes.items()
    }

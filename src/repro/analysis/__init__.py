"""Curve fitting, historical data, and table rendering for the harness."""

from repro.analysis.fitting import (
    ExponentialFit,
    LinearFit,
    NormalCdfFit,
    fit_exponential,
    fit_linear,
    fit_retention_normal,
)
from repro.analysis.historical import Figure1Data, historical_trends
from repro.analysis.report import generate_report
from repro.analysis.tables import format_percent, format_series, format_table

__all__ = [
    "ExponentialFit",
    "LinearFit",
    "NormalCdfFit",
    "fit_exponential",
    "fit_linear",
    "fit_retention_normal",
    "Figure1Data",
    "historical_trends",
    "generate_report",
    "format_percent",
    "format_series",
    "format_table",
]

"""Historical DRAM soft-error trends — the data behind Figure 1.

Figure 1 overlays three things over DRAM process generations:

1. historical per-chip neutron-beam error rates (taken by the paper from
   Slayman's RAMS 2011 survey) — falling exponentially;
2. DRAM chip capacities — rising exponentially but more slowly than the
   error rate falls; and
3. the paper's own measured HBM2 point (total rate, and the multi-bit rate
   a factor of ~3 lower), landing below the historical extrapolation, with
   a bracketed band where non-bitcell (logic) upset rates have hovered for
   two decades.

The numeric values below are *approximate digitizations* in arbitrary
relative units (the published figure's absolute axis is unlabeled FIT-like
units); what matters for reproduction is the trend-line arithmetic:
exponential fits whose decay outpaces the capacity growth, and where the
measured HBM2 overlay falls relative to them.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.fitting import ExponentialFit, fit_exponential

__all__ = [
    "HISTORICAL_ERROR_RATES",
    "HISTORICAL_CAPACITIES_MBIT",
    "HBM2_MEASURED",
    "NON_BITCELL_BAND",
    "historical_trends",
    "Figure1Data",
]

#: (year, per-chip soft error rate, arbitrary units) — beam data for
#: successive DRAM generations, falling roughly 10× per decade.
HISTORICAL_ERROR_RATES: tuple[tuple[int, float], ...] = (
    (1998, 1500.0),
    (2000, 800.0),
    (2002, 400.0),
    (2004, 200.0),
    (2006, 100.0),
    (2008, 48.0),
    (2010, 23.0),
    (2012, 11.0),
    (2014, 5.5),
)

#: (year, chip capacity in Mbit) — vendor-reported device capacities.
HISTORICAL_CAPACITIES_MBIT: tuple[tuple[int, float], ...] = (
    (1998, 64.0),
    (2000, 128.0),
    (2002, 256.0),
    (2004, 512.0),
    (2006, 1024.0),
    (2008, 2048.0),
    (2010, 2048.0),
    (2012, 4096.0),
    (2014, 8192.0),
)

#: The paper's measured HBM2 overlay (total, multi-bit), same units, 2020.
#: ~31.5% of SEUs affect multiple bits, so the multi-bit rate is about a
#: third of the total.
HBM2_MEASURED: tuple[int, float, float] = (2020, 3.2, 1.0)

#: Borucki et al.: non-bitcell upsets stay within a two-order band.
NON_BITCELL_BAND: tuple[float, float] = (1.0, 100.0)


@dataclass(frozen=True)
class Figure1Data:
    """Everything needed to redraw Figure 1."""

    error_rate_fit: ExponentialFit
    capacity_fit: ExponentialFit
    error_rate_points: tuple[tuple[int, float], ...]
    capacity_points: tuple[tuple[int, float], ...]
    hbm2_point: tuple[int, float, float]
    non_bitcell_band: tuple[float, float]

    @property
    def rate_halving_years(self) -> float:
        """Years for the per-chip error rate to halve."""
        return -self.error_rate_fit.doubling_interval()

    @property
    def capacity_doubling_years(self) -> float:
        return self.capacity_fit.doubling_interval()

    def rate_outpaces_capacity(self) -> bool:
        """The paper's claim: the error-rate decrease outpaces the capacity
        increase (so per-bit rates fall even as chips grow)."""
        return -self.error_rate_fit.rate > self.capacity_fit.rate

    def hbm2_within_expectations(self) -> bool:
        """The paper's reading of Figure 1: the HBM2 total rate is low
        (below every historical measurement) while its multi-bit rate sits
        inside the flat non-bitcell band — bitcell errors kept scaling down,
        logic errors did not."""
        _, total_rate, multibit_rate = self.hbm2_point
        last_measured = self.error_rate_points[-1][1]
        low_band, high_band = self.non_bitcell_band
        return (
            total_rate < last_measured
            and low_band <= multibit_rate <= high_band
        )


def historical_trends() -> Figure1Data:
    """Fit the Figure-1 exponential regressions and package the overlays."""
    rate_years = [year for year, _ in HISTORICAL_ERROR_RATES]
    rates = [rate for _, rate in HISTORICAL_ERROR_RATES]
    capacity_years = [year for year, _ in HISTORICAL_CAPACITIES_MBIT]
    capacities = [capacity for _, capacity in HISTORICAL_CAPACITIES_MBIT]
    return Figure1Data(
        error_rate_fit=fit_exponential(rate_years, rates),
        capacity_fit=fit_exponential(capacity_years, capacities),
        error_rate_points=HISTORICAL_ERROR_RATES,
        capacity_points=HISTORICAL_CAPACITIES_MBIT,
        hbm2_point=HBM2_MEASURED,
        non_bitcell_band=NON_BITCELL_BAND,
    )

"""Plain-text table and series rendering for the benchmark harness.

Every benchmark regenerates a table or figure from the paper; these helpers
print them in a uniform, diff-friendly ASCII format so the harness output
can be compared against the published rows at a glance.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "format_percent"]


def format_percent(value: float, digits: int = 4) -> str:
    """A percentage with sensible precision for very small values."""
    if value == 0.0:
        return "0"
    percent = value * 100.0
    if percent >= 0.01:
        return f"{percent:.{min(digits, 2)}f}%"
    return f"{percent:.{digits}g}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a column-aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[column]) for row in cells)) if cells else len(header)
        for column, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series, one point per line — a textual figure."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x!s:>12}  {y!s}")
    return "\n".join(lines)

"""One-shot reproduction report generator.

Builds a self-contained Markdown report covering the paper's full
evaluation — Table 1 (derived from a simulated campaign), Table 2,
Figure 8, Table 3, Figure 9 and the Section 7.3 automotive analysis —
from a single entry point:

>>> from repro.analysis.report import generate_report
>>> markdown = generate_report(samples=20_000)

or from the shell: ``python -m repro report -o report.md``.

The heavy lifting is delegated to the same library calls the benchmark
harness uses; this module only orchestrates and formats.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Knobs for :func:`generate_report`."""

    samples: int = 20_000
    seed: int = 20211018
    campaign_events: int = 4000
    exaflops: tuple[float, ...] = (0.5, 1.0, 2.0)


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _section_table1(config: ReportConfig) -> str:
    from repro.beam.events import SoftErrorEventGenerator
    from repro.beam.postprocess import derive_table1, events_from_truth
    from repro.errormodel.patterns import TABLE1_PROBABILITIES, ErrorPattern

    generator = SoftErrorEventGenerator(seed=config.seed)
    events = events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(config.campaign_events)]
    )
    derived = derive_table1(events)
    rows = [
        [pattern.value, f"{derived[pattern]:.2%}",
         f"{TABLE1_PROBABILITIES[pattern]:.2%}"]
        for pattern in ErrorPattern
    ]
    return (
        "## Table 1 — soft error pattern probabilities\n\n"
        f"Derived from {config.campaign_events} simulated SEU events.\n\n"
        + _md_table(["pattern", "derived", "paper"], rows)
    )


def _outcomes(config: ReportConfig, workers=None, cache=None, tracer=None,
              warm_pool=None):
    from repro.core import all_schemes
    from repro.errormodel.montecarlo import evaluate_scheme, weighted_outcomes

    outcomes = {}
    for scheme in all_schemes():
        per_pattern = evaluate_scheme(
            scheme, samples=config.samples, seed=config.seed,
            workers=workers, cache=cache, tracer=tracer,
            warm_pool=warm_pool,
        )
        outcomes[scheme.name] = weighted_outcomes(
            scheme, per_pattern=per_pattern
        )
    return outcomes


def _section_table2(outcomes) -> str:
    from repro.core import SCHEME_NAMES, get_scheme
    from repro.errormodel.patterns import ErrorPattern

    headers = ["scheme"] + [pattern.value for pattern in ErrorPattern]
    rows = []
    for name in SCHEME_NAMES:
        per_pattern = outcomes[name].per_pattern
        rows.append(
            [get_scheme(name).label]
            + [per_pattern[pattern].cell() for pattern in ErrorPattern]
        )
    return (
        "## Table 2 — SDC risk per error pattern\n\n"
        "`C` = always corrected, `D` = always detected.\n\n"
        + _md_table(headers, rows)
    )


def _section_fig8(outcomes) -> str:
    from repro.analysis.tables import format_percent
    from repro.core import SCHEME_NAMES

    rows = [
        [outcomes[name].label, f"{outcomes[name].correct:.2%}",
         f"{outcomes[name].detect:.2%}", format_percent(outcomes[name].sdc)]
        for name in SCHEME_NAMES
    ]
    return (
        "## Figure 8 — Table-1-weighted outcome probabilities\n\n"
        + _md_table(["scheme", "corrected", "DUE", "SDC"], rows)
    )


def _section_table3() -> str:
    from repro.hardware.synth import table3_rows

    encoders, decoders = table3_rows()
    sections = []
    for title, rows in (("encoders", encoders), ("decoders", decoders)):
        baseline = rows[0]
        rendered = []
        for row in rows:
            for label, stats, base in (("Perf.", row.perf, baseline.perf),
                                       ("Eff.", row.eff, baseline.eff)):
                rendered.append([
                    row.name, label, f"{stats.area:,.0f}",
                    f"{stats.area_overhead(base):+.1%}",
                    f"{stats.delay_ns:.3f} ns",
                ])
        sections.append(
            f"### {title.capitalize()}\n\n"
            + _md_table(
                ["circuit", "point", "area (AND2)", "vs SEC-DED", "delay"],
                rendered,
            )
        )
    return "## Table 3 — hardware overheads\n\n" + "\n\n".join(sections)


def _section_fig9(outcomes, config: ReportConfig) -> str:
    from repro.system.hpc import figure9_series

    series = figure9_series(
        {name: outcomes[name] for name in ("duet", "trio")},
        exaflops=config.exaflops,
    )
    rows = []
    for name, points in series.items():
        for point in points:
            rows.append([
                name, f"{point.exaflops:.1f}", f"{point.gpus:,}",
                f"{point.mtti_hours:.1f} h", f"{point.mttf_months:,.1f} mo",
            ])
    return (
        "## Figure 9 — exascale MTTI / MTTF\n\n"
        + _md_table(["scheme", "EF", "GPUs", "MTTI", "MTTF"], rows)
    )


def _section_automotive(outcomes) -> str:
    from repro.core import SCHEME_NAMES, get_scheme
    from repro.system.automotive import assess_scheme

    rows = []
    for name in SCHEME_NAMES:
        assessment = assess_scheme(outcomes[name])
        rows.append([
            get_scheme(name).label,
            f"{assessment.sdc_fit:.4g}",
            "PASS" if assessment.meets_iso26262 else "FAIL",
            f"{assessment.fleet_due_cars_per_day:,.0f}",
        ])
    return (
        "## Section 7.3 — automotive safety\n\n"
        + _md_table(
            ["scheme", "SDC FIT/GPU", "ISO 26262", "DUE cars/day"], rows,
        )
    )


def generate_report(
    *,
    samples: int = 20_000,
    seed: int = 20211018,
    campaign_events: int = 4000,
    exaflops: tuple[float, ...] = (0.5, 1.0, 2.0),
    workers: int | None = None,
    cache=None,
    tracer=None,
    warm_pool=None,
) -> str:
    """Render the full reproduction report as Markdown.

    ``workers`` fans the Table-2 cells out over a process pool, ``cache``
    (e.g. :class:`repro.runs.CellCache`) reuses cells already in the
    persistent run store, ``tracer`` (a :class:`repro.obs.Tracer`)
    collects per-cell spans, and ``warm_pool`` (a
    :class:`repro.core.pool.WarmPool`) reuses worker processes across the
    per-scheme sweeps — all leave the rendered report byte-identical.
    """
    config = ReportConfig(
        samples=samples, seed=seed, campaign_events=campaign_events,
        exaflops=exaflops,
    )
    outcomes = _outcomes(config, workers=workers, cache=cache,
                         tracer=tracer, warm_pool=warm_pool)
    parts = [
        "# Reproduction report — Characterizing and Mitigating Soft Errors "
        "in GPU DRAM (MICRO 2021)",
        f"Monte Carlo: {config.samples:,} samples per sampled pattern, "
        f"seed {config.seed}.",
        _section_table1(config),
        _section_table2(outcomes),
        _section_fig8(outcomes),
        _section_table3(),
        _section_fig9(outcomes, config),
        _section_automotive(outcomes),
    ]
    return "\n\n".join(parts) + "\n"

"""The code-space superset report: resilience × area × delay ranking.

Table 2 scores resilience and Table 3 scores silicon; this module joins
them across *every* registered organization — the nine paper schemes, the
Section-6.2 extension tier, and the expansion tier (searched Hsiao, SEC-
DAEC, BCH DEC, polar) — into one ranked view.

Ranking order is deliberately lexicographic, mirroring how the paper
argues: silent data corruption is the failure mode that matters most
(weighted SDC ascending), then unavailability (weighted DUE ascending),
and only then silicon cost (performance-point decoder area ascending).
Schemes without a single-cycle netlist (the extension tier's iterative
decoders) rank after any scheme of equal resilience that has one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tables import format_percent, format_table

__all__ = ["RankedScheme", "ranking_rows", "format_ranking"]

#: Resilience fractions are compared after rounding to this many decimals,
#: so floating-point dust cannot reorder genuinely tied schemes.
_TIE_DECIMALS = 9


@dataclass(frozen=True)
class RankedScheme:
    """One registry organization with its joined resilience + cost record."""

    name: str
    label: str
    tier: str  # "paper" | "extension" | "expansion"
    corrects_pins: bool
    corrected: float  #: Table-1-weighted corrected fraction
    due: float  #: Table-1-weighted DUE fraction
    sdc: float  #: Table-1-weighted SDC fraction
    encoder_area: float | None  #: Perf.-point area (AND2 equivalents)
    decoder_area: float | None
    decoder_delay_ns: float | None

    @property
    def sort_key(self) -> tuple:
        return (
            round(self.sdc, _TIE_DECIMALS),
            round(self.due, _TIE_DECIMALS),
            self.decoder_area if self.decoder_area is not None else math.inf,
            self.name,
        )


def _tier(name: str) -> str:
    from repro.core.registry import EXTENSION_SCHEME_NAMES, SCHEME_NAMES

    if name in SCHEME_NAMES:
        return "paper"
    if name in EXTENSION_SCHEME_NAMES:
        return "extension"
    return "expansion"


def ranking_rows(
    *,
    samples: int = 20_000,
    seed: int = 1234,
    workers: int | None = None,
    cache=None,
    cell_timeout: float | None = None,
    tracer=None,
    heartbeat=None,
    warm_pool=None,
) -> list[RankedScheme]:
    """Evaluate and synthesize every registry scheme; returns ranked rows.

    Evaluation reuses the Table-2 Monte Carlo harness cell by cell (so a
    populated run-store cache makes re-ranking nearly free), and the
    hardware columns come from :func:`repro.hardware.expansion.
    scheme_hardware` at the performance design point.
    """
    from repro.core.registry import get_scheme, known_scheme_names
    from repro.errormodel import evaluate_scheme, weighted_outcomes
    from repro.hardware.expansion import scheme_hardware

    hardware = scheme_hardware()
    rows = []
    for name in known_scheme_names():
        scheme = get_scheme(name)
        per_pattern = evaluate_scheme(
            scheme, samples=samples, seed=seed, workers=workers, cache=cache,
            cell_timeout=cell_timeout, tracer=tracer, heartbeat=heartbeat,
            warm_pool=warm_pool,
        )
        outcome = weighted_outcomes(scheme, per_pattern=per_pattern)
        encoder, decoder = hardware[name]
        rows.append(RankedScheme(
            name=name,
            label=scheme.label,
            tier=_tier(name),
            corrects_pins=scheme.corrects_pins,
            corrected=outcome.correct,
            due=outcome.detect,
            sdc=outcome.sdc,
            encoder_area=None if encoder is None else encoder.perf.area,
            decoder_area=None if decoder is None else decoder.perf.area,
            decoder_delay_ns=None if decoder is None else decoder.perf.delay_ns,
        ))
    return sorted(rows, key=lambda row: row.sort_key)


def format_ranking(rows: list[RankedScheme]) -> str:
    """Render the superset report as a diff-friendly ASCII table."""

    def area(value: float | None) -> str:
        return "-" if value is None else f"{value:,.0f}"

    def delay(value: float | None) -> str:
        return "-" if value is None else f"{value:.3f}"

    table = format_table(
        ["#", "name", "organization", "tier", "corrected", "DUE", "SDC",
         "enc area", "dec area", "dec delay (ns)", "pins"],
        [
            [rank, row.name, row.label, row.tier,
             f"{row.corrected:.2%}", f"{row.due:.2%}", format_percent(row.sdc),
             area(row.encoder_area), area(row.decoder_area),
             delay(row.decoder_delay_ns),
             "yes" if row.corrects_pins else "no"]
            for rank, row in enumerate(rows, start=1)
        ],
        title="Code-space ranking — Table-1-weighted resilience x Perf.-point "
              "silicon (SDC, then DUE, then decoder area)",
    )
    return (
        table
        + "\n\nareas in AND2 equivalents; '-' marks the multi-cycle"
        " extension tier, which has no single-cycle netlist."
    )

"""Regression utilities used by the characterization figures.

* :func:`fit_linear` — least-squares line with R² (the Figure 3c weak-cell
  accumulation fit, R² = 0.97 in the paper).
* :func:`fit_retention_normal` — non-linear least squares of a normal CDF to
  weak-cell counts versus refresh period (Figure 3b), recovering the
  retention-time distribution (mean, sigma, population).
* :func:`fit_exponential` — exponential regression on positive data
  (Figure 1's historical trend lines, straight lines on a log axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit
from scipy.stats import norm

__all__ = ["LinearFit", "NormalCdfFit", "ExponentialFit",
           "fit_linear", "fit_retention_normal", "fit_exponential"]


@dataclass(frozen=True)
class LinearFit:
    """``y ≈ slope·x + intercept`` with coefficient of determination."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x):
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    scale = float(np.sum(y**2)) or 1.0
    if total <= 1e-12 * scale:
        # Constant data: a perfect fit iff the residual is also ~zero.
        return 1.0 if residual <= 1e-12 * scale else 0.0
    return 1.0 - residual / total


def fit_linear(x, y) -> LinearFit:
    """Ordinary least-squares line fit."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matched points")
    slope, intercept = np.polyfit(x, y, 1)
    fit = LinearFit(float(slope), float(intercept), 0.0)
    return LinearFit(fit.slope, fit.intercept, _r_squared(y, fit.predict(x)))


@dataclass(frozen=True)
class NormalCdfFit:
    """Weak-cell count model ``count(T) = population · Φ((T − mean)/sigma)``."""

    mean_s: float
    sigma_s: float
    population: float
    r_squared: float

    def predict(self, refresh_periods_s):
        periods = np.asarray(refresh_periods_s, dtype=float)
        return self.population * norm.cdf((periods - self.mean_s) / self.sigma_s)

    def density(self, retention_s):
        """The fitted retention-time density (the Figure 3b curve)."""
        retention = np.asarray(retention_s, dtype=float)
        return self.population * norm.pdf(retention, self.mean_s, self.sigma_s)


def fit_retention_normal(refresh_periods_s, weak_cell_counts) -> NormalCdfFit:
    """Fit the normal-CDF retention model to measured weak-cell counts."""
    periods = np.asarray(refresh_periods_s, dtype=float)
    counts = np.asarray(weak_cell_counts, dtype=float)
    if periods.size != counts.size or periods.size < 3:
        raise ValueError("need at least three matched points")

    def model(t, mean, sigma, population):
        return population * norm.cdf((t - mean) / sigma)

    initial = (float(periods.mean()), float(periods.std() or periods.mean() / 2),
               float(counts.max() * 1.2))
    params, _ = curve_fit(
        model, periods, counts, p0=initial,
        bounds=([0.0, 1e-6, 1.0], [np.inf, np.inf, np.inf]), maxfev=20000,
    )
    mean, sigma, population = (float(p) for p in params)
    fit = NormalCdfFit(mean, sigma, population, 0.0)
    return NormalCdfFit(mean, sigma, population,
                        _r_squared(counts, fit.predict(periods)))


@dataclass(frozen=True)
class ExponentialFit:
    """``y ≈ exp(rate · x + log_scale)`` — a line in log-y space.

    The scale is kept in log space so that fits over large-offset x values
    (e.g. calendar years) never overflow.
    """

    rate: float
    log_scale: float
    r_squared: float  #: computed on log(y)

    @property
    def scale(self) -> float:
        """The extrapolated value at x = 0 (may overflow for year axes)."""
        return float(np.exp(self.log_scale))

    def predict(self, x):
        return np.exp(self.rate * np.asarray(x, dtype=float) + self.log_scale)

    def doubling_interval(self) -> float:
        """The x-interval over which y doubles (negative if decaying)."""
        return float(np.log(2.0) / self.rate)


def fit_exponential(x, y) -> ExponentialFit:
    """Exponential regression by least squares on log(y); y must be > 0."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if np.any(y <= 0):
        raise ValueError("exponential fit requires positive y values")
    line = fit_linear(x, np.log(y))
    return ExponentialFit(
        rate=line.slope, log_scale=line.intercept, r_squared=line.r_squared,
    )

"""Classify error vectors into the Table-1 patterns.

Implements the paper's priority rule: "patterns are sorted in increasing ECC
difficulty for correction, and priority is given to less-difficult errors
whenever multiple patterns fit".  Both a scalar and a vectorized batch
classifier are provided; the samplers in :mod:`repro.errormodel.sampling`
use the batch version for rejection sampling, and the beam-campaign
analysis uses the scalar version on observed corruption records.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import ENTRY_BITS, byte_of, beat_of, pin_of
from repro.errormodel.patterns import ErrorPattern

__all__ = ["classify_error", "classify_errors_batch",
           "classify_error_codes_batch", "PATTERN_ORDER"]

#: Fixed pattern order for integer classification codes.
PATTERN_ORDER: tuple[ErrorPattern, ...] = tuple(ErrorPattern)


def classify_error(error_bits: np.ndarray) -> ErrorPattern:
    """Pattern of one non-zero 288-bit error vector."""
    error_bits = np.asarray(error_bits, dtype=np.uint8).reshape(-1)
    if error_bits.size != ENTRY_BITS:
        raise ValueError(f"expected {ENTRY_BITS} bits")
    positions = np.nonzero(error_bits)[0]
    if positions.size == 0:
        raise ValueError("cannot classify an all-zero error")

    if positions.size == 1:
        return ErrorPattern.BIT
    if np.all(pin_of(positions) == pin_of(positions[0])):
        return ErrorPattern.PIN
    if np.all(byte_of(positions) == byte_of(positions[0])):
        return ErrorPattern.BYTE
    if positions.size == 2:
        return ErrorPattern.DOUBLE_BIT
    if positions.size == 3:
        return ErrorPattern.TRIPLE_BIT
    if np.all(beat_of(positions) == beat_of(positions[0])):
        return ErrorPattern.BEAT
    return ErrorPattern.ENTRY


def classify_error_codes_batch(errors: np.ndarray) -> np.ndarray:
    """Pattern *codes* of a ``(B, 288)`` error batch: int64 indices into
    :data:`PATTERN_ORDER` (rows of weight zero raise).

    Per-group occupancy is computed as a float32 BLAS matmul — exact,
    since counts never exceed 288 (well inside float32's 2^24 integer
    range) — which is what makes ~100k-row Table-1 derivations cheap.
    """
    errors = np.asarray(errors, dtype=np.uint8)
    if errors.ndim != 2 or errors.shape[1] != ENTRY_BITS:
        raise ValueError(f"expected a (B, {ENTRY_BITS}) batch")
    weights = errors.sum(axis=1, dtype=np.int64)
    if np.any(weights == 0):
        raise ValueError("cannot classify all-zero errors")

    indices = np.arange(ENTRY_BITS)
    dense = errors.astype(np.float32)

    def _single_group(group_ids: np.ndarray) -> np.ndarray:
        """True where all flipped bits of a row share one group id."""
        num_groups = int(group_ids.max()) + 1
        group_onehot = np.zeros((ENTRY_BITS, num_groups), dtype=np.float32)
        group_onehot[indices, group_ids] = 1.0
        per_group = dense @ group_onehot
        return (per_group > 0).sum(axis=1) == 1

    one_pin = _single_group(pin_of(indices))
    one_byte = _single_group(byte_of(indices))
    one_beat = _single_group(beat_of(indices))

    # Mirror classify_error's priority chain, highest priority last so it
    # overwrites lower-priority assignments.
    order = {pattern: code for code, pattern in enumerate(PATTERN_ORDER)}
    codes = np.full(errors.shape[0], order[ErrorPattern.ENTRY], dtype=np.int64)
    codes[one_beat] = order[ErrorPattern.BEAT]
    codes[(weights == 3) & ~one_pin & ~one_byte] = \
        order[ErrorPattern.TRIPLE_BIT]
    codes[(weights == 2) & ~one_pin & ~one_byte] = \
        order[ErrorPattern.DOUBLE_BIT]
    codes[one_byte & (weights >= 2)] = order[ErrorPattern.BYTE]
    codes[one_pin & (weights >= 2)] = order[ErrorPattern.PIN]
    codes[weights == 1] = order[ErrorPattern.BIT]
    return codes


def classify_errors_batch(errors: np.ndarray) -> np.ndarray:
    """Patterns of a ``(B, 288)`` error batch, as an object array of
    :class:`ErrorPattern` (rows of weight zero raise)."""
    codes = classify_error_codes_batch(errors)
    result = np.empty(codes.size, dtype=object)
    for code, pattern in enumerate(PATTERN_ORDER):
        result[codes == code] = pattern
    return result

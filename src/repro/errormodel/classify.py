"""Classify error vectors into the Table-1 patterns.

Implements the paper's priority rule: "patterns are sorted in increasing ECC
difficulty for correction, and priority is given to less-difficult errors
whenever multiple patterns fit".  Both a scalar and a vectorized batch
classifier are provided; the samplers in :mod:`repro.errormodel.sampling`
use the batch version for rejection sampling, and the beam-campaign
analysis uses the scalar version on observed corruption records.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import ENTRY_BITS, byte_of, beat_of, pin_of
from repro.errormodel.patterns import ErrorPattern

__all__ = ["classify_error", "classify_errors_batch"]


def classify_error(error_bits: np.ndarray) -> ErrorPattern:
    """Pattern of one non-zero 288-bit error vector."""
    error_bits = np.asarray(error_bits, dtype=np.uint8).reshape(-1)
    if error_bits.size != ENTRY_BITS:
        raise ValueError(f"expected {ENTRY_BITS} bits")
    positions = np.nonzero(error_bits)[0]
    if positions.size == 0:
        raise ValueError("cannot classify an all-zero error")

    if positions.size == 1:
        return ErrorPattern.BIT
    if np.all(pin_of(positions) == pin_of(positions[0])):
        return ErrorPattern.PIN
    if np.all(byte_of(positions) == byte_of(positions[0])):
        return ErrorPattern.BYTE
    if positions.size == 2:
        return ErrorPattern.DOUBLE_BIT
    if positions.size == 3:
        return ErrorPattern.TRIPLE_BIT
    if np.all(beat_of(positions) == beat_of(positions[0])):
        return ErrorPattern.BEAT
    return ErrorPattern.ENTRY


def classify_errors_batch(errors: np.ndarray) -> np.ndarray:
    """Patterns of a ``(B, 288)`` error batch, as an object array of
    :class:`ErrorPattern` (rows of weight zero raise)."""
    errors = np.asarray(errors, dtype=np.uint8)
    if errors.ndim != 2 or errors.shape[1] != ENTRY_BITS:
        raise ValueError(f"expected a (B, {ENTRY_BITS}) batch")
    weights = errors.sum(axis=1, dtype=np.int64)
    if np.any(weights == 0):
        raise ValueError("cannot classify all-zero errors")

    indices = np.arange(ENTRY_BITS)
    pins = pin_of(indices)
    bytes_ = byte_of(indices)
    beats = beat_of(indices)

    def _single_group(group_ids: np.ndarray) -> np.ndarray:
        """True where all flipped bits of a row share one group id."""
        num_groups = int(group_ids.max()) + 1
        group_onehot = np.zeros((ENTRY_BITS, num_groups), dtype=np.int64)
        group_onehot[indices, group_ids] = 1
        per_group = errors.astype(np.int64) @ group_onehot
        return (per_group > 0).sum(axis=1) == 1

    one_pin = _single_group(pins)
    one_byte = _single_group(bytes_)
    one_beat = _single_group(beats)

    result = np.empty(errors.shape[0], dtype=object)
    result[:] = ErrorPattern.ENTRY
    result[one_beat] = ErrorPattern.BEAT
    result[(weights == 3) & ~one_pin & ~one_byte] = ErrorPattern.TRIPLE_BIT
    result[(weights == 2) & ~one_pin & ~one_byte] = ErrorPattern.DOUBLE_BIT
    result[one_byte & (weights >= 2)] = ErrorPattern.BYTE
    result[one_pin & (weights >= 2)] = ErrorPattern.PIN
    result[weights == 1] = ErrorPattern.BIT
    return result

"""Monte Carlo / exhaustive resilience evaluation (Table 2 and Figure 8).

For each ECC organization and each Table-1 error pattern, this harness
injects error patterns over the all-zero codeword (all evaluated codes are
linear, so outcomes depend only on the error pattern), decodes them in
vectorized batches, and labels each event:

* **DCE** — correct data delivered (including opportunistic corrections and
  errors confined to check bits);
* **DUE** — the decoder raised a detected-uncorrectable error; and
* **SDC** — wrong data delivered silently, either because the error aliased
  a codeword or because the decoder *miscorrected*.

Bit/pin/byte/2-bit patterns are evaluated exhaustively; 3-bit patterns are
exhaustive on request (``exhaustive_triples=True``) and otherwise sampled;
beat/entry patterns are always sampled.  Each estimate carries a 99%
Wilson-style confidence half-width so EXPERIMENTS.md can report precision,
mirroring the paper's ±0.0003%/±0.00003% statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheme import ECCScheme
from repro.errormodel.patterns import (
    TABLE1_PROBABILITIES,
    ErrorPattern,
)
from repro.errormodel.sampling import (
    enumerate_bit_errors,
    enumerate_byte_errors,
    enumerate_double_bit_errors,
    enumerate_pin_errors,
    iter_triple_bit_errors,
    sample_beat_errors,
    sample_entry_errors,
    sample_triple_bit_errors,
)

__all__ = [
    "PatternOutcome",
    "SchemeOutcome",
    "evaluate_pattern",
    "evaluate_scheme",
    "weighted_outcomes",
    "sdc_risk_table",
]

_Z99 = 2.576  # two-sided 99% normal quantile

_DEFAULT_SAMPLES = 200_000
_CHUNK = 65_536


@dataclass(frozen=True)
class PatternOutcome:
    """DCE/DUE/SDC fractions for one (scheme, pattern) cell of Table 2."""

    pattern: ErrorPattern
    events: int
    dce: float
    due: float
    sdc: float
    exhaustive: bool

    @property
    def sdc_confidence_99(self) -> float:
        """99% half-width of the SDC estimate (0 for exhaustive cells)."""
        if self.exhaustive or self.events == 0:
            return 0.0
        variance = max(self.sdc * (1.0 - self.sdc), 1.0 / self.events)
        return _Z99 * float(np.sqrt(variance / self.events))

    def cell(self) -> str:
        """Table-2 style cell: "C" always corrected, "D" always detected,
        otherwise the SDC percentage."""
        if self.sdc == 0.0 and self.due == 0.0:
            return "C"
        if self.sdc == 0.0:
            return "D" if self.dce == 0.0 else f"{self.sdc:.4%}"
        return f"{self.sdc:.4%}"


@dataclass(frozen=True)
class SchemeOutcome:
    """Figure-8 style Table-1-weighted outcome probabilities."""

    scheme: str
    label: str
    correct: float
    detect: float
    sdc: float
    per_pattern: dict[ErrorPattern, PatternOutcome]

    def uncorrectable(self) -> float:
        """DUE probability — the quantity behind the paper's '7.87× fewer
        uncorrectable errors' claim."""
        return self.detect


def _decode_chunked(scheme: ECCScheme, errors: np.ndarray,
                    chunk: int = _CHUNK) -> tuple[int, int, int]:
    """(dce, due, sdc) counts over an error batch, decoded chunk-wise."""
    dce = due = sdc = 0
    for start in range(0, errors.shape[0], chunk):
        part = errors[start : start + chunk]
        outcome = scheme.decode_batch_errors(part)
        due_part = int(outcome.due.sum())
        sdc_part = int(outcome.sdc().sum())
        due += due_part
        sdc += sdc_part
        dce += part.shape[0] - due_part - sdc_part
    return dce, due, sdc


def evaluate_pattern(
    scheme: ECCScheme,
    pattern: ErrorPattern,
    *,
    samples: int = _DEFAULT_SAMPLES,
    rng: np.random.Generator | None = None,
    exhaustive_triples: bool = False,
) -> PatternOutcome:
    """Evaluate one Table-2 cell."""
    rng = rng if rng is not None else np.random.default_rng(1234)

    exhaustive = True
    if pattern is ErrorPattern.BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_bit_errors())
    elif pattern is ErrorPattern.PIN:
        dce, due, sdc = _decode_chunked(scheme, enumerate_pin_errors())
    elif pattern is ErrorPattern.BYTE:
        dce, due, sdc = _decode_chunked(scheme, enumerate_byte_errors())
    elif pattern is ErrorPattern.DOUBLE_BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_double_bit_errors())
    elif pattern is ErrorPattern.TRIPLE_BIT:
        if exhaustive_triples:
            dce = due = sdc = 0
            for block in iter_triple_bit_errors():
                block_dce, block_due, block_sdc = _decode_chunked(scheme, block)
                dce += block_dce
                due += block_due
                sdc += block_sdc
        else:
            exhaustive = False
            dce, due, sdc = _decode_chunked(
                scheme, sample_triple_bit_errors(samples, rng)
            )
    elif pattern is ErrorPattern.BEAT:
        exhaustive = False
        dce, due, sdc = _decode_chunked(scheme, sample_beat_errors(samples, rng))
    elif pattern is ErrorPattern.ENTRY:
        exhaustive = False
        dce, due, sdc = _decode_chunked(scheme, sample_entry_errors(samples, rng))
    else:
        raise ValueError(f"unknown pattern {pattern}")

    events = dce + due + sdc
    return PatternOutcome(
        pattern=pattern,
        events=events,
        dce=dce / events,
        due=due / events,
        sdc=sdc / events,
        exhaustive=exhaustive,
    )


def evaluate_scheme(
    scheme: ECCScheme,
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
) -> dict[ErrorPattern, PatternOutcome]:
    """All seven Table-2 cells for one scheme."""
    rng = np.random.default_rng(seed)
    return {
        pattern: evaluate_pattern(
            scheme,
            pattern,
            samples=samples,
            rng=rng,
            exhaustive_triples=exhaustive_triples,
        )
        for pattern in ErrorPattern
    }


def weighted_outcomes(
    scheme: ECCScheme,
    *,
    probabilities: dict[ErrorPattern, float] | None = None,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    per_pattern: dict[ErrorPattern, PatternOutcome] | None = None,
) -> SchemeOutcome:
    """Figure 8: outcome probabilities weighted by Table 1.

    Pass ``per_pattern`` to reuse a previous :func:`evaluate_scheme` run.
    """
    probabilities = probabilities or TABLE1_PROBABILITIES
    per_pattern = per_pattern or evaluate_scheme(scheme, samples=samples, seed=seed)
    correct = sum(
        probabilities[pattern] * outcome.dce
        for pattern, outcome in per_pattern.items()
    )
    detect = sum(
        probabilities[pattern] * outcome.due
        for pattern, outcome in per_pattern.items()
    )
    sdc = sum(
        probabilities[pattern] * outcome.sdc
        for pattern, outcome in per_pattern.items()
    )
    return SchemeOutcome(
        scheme=scheme.name,
        label=scheme.label,
        correct=correct,
        detect=detect,
        sdc=sdc,
        per_pattern=per_pattern,
    )


def sdc_risk_table(
    schemes: list[ECCScheme],
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
) -> dict[str, dict[ErrorPattern, PatternOutcome]]:
    """Table 2: per-pattern outcomes for a list of schemes."""
    return {
        scheme.name: evaluate_scheme(
            scheme,
            samples=samples,
            seed=seed,
            exhaustive_triples=exhaustive_triples,
        )
        for scheme in schemes
    }

"""Monte Carlo / exhaustive resilience evaluation (Table 2 and Figure 8).

For each ECC organization and each Table-1 error pattern, this harness
injects error patterns over the all-zero codeword (all evaluated codes are
linear, so outcomes depend only on the error pattern), decodes them in
vectorized batches, and labels each event:

* **DCE** — correct data delivered (including opportunistic corrections and
  errors confined to check bits);
* **DUE** — the decoder raised a detected-uncorrectable error; and
* **SDC** — wrong data delivered silently, either because the error aliased
  a codeword or because the decoder *miscorrected*.

Bit/pin/byte/2-bit patterns are evaluated exhaustively; 3-bit patterns are
exhaustive on request (``exhaustive_triples=True``) and otherwise sampled;
beat/entry patterns are always sampled.  Each estimate carries a 99%
Wilson-style confidence half-width so EXPERIMENTS.md can report precision,
mirroring the paper's ±0.0003%/±0.00003% statements.

Error batches travel bit-packed (uint64 words) end-to-end, so schemes with a
packed syndrome-LUT fast path never touch unpacked bits.  Each Table-2 cell
is seeded independently from ``np.random.SeedSequence(seed).spawn``, which
makes :func:`evaluate_scheme` and :func:`sdc_risk_table` with ``workers=N``
(a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out over cells)
bit-identical to the serial ``workers=1`` run.

The fan-out degrades gracefully rather than crashing a long sweep: a cell
that exceeds ``cell_timeout`` or a worker pool that breaks
(:class:`~concurrent.futures.BrokenExecutor`) is requeued once onto a
fresh pool, and anything still unfinished falls back to in-process serial
evaluation — same seeds, so the result is identical either way.  That
requeue-then-serial story lives in :func:`repro.core.pool.run_with_requeue`,
shared with the beam-statistics engine.  Passing ``cache=`` (a
:class:`repro.runs.CellCache` or anything with the same
``lookup``/``record`` shape) short-circuits already-computed cells through
the persistent run store and records fresh ones for the next invocation.
``tracer=`` (a :class:`repro.obs.Tracer`) records one ``cell`` span per
freshly computed cell — worker-side when fanned out, merged into the
parent trace as results arrive.
"""

from __future__ import annotations

import logging
import os
import time

# BrokenExecutor and the futures TimeoutError are re-exported here for the
# degradation tests, which monkeypatch this module's ProcessPoolExecutor
# and raise these exact types from fake futures.
from concurrent.futures import BrokenExecutor  # noqa: F401
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout  # noqa: F401
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.pool import (
    RetryPolicy,
    pool_worker_init,
    run_with_requeue,
)
from repro.core.scheme import ECCScheme
from repro.faults import faultpoint
from repro.errormodel.patterns import (
    TABLE1_PROBABILITIES,
    ErrorPattern,
)
from repro.errormodel.sampling import (
    enumerate_bit_errors_packed,
    enumerate_byte_errors_packed,
    enumerate_double_bit_errors_packed,
    enumerate_pin_errors_packed,
    iter_triple_bit_errors_packed,
    sample_beat_errors_packed,
    sample_entry_errors_packed,
    sample_triple_bit_errors_packed,
)

__all__ = [
    "PatternOutcome",
    "SchemeOutcome",
    "evaluate_pattern",
    "evaluate_scheme",
    "weighted_outcomes",
    "sdc_risk_table",
]

_LOGGER = logging.getLogger(__name__)

_Z99 = 2.576  # two-sided 99% normal quantile

_DEFAULT_SAMPLES = 200_000
_CHUNK = 65_536


@dataclass(frozen=True)
class PatternOutcome:
    """DCE/DUE/SDC fractions for one (scheme, pattern) cell of Table 2."""

    pattern: ErrorPattern
    events: int
    dce: float
    due: float
    sdc: float
    exhaustive: bool
    #: wall-clock seconds spent generating + decoding this cell (not part of
    #: the value — excluded from equality so timed runs still compare equal)
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def sdc_confidence_99(self) -> float:
        """99% half-width of the SDC estimate (0 for exhaustive cells)."""
        if self.exhaustive or self.events == 0:
            return 0.0
        variance = max(self.sdc * (1.0 - self.sdc), 1.0 / self.events)
        return _Z99 * float(np.sqrt(variance / self.events))

    @property
    def events_per_second(self) -> float:
        """Injection throughput of this cell (0 when not timed)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.events / self.elapsed_s

    def cell(self) -> str:
        """Table-2 style cell: "C" always corrected, "D" always detected,
        "C/D" when events split between the two without any SDC, otherwise
        the SDC percentage."""
        if self.sdc == 0.0:
            if self.due == 0.0:
                return "C"
            if self.dce == 0.0:
                return "D"
            return "C/D"
        return f"{self.sdc:.4%}"


@dataclass(frozen=True)
class SchemeOutcome:
    """Figure-8 style Table-1-weighted outcome probabilities."""

    scheme: str
    label: str
    correct: float
    detect: float
    sdc: float
    per_pattern: dict[ErrorPattern, PatternOutcome]

    def uncorrectable(self) -> float:
        """DUE probability — the quantity behind the paper's '7.87× fewer
        uncorrectable errors' claim."""
        return self.detect


def _decode_chunked(scheme: ECCScheme, errors: np.ndarray,
                    chunk: int = _CHUNK) -> tuple[int, int, int]:
    """(dce, due, sdc) counts over an error batch, decoded chunk-wise.

    A ``uint64`` batch is treated as bit-packed words and decoded through
    :meth:`ECCScheme.decode_batch_packed`; anything else goes through the
    unpacked :meth:`ECCScheme.decode_batch_errors`.
    """
    packed = errors.dtype == np.uint64
    dce = due = sdc = 0
    for start in range(0, errors.shape[0], chunk):
        part = errors[start : start + chunk]
        if packed:
            outcome = scheme.decode_batch_packed(part)
        else:
            outcome = scheme.decode_batch_errors(part)
        due_part = int(outcome.due.sum())
        sdc_part = int(outcome.sdc().sum())
        due += due_part
        sdc += sdc_part
        dce += part.shape[0] - due_part - sdc_part
    return dce, due, sdc


def evaluate_pattern(
    scheme: ECCScheme,
    pattern: ErrorPattern,
    *,
    samples: int = _DEFAULT_SAMPLES,
    rng: np.random.Generator | None = None,
    exhaustive_triples: bool = False,
) -> PatternOutcome:
    """Evaluate one Table-2 cell (timed; see ``PatternOutcome.elapsed_s``)."""
    rng = rng if rng is not None else np.random.default_rng(1234)
    started = time.perf_counter()

    exhaustive = True
    if pattern is ErrorPattern.BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_bit_errors_packed())
    elif pattern is ErrorPattern.PIN:
        dce, due, sdc = _decode_chunked(scheme, enumerate_pin_errors_packed())
    elif pattern is ErrorPattern.BYTE:
        dce, due, sdc = _decode_chunked(scheme, enumerate_byte_errors_packed())
    elif pattern is ErrorPattern.DOUBLE_BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_double_bit_errors_packed())
    elif pattern is ErrorPattern.TRIPLE_BIT:
        if exhaustive_triples:
            dce = due = sdc = 0
            for block in iter_triple_bit_errors_packed():
                block_dce, block_due, block_sdc = _decode_chunked(scheme, block)
                dce += block_dce
                due += block_due
                sdc += block_sdc
        else:
            exhaustive = False
            dce, due, sdc = _decode_chunked(
                scheme, sample_triple_bit_errors_packed(samples, rng)
            )
    elif pattern is ErrorPattern.BEAT:
        exhaustive = False
        dce, due, sdc = _decode_chunked(
            scheme, sample_beat_errors_packed(samples, rng)
        )
    elif pattern is ErrorPattern.ENTRY:
        exhaustive = False
        dce, due, sdc = _decode_chunked(
            scheme, sample_entry_errors_packed(samples, rng)
        )
    else:
        raise ValueError(f"unknown pattern {pattern}")

    events = dce + due + sdc
    return PatternOutcome(
        pattern=pattern,
        events=events,
        dce=dce / events,
        due=due / events,
        sdc=sdc / events,
        exhaustive=exhaustive,
        elapsed_s=time.perf_counter() - started,
    )


def _scheme_payload(scheme: ECCScheme):
    """Cheapest picklable handle on a scheme for worker processes.

    Registry-built schemes travel as their name (workers rebuild them through
    the per-process registry cache); anything else is pickled whole.
    """
    from repro.core.registry import get_scheme

    try:
        if get_scheme(scheme.name) is scheme:
            return scheme.name
    except KeyError:
        pass
    return scheme


def _evaluate_cell(
    payload,
    pattern: ErrorPattern,
    samples: int,
    seed_seq: np.random.SeedSequence,
    exhaustive_triples: bool,
    with_trace: bool = False,
) -> PatternOutcome | tuple[PatternOutcome, list]:
    """Worker entry point: one (scheme, pattern) cell with its own seed.

    With ``with_trace`` the cell runs under a worker-side tracer and the
    result travels as ``(outcome, span_records)`` so the parent can merge
    the worker's ``cell`` span into its trace.
    """
    faultpoint("pool.worker.crash", pattern=pattern.name)
    faultpoint("montecarlo.cell.hang", pattern=pattern.name)
    if isinstance(payload, str):
        from repro.core.registry import get_scheme

        scheme = get_scheme(payload)
    else:
        scheme = payload
    name = payload if isinstance(payload, str) else scheme.name
    if not with_trace:
        return evaluate_pattern(
            scheme,
            pattern,
            samples=samples,
            rng=np.random.default_rng(seed_seq),
            exhaustive_triples=exhaustive_triples,
        )
    from repro.obs import Tracer

    tracer = Tracer()
    with tracer.span("cell", scheme=name, pattern=pattern.name):
        outcome = evaluate_pattern(
            scheme,
            pattern,
            samples=samples,
            rng=np.random.default_rng(seed_seq),
            exhaustive_triples=exhaustive_triples,
        )
        tracer.count(events=outcome.events)
    tag = f"pid:{os.getpid()}"
    for record in tracer.records:
        record.worker = tag
    return outcome, tracer.records


def _cell_seeds(seed: int) -> list[np.random.SeedSequence]:
    """One independent child seed per Table-2 pattern.

    The spawn is a pure function of ``seed``, so any execution order — serial
    or fanned out over workers — evaluates every cell with the same stream.
    """
    return np.random.SeedSequence(seed).spawn(len(ErrorPattern))


class _CellJob(NamedTuple):
    """One (scheme, pattern) cell awaiting evaluation."""

    key: tuple[str, ErrorPattern]
    scheme: ECCScheme
    pattern: ErrorPattern
    samples: int
    seed_seq: np.random.SeedSequence
    exhaustive_triples: bool


def _run_cells(
    jobs: list[_CellJob],
    workers: int | None,
    cell_timeout: float | None = None,
    tracer=None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
) -> dict[tuple[str, ErrorPattern], PatternOutcome]:
    """Evaluate cells, fanned out when asked, robust to worker failure.

    Delegates the requeue-once-then-serial robustness to
    :func:`repro.core.pool.run_with_requeue`; per-cell seeding makes the
    outcome identical on every path.  When ``tracer`` is given, each cell
    carries its worker-side ``cell`` span back with the outcome and the
    spans merge into the parent trace as results arrive; ``heartbeat``
    (a :class:`repro.obs.Heartbeat`) is advanced one cell at a time.
    ``warm_pool`` (a :class:`repro.core.pool.WarmPool`) supplies the
    worker pool, reusing processes across sweeps in one invocation.
    """
    with_trace = tracer is not None
    if heartbeat is not None and heartbeat.total is None:
        heartbeat.total = len(jobs)

    def _on_result(job: _CellJob, result) -> None:
        if with_trace:
            tracer.merge(result[1])
        if heartbeat is not None:
            outcome = result[0] if with_trace else result
            heartbeat.update(advance=1, events=outcome.events)

    results, report = run_with_requeue(
        jobs,
        key=lambda job: job.key,
        describe=lambda job: f"cell {job.key[0]}/{job.pattern.name}",
        submit=lambda pool, job: pool.submit(
            _evaluate_cell, _scheme_payload(job.scheme), job.pattern,
            job.samples, job.seed_seq, job.exhaustive_triples, with_trace,
        ),
        run_serial=lambda job: _evaluate_cell(
            job.scheme, job.pattern, job.samples, job.seed_seq,
            job.exhaustive_triples, with_trace,
        ),
        workers=workers,
        timeout=cell_timeout,
        executor_factory=(
            warm_pool.executor_factory if warm_pool is not None
            else (lambda: ProcessPoolExecutor(
                max_workers=workers, initializer=pool_worker_init))
        ),
        noun="cells",
        logger=_LOGGER,
        on_result=_on_result,
        retry=retry,
    )
    if with_trace:
        tracer.count(**report.counters())
        return {key: value[0] for key, value in results.items()}
    return results


def _collect_cells(
    schemes: list[ECCScheme],
    *,
    samples: int,
    seed: int,
    exhaustive_triples: bool,
    workers: int | None,
    cache,
    cell_timeout: float | None,
    tracer=None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
) -> dict[str, dict[ErrorPattern, PatternOutcome]]:
    """Shared cache-aware engine behind Table 2 and per-scheme evaluation."""
    cells = list(zip(ErrorPattern, _cell_seeds(seed)))
    table: dict[str, dict[ErrorPattern, PatternOutcome]] = {
        scheme.name: {} for scheme in schemes
    }
    jobs: list[_CellJob] = []
    for scheme in schemes:
        for pattern, child in cells:
            hit = None
            if cache is not None:
                hit = cache.lookup(scheme.name, pattern, samples, seed,
                                   exhaustive_triples, scheme.cache_token())
            if hit is not None:
                table[scheme.name][pattern] = hit
            else:
                jobs.append(_CellJob(
                    key=(scheme.name, pattern),
                    scheme=scheme,
                    pattern=pattern,
                    samples=samples,
                    seed_seq=child,
                    exhaustive_triples=exhaustive_triples,
                ))
    fresh = _run_cells(jobs, workers, cell_timeout, tracer, heartbeat, retry,
                       warm_pool)
    if heartbeat is not None:
        heartbeat.close()
    if tracer is not None:
        tracer.count(cells_computed=len(jobs),
                     cells_cached=len(schemes) * len(cells) - len(jobs))
    for job in jobs:
        outcome = fresh[job.key]
        table[job.key[0]][job.pattern] = outcome
        if cache is not None:
            cache.record(job.key[0], job.pattern, samples, seed,
                         exhaustive_triples, outcome,
                         job.scheme.cache_token())
    return {
        scheme.name: {
            pattern: table[scheme.name][pattern] for pattern in ErrorPattern
        }
        for scheme in schemes
    }


def evaluate_scheme(
    scheme: ECCScheme,
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
    workers: int | None = None,
    cache=None,
    cell_timeout: float | None = None,
    tracer=None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
) -> dict[ErrorPattern, PatternOutcome]:
    """All seven Table-2 cells for one scheme.

    With ``workers=N`` (N > 1) the cells fan out over a process pool;
    per-cell seeding makes the result bit-identical to the serial run.
    ``cache`` (e.g. :class:`repro.runs.CellCache`) reloads previously
    computed cells from the persistent run store and records fresh ones;
    ``cell_timeout`` bounds each cell's wall-clock in the fanned-out path;
    ``tracer`` (a :class:`repro.obs.Tracer`) collects per-cell spans;
    ``warm_pool`` (a :class:`repro.core.pool.WarmPool`) reuses worker
    processes across sweeps instead of spawning per call.
    """
    return _collect_cells(
        [scheme], samples=samples, seed=seed,
        exhaustive_triples=exhaustive_triples, workers=workers,
        cache=cache, cell_timeout=cell_timeout, tracer=tracer,
        heartbeat=heartbeat, retry=retry, warm_pool=warm_pool,
    )[scheme.name]


def weighted_outcomes(
    scheme: ECCScheme,
    *,
    probabilities: dict[ErrorPattern, float] | None = None,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    per_pattern: dict[ErrorPattern, PatternOutcome] | None = None,
) -> SchemeOutcome:
    """Figure 8: outcome probabilities weighted by Table 1.

    Pass ``per_pattern`` to reuse a previous :func:`evaluate_scheme` run.
    """
    probabilities = probabilities or TABLE1_PROBABILITIES
    per_pattern = per_pattern or evaluate_scheme(scheme, samples=samples, seed=seed)
    correct = sum(
        probabilities[pattern] * outcome.dce
        for pattern, outcome in per_pattern.items()
    )
    detect = sum(
        probabilities[pattern] * outcome.due
        for pattern, outcome in per_pattern.items()
    )
    sdc = sum(
        probabilities[pattern] * outcome.sdc
        for pattern, outcome in per_pattern.items()
    )
    return SchemeOutcome(
        scheme=scheme.name,
        label=scheme.label,
        correct=correct,
        detect=detect,
        sdc=sdc,
        per_pattern=per_pattern,
    )


def sdc_risk_table(
    schemes: list[ECCScheme],
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
    workers: int | None = None,
    cache=None,
    cell_timeout: float | None = None,
    tracer=None,
    heartbeat=None,
    retry: RetryPolicy | None = None,
    warm_pool=None,
) -> dict[str, dict[ErrorPattern, PatternOutcome]]:
    """Table 2: per-pattern outcomes for a list of schemes.

    With ``workers=N`` every (scheme, pattern) cell becomes one process-pool
    job — the widest fan-out this harness offers.  Seeds are spawned per
    pattern exactly as in :func:`evaluate_scheme`, so the table is
    bit-identical whatever ``workers`` is; worker failures and cell
    timeouts degrade to requeue-then-serial instead of killing the sweep.
    ``cache`` short-circuits cells already in the persistent run store, so
    an interrupted sweep re-invoked with the same parameters recomputes
    only its unfinished cells.
    """
    return _collect_cells(
        schemes, samples=samples, seed=seed,
        exhaustive_triples=exhaustive_triples, workers=workers,
        cache=cache, cell_timeout=cell_timeout, tracer=tracer,
        heartbeat=heartbeat, retry=retry, warm_pool=warm_pool,
    )

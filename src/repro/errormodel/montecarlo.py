"""Monte Carlo / exhaustive resilience evaluation (Table 2 and Figure 8).

For each ECC organization and each Table-1 error pattern, this harness
injects error patterns over the all-zero codeword (all evaluated codes are
linear, so outcomes depend only on the error pattern), decodes them in
vectorized batches, and labels each event:

* **DCE** — correct data delivered (including opportunistic corrections and
  errors confined to check bits);
* **DUE** — the decoder raised a detected-uncorrectable error; and
* **SDC** — wrong data delivered silently, either because the error aliased
  a codeword or because the decoder *miscorrected*.

Bit/pin/byte/2-bit patterns are evaluated exhaustively; 3-bit patterns are
exhaustive on request (``exhaustive_triples=True``) and otherwise sampled;
beat/entry patterns are always sampled.  Each estimate carries a 99%
Wilson-style confidence half-width so EXPERIMENTS.md can report precision,
mirroring the paper's ±0.0003%/±0.00003% statements.

Error batches travel bit-packed (uint64 words) end-to-end, so schemes with a
packed syndrome-LUT fast path never touch unpacked bits.  Each Table-2 cell
is seeded independently from ``np.random.SeedSequence(seed).spawn``, which
makes :func:`evaluate_scheme` and :func:`sdc_risk_table` with ``workers=N``
(a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out over cells)
bit-identical to the serial ``workers=1`` run.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.scheme import ECCScheme
from repro.errormodel.patterns import (
    TABLE1_PROBABILITIES,
    ErrorPattern,
)
from repro.errormodel.sampling import (
    enumerate_bit_errors_packed,
    enumerate_byte_errors_packed,
    enumerate_double_bit_errors_packed,
    enumerate_pin_errors_packed,
    iter_triple_bit_errors_packed,
    sample_beat_errors_packed,
    sample_entry_errors_packed,
    sample_triple_bit_errors_packed,
)

__all__ = [
    "PatternOutcome",
    "SchemeOutcome",
    "evaluate_pattern",
    "evaluate_scheme",
    "weighted_outcomes",
    "sdc_risk_table",
]

_Z99 = 2.576  # two-sided 99% normal quantile

_DEFAULT_SAMPLES = 200_000
_CHUNK = 65_536


@dataclass(frozen=True)
class PatternOutcome:
    """DCE/DUE/SDC fractions for one (scheme, pattern) cell of Table 2."""

    pattern: ErrorPattern
    events: int
    dce: float
    due: float
    sdc: float
    exhaustive: bool
    #: wall-clock seconds spent generating + decoding this cell (not part of
    #: the value — excluded from equality so timed runs still compare equal)
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def sdc_confidence_99(self) -> float:
        """99% half-width of the SDC estimate (0 for exhaustive cells)."""
        if self.exhaustive or self.events == 0:
            return 0.0
        variance = max(self.sdc * (1.0 - self.sdc), 1.0 / self.events)
        return _Z99 * float(np.sqrt(variance / self.events))

    @property
    def events_per_second(self) -> float:
        """Injection throughput of this cell (0 when not timed)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.events / self.elapsed_s

    def cell(self) -> str:
        """Table-2 style cell: "C" always corrected, "D" always detected,
        "C/D" when events split between the two without any SDC, otherwise
        the SDC percentage."""
        if self.sdc == 0.0:
            if self.due == 0.0:
                return "C"
            if self.dce == 0.0:
                return "D"
            return "C/D"
        return f"{self.sdc:.4%}"


@dataclass(frozen=True)
class SchemeOutcome:
    """Figure-8 style Table-1-weighted outcome probabilities."""

    scheme: str
    label: str
    correct: float
    detect: float
    sdc: float
    per_pattern: dict[ErrorPattern, PatternOutcome]

    def uncorrectable(self) -> float:
        """DUE probability — the quantity behind the paper's '7.87× fewer
        uncorrectable errors' claim."""
        return self.detect


def _decode_chunked(scheme: ECCScheme, errors: np.ndarray,
                    chunk: int = _CHUNK) -> tuple[int, int, int]:
    """(dce, due, sdc) counts over an error batch, decoded chunk-wise.

    A ``uint64`` batch is treated as bit-packed words and decoded through
    :meth:`ECCScheme.decode_batch_packed`; anything else goes through the
    unpacked :meth:`ECCScheme.decode_batch_errors`.
    """
    packed = errors.dtype == np.uint64
    dce = due = sdc = 0
    for start in range(0, errors.shape[0], chunk):
        part = errors[start : start + chunk]
        if packed:
            outcome = scheme.decode_batch_packed(part)
        else:
            outcome = scheme.decode_batch_errors(part)
        due_part = int(outcome.due.sum())
        sdc_part = int(outcome.sdc().sum())
        due += due_part
        sdc += sdc_part
        dce += part.shape[0] - due_part - sdc_part
    return dce, due, sdc


def evaluate_pattern(
    scheme: ECCScheme,
    pattern: ErrorPattern,
    *,
    samples: int = _DEFAULT_SAMPLES,
    rng: np.random.Generator | None = None,
    exhaustive_triples: bool = False,
) -> PatternOutcome:
    """Evaluate one Table-2 cell (timed; see ``PatternOutcome.elapsed_s``)."""
    rng = rng if rng is not None else np.random.default_rng(1234)
    started = time.perf_counter()

    exhaustive = True
    if pattern is ErrorPattern.BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_bit_errors_packed())
    elif pattern is ErrorPattern.PIN:
        dce, due, sdc = _decode_chunked(scheme, enumerate_pin_errors_packed())
    elif pattern is ErrorPattern.BYTE:
        dce, due, sdc = _decode_chunked(scheme, enumerate_byte_errors_packed())
    elif pattern is ErrorPattern.DOUBLE_BIT:
        dce, due, sdc = _decode_chunked(scheme, enumerate_double_bit_errors_packed())
    elif pattern is ErrorPattern.TRIPLE_BIT:
        if exhaustive_triples:
            dce = due = sdc = 0
            for block in iter_triple_bit_errors_packed():
                block_dce, block_due, block_sdc = _decode_chunked(scheme, block)
                dce += block_dce
                due += block_due
                sdc += block_sdc
        else:
            exhaustive = False
            dce, due, sdc = _decode_chunked(
                scheme, sample_triple_bit_errors_packed(samples, rng)
            )
    elif pattern is ErrorPattern.BEAT:
        exhaustive = False
        dce, due, sdc = _decode_chunked(
            scheme, sample_beat_errors_packed(samples, rng)
        )
    elif pattern is ErrorPattern.ENTRY:
        exhaustive = False
        dce, due, sdc = _decode_chunked(
            scheme, sample_entry_errors_packed(samples, rng)
        )
    else:
        raise ValueError(f"unknown pattern {pattern}")

    events = dce + due + sdc
    return PatternOutcome(
        pattern=pattern,
        events=events,
        dce=dce / events,
        due=due / events,
        sdc=sdc / events,
        exhaustive=exhaustive,
        elapsed_s=time.perf_counter() - started,
    )


def _scheme_payload(scheme: ECCScheme):
    """Cheapest picklable handle on a scheme for worker processes.

    Registry-built schemes travel as their name (workers rebuild them through
    the per-process registry cache); anything else is pickled whole.
    """
    from repro.core.registry import get_scheme

    try:
        if get_scheme(scheme.name) is scheme:
            return scheme.name
    except KeyError:
        pass
    return scheme


def _evaluate_cell(
    payload,
    pattern: ErrorPattern,
    samples: int,
    seed_seq: np.random.SeedSequence,
    exhaustive_triples: bool,
) -> PatternOutcome:
    """Worker entry point: one (scheme, pattern) cell with its own seed."""
    if isinstance(payload, str):
        from repro.core.registry import get_scheme

        scheme = get_scheme(payload)
    else:
        scheme = payload
    return evaluate_pattern(
        scheme,
        pattern,
        samples=samples,
        rng=np.random.default_rng(seed_seq),
        exhaustive_triples=exhaustive_triples,
    )


def _cell_seeds(seed: int) -> list[np.random.SeedSequence]:
    """One independent child seed per Table-2 pattern.

    The spawn is a pure function of ``seed``, so any execution order — serial
    or fanned out over workers — evaluates every cell with the same stream.
    """
    return np.random.SeedSequence(seed).spawn(len(ErrorPattern))


def evaluate_scheme(
    scheme: ECCScheme,
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
    workers: int | None = None,
) -> dict[ErrorPattern, PatternOutcome]:
    """All seven Table-2 cells for one scheme.

    With ``workers=N`` (N > 1) the cells fan out over a process pool;
    per-cell seeding makes the result bit-identical to the serial run.
    """
    cells = list(zip(ErrorPattern, _cell_seeds(seed)))
    if workers is not None and workers > 1:
        payload = _scheme_payload(scheme)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_evaluate_cell, payload, pattern, samples,
                            child, exhaustive_triples)
                for pattern, child in cells
            ]
            outcomes = [future.result() for future in futures]
    else:
        outcomes = [
            _evaluate_cell(scheme, pattern, samples, child, exhaustive_triples)
            for pattern, child in cells
        ]
    return {pattern: outcome for (pattern, _), outcome in zip(cells, outcomes)}


def weighted_outcomes(
    scheme: ECCScheme,
    *,
    probabilities: dict[ErrorPattern, float] | None = None,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    per_pattern: dict[ErrorPattern, PatternOutcome] | None = None,
) -> SchemeOutcome:
    """Figure 8: outcome probabilities weighted by Table 1.

    Pass ``per_pattern`` to reuse a previous :func:`evaluate_scheme` run.
    """
    probabilities = probabilities or TABLE1_PROBABILITIES
    per_pattern = per_pattern or evaluate_scheme(scheme, samples=samples, seed=seed)
    correct = sum(
        probabilities[pattern] * outcome.dce
        for pattern, outcome in per_pattern.items()
    )
    detect = sum(
        probabilities[pattern] * outcome.due
        for pattern, outcome in per_pattern.items()
    )
    sdc = sum(
        probabilities[pattern] * outcome.sdc
        for pattern, outcome in per_pattern.items()
    )
    return SchemeOutcome(
        scheme=scheme.name,
        label=scheme.label,
        correct=correct,
        detect=detect,
        sdc=sdc,
        per_pattern=per_pattern,
    )


def sdc_risk_table(
    schemes: list[ECCScheme],
    *,
    samples: int = _DEFAULT_SAMPLES,
    seed: int = 1234,
    exhaustive_triples: bool = False,
    workers: int | None = None,
) -> dict[str, dict[ErrorPattern, PatternOutcome]]:
    """Table 2: per-pattern outcomes for a list of schemes.

    With ``workers=N`` every (scheme, pattern) cell becomes one process-pool
    job — the widest fan-out this harness offers.  Seeds are spawned per
    pattern exactly as in :func:`evaluate_scheme`, so the table is
    bit-identical whatever ``workers`` is.
    """
    if workers is None or workers <= 1:
        return {
            scheme.name: evaluate_scheme(
                scheme,
                samples=samples,
                seed=seed,
                exhaustive_triples=exhaustive_triples,
            )
            for scheme in schemes
        }

    cells = list(zip(ErrorPattern, _cell_seeds(seed)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            (scheme.name, pattern): pool.submit(
                _evaluate_cell, _scheme_payload(scheme), pattern, samples,
                child, exhaustive_triples,
            )
            for scheme in schemes
            for pattern, child in cells
        }
        return {
            scheme.name: {
                pattern: futures[(scheme.name, pattern)].result()
                for pattern, _ in cells
            }
            for scheme in schemes
        }

"""Degraded operation: soft errors on top of a permanent pin fault.

Section 2.5 motivates single-pin correction as *graceful degradation*: a
cracked microbump or marginal joint can appear weeks after deployment, and
a pin-correcting ECC lets the GPU keep running until a scheduled
replacement.  The paper preserves pin correction in every organization
except SSC-DSD+ but never quantifies what operating with a dead pin costs;
this module does.

A permanent pin fault is modelled as data-dependent corruption of one wire:
on every access, each of the four beats' bits on that pin is wrong with
probability 1/2 (a stuck-at value disagrees with half the transmitted
values).  The evaluator superimposes that corruption on the usual Table-1
soft-error stream and reports outcome probabilities for the degraded
device, including the fraction of *fault-free* accesses (no soft error at
all) that still end in a DUE — the availability loss that forces immediate
replacement when pin correction is missing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import ENTRY_BITS, NUM_BEATS, NUM_PINS, bits_of_pin
from repro.core.scheme import ECCScheme
from repro.errormodel.patterns import TABLE1_PROBABILITIES, ErrorPattern
from repro.errormodel.sampling import sample_pattern

__all__ = ["DegradedOutcome", "sample_stuck_pin_flips", "evaluate_with_stuck_pin"]


@dataclass(frozen=True)
class DegradedOutcome:
    """Outcomes for a device with one permanently faulty pin."""

    scheme: str
    pin: int
    #: outcome mix for accesses that also suffer a Table-1 soft error
    correct_with_soft_error: float
    due_with_soft_error: float
    sdc_with_soft_error: float
    #: DUE probability for ordinary accesses (pin fault only) — the
    #: availability loss of running degraded
    due_without_soft_error: float

    @property
    def survives_degraded(self) -> bool:
        """Usable in the field: clean accesses almost never interrupt."""
        return self.due_without_soft_error < 0.01


def sample_stuck_pin_flips(pin: int, count: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Flip patterns a stuck pin inflicts on ``count`` random accesses.

    Each of the pin's four beat-bits disagrees with the stuck value with
    probability 1/2, independently per access.
    """
    if not 0 <= pin < NUM_PINS:
        raise ValueError(f"pin must be in [0, {NUM_PINS})")
    flips = np.zeros((count, ENTRY_BITS), dtype=np.uint8)
    mask = rng.integers(0, 2, size=(count, NUM_BEATS), dtype=np.uint8)
    flips[:, bits_of_pin(pin)] = mask
    return flips


def evaluate_with_stuck_pin(
    scheme: ECCScheme,
    *,
    pin: int = 17,
    samples: int = 50_000,
    probabilities: dict[ErrorPattern, float] | None = None,
    seed: int = 1234,
) -> DegradedOutcome:
    """Outcome probabilities for a device operating with one dead pin."""
    probabilities = probabilities or TABLE1_PROBABILITIES
    rng = np.random.default_rng(seed)

    # Availability: accesses with no soft error, only the pin corruption.
    clean_flips = sample_stuck_pin_flips(pin, samples, rng)
    nonzero = clean_flips.any(axis=1)
    clean_batch = scheme.decode_batch_errors(clean_flips[nonzero])
    due_clean = float(clean_batch.due.mean()) * float(nonzero.mean())

    # Resilience: a Table-1 soft error lands on the degraded device.
    patterns = list(probabilities)
    weights = np.array([probabilities[p] for p in patterns])
    counts = rng.multinomial(samples, weights / weights.sum())
    correct = due = sdc = 0
    total = 0
    for pattern, count in zip(patterns, counts):
        if count == 0:
            continue
        soft = sample_pattern(pattern, int(count), rng)
        combined = soft ^ sample_stuck_pin_flips(pin, int(count), rng)
        live = combined.any(axis=1)
        if not live.any():
            continue
        batch = scheme.decode_batch_errors(combined[live])
        due += int(batch.due.sum())
        sdc += int(batch.sdc().sum())
        correct += int(live.sum()) - int(batch.due.sum()) - int(batch.sdc().sum())
        total += int(live.sum())

    return DegradedOutcome(
        scheme=scheme.name,
        pin=pin,
        correct_with_soft_error=correct / total,
        due_with_soft_error=due / total,
        sdc_with_soft_error=sdc / total,
        due_without_soft_error=due_clean,
    )

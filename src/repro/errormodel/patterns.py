"""The paper's analytical soft-error model (Table 1).

Beam testing shows seven recurring corruption patterns inside a 32B+4B
memory entry.  Table 1 assigns each a probability; patterns are ordered by
increasing ECC difficulty, and when several patterns fit one observed error
the *less difficult* one wins (e.g. two erroneous bits inside one byte is a
"1 Byte" error, not a "2 Bits" error — see
:func:`repro.errormodel.classify.classify_error`).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ErrorPattern", "TABLE1_PROBABILITIES", "PATTERN_BIT_RANGES"]


class ErrorPattern(Enum):
    """The seven Table-1 patterns, in increasing ECC difficulty."""

    BIT = "1 Bit"  #: one flipped bit anywhere in the entry
    PIN = "1 Pin"  #: 2-4 flipped bits on a single pin (across beats)
    BYTE = "1 Byte"  #: 2-8 flipped bits within one aligned byte of one beat
    DOUBLE_BIT = "2 Bits"  #: 2 flipped bits not sharing a pin or byte
    TRIPLE_BIT = "3 Bits"  #: 3 flipped bits not confined to a pin or byte
    BEAT = "1 Beat"  #: >=4 flipped bits confined to one 72-bit beat
    ENTRY = "1 Entry"  #: flipped bits spanning multiple beats

    @property
    def difficulty(self) -> int:
        """Rank used for the priority rule (lower = easier to handle)."""
        return _DIFFICULTY[self]


_DIFFICULTY = {pattern: rank for rank, pattern in enumerate(ErrorPattern)}

#: Table 1 — soft error pattern probabilities measured in the beam.
TABLE1_PROBABILITIES: dict[ErrorPattern, float] = {
    ErrorPattern.BIT: 0.7398,
    ErrorPattern.PIN: 0.0019,
    ErrorPattern.BYTE: 0.2256,
    ErrorPattern.DOUBLE_BIT: 0.0011,
    ErrorPattern.TRIPLE_BIT: 0.0003,
    ErrorPattern.BEAT: 0.0090,
    ErrorPattern.ENTRY: 0.0223,
}

#: Table 1's "Bits" column — the affected-bit range of each pattern.
PATTERN_BIT_RANGES: dict[ErrorPattern, tuple[int, int]] = {
    ErrorPattern.BIT: (1, 1),
    ErrorPattern.PIN: (2, 4),
    ErrorPattern.BYTE: (2, 8),
    ErrorPattern.DOUBLE_BIT: (2, 2),
    ErrorPattern.TRIPLE_BIT: (3, 3),
    ErrorPattern.BEAT: (4, 64),
    ErrorPattern.ENTRY: (4, 256),
}

if abs(sum(TABLE1_PROBABILITIES.values()) - 1.0) > 1e-9:
    raise AssertionError("Table 1 probabilities must sum to 1")

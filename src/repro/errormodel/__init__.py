"""Analytical soft-error model and resilience evaluation harness."""

from repro.errormodel.classify import classify_error, classify_errors_batch
from repro.errormodel.montecarlo import (
    PatternOutcome,
    SchemeOutcome,
    evaluate_pattern,
    evaluate_scheme,
    sdc_risk_table,
    weighted_outcomes,
)
from repro.errormodel.patterns import (
    PATTERN_BIT_RANGES,
    TABLE1_PROBABILITIES,
    ErrorPattern,
)
from repro.errormodel.permanent import evaluate_with_stuck_pin
from repro.errormodel.sampling import sample_pattern

__all__ = [
    "classify_error",
    "classify_errors_batch",
    "PatternOutcome",
    "SchemeOutcome",
    "evaluate_pattern",
    "evaluate_scheme",
    "sdc_risk_table",
    "weighted_outcomes",
    "PATTERN_BIT_RANGES",
    "TABLE1_PROBABILITIES",
    "ErrorPattern",
    "sample_pattern",
    "evaluate_with_stuck_pin",
]

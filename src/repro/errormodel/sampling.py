"""Error-pattern generators for the Table-2 / Figure-8 evaluation.

Following the paper's methodology (Section 7.1):

* **bit, pin, byte and 2-bit** errors are enumerated *exhaustively* — their
  spaces are small (288, 792, 8,892 and 39,888 patterns respectively);
* **3-bit** errors can be enumerated exhaustively (~3.7M patterns) or
  sampled; and
* **beat and entry** errors are sampled uniformly at random (the paper uses
  1e7/1e9 samples on its cluster; the sample count here is a parameter).

"Uniformly random" for beat/entry errors means every bit of the region is
flipped independently with probability 1/2 — the conservative
random-corruption model Section 5 selects — followed by rejection of the
(vanishingly rare) draws that degrade into an easier pattern, matching the
priority rule of Table 1.
"""

from __future__ import annotations

from functools import cache

import numpy as np

from repro.core.layout import (
    BITS_PER_BYTE,
    ENTRY_BITS,
    NUM_BEATS,
    NUM_BYTES,
    NUM_PINS,
    bits_of_beat,
    bits_of_byte,
    bits_of_pin,
    byte_of,
    pin_of,
)
from repro.errormodel.classify import classify_errors_batch
from repro.errormodel.patterns import ErrorPattern
from repro.gf.gf2 import pack_rows

__all__ = [
    "enumerate_bit_errors",
    "enumerate_pin_errors",
    "enumerate_byte_errors",
    "enumerate_double_bit_errors",
    "enumerate_bit_errors_packed",
    "enumerate_pin_errors_packed",
    "enumerate_byte_errors_packed",
    "enumerate_double_bit_errors_packed",
    "iter_triple_bit_errors",
    "iter_triple_bit_errors_packed",
    "count_triple_bit_errors",
    "sample_triple_bit_errors",
    "sample_beat_errors",
    "sample_entry_errors",
    "sample_triple_bit_errors_packed",
    "sample_beat_errors_packed",
    "sample_entry_errors_packed",
    "sample_pattern",
    "pattern_space_size",
]


def _frozen(errors: np.ndarray) -> np.ndarray:
    """Mark a cached enumeration read-only so callers cannot corrupt it."""
    errors.setflags(write=False)
    return errors


def _multi_bit_masks(width: int, minimum_weight: int = 2) -> np.ndarray:
    """All ``width``-bit flip masks with at least ``minimum_weight`` bits."""
    values = np.arange(1 << width, dtype=np.int64)
    bits = ((values[:, None] >> np.arange(width)) & 1).astype(np.uint8)
    return bits[bits.sum(axis=1) >= minimum_weight]


@cache
def enumerate_bit_errors() -> np.ndarray:
    """All 288 single-bit errors (cached, read-only)."""
    return _frozen(np.eye(ENTRY_BITS, dtype=np.uint8))


@cache
def enumerate_pin_errors() -> np.ndarray:
    """All 72 pins × 11 multi-bit beat masks = 792 pin errors (cached)."""
    masks = _multi_bit_masks(NUM_BEATS)
    errors = np.zeros((NUM_PINS * masks.shape[0], ENTRY_BITS), dtype=np.uint8)
    row = 0
    for pin in range(NUM_PINS):
        positions = bits_of_pin(pin)
        for mask in masks:
            errors[row, positions] = mask
            row += 1
    return _frozen(errors)


@cache
def enumerate_byte_errors() -> np.ndarray:
    """All 36 byte positions × 247 multi-bit masks = 8,892 byte errors
    (cached)."""
    masks = _multi_bit_masks(BITS_PER_BYTE)
    errors = np.zeros((NUM_BYTES * masks.shape[0], ENTRY_BITS), dtype=np.uint8)
    row = 0
    for byte_position in range(NUM_BYTES):
        positions = bits_of_byte(byte_position)
        for mask in masks:
            errors[row, positions] = mask
            row += 1
    return _frozen(errors)


@cache
def enumerate_double_bit_errors() -> np.ndarray:
    """All bit pairs not sharing a pin or a byte (39,888 errors, cached)."""
    first, second = np.triu_indices(ENTRY_BITS, k=1)
    keep = (pin_of(first) != pin_of(second)) & (byte_of(first) != byte_of(second))
    first, second = first[keep], second[keep]
    errors = np.zeros((first.size, ENTRY_BITS), dtype=np.uint8)
    rows = np.arange(first.size)
    errors[rows, first] = 1
    errors[rows, second] = 1
    return _frozen(errors)


@cache
def enumerate_bit_errors_packed() -> np.ndarray:
    """:func:`enumerate_bit_errors` as (288, 5) packed uint64 words."""
    return _frozen(pack_rows(enumerate_bit_errors()))


@cache
def enumerate_pin_errors_packed() -> np.ndarray:
    """:func:`enumerate_pin_errors` as (792, 5) packed uint64 words."""
    return _frozen(pack_rows(enumerate_pin_errors()))


@cache
def enumerate_byte_errors_packed() -> np.ndarray:
    """:func:`enumerate_byte_errors` as (8892, 5) packed uint64 words."""
    return _frozen(pack_rows(enumerate_byte_errors()))


@cache
def enumerate_double_bit_errors_packed() -> np.ndarray:
    """:func:`enumerate_double_bit_errors` as (39888, 5) packed words."""
    return _frozen(pack_rows(enumerate_double_bit_errors()))


def iter_triple_bit_errors(chunk: int = 65536):
    """Yield blocks of all 3-bit errors not confined to one pin or byte.

    The full space has ~3.7M patterns; blocks are built vectorized (one per
    leading bit position, split to at most ``chunk`` rows) so the exhaustive
    Table-2 evaluation is decode-bound rather than generation-bound.
    """
    pins = pin_of(np.arange(ENTRY_BITS))
    bytes_ = byte_of(np.arange(ENTRY_BITS))
    for first in range(ENTRY_BITS - 2):
        rest = np.arange(first + 1, ENTRY_BITS)
        second_idx, third_idx = np.triu_indices(rest.size, k=1)
        second = rest[second_idx]
        third = rest[third_idx]
        same_pin = (pins[first] == pins[second]) & (pins[second] == pins[third])
        same_byte = (
            (bytes_[first] == bytes_[second]) & (bytes_[second] == bytes_[third])
        )
        keep = ~(same_pin | same_byte)
        second, third = second[keep], third[keep]
        for start in range(0, second.size, chunk):
            b_part = second[start : start + chunk]
            c_part = third[start : start + chunk]
            block = np.zeros((b_part.size, ENTRY_BITS), dtype=np.uint8)
            rows = np.arange(b_part.size)
            block[:, first] = 1
            block[rows, b_part] = 1
            block[rows, c_part] = 1
            yield block


def iter_triple_bit_errors_packed(chunk: int = 65536):
    """:func:`iter_triple_bit_errors` with blocks packed into uint64 words."""
    for block in iter_triple_bit_errors(chunk):
        yield pack_rows(block)


def count_triple_bit_errors() -> int:
    """Size of the exhaustive 3-bit space (closed form).

    C(288,3) minus triples inside one pin (none: pins have 4 bits, C(4,3)=4
    per pin) and inside one byte (C(8,3)=56 per byte).
    """
    total = ENTRY_BITS * (ENTRY_BITS - 1) * (ENTRY_BITS - 2) // 6
    in_pin = NUM_PINS * 4
    in_byte = NUM_BYTES * 56
    return total - in_pin - in_byte


def sample_triple_bit_errors(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform 3-bit errors (rejecting single-pin/single-byte triples)."""
    collected: list[np.ndarray] = []
    remaining = count
    while remaining > 0:
        draw = max(remaining * 2, 1024)
        picks = np.stack(
            [rng.integers(0, ENTRY_BITS, size=draw) for _ in range(3)], axis=1
        )
        distinct = (
            (picks[:, 0] != picks[:, 1])
            & (picks[:, 0] != picks[:, 2])
            & (picks[:, 1] != picks[:, 2])
        )
        picks = picks[distinct]
        pins = pin_of(picks)
        bytes_ = byte_of(picks)
        good = ~(
            ((pins[:, 0] == pins[:, 1]) & (pins[:, 1] == pins[:, 2]))
            | ((bytes_[:, 0] == bytes_[:, 1]) & (bytes_[:, 1] == bytes_[:, 2]))
        )
        picks = picks[good][:remaining]
        errors = np.zeros((picks.shape[0], ENTRY_BITS), dtype=np.uint8)
        rows = np.arange(picks.shape[0])
        for column in range(3):
            errors[rows, picks[:, column]] = 1
        collected.append(errors)
        remaining -= picks.shape[0]
    return np.concatenate(collected, axis=0)


def _rejection_sample(count: int, rng: np.random.Generator, pattern: ErrorPattern,
                      draw_fn) -> np.ndarray:
    """Draw with ``draw_fn`` until ``count`` rows classify as ``pattern``."""
    collected: list[np.ndarray] = []
    remaining = count
    while remaining > 0:
        errors = draw_fn(remaining)
        nonzero = errors.any(axis=1)
        errors = errors[nonzero]
        if errors.shape[0]:
            labels = classify_errors_batch(errors)
            errors = errors[labels == pattern]
        collected.append(errors[:remaining])
        remaining -= min(remaining, errors.shape[0])
    return np.concatenate(collected, axis=0)


def sample_beat_errors(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random corruption of one beat (each bit flips w.p. 1/2)."""

    def draw(n: int) -> np.ndarray:
        errors = np.zeros((n, ENTRY_BITS), dtype=np.uint8)
        beats = rng.integers(0, NUM_BEATS, size=n)
        masks = rng.integers(0, 2, size=(n, NUM_PINS), dtype=np.uint8)
        for beat in range(NUM_BEATS):
            rows = np.nonzero(beats == beat)[0]
            errors[rows[:, None], bits_of_beat(beat)[None, :]] = masks[rows]
        return errors

    return _rejection_sample(count, rng, ErrorPattern.BEAT, draw)


def sample_entry_errors(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random corruption of the whole entry."""

    def draw(n: int) -> np.ndarray:
        return rng.integers(0, 2, size=(n, ENTRY_BITS), dtype=np.uint8)

    return _rejection_sample(count, rng, ErrorPattern.ENTRY, draw)


def sample_triple_bit_errors_packed(count: int,
                                    rng: np.random.Generator) -> np.ndarray:
    """:func:`sample_triple_bit_errors` packed into uint64 words.

    Consumes the identical random stream as the unpacked sampler, so a
    packed evaluation reproduces the unpacked one bit-for-bit.
    """
    return pack_rows(sample_triple_bit_errors(count, rng))


def sample_beat_errors_packed(count: int, rng: np.random.Generator) -> np.ndarray:
    """:func:`sample_beat_errors` packed into uint64 words (same stream)."""
    return pack_rows(sample_beat_errors(count, rng))


def sample_entry_errors_packed(count: int, rng: np.random.Generator) -> np.ndarray:
    """:func:`sample_entry_errors` packed into uint64 words (same stream)."""
    return pack_rows(sample_entry_errors(count, rng))


def pattern_space_size(pattern: ErrorPattern) -> int | None:
    """Exact size of the pattern space, or None when it is astronomically
    large (beat/entry random-corruption spaces)."""
    sizes = {
        ErrorPattern.BIT: ENTRY_BITS,
        ErrorPattern.PIN: NUM_PINS * 11,
        ErrorPattern.BYTE: NUM_BYTES * 247,
        ErrorPattern.DOUBLE_BIT: 39888,
        ErrorPattern.TRIPLE_BIT: count_triple_bit_errors(),
    }
    return sizes.get(pattern)


def sample_pattern(pattern: ErrorPattern, count: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Uniform samples of any Table-1 pattern (used by the beam simulator)."""
    if pattern is ErrorPattern.BIT:
        pool = enumerate_bit_errors()
    elif pattern is ErrorPattern.PIN:
        pool = enumerate_pin_errors()
    elif pattern is ErrorPattern.BYTE:
        pool = enumerate_byte_errors()
    elif pattern is ErrorPattern.DOUBLE_BIT:
        pool = enumerate_double_bit_errors()
    elif pattern is ErrorPattern.TRIPLE_BIT:
        return sample_triple_bit_errors(count, rng)
    elif pattern is ErrorPattern.BEAT:
        return sample_beat_errors(count, rng)
    elif pattern is ErrorPattern.ENTRY:
        return sample_entry_errors(count, rng)
    else:
        raise ValueError(f"unknown pattern {pattern}")
    return pool[rng.integers(0, pool.shape[0], size=count)]

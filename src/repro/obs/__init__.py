"""repro.obs — structured observability for long-running pipelines.

Every long-running path in the reproduction (the Monte Carlo sweeps, the
columnar beam-statistics campaign, the cached CLI invocations) reports
through this package instead of hand-rolled timing dicts:

* :class:`Tracer` / :class:`SpanRecord` — hierarchical wall-clock spans
  (``span("campaign")`` → ``span("chunk", index=i)`` → ``span("scan")``)
  with numeric counters attached to the active span;
* :meth:`Tracer.merge` — process-pool-aware aggregation: workers run
  their own tracer, ship the finished :class:`SpanRecord` list back over
  the existing result channel, and the parent grafts them under its
  current span with worker provenance tags;
* :class:`Heartbeat` — periodic progress lines (items done, events/s,
  ETA) on stderr or an arbitrary callback;
* :func:`write_trace` / :func:`read_trace` — checksummed JSONL export,
  stored by the run store next to each run's manifest and rendered by
  ``repro runs trace <run-id>``;
* :func:`render_trace_tree` / :func:`render_slowest` — the flame-style
  per-stage tree and the slowest-span table behind that subcommand.

The package is dependency-free within ``repro`` (stdlib only), so every
layer — beam, errormodel, runs, cli — can import it without cycles.
"""

from repro.obs.heartbeat import Heartbeat
from repro.obs.render import render_slowest, render_trace_tree
from repro.obs.spans import (
    SpanRecord,
    Tracer,
    counter_totals,
    slowest_spans,
    stage_totals,
)
from repro.obs.trace import (
    TraceCorrupt,
    read_trace,
    read_trace_tolerant,
    write_trace,
)

__all__ = [
    "Heartbeat",
    "SpanRecord",
    "TraceCorrupt",
    "Tracer",
    "counter_totals",
    "read_trace",
    "read_trace_tolerant",
    "render_slowest",
    "render_trace_tree",
    "slowest_spans",
    "stage_totals",
    "write_trace",
]

"""Periodic progress heartbeats for long-running loops.

A :class:`Heartbeat` is fed ``update(done, events=...)`` from whatever
loop is making progress (chunks collected, cells finished).  At most once
per ``interval_s`` it emits one line — items done, events/s since the
start, and an ETA extrapolated from the completion rate — to stderr or to
an arbitrary ``callback``.  ``interval_s=0`` (or ``None``) disables
emission entirely, so harness code can thread one object through
unconditionally.

The heartbeat contract (relied on by the CLI and the docs):

* one line per emission, prefixed ``[repro] <label>:``;
* emissions are rate-limited by wall clock, never by update count;
* a final line is emitted by :meth:`close` only if at least one periodic
  line was emitted before it (quiet loops stay quiet).
"""

from __future__ import annotations

import sys
import time

__all__ = ["Heartbeat"]


class Heartbeat:
    """Rate-limited progress reporter (stderr or callback)."""

    def __init__(
        self,
        label: str,
        *,
        total: int | None = None,
        total_events: int | None = None,
        unit: str = "chunks",
        interval_s: float | None = 5.0,
        stream=None,
        callback=None,
        clock=time.monotonic,
    ) -> None:
        self.label = label
        self.total = total
        #: expected total event count; when set, the ETA extrapolates
        #: from events folded rather than jobs finished — job sizes vary
        #: (a streaming campaign's scout jobs race ahead of its
        #: evaluation jobs), event counts don't
        self.total_events = total_events
        self.unit = unit
        self.interval_s = interval_s
        self.stream = stream
        self.callback = callback
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self._done = 0
        self._events = 0
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return bool(self.interval_s) and self.interval_s > 0

    # -- progress feed --------------------------------------------------------
    def update(self, done: int | None = None, *, advance: int = 0,
               events: int = 0) -> None:
        """Record progress; emit one line if the interval has elapsed."""
        if done is not None:
            self._done = done
        else:
            self._done += advance
        self._events += events
        if not self.enabled:
            return
        now = self._clock()
        if now - self._last_emit >= self.interval_s:
            self._emit(now, final=False)
            self._last_emit = now

    def close(self) -> None:
        """Emit a closing line when periodic lines were already emitted."""
        if self.enabled and self.emitted:
            self._emit(self._clock(), final=True)

    # -- formatting -----------------------------------------------------------
    def _emit(self, now: float, final: bool) -> None:
        # Guard the zero-progress edges explicitly: a first emission with
        # done == 0 (no ETA possible) or a zero-resolution clock (elapsed
        # == 0, no rate possible) must degrade to fewer parts, not raise.
        elapsed = now - self._started
        parts = [f"{self._done}"]
        if self.total:
            parts[0] += f"/{self.total}"
        parts[0] += f" {self.unit}"
        if self._events:
            parts.append(f"{self._events:,} events")
            if elapsed > 0:
                parts.append(f"{self._events / elapsed:,.0f} events/s")
        if not final and elapsed > 0:
            # Prefer the event-count ETA when a budget is known; fall back
            # to job counting.  Both guard done == 0 (nothing folded yet —
            # no rate to extrapolate from).
            if self.total_events and 0 < self._events < self.total_events:
                remaining = (self.total_events - self._events) \
                    * (elapsed / self._events)
                parts.append(f"ETA {remaining:.0f}s")
            elif self.total and 0 < self._done < self.total:
                remaining = (self.total - self._done) \
                    * (elapsed / self._done)
                parts.append(f"ETA {remaining:.0f}s")
        if final:
            parts.append(f"done in {elapsed:.1f}s")
        line = f"[repro] {self.label}: " + ", ".join(parts)
        self.emitted += 1
        if self.callback is not None:
            self.callback(line)
            return
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream, flush=True)

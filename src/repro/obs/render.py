"""Terminal renderers for stored traces.

``render_trace_tree`` draws the flame-style per-stage span tree that
``repro runs trace <run-id>`` prints: one line per span, box-drawing
connectors for the hierarchy, durations right-aligned, attrs and
counters inline, worker provenance tagged.  ``render_slowest`` renders
the slowest-span table (e.g. the slowest chunks of a campaign) that
follows the tree.
"""

from __future__ import annotations

from repro.obs.spans import SpanRecord, slowest_spans

__all__ = ["render_trace_tree", "render_slowest"]


def _fmt_attrs(record: SpanRecord) -> str:
    parts = [f"{key}={value}" for key, value in record.attrs.items()]
    parts += [
        f"{key}={value:,}" if isinstance(value, int) else f"{key}={value:g}"
        for key, value in record.counters.items()
    ]
    if record.worker:
        parts.append(f"[{record.worker}]")
    return "  ".join(parts)


def _fmt_duration(seconds: float) -> str:
    if seconds >= 120.0:
        return f"{seconds / 60.0:.1f}m"
    if seconds >= 0.1:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_trace_tree(records: list[SpanRecord], *,
                      max_children: int = 12) -> str:
    """The span hierarchy as an indented tree, one line per span.

    Nodes with more than ``max_children`` children elide the middle,
    keeping the first and the slowest few — campaign traces with hundreds
    of chunks stay readable.  Pass ``max_children=0`` to show everything.
    """
    children: dict[int | None, list[SpanRecord]] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.start_s, r.span_id))

    lines: list[str] = []

    def _emit(record: SpanRecord, prefix: str, connector: str,
              child_prefix: str) -> None:
        attrs = _fmt_attrs(record)
        label = record.name + (f"  {attrs}" if attrs else "")
        lines.append(
            f"{prefix}{connector}{label:<56} {_fmt_duration(record.duration_s):>10}"
        )
        _walk(record.span_id, prefix + child_prefix)

    def _walk(parent_id: int | None, prefix: str) -> None:
        siblings = children.get(parent_id, [])
        elided = 0
        if max_children and len(siblings) > max_children:
            slow = {
                r.span_id
                for r in sorted(siblings, key=lambda r: r.duration_s,
                                reverse=True)[: max_children - 1]
            }
            shown = [r for i, r in enumerate(siblings)
                     if i == 0 or r.span_id in slow][:max_children]
            elided = len(siblings) - len(shown)
            siblings = shown
        for index, record in enumerate(siblings):
            last = index == len(siblings) - 1 and not elided
            if parent_id is None and prefix == "":
                _emit(record, "", "", "")
            else:
                _emit(record, prefix, "└─ " if last else "├─ ",
                      "   " if last else "│  ")
        if elided:
            lines.append(f"{prefix}└─ … {elided} more")

    _walk(None, "")
    return "\n".join(lines)


def render_slowest(records: list[SpanRecord], name: str,
                   top: int = 5) -> str:
    """Table of the ``top`` slowest spans named ``name`` (slowest first)."""
    slow = slowest_spans(records, name, top=top)
    if not slow:
        return f"no {name!r} spans in this trace"
    lines = [f"slowest {name} spans:",
             f"  {'span':<28} {'duration':>10}  {'details'}"]
    for record in slow:
        attrs = _fmt_attrs(record)
        label = name
        if "index" in record.attrs:
            label = f"{name} {record.attrs['index']}"
        lines.append(
            f"  {label:<28} {_fmt_duration(record.duration_s):>10}  {attrs}"
        )
    return "\n".join(lines)

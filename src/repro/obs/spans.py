"""Hierarchical wall-clock spans with attached counters.

A :class:`Tracer` owns one trace: a flat, append-only list of completed
:class:`SpanRecord` objects whose ``parent_id`` links encode the tree.
``tracer.span(name, **attrs)`` is a context manager; nesting spans nests
records.  Counters (plain numeric increments — events decoded, sites
injected, chunks requeued) attach to whichever span is active when
:meth:`Tracer.count` runs, so per-stage throughput falls out of the trace
instead of living in ad-hoc dicts.

Worker processes run their own tracer and return ``tracer.records`` over
whatever result channel already exists (a pickled tuple from a
``ProcessPoolExecutor`` future); the parent calls :meth:`Tracer.merge`,
which renumbers the worker's ids into the parent's id space, grafts the
worker's root spans under the parent's current span, and tags every
merged record with the worker label.  Start offsets stay relative to each
process's own trace epoch (worker clocks are not comparable to the
parent's); durations — the quantity every renderer and aggregate uses —
are exact everywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "stage_totals",
    "counter_totals",
    "slowest_spans",
]


@dataclass
class SpanRecord:
    """One finished span: identity, position in the tree, time, counters."""

    span_id: int
    parent_id: int | None
    name: str
    #: seconds since the owning tracer's epoch (per-process clock)
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    #: provenance tag for records merged from a worker process
    worker: str | None = None

    def to_dict(self) -> dict:
        """JSON-safe encoding (the trace-artifact line format)."""
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "dur_s": round(self.duration_s, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.counters:
            record["counters"] = self.counters
        if self.worker is not None:
            record["worker"] = self.worker
        return record

    @classmethod
    def from_dict(cls, record: dict) -> SpanRecord:
        return cls(
            span_id=int(record["id"]),
            parent_id=None if record.get("parent") is None
            else int(record["parent"]),
            name=str(record["name"]),
            start_s=float(record.get("start_s", 0.0)),
            duration_s=float(record.get("dur_s", 0.0)),
            attrs=dict(record.get("attrs") or {}),
            counters=dict(record.get("counters") or {}),
            worker=record.get("worker"),
        )


class _ActiveSpan:
    """Mutable in-flight span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("span_id", "parent_id", "name", "started", "attrs",
                 "counters")

    def __init__(self, span_id, parent_id, name, started, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started = started
        self.attrs = attrs
        self.counters: dict = {}


class _SpanContext:
    """The context manager ``Tracer.span`` returns (re-entrant per call)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_active")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._active = None

    def __enter__(self):
        self._active = self._tracer._push(self._name, self._attrs)
        return self._active

    def __exit__(self, exc_type, exc, tb):
        self._tracer._pop(self._active, failed=exc_type is not None)
        return False


class Tracer:
    """One trace: an id allocator, an active-span stack, finished records.

    Single-threaded by design — each process (parent or pool worker) owns
    exactly one tracer and the span stack mirrors the call stack.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.records: list[SpanRecord] = []
        self._stack: list[_ActiveSpan] = []
        self._next_id = 1

    # -- span lifecycle -------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the currently active span (or a root)."""
        return _SpanContext(self, name, attrs)

    def _push(self, name: str, attrs: dict) -> _ActiveSpan:
        parent_id = self._stack[-1].span_id if self._stack else None
        active = _ActiveSpan(self._next_id, parent_id, name,
                             self._clock(), attrs)
        self._next_id += 1
        self._stack.append(active)
        return active

    def _pop(self, active: _ActiveSpan, failed: bool = False) -> None:
        ended = self._clock()
        # tolerate mispaired exits: unwind to the span being closed
        while self._stack and self._stack[-1] is not active:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        attrs = dict(active.attrs)
        if failed:
            attrs["failed"] = True
        self.records.append(SpanRecord(
            span_id=active.span_id,
            parent_id=active.parent_id,
            name=active.name,
            start_s=active.started - self.epoch,
            duration_s=ended - active.started,
            attrs=attrs,
            counters=active.counters,
        ))

    # -- counters -------------------------------------------------------------
    def count(self, **counters) -> None:
        """Add numeric increments to the active span (no-op outside one)."""
        if not self._stack:
            return
        bucket = self._stack[-1].counters
        for name, value in counters.items():
            bucket[name] = bucket.get(name, 0) + value

    # -- pool-aware aggregation -----------------------------------------------
    def merge(self, records: list[SpanRecord],
              worker: str | None = None) -> None:
        """Graft a worker tracer's finished records under the active span.

        Worker span ids are renumbered into this tracer's id space, the
        worker's root spans become children of the currently active span
        (or trace roots when none is active), and every merged record is
        tagged with ``worker`` unless it already carries a tag.
        """
        if not records:
            return
        parent_id = self._stack[-1].span_id if self._stack else None
        remap = {}
        for record in records:
            remap[record.span_id] = self._next_id
            self._next_id += 1
        for record in records:
            self.records.append(SpanRecord(
                span_id=remap[record.span_id],
                parent_id=parent_id if record.parent_id is None
                else remap[record.parent_id],
                name=record.name,
                start_s=record.start_s,
                duration_s=record.duration_s,
                attrs=dict(record.attrs),
                counters=dict(record.counters),
                worker=record.worker if record.worker is not None else worker,
            ))


# ---------------------------------------------------------------------------
# Aggregates over finished records
# ---------------------------------------------------------------------------

def stage_totals(records: list[SpanRecord],
                 names: tuple[str, ...] | None = None) -> dict:
    """Accumulated wall-clock seconds per span name.

    ``names`` pre-seeds (and orders) the result — stages that never ran
    report 0.0 rather than disappearing.
    """
    totals: dict = dict.fromkeys(names, 0.0) if names else {}
    for record in records:
        if names is not None and record.name not in totals:
            continue
        totals[record.name] = totals.get(record.name, 0.0) \
            + record.duration_s
    return totals


def counter_totals(records: list[SpanRecord],
                   name: str | None = None) -> dict:
    """Summed counters across records (optionally one span name only)."""
    totals: dict = {}
    for record in records:
        if name is not None and record.name != name:
            continue
        for counter, value in record.counters.items():
            totals[counter] = totals.get(counter, 0) + value
    return totals


def slowest_spans(records: list[SpanRecord], name: str,
                  top: int = 5) -> list[SpanRecord]:
    """The ``top`` longest spans of one name, slowest first."""
    matching = [record for record in records if record.name == name]
    matching.sort(key=lambda record: record.duration_s, reverse=True)
    return matching[:top]

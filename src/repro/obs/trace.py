"""Checksummed JSONL trace artifacts.

One trace file is a JSON-lines document: a header line identifying the
artifact, one line per :class:`~repro.obs.spans.SpanRecord`, and a
SHA-256 trailer over everything before it — the same torn-write contract
the run store uses for cell and campaign artifacts, implemented here
standalone so ``repro.obs`` stays import-cycle-free.  Writes go through a
temp file and ``os.replace``; readers verify the trailer before trusting
a single byte and raise :class:`TraceCorrupt` on any damage.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.obs.spans import SpanRecord

__all__ = ["TraceCorrupt", "write_trace", "read_trace",
           "read_trace_tolerant", "TRACE_SCHEMA"]

#: Trace artifact schema version, bumped on incompatible format changes.
TRACE_SCHEMA = 1


class TraceCorrupt(RuntimeError):
    """A stored trace failed its checksum or structural validation."""


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_trace(path: str | os.PathLike, records: list[SpanRecord],
                meta: dict | None = None) -> Path:
    """Atomically write a trace artifact; returns the final path."""
    path = Path(path)
    header = {"schema": TRACE_SCHEMA, "kind": "trace", **(meta or {})}
    body = "".join(
        _canonical(line) + "\n"
        for line in [header, *(record.to_dict() for record in records)]
    )
    trailer = _canonical(
        {"sha256": hashlib.sha256(body.encode()).hexdigest()}
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(body + trailer + "\n")
    os.replace(tmp, path)
    return path


def read_trace(path: str | os.PathLike) -> tuple[dict, list[SpanRecord]]:
    """(header, records) for a stored trace; raises :class:`TraceCorrupt`."""
    path = Path(path)
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceCorrupt(f"{path}: unreadable ({exc})") from None
    head, _, tail = text.rstrip("\n").rpartition("\n")
    body = head + "\n" if head else ""
    try:
        expected = json.loads(tail)["sha256"]
    except (ValueError, TypeError, KeyError):
        raise TraceCorrupt(f"{path}: missing checksum trailer") from None
    if hashlib.sha256(body.encode()).hexdigest() != expected:
        raise TraceCorrupt(f"{path}: checksum mismatch")
    try:
        header, *lines = [json.loads(line) for line in body.splitlines()]
    except ValueError:
        raise TraceCorrupt(f"{path}: malformed record") from None
    if not isinstance(header, dict) or header.get("kind") != "trace":
        raise TraceCorrupt(f"{path}: not a trace artifact")
    try:
        records = [SpanRecord.from_dict(line) for line in lines]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceCorrupt(f"{path}: bad span record ({exc})") from None
    return header, records


def read_trace_tolerant(
    path: str | os.PathLike,
) -> tuple[dict, list[SpanRecord], str | None]:
    """(header, valid-prefix records, problem) for a possibly-damaged trace.

    The strict reader refuses the whole file on any damage; this one
    salvages what a truncated or torn trace still holds: every leading
    line that parses as a span record (after a parseable header) is
    returned, and ``problem`` describes the damage — or is None when the
    trace verified cleanly.  Nothing here raises :class:`TraceCorrupt`.
    """
    path = Path(path)
    try:
        return (*read_trace(path), None)
    except TraceCorrupt as exc:
        problem = str(exc)
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError):
        return {}, [], problem
    header: dict = {}
    records: list[SpanRecord] = []
    for index, line in enumerate(text.splitlines()):
        try:
            data = json.loads(line)
        except ValueError:
            break  # truncation point: nothing past it is trustworthy
        if not isinstance(data, dict) or "sha256" in data:
            break  # trailer (or garbage) ends the record prefix
        if index == 0:
            if data.get("kind") != "trace":
                break
            header = data
            continue
        try:
            records.append(SpanRecord.from_dict(data))
        except (KeyError, TypeError, ValueError):
            break
    return header, records, problem

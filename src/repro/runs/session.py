"""Run sessions: the glue between the CLI and the run store.

A :class:`RunSession` wraps one cached CLI invocation — it allocates a run
id, writes the ``running`` manifest up front (so interrupted sweeps leave
a resumable record), exposes a :class:`CellCache` for the Monte Carlo
harness, times named stages, and finalizes the manifest with cache
hit/miss counters.  ``--resume <id>`` re-opens a prior run's config so an
interrupted sweep restarts with identical parameters; the
content-addressed store then turns every already-completed cell into a
cache hit, so only the unfinished cells are recomputed.

Every session carries a :class:`repro.obs.Tracer`.  :meth:`RunSession.stage`
opens one span per named stage (still mirroring the wall-clock into
``manifest.stages`` for ``repro runs show``), the evaluation harnesses nest
their cell/chunk spans underneath it, and :meth:`RunSession.finish` exports
the whole tree as a checksummed JSONL trace artifact next to the manifest —
the file ``repro runs trace <run-id>`` renders.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager

import repro
from repro import faults
from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.obs import Tracer, counter_totals, write_trace
from repro.runs.artifacts import canonical_json
from repro.runs.durable import durable_append_line
from repro.runs.fingerprint import code_fingerprint
from repro.runs.manifest import RunManifest, git_commit, new_run_id
from repro.runs.store import RunStore

_LOGGER = logging.getLogger(__name__)

__all__ = ["CellCache", "RunSession", "CampaignCheckpoint",
           "read_checkpoint"]


def read_checkpoint(path) -> tuple[list[dict], int]:
    """(parsed entries, torn-line count) of a checkpoint log.

    Checkpoints are fsync'd line appends, so the only damage a crash can
    inflict is a torn *final* line; any unparseable line is treated as
    end-of-write garbage and counted, never raised.
    """
    import json

    if not path.exists():
        return [], 0
    entries, torn = [], 0
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            torn += 1
    return entries, torn


class CellCache:
    """Content-addressed cache of Table-2 cells, with hit/miss counters.

    This is the object :func:`repro.errormodel.montecarlo.evaluate_scheme`
    and :func:`~repro.errormodel.montecarlo.sdc_risk_table` accept as
    ``cache=``: ``lookup`` returns a stored
    :class:`~repro.errormodel.montecarlo.PatternOutcome` (bit-identical to
    a cold run) or None, and ``record`` persists a freshly computed one —
    appending to the session's checkpoint log so interrupted sweeps are
    observable cell by cell.
    """

    def __init__(
        self,
        store: RunStore,
        fingerprint: str | None = None,
        checkpoint_path=None,
    ) -> None:
        self.store = store
        self.fingerprint = fingerprint or code_fingerprint()
        self.checkpoint_path = checkpoint_path
        self.hits = 0
        self.misses = 0

    def key_for(self, scheme: str, pattern: ErrorPattern, samples: int,
                seed: int, exhaustive_triples: bool,
                token: str | None = None) -> str:
        return self.store.cell_key(
            scheme, pattern, samples, seed, exhaustive_triples,
            self.fingerprint, token=token,
        )

    def lookup(self, scheme: str, pattern: ErrorPattern, samples: int,
               seed: int, exhaustive_triples: bool,
               token: str | None = None) -> PatternOutcome | None:
        key = self.key_for(scheme, pattern, samples, seed, exhaustive_triples,
                           token)
        outcome = self.store.load_cell(key)
        if outcome is None or outcome.pattern is not pattern:
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def record(self, scheme: str, pattern: ErrorPattern, samples: int,
               seed: int, exhaustive_triples: bool,
               outcome: PatternOutcome, token: str | None = None) -> None:
        key = self.key_for(scheme, pattern, samples, seed, exhaustive_triples,
                           token)
        self.store.save_cell(key, outcome)
        if self.checkpoint_path is not None:
            self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
            durable_append_line(self.checkpoint_path, canonical_json({
                "kind": "cell",
                "key": key,
                "scheme": scheme,
                "pattern": pattern.name,
                "elapsed_s": outcome.elapsed_s,
                "t": time.time(),
            }), fault_point="checkpoint.torn_write")


class CampaignCheckpoint:
    """Append-only progress log for a beam campaign's microbenchmark runs.

    :meth:`repro.beam.campaign.BeamCampaign.run` calls :meth:`record_run`
    after each completed run, so an interrupted campaign leaves a
    time-stamped record of how far it got (visible via ``repro runs
    show``); the whole-campaign artifact cache then makes the re-invocation
    free once the campaign has completed once.
    """

    def __init__(self, path) -> None:
        self.path = path

    def record_run(self, run_index: int, records, clock) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        durable_append_line(self.path, canonical_json({
            "kind": "campaign-run",
            "run": run_index,
            "records": len(records),
            "elapsed_s": clock.elapsed_s,
            "fluence": clock.fluence,
            "t": time.time(),
        }), fault_point="checkpoint.torn_write")

    def completed_runs(self) -> list[dict]:
        entries, _ = read_checkpoint(self.path)
        return entries


class RunSession:
    """One cached CLI invocation: manifest + cell cache + stage timing."""

    def __init__(self, store: RunStore, manifest: RunManifest,
                 cache: CellCache) -> None:
        self.store = store
        self.manifest = manifest
        self.cell_cache = cache
        self.tracer = Tracer()

    @classmethod
    def begin(
        cls,
        command: str,
        config: dict,
        *,
        root=None,
        resume: str | None = None,
    ) -> RunSession:
        """Open a session, honoring ``--resume`` by re-reading that run's
        config (an explicit resume always restarts the *same* sweep)."""
        store = RunStore(root)
        if resume is not None:
            prior = store.load_manifest(resume)
            if prior.command != command:
                raise ValueError(
                    f"run {resume} was a `{prior.command}` invocation; "
                    f"it cannot resume `{command}`"
                )
            config = dict(prior.config)
        fingerprint = code_fingerprint()
        manifest = RunManifest(
            run_id=new_run_id(),
            command=command,
            config=config,
            status="running",
            started_at=time.time(),
            version=repro.__version__,
            fingerprint=fingerprint,
            git_commit=git_commit(),
            resumed_from=resume,
        )
        manifest.save(store.manifest_path(manifest.run_id))
        cache = CellCache(
            store, fingerprint,
            checkpoint_path=store.checkpoint_path(manifest.run_id),
        )
        return cls(store, manifest, cache)

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    @property
    def config(self) -> dict:
        return self.manifest.config

    @property
    def fingerprint(self) -> str:
        return self.manifest.fingerprint

    def campaign_checkpoint(self) -> CampaignCheckpoint:
        return CampaignCheckpoint(self.store.checkpoint_path(self.run_id))

    @contextmanager
    def stage(self, name: str):
        """Time one named stage into the manifest and the session trace."""
        started = time.perf_counter()
        try:
            with self.tracer.span(name):
                yield
        finally:
            self.manifest.stages[name] = round(
                time.perf_counter() - started, 6
            )

    def record_counters(self, counters: dict) -> None:
        """Merge command metrics (JSON-safe scalars) into the manifest —
        e.g. the statistics engine's per-stage events-per-second — so
        ``repro runs show`` can surface throughput alongside wall-clock."""
        self.manifest.counters.update(counters)

    @contextmanager
    def active(self):
        """Finalize the manifest whatever happens inside the body."""
        try:
            yield self
        except BaseException:
            self.finish(status="failed")
            raise
        else:
            self.finish(status="completed")

    def finish(self, status: str = "completed") -> None:
        self.manifest.status = status
        self.manifest.finished_at = time.time()
        self.manifest.cache_hits = self.cell_cache.hits
        self.manifest.cache_misses = self.cell_cache.misses
        self._export_trace()
        # Robustness incidents become manifest counters: every injected
        # fault (ledger-aware, so crashes of *predecessor* processes under
        # --resume still show) and every artifact quarantined this run.
        self.manifest.counters.update(faults.counters())
        if self.store.quarantined:
            self.manifest.counters["artifacts_quarantined"] = (
                self.store.quarantined
            )
        self.manifest.save(self.store.manifest_path(self.run_id))

    def _export_trace(self) -> None:
        """Persist the session trace next to the manifest (best effort)."""
        records = self.tracer.records
        if not records:
            return
        # Only root (stage-level) counters go to the manifest: nested spans
        # repeat their parents' tallies (a campaign's events counter is the
        # sum of its chunks'), so summing the whole tree would double-count.
        roots = [r for r in records if r.parent_id is None]
        for name, value in counter_totals(roots).items():
            self.manifest.counters.setdefault(name, value)
        try:
            write_trace(
                self.store.trace_path(self.run_id), records,
                meta={"run_id": self.run_id,
                      "command": self.manifest.command},
            )
        except OSError as exc:
            _LOGGER.warning("could not write trace for run %s (%s)",
                            self.run_id, exc)

    def summary(self) -> str:
        """One-line cache report the CLI prints after the tables."""
        return (
            f"[repro runs] {self.run_id}: "
            f"{self.cell_cache.hits} cache hits, "
            f"{self.cell_cache.misses} misses | store {self.store.root}"
        )

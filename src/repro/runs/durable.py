"""Crash-consistent file primitives shared by the run store and sessions.

Two write disciplines cover every artifact the store produces:

* :func:`durable_write_text` — the rename dance done properly: write a
  same-directory temp file, ``flush()`` + ``os.fsync``, ``os.replace``
  onto the final name, then fsync the directory so the rename itself
  survives a power cut.  A crash at any instant leaves either the old
  artifact or the new one, never a hybrid.
* :func:`durable_append_line` — for append-only checkpoint logs, where
  rename-replace would be quadratic: append one line, flush, fsync.  A
  mid-append crash can still leave a torn final line, which is why every
  checkpoint *reader* treats an unparseable tail as end-of-log.

Both accept a ``fault_point`` prefix; when fault injection is active the
``<prefix>.pre_rename`` / ``<prefix>.post_rename`` (or the bare append
point) hooks let a chaos schedule crash a writer at the exact instants
these disciplines are designed to survive.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path

from repro.faults import faultpoint

__all__ = ["durable_append_line", "durable_write_text", "fsync_dir"]

_TMP_SEQ = itertools.count()


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename) to disk; best-effort on
    filesystems that refuse O_RDONLY directory fds."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    fault_point: str | None = None,
) -> None:
    """Atomically and durably replace ``path`` with ``text``."""
    path = Path(path)
    # The temp name must be unique per *writer*, not just per process:
    # two threads racing the same artifact key would otherwise share one
    # temp file and the losing rename raises FileNotFoundError.
    tmp = path.with_name(
        f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}"
        f"-{next(_TMP_SEQ)}")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    if fault_point is not None:
        faultpoint(f"{fault_point}.pre_rename", path=str(path), data=text)
    os.replace(tmp, path)
    if fault_point is not None:
        faultpoint(f"{fault_point}.post_rename", path=str(path))
    fsync_dir(path.parent)


def durable_append_line(
    path: str | os.PathLike,
    line: str,
    *,
    fault_point: str | None = None,
) -> None:
    """Durably append one newline-terminated line to a checkpoint log."""
    if not line.endswith("\n"):
        line += "\n"
    if fault_point is not None:
        faultpoint(fault_point, path=str(path), data=line, append=True)
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())

"""Code fingerprint: the cache-invalidation half of the run store's keys.

A cached cell is only reusable if the code that would recompute it is
unchanged, so every cache key mixes in a digest of the ``repro`` package
sources.  The digest covers everything that feeds a numerical result —
codes, decoders, samplers, the Monte Carlo harness, the beam/DRAM
simulation and the system models — and deliberately excludes the layers
that only *present* results (``repro.analysis``, ``repro.cli``) and the
run store itself (``repro.runs``), so formatting tweaks and store
development don't invalidate terabytes of perfectly good artifacts.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

__all__ = ["code_fingerprint"]

#: Top-level ``repro`` subpackages that cannot change a stored result.
_PRESENTATION_PACKAGES = ("runs", "analysis")
#: Top-level ``repro`` modules that cannot change a stored result.
_PRESENTATION_MODULES = ("cli.py", "__main__.py")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest (16 chars) over every result-bearing ``repro`` source."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.split("/", 1)[0] in _PRESENTATION_PACKAGES:
            continue
        if rel in _PRESENTATION_MODULES:
            continue
        digest.update(rel.encode())
        digest.update(b"\x00")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()[:16]

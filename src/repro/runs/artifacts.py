"""Checksummed JSONL artifacts and the dataclass codecs that fill them.

Every file the run store writes — cell outcomes, campaign logs — is a
JSON-lines document whose final line is a SHA-256 trailer over everything
before it.  Readers verify the trailer before trusting a single byte, so a
torn write, a truncated disk, or a flipped bit surfaces as
:class:`ArtifactCorrupt` (and the store recomputes) instead of silently
poisoning downstream tables.  Writes go through
:func:`repro.runs.durable.durable_write_text` — same-directory temp file,
fsync, ``os.replace``, directory fsync — so a concurrent reader never
sees a half-written artifact and a crash never leaves one behind.

Floats round-trip exactly: ``json`` serializes via ``float.__repr__``
(shortest round-trip representation), so a cache hit reproduces the cold
run's :class:`~repro.errormodel.montecarlo.PatternOutcome` bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.beam.microbenchmark import MismatchRecord
from repro.runs.durable import durable_write_text
from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern

__all__ = [
    "ArtifactCorrupt",
    "canonical_json",
    "write_jsonl_atomic",
    "read_jsonl",
    "outcome_to_record",
    "outcome_from_record",
    "mismatch_to_record",
    "mismatch_from_record",
]


class ArtifactCorrupt(RuntimeError):
    """A stored artifact failed its checksum or structural validation."""


def canonical_json(obj) -> str:
    """Deterministic single-line JSON (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_jsonl_atomic(path: Path, records: list[dict],
                       *, fault_point: str | None = None) -> None:
    """Write records + checksum trailer, atomically and durably."""
    body = "".join(canonical_json(record) + "\n" for record in records)
    trailer = canonical_json(
        {"sha256": hashlib.sha256(body.encode()).hexdigest()}
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    durable_write_text(path, body + trailer + "\n", fault_point=fault_point)


def read_jsonl(path: Path) -> list[dict]:
    """Read records back, verifying the checksum trailer.

    Raises :class:`ArtifactCorrupt` on any damage — unreadable file,
    missing trailer, checksum mismatch, or malformed record lines.
    """
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise ArtifactCorrupt(f"{path}: unreadable ({exc})") from None
    head, _, tail = text.rstrip("\n").rpartition("\n")
    body = head + "\n" if head else ""
    try:
        expected = json.loads(tail)["sha256"]
    except (ValueError, TypeError, KeyError):
        raise ArtifactCorrupt(f"{path}: missing checksum trailer") from None
    actual = hashlib.sha256(body.encode()).hexdigest()
    if actual != expected:
        raise ArtifactCorrupt(f"{path}: checksum mismatch")
    try:
        return [json.loads(line) for line in body.splitlines()]
    except ValueError:
        raise ArtifactCorrupt(f"{path}: malformed record") from None


# -- dataclass codecs ---------------------------------------------------------

def outcome_to_record(outcome: PatternOutcome) -> dict:
    """Serialize one Table-2 cell outcome."""
    return {
        "pattern": outcome.pattern.name,
        "events": outcome.events,
        "dce": outcome.dce,
        "due": outcome.due,
        "sdc": outcome.sdc,
        "exhaustive": outcome.exhaustive,
        "elapsed_s": outcome.elapsed_s,
    }


def outcome_from_record(record: dict) -> PatternOutcome:
    """Inverse of :func:`outcome_to_record` (exact float round-trip)."""
    return PatternOutcome(
        pattern=ErrorPattern[record["pattern"]],
        events=int(record["events"]),
        dce=float(record["dce"]),
        due=float(record["due"]),
        sdc=float(record["sdc"]),
        exhaustive=bool(record["exhaustive"]),
        elapsed_s=float(record.get("elapsed_s", 0.0)),
    )


def mismatch_to_record(record: MismatchRecord) -> dict:
    """Serialize one beam-campaign mismatch observation."""
    return {
        "time_s": record.time_s,
        "run": record.run,
        "pattern": record.pattern,
        "write_cycle": record.write_cycle,
        "read_pass": record.read_pass,
        "inverted": record.inverted,
        "entry_index": record.entry_index,
        "bit_positions": list(record.bit_positions),
    }


def mismatch_from_record(record: dict) -> MismatchRecord:
    """Inverse of :func:`mismatch_to_record`."""
    return MismatchRecord(
        time_s=float(record["time_s"]),
        run=int(record["run"]),
        pattern=str(record["pattern"]),
        write_cycle=int(record["write_cycle"]),
        read_pass=int(record["read_pass"]),
        inverted=bool(record["inverted"]),
        entry_index=int(record["entry_index"]),
        bit_positions=tuple(int(bit) for bit in record["bit_positions"]),
    )

"""The ``repro runs`` subcommand: inspect and maintain the run store.

``repro runs list``            every stored run, newest first
``repro runs show <id>``       one run's manifest, stages and checkpoint
``repro runs trace <id>``      one run's span tree and slowest-span table
``repro runs diff <a> <b>``    compare two runs' config/provenance/counters
``repro runs gc``              drop artifacts and runs older than ``--days``

All timestamps render in UTC (suffixed ``Z``): manifests store UTC epoch
seconds, and mixing naive local time into the display made runs appear to
start hours away from their run-id timestamps.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

from repro.analysis.tables import format_table
from repro.runs.session import read_checkpoint
from repro.runs.store import RunStore

__all__ = ["add_runs_parser", "cmd_runs"]


def add_runs_parser(sub) -> None:
    """Register the ``runs`` subcommand on the main CLI's subparsers."""
    runs = sub.add_parser("runs", help="inspect the persistent run store")
    runs.add_argument("--runs-dir", default=None,
                      help="store root (default: $REPRO_RUNS_DIR or "
                           "~/.cache/repro-runs)")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_sub.add_parser("list", help="list stored runs, newest first")

    show = runs_sub.add_parser("show", help="print one run's manifest")
    show.add_argument("run_id")

    trace = runs_sub.add_parser(
        "trace", help="render one run's span tree and slowest spans")
    trace.add_argument("run_id")
    trace.add_argument("--limit", type=int, default=12, metavar="N",
                       help="children shown per span before eliding "
                            "(0 shows everything; default 12)")
    trace.add_argument("--slowest", type=int, default=5, metavar="N",
                       help="rows in the slowest-span table (default 5)")

    diff = runs_sub.add_parser("diff", help="compare two runs")
    diff.add_argument("run_a")
    diff.add_argument("run_b")

    gc = runs_sub.add_parser("gc", help="remove old artifacts and runs")
    gc.add_argument("--days", type=float, default=30.0,
                    help="age threshold in days (default 30)")
    gc.add_argument("--all", action="store_true",
                    help="empty the store regardless of age")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without removing it")


def _fmt_when(timestamp: float) -> str:
    """Manifest timestamps are UTC epoch seconds; render them as UTC too
    (explicit ``Z``), matching the UTC stamp embedded in run ids."""
    when = datetime.fromtimestamp(timestamp, tz=timezone.utc)
    return when.strftime("%Y-%m-%d %H:%M:%SZ")


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 120.0:
        return f"{seconds:.1f}s"
    return f"{seconds / 60.0:.1f}m"


def _cmd_list(store: RunStore) -> None:
    manifests = store.list_runs()
    if not manifests:
        print(f"no runs stored under {store.root}")
        return
    rows = [
        [m.run_id, m.command, m.status, _fmt_when(m.started_at),
         _fmt_duration(m.duration_s), str(m.cache_hits),
         str(m.cache_misses), m.resumed_from or "-"]
        for m in manifests
    ]
    print(format_table(
        ["run", "command", "status", "started", "took", "hits", "misses",
         "resumed from"],
        rows, title=f"run store: {store.root}",
    ))


def _fmt_counter(value) -> str:
    """One uniform rendering for manifest and obs counters."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.6g}"
    return str(value)


def _cmd_show(store: RunStore, run_id: str) -> None:
    manifest = store.load_manifest(run_id)
    print(f"run        {manifest.run_id}")
    print(f"command    {manifest.command}")
    print(f"status     {manifest.status}")
    print(f"started    {_fmt_when(manifest.started_at)}")
    print(f"took       {_fmt_duration(manifest.duration_s)}")
    print(f"version    {manifest.version}")
    print(f"code       {manifest.fingerprint}")
    print(f"commit     {manifest.git_commit or '-'}")
    print(f"cache      {manifest.cache_hits} hits, "
          f"{manifest.cache_misses} misses")
    if manifest.resumed_from:
        print(f"resumed    {manifest.resumed_from}")
    print(f"config     {json.dumps(manifest.config, sort_keys=True)}")
    if manifest.stages:
        print("stages:")
        for name, seconds in manifest.stages.items():
            print(f"  {name:<24} {seconds:.3f}s")
    if manifest.counters:
        print("counters:")
        for name in sorted(manifest.counters):
            print(f"  {name:<24} {_fmt_counter(manifest.counters[name])}")
    entries, torn = read_checkpoint(store.checkpoint_path(run_id))
    if entries:
        suffix = f" ({torn} torn line{'s' * (torn != 1)})" if torn else ""
        print(f"checkpoint {len(entries)} completed "
              f"{'cells' if entries[0].get('kind') == 'cell' else 'runs'}"
              f"{suffix}")
    if store.trace_path(run_id).exists():
        print(f"trace      stored (`repro runs trace {run_id}`)")


def _cmd_trace(store: RunStore, run_id: str, limit: int,
               slowest: int) -> int:
    """Render a stored trace, salvaging the valid prefix when damaged.

    Exit 1 when no trace exists, 0 otherwise — a truncated or torn
    ``trace.jsonl`` (e.g. from a killed run) renders whatever prefix
    survived, with a warning on stderr, instead of refusing outright.
    """
    import sys
    from collections import Counter

    from repro.obs import (
        read_trace_tolerant,
        render_slowest,
        render_trace_tree,
    )

    manifest = store.load_manifest(run_id)  # surfaces UnknownRunError first
    path = store.trace_path(run_id)
    if not path.exists():
        print(f"run {run_id} has no stored trace "
              "(recorded before tracing existed, or with caching off)")
        return 1
    _, records, problem = read_trace_tolerant(path)
    if problem is not None:
        print(f"repro: warning: trace for run {run_id} is damaged "
              f"({problem}); rendering the {len(records)} spans that "
              "survived", file=sys.stderr)
    print(f"trace of run {run_id} ({manifest.command}, "
          f"{len(records)} spans)")
    print()
    print(render_trace_tree(records, max_children=limit))
    leaves = Counter(r.name for r in records if r.parent_id is not None)
    if leaves and slowest > 0:
        name = leaves.most_common(1)[0][0]
        print()
        print(render_slowest(records, name, top=slowest))
    return 0


def _cmd_diff(store: RunStore, run_a: str, run_b: str) -> None:
    a = store.load_manifest(run_a)
    b = store.load_manifest(run_b)
    rows = []
    keys = sorted(set(a.config) | set(b.config))
    for key in keys:
        left, right = a.config.get(key), b.config.get(key)
        if left != right:
            rows.append([f"config.{key}", repr(left), repr(right)])
    for label, left, right in (
        ("command", a.command, b.command),
        ("status", a.status, b.status),
        ("version", a.version, b.version),
        ("code fingerprint", a.fingerprint, b.fingerprint),
        ("git commit", a.git_commit, b.git_commit),
        ("cache hits", a.cache_hits, b.cache_hits),
        ("cache misses", a.cache_misses, b.cache_misses),
        ("took", _fmt_duration(a.duration_s), _fmt_duration(b.duration_s)),
    ):
        if left != right:
            rows.append([label, str(left), str(right)])
    if not rows:
        print(f"runs {run_a} and {run_b} are identical "
              "(config, provenance and counters)")
        return
    print(format_table(["field", run_a, run_b], rows,
                       title="run differences"))


def _cmd_gc(store: RunStore, days: float, dry_run: bool) -> None:
    stats = store.gc(days=days, dry_run=dry_run)
    verb = "would remove" if dry_run else "removed"
    print(f"{verb} {stats.artifacts} artifacts and {stats.runs} runs "
          f"({stats.bytes / 1024:.1f} KiB) older than {days:g} days "
          f"from {store.root}")
    if stats.protected:
        print(f"kept {stats.protected} expired paths still referenced by "
              "in-progress or resumable runs")


def cmd_runs(args) -> int:
    """Dispatch ``repro runs <command>``; returns a process exit code."""
    import sys

    from repro.runs.store import UnknownRunError

    store = RunStore(args.runs_dir)
    try:
        if args.runs_command == "list":
            _cmd_list(store)
        elif args.runs_command == "show":
            _cmd_show(store, args.run_id)
        elif args.runs_command == "trace":
            return _cmd_trace(store, args.run_id, args.limit, args.slowest)
        elif args.runs_command == "diff":
            _cmd_diff(store, args.run_a, args.run_b)
        elif args.runs_command == "gc":
            days = 0.0 if args.all else args.days
            _cmd_gc(store, days, args.dry_run)
    except UnknownRunError as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro: error: {message}", file=sys.stderr)
        return 2
    return 0

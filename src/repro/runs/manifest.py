"""Per-invocation run manifests.

Every cached CLI invocation writes one manifest: what was asked for
(command + config), what produced it (package version, code fingerprint,
git commit when available), how it went (status, wall-clock per stage,
cache hit/miss counters) and where it came from (``resumed_from``).  The
manifest is written atomically twice — once as ``running`` when the
invocation starts, so an interrupted sweep still leaves a resumable
record, and once with its final status and counters at the end.
"""

from __future__ import annotations

import json
import secrets
import subprocess
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.runs.durable import durable_write_text

__all__ = ["RunManifest", "new_run_id", "git_commit"]

_SCHEMA = 1


def new_run_id(now: float | None = None) -> str:
    """Sortable, collision-resistant run id: UTC timestamp + random hex."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
    return f"{stamp}-{secrets.token_hex(3)}"


def git_commit() -> str | None:
    """Short commit hash of the working tree, or None outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=2.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = result.stdout.strip()
    return commit if result.returncode == 0 and commit else None


@dataclass
class RunManifest:
    """Provenance record of one cached CLI invocation."""

    run_id: str
    command: str
    config: dict
    status: str = "running"  #: running | completed | failed
    started_at: float = 0.0
    finished_at: float | None = None
    version: str = ""
    fingerprint: str = ""
    git_commit: str | None = None
    #: wall-clock seconds per named stage, in execution order
    stages: dict = field(default_factory=dict)
    #: free-form command metrics (e.g. per-stage events_per_second)
    counters: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    resumed_from: str | None = None

    @property
    def duration_s(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return {"schema": _SCHEMA, **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> RunManifest:
        """Build a manifest from stored JSON, tolerating schema drift.

        Older manifests may lack fields added since they were written and
        newer ones may carry fields this version doesn't know; both load —
        unknown keys are dropped, missing ones take their defaults.  Only
        the identity fields (``run_id``, ``command``) are required.
        """
        if not isinstance(data, dict):
            raise ValueError(f"manifest is not an object: {data!r}")
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in data.items() if k in known}
        for required in ("run_id", "command"):
            if required not in data:
                raise ValueError(f"manifest is missing {required!r}")
        data.setdefault("config", {})
        return cls(**data)

    def save(self, path: Path) -> None:
        """Atomic, durable write (temp file + fsync + rename)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        durable_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            fault_point="store.manifest",
        )

    @classmethod
    def load(cls, path: Path) -> RunManifest:
        return cls.from_dict(json.loads(path.read_text()))

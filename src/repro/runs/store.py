"""The persistent run store: content-addressed artifacts on local disk.

Layout under the store root (``--runs-dir`` flag > ``REPRO_RUNS_DIR`` env
var > ``~/.cache/repro-runs``)::

    cells/<kk>/<key>.jsonl       one Table-2 cell (PatternOutcome) per file
    campaigns/<kk>/<key>.jsonl   one beam campaign (meta + mismatch log)
    runs/<run_id>/manifest.json  one manifest per CLI invocation
    runs/<run_id>/checkpoint.jsonl  append-only completed-cell/run log

``<key>`` is the SHA-256 of the canonical JSON of the cell's identity —
scheme, pattern, samples, seed, exhaustive flag, and the code fingerprint
(:func:`repro.runs.fingerprint.code_fingerprint`) — and ``<kk>`` its first
two hex chars (a fan-out directory so huge stores stay ``ls``-able).
Exhaustive cells normalize ``samples``/``seed`` to ``None``: their outcome
cannot depend on either, so ``repro evaluate --samples 500`` and ``repro
fig8 --samples 2000`` share the same artifact.

Corrupt artifacts (failed checksum, bad structure) are *quarantined* on
load — moved to ``quarantine/`` for post-mortem, never silently reused —
and reported as misses, so the caller transparently recomputes them.
Saves go through fsync'd atomic writes (:mod:`repro.runs.durable`), so a
crash mid-save never leaves a half-written artifact under its key.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path

from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.runs.artifacts import (
    ArtifactCorrupt,
    canonical_json,
    outcome_from_record,
    outcome_to_record,
    read_jsonl,
    write_jsonl_atomic,
)
from repro.runs.manifest import RunManifest

__all__ = ["RunStore", "GCStats", "UnknownRunError", "resolve_root",
           "ENV_VAR", "DEFAULT_ROOT"]

_LOGGER = logging.getLogger(__name__)

ENV_VAR = "REPRO_RUNS_DIR"
DEFAULT_ROOT = "~/.cache/repro-runs"

#: Artifact schema version, bumped on incompatible layout changes.
_SCHEMA = 1

#: Patterns whose Table-2 cell is always enumerated exhaustively, making
#: the outcome independent of ``samples`` and ``seed``.
_ALWAYS_EXHAUSTIVE = frozenset({
    ErrorPattern.BIT,
    ErrorPattern.PIN,
    ErrorPattern.BYTE,
    ErrorPattern.DOUBLE_BIT,
})


class UnknownRunError(KeyError):
    """A run id was requested that the store has no manifest for."""


@dataclass(frozen=True)
class GCStats:
    """What a :meth:`RunStore.gc` pass removed (or would remove)."""

    artifacts: int
    runs: int
    bytes: int
    #: expired paths kept anyway because a live run still needs them
    protected: int = 0


def resolve_root(root: str | os.PathLike | None = None) -> Path:
    """Store root: explicit argument > ``REPRO_RUNS_DIR`` > default."""
    if root is not None:
        return Path(root).expanduser()
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path(DEFAULT_ROOT).expanduser()


class RunStore:
    """Content-addressed artifact store plus per-invocation run records."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = resolve_root(root)
        #: corrupt artifacts moved aside by this store instance
        self.quarantined = 0

    # -- paths ----------------------------------------------------------------
    def cell_path(self, key: str) -> Path:
        return self.root / "cells" / key[:2] / f"{key}.jsonl"

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def campaign_path(self, key: str) -> Path:
        return self.root / "campaigns" / key[:2] / f"{key}.jsonl"

    def run_dir(self, run_id: str) -> Path:
        return self.root / "runs" / run_id

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "manifest.json"

    def checkpoint_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "checkpoint.jsonl"

    def trace_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "trace.jsonl"

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def cache_key(material: dict) -> str:
        """SHA-256 of the canonical JSON of an identity dict."""
        return sha256(canonical_json(material).encode()).hexdigest()

    @classmethod
    def cell_key(
        cls,
        scheme: str,
        pattern: ErrorPattern,
        samples: int,
        seed: int,
        exhaustive_triples: bool,
        fingerprint: str,
        *,
        token: str | None = None,
    ) -> str:
        """Content address of one (scheme, pattern) Table-2 cell.

        ``token`` is the scheme's construction identity
        (:meth:`repro.core.scheme.ECCScheme.cache_token`) — an H-matrix
        digest for searched/parameterized codes — so two variants sharing
        a registry name can never collide.  It defaults to the name for
        callers addressing a scheme purely by registry identity.
        """
        exhaustive = pattern in _ALWAYS_EXHAUSTIVE or (
            pattern is ErrorPattern.TRIPLE_BIT and exhaustive_triples
        )
        return cls.cache_key({
            "schema": _SCHEMA,
            "kind": "cell",
            "scheme": scheme,
            "scheme_code": scheme if token is None else token,
            "pattern": pattern.name,
            "samples": None if exhaustive else int(samples),
            "seed": None if exhaustive else int(seed),
            "exhaustive": exhaustive,
            "code": fingerprint,
        })

    @classmethod
    def campaign_key(cls, config_material: dict, fingerprint: str) -> str:
        """Content address of one whole beam campaign."""
        return cls.cache_key({
            "schema": _SCHEMA,
            "kind": "campaign",
            "config": config_material,
            "code": fingerprint,
        })

    # -- quarantine -----------------------------------------------------------
    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt artifact aside for post-mortem instead of
        deleting it; the caller recomputes and overwrites cleanly."""
        dest_dir = self.quarantine_dir()
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / path.name
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = dest_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, dest)
        except OSError:
            path.unlink(missing_ok=True)  # cross-device edge; still a miss
        self.quarantined += 1
        _LOGGER.warning(
            "quarantined corrupt artifact %s -> %s (%s); it will be "
            "recomputed", path.name, dest, exc,
        )

    # -- cell artifacts -------------------------------------------------------
    def load_cell(self, key: str) -> PatternOutcome | None:
        """Cached outcome for a key, or None (missing / quarantined)."""
        path = self.cell_path(key)
        if not path.exists():
            return None
        try:
            header, record = read_jsonl(path)
            if header.get("kind") != "cell":
                raise ArtifactCorrupt(f"{path}: not a cell artifact")
            return outcome_from_record(record)
        except (ArtifactCorrupt, ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            return None

    def save_cell(self, key: str, outcome: PatternOutcome) -> None:
        write_jsonl_atomic(self.cell_path(key), [
            {"schema": _SCHEMA, "kind": "cell", "key": key},
            outcome_to_record(outcome),
        ], fault_point="store.save_cell")

    # -- campaign artifacts ---------------------------------------------------
    def load_campaign(self, key: str) -> tuple[dict, list[dict]] | None:
        """(meta, record dicts) for a cached campaign, or None."""
        path = self.campaign_path(key)
        if not path.exists():
            return None
        try:
            header, meta, *records = read_jsonl(path)
            if header.get("kind") != "campaign":
                raise ArtifactCorrupt(f"{path}: not a campaign artifact")
            return meta, records
        except (ArtifactCorrupt, ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            return None

    def save_campaign(self, key: str, meta: dict,
                      records: list[dict]) -> None:
        write_jsonl_atomic(self.campaign_path(key), [
            {"schema": _SCHEMA, "kind": "campaign", "key": key},
            meta,
            *records,
        ], fault_point="store.save_campaign")

    # -- runs -----------------------------------------------------------------
    def list_runs(self) -> list[RunManifest]:
        """Every stored manifest, newest first (unreadable ones skipped)."""
        runs_dir = self.root / "runs"
        manifests = []
        if runs_dir.is_dir():
            for run_dir in runs_dir.iterdir():
                try:
                    manifests.append(RunManifest.load(run_dir / "manifest.json"))
                except (OSError, ValueError, KeyError, TypeError):
                    continue
        manifests.sort(key=lambda m: m.started_at, reverse=True)
        return manifests

    def load_manifest(self, run_id: str) -> RunManifest:
        """Manifest for a run id; raises :class:`UnknownRunError` if absent."""
        path = self.manifest_path(run_id)
        try:
            return RunManifest.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            raise UnknownRunError(
                f"no run {run_id!r} in store {self.root} "
                f"(try `repro runs list`)"
            ) from None

    # -- garbage collection ---------------------------------------------------
    def _gc_protected(self) -> tuple[set[str], set[str]]:
        """(run ids, artifact keys) that gc must keep regardless of age.

        Any run whose manifest status is not ``completed`` is either in
        progress or resumable (``--resume`` restarts it and turns its
        finished cells into cache hits), so its run record — and every
        artifact its checkpoint log references — must survive collection.
        """
        protected_runs: set[str] = set()
        protected_keys: set[str] = set()
        runs_dir = self.root / "runs"
        if not runs_dir.is_dir():
            return protected_runs, protected_keys
        for run_dir in runs_dir.iterdir():
            if not run_dir.is_dir():
                continue
            try:
                manifest = RunManifest.load(run_dir / "manifest.json")
            except (OSError, ValueError, KeyError, TypeError):
                continue  # unreadable manifests are not resumable
            if manifest.status == "completed":
                continue
            protected_runs.add(run_dir.name)
            checkpoint = run_dir / "checkpoint.jsonl"
            if not checkpoint.is_file():
                continue
            try:
                lines = checkpoint.read_text().splitlines()
            except OSError:
                continue
            for line in lines:
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn final line after a kill
                key = entry.get("key") if isinstance(entry, dict) else None
                if isinstance(key, str):
                    protected_keys.add(key)
        return protected_runs, protected_keys

    def gc(self, *, days: float = 30.0, dry_run: bool = False) -> GCStats:
        """Remove artifacts and run records older than ``days`` (by mtime).

        ``days=0`` empties the store.  ``dry_run=True`` only reports what
        a real pass would reclaim.  Runs that are still in progress or
        resumable (manifest status other than ``completed``) are never
        removed, nor are the artifacts their checkpoints reference —
        collecting those would silently restart a resumed sweep from zero.
        """
        cutoff = time.time() - days * 86400.0
        protected_runs, protected_keys = self._gc_protected()
        artifacts = runs = freed = protected = 0
        for bucket in ("cells", "campaigns", "quarantine"):
            base = self.root / bucket
            if not base.is_dir():
                continue
            # quarantined copies may carry a .N collision suffix, so match
            # any file there; live buckets stay strict.
            pattern = "*" if bucket == "quarantine" else "*.jsonl"
            for path in base.rglob(pattern):
                if not path.is_file():
                    continue
                if path.stat().st_mtime <= cutoff:
                    if bucket != "quarantine" and path.stem in protected_keys:
                        protected += 1
                        continue
                    artifacts += 1
                    freed += path.stat().st_size
                    if not dry_run:
                        path.unlink(missing_ok=True)
        runs_dir = self.root / "runs"
        if runs_dir.is_dir():
            for run_dir in runs_dir.iterdir():
                if not run_dir.is_dir():
                    continue
                newest = max(
                    (p.stat().st_mtime for p in run_dir.iterdir()),
                    default=run_dir.stat().st_mtime,
                )
                if newest <= cutoff:
                    if run_dir.name in protected_runs:
                        protected += 1
                        continue
                    runs += 1
                    freed += sum(
                        p.stat().st_size for p in run_dir.rglob("*")
                        if p.is_file()
                    )
                    if not dry_run:
                        shutil.rmtree(run_dir, ignore_errors=True)
        return GCStats(artifacts=artifacts, runs=runs, bytes=freed,
                       protected=protected)

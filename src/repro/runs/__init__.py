"""repro.runs — persistent run store, content-addressed caching, resume.

The persistence and orchestration layer over the evaluation harness.
Every Table-2 cell (:class:`~repro.errormodel.montecarlo.PatternOutcome`)
and beam campaign is content-addressed by its full identity — scheme,
pattern, samples, seed, exhaustiveness and a fingerprint of the
result-bearing source code — and serialized as a checksummed JSONL
artifact under a configurable store root (``REPRO_RUNS_DIR``, default
``~/.cache/repro-runs``).  Re-running ``repro evaluate`` / ``fig8`` /
``report`` / ``system`` / ``campaign`` with the same parameters then
reloads bit-identical outcomes instead of re-entering the Monte Carlo hot
path, an interrupted sweep resumed with ``--resume <run-id>`` recomputes
only its unfinished cells, and every invocation leaves an atomic manifest
(config, provenance, wall-clock per stage, cache hit/miss counters) that
``repro runs list/show/diff/gc`` operates on.
"""

from repro.runs.artifacts import (
    ArtifactCorrupt,
    mismatch_from_record,
    mismatch_to_record,
    outcome_from_record,
    outcome_to_record,
)
from repro.runs.fingerprint import code_fingerprint
from repro.runs.manifest import RunManifest, git_commit, new_run_id
from repro.runs.session import CampaignCheckpoint, CellCache, RunSession
from repro.runs.store import (
    DEFAULT_ROOT,
    ENV_VAR,
    GCStats,
    RunStore,
    UnknownRunError,
    resolve_root,
)

__all__ = [
    "ArtifactCorrupt",
    "CampaignCheckpoint",
    "CellCache",
    "DEFAULT_ROOT",
    "ENV_VAR",
    "GCStats",
    "RunManifest",
    "RunSession",
    "RunStore",
    "UnknownRunError",
    "code_fingerprint",
    "git_commit",
    "mismatch_from_record",
    "mismatch_to_record",
    "new_run_id",
    "outcome_from_record",
    "outcome_to_record",
    "resolve_root",
]

"""Shim for environments whose setuptools cannot build PEP-517 editable wheels."""

from setuptools import setup

setup()

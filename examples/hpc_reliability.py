#!/usr/bin/env python3
"""Exascale reliability planning with DuetECC/TrioECC (Section 7.3).

For machines from 0.5 to 2 exaflops, computes the mean time to interrupt
(a DUE anywhere crashes the job) and mean time to silent failure for each
candidate ECC, then derives the checkpoint interval a job scheduler would
pick — showing why the correction/SDC trade-off matters operationally.

Run:  python examples/hpc_reliability.py
"""

import math

from repro import get_scheme, weighted_outcomes
from repro.analysis.tables import format_table
from repro.system.hpc import ExascaleSystem, figure9_series

SAMPLES = 20_000
EXAFLOPS = (0.5, 1.0, 2.0)


def optimal_checkpoint_hours(mtti_hours: float,
                             checkpoint_cost_hours: float = 0.1) -> float:
    """Young's approximation: sqrt(2 · C · MTTI)."""
    return math.sqrt(2.0 * checkpoint_cost_hours * mtti_hours)


def main() -> None:
    print("Evaluating ECC candidates for an exascale procurement...\n")
    outcomes = {
        name: weighted_outcomes(get_scheme(name), samples=SAMPLES, seed=5)
        for name in ("ni-secded", "duet", "trio", "ssc-dsd+")
    }
    series = figure9_series(outcomes, exaflops=EXAFLOPS)
    system = ExascaleSystem()

    rows = []
    for name, points in series.items():
        for point in points:
            mttf = ("> 100 years" if point.mttf_hours > 8.766e5
                    else f"{point.mttf_months:8.1f} months")
            rows.append([
                name,
                f"{point.exaflops:.1f}",
                f"{point.gpus:,}",
                f"{point.mtti_hours:8.1f} h",
                mttf,
                f"{optimal_checkpoint_hours(point.mtti_hours):.2f} h",
            ])
    print(format_table(
        ["ECC", "EF", "GPUs", "MTTI", "MTTF (silent)", "checkpoint interval"],
        rows,
    ))

    one_ef = {name: system.point(1.0, outcome)
              for name, outcome in outcomes.items()}
    print(f"""
At 1 exaflop ({system.gpu_count(1.0):,} GPUs):
  * SEC-DED silently corrupts a result every {one_ef['ni-secded'].mttf_hours:.0f} hours —
    unusable for science at scale.
  * DuetECC never lies ({one_ef['duet'].mttf_hours / 8766:.0f}+ years between silent failures)
    but interrupts jobs every {one_ef['duet'].mtti_hours:.1f} h.
  * TrioECC stretches interrupts to {one_ef['trio'].mtti_hours:.1f} h at the cost of a
    silent failure every {one_ef['trio'].mttf_months:.0f} months.
  * SSC-DSD+ matches TrioECC availability with negligible SDC risk, if the
    larger decoder and lost pin repair are acceptable.
""")


if __name__ == "__main__":
    main()

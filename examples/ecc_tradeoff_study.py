#!/usr/bin/env python3
"""ECC design-space study: resilience vs hardware cost (Sections 6-7).

Evaluates all nine organizations of Table 2 under the paper's error model,
synthesizes their decoders, and prints a combined scorecard — the data a
memory-system architect would use to pick a code, including the
reconfigurable DuetECC/TrioECC deployment option.

Run:  python examples/ecc_tradeoff_study.py
"""

from repro import all_schemes, weighted_outcomes
from repro.analysis.tables import format_percent, format_table
from repro.hardware.synth import (
    binary_decoder,
    rs_ssc_decoder,
    ssc_dsd_decoder,
)
from repro.codes.hsiao import hsiao_code
from repro.codes.sec2bec import SEC_2BEC_72_64, paper_pair_table
from repro.system.automotive import assess_scheme

SAMPLES = 20_000


def decoder_area(name: str) -> float:
    """Synthesize the scheme's decoder and return its AND2-equivalent area."""
    if name in ("ni-secded", "i-secded"):  # interleaving is wires-only
        return binary_decoder(hsiao_code(), name=name).area()
    if name == "duet":
        return binary_decoder(hsiao_code(), csc=True, name=name).area()
    if name in ("ni-sec2bec", "i-sec2bec"):
        return binary_decoder(SEC_2BEC_72_64, pair_table=paper_pair_table(),
                              name=name).area()
    if name == "trio":
        return binary_decoder(SEC_2BEC_72_64, pair_table=paper_pair_table(),
                              csc=True, name=name).area()
    if name == "i-ssc":
        return rs_ssc_decoder(name=name).area()
    if name == "i-ssc-csc":
        return rs_ssc_decoder(csc=True, name=name).area()
    return ssc_dsd_decoder(name=name).area()


def main() -> None:
    print(f"Evaluating 9 ECC organizations ({SAMPLES} samples/pattern)...\n")
    rows = []
    for scheme in all_schemes():
        outcome = weighted_outcomes(scheme, samples=SAMPLES, seed=3)
        assessment = assess_scheme(outcome)
        rows.append([
            scheme.label,
            f"{outcome.correct:.2%}",
            f"{outcome.detect:.2%}",
            format_percent(outcome.sdc),
            "yes" if scheme.corrects_pins else "NO",
            f"{decoder_area(scheme.name):,.0f}",
            "PASS" if assessment.meets_iso26262 else "FAIL",
        ])

    print(format_table(
        ["scheme", "correct", "DUE", "SDC", "pin fix",
         "decoder AND2", "ISO 26262"],
        rows,
    ))

    print("""
Reading the scorecard like the paper does:
  * SEC-DED (the deployed GPU baseline) fails ISO 26262 outright.
  * DuetECC is the safest drop-in: byte errors all detected, SDC ~0.001%.
  * TrioECC corrects ~97% of events for ~2.5k extra gates per channel.
  * SSC-DSD+ has the lowest SDC of all but gives up pin repair and needs
    the largest, slowest decoder.
Recommended (as in the paper): DuetECC/TrioECC behind one reconfigurable
decoder, or SSC-DSD+ where a bigger departure from SEC-DED is acceptable.
""")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Deriving a SEC-2bEC code with the genetic search (Section 6.1).

The paper's Equation-3 matrix came from a genetic algorithm that minimizes
how many ordinary (non-aligned) double-bit errors alias an aligned-pair
syndrome — every alias is a potential miscorrection, i.e. SDC.  This
example runs the search, validates the structural guarantees of the best
code found, prints it in the paper's Crockford-Base32 format, and compares
it against Equation 3.

Run:  python examples/code_search.py
"""

from repro.codes.base32 import encode_h_matrix
from repro.codes.genetic import miscorrection_count, search_sec2bec
from repro.codes.sec2bec import (
    PAPER_H_ROWS_BASE32,
    SEC_2BEC_72_64,
    adjacent_pairs,
    validate_sec2bec,
)
from repro.gf.gf2 import pack_bits


def main() -> None:
    print("Searching for a (72, 64) SEC-2bEC code (GA, seeded)...")
    result = search_sec2bec(population=30, generations=25, seed=20211018)

    print(f"  generations run        : {result.generations_run}")
    print(f"  non-aligned 2b aliases : {result.miscorrections} / 2,520")

    table = validate_sec2bec(result.code, adjacent_pairs())
    print(f"  structural validation  : OK "
          f"({len(table.pairs)} unique pair syndromes, "
          f"SEC-DED fallback preserved)")

    print("\nBest H matrix found (Crockford Base32, as the paper prints it):")
    for row in encode_h_matrix(result.code.h):
        print(f"  {row}")

    paper_aliases = miscorrection_count(pack_bits(SEC_2BEC_72_64.h.T))
    print(f"\nPaper's Equation 3 for comparison "
          f"({paper_aliases} aliases):")
    for row in PAPER_H_ROWS_BASE32:
        print(f"  {row}")

    gap = result.miscorrections / paper_aliases - 1.0
    print(f"\nOur quick search lands within {gap:+.0%} of the published "
          f"matrix; longer runs close the gap further.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: protect a 32B memory entry with the paper's ECC schemes.

Encodes data into a 36B HBM2 memory entry, injects the fault patterns the
paper characterizes (single bit, interface pin, mat-local byte), and shows
how the baseline SEC-DED, DuetECC and TrioECC respond to each.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DecodeStatus, get_scheme
from repro.core.layout import bits_of_byte, bits_of_pin


def describe(result, data) -> str:
    if result.status is DecodeStatus.DETECTED:
        return "DUE (entry discarded)"
    if np.array_equal(result.data, data):
        if result.status is DecodeStatus.CLEAN:
            return "CLEAN"
        flipped = len(result.corrected_bits)
        return f"DCE (corrected {flipped} bit{'s' if flipped != 1 else ''})"
    return "SDC (silent corruption!)"


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 256, dtype=np.uint8)  # 32B of payload

    faults = {
        "no error": [],
        "single bit (cell strike)": [100],
        "pin fault (cracked microbump)": [int(b) for b in bits_of_pin(17)],
        "byte error (mat-local logic fault)": [int(b) for b in bits_of_byte(11)],
    }

    schemes = [get_scheme(name) for name in ("ni-secded", "duet", "trio")]

    print("Decoding a corrupted 36B HBM2 memory entry (32B data + 4B ECC)\n")
    header = f"{'fault':38s}" + "".join(f"{s.name:>26s}" for s in schemes)
    print(header)
    print("-" * len(header))

    for fault_name, positions in faults.items():
        row = f"{fault_name:38s}"
        for scheme in schemes:
            entry = scheme.encode(data)
            for position in positions:
                entry[position] ^= 1
            row += f"{describe(scheme.decode(entry), data):>26s}"
        print(row)

    print(
        "\nTrioECC corrects the mat-local byte error that SEC-DED silently "
        "corrupts or\nmis-handles — the paper's central claim, in one table."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Simulated neutron-beam campaign, end to end (Sections 3-5).

Runs the DRAM microbenchmark on a simulated 32GB HBM2 GPU inside the
ChipIR-like beam, while displacement damage and SEU events accumulate.
Then post-processes the mismatch logs exactly as a real campaign would:
filter intermittent (weak-cell) errors, group the remainder into events,
and report the soft-error patterns of Figures 4-5 and Table 1.

Run:  python examples/beam_campaign.py
"""

from repro.beam import (
    BeamCampaign,
    CampaignConfig,
    DamageParameters,
    EventParameters,
    SoftErrorEventGenerator,
    breadth_class_fractions,
    byte_alignment_stats,
    derive_table1,
    filter_intermittent,
    group_events,
)
from repro.beam.postprocess import events_from_truth
from repro.dram.refresh import RefreshConfig


def main() -> None:
    config = CampaignConfig(
        runs=4,
        write_cycles=8,
        reads_per_write=4,
        loop_time_s=2.0,
        seed=42,
        event_parameters=EventParameters(mean_time_to_event_s=6.0),
        damage_parameters=DamageParameters(leaky_pool=150,
                                           saturation_fluence=4e8),
    )
    print("Running beam campaign (4 microbenchmark runs, 3 data patterns)...")
    result = BeamCampaign(config).run()

    clock = result.clock
    print(f"  beam time            : {clock.elapsed_s:,.0f} s")
    print(f"  cumulative fluence   : {clock.fluence:.3g} n/cm^2")
    print(f"  terrestrial equivalent: {clock.terrestrial_equivalent_hours():,.0f} h")
    print(f"  injected SEU events  : {len(result.events)}")
    print(f"  weak cells created   : {result.weak_cell_count}")
    print(f"  mismatch records     : {len(result.records)}")

    print("\nPost-processing (Section 4): filtering intermittent errors...")
    filtered = filter_intermittent(result.records)
    print(f"  soft records         : {len(filtered.soft_records)}")
    print(f"  intermittent records : {len(filtered.intermittent_records)}")
    print(f"  damaged entries      : {len(filtered.damaged_entries)}")

    observable = result.damage.observable_count(RefreshConfig(16e-3))
    print(f"  weak cells observable @16ms refresh: {observable}")

    observed = group_events(filtered.soft_records)
    print(f"\nGrouped {len(observed)} soft-error events from the logs.")

    # Add generator-truth events so the statistics below are stable.
    generator = SoftErrorEventGenerator(seed=7)
    observed += events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(3000)]
    )

    print("\nError breadth/severity classes (Figure 4a):")
    for klass, fraction in breadth_class_fractions(observed).items():
        print(f"  {klass.name}: {fraction:6.1%}")

    stats = byte_alignment_stats(observed)
    print(f"\nByte-aligned fraction of multi-bit errors (Figure 4c): "
          f"{stats['byte_aligned_fraction']:.1%}  (paper: 74.6%)")

    print("\nDerived Table 1 pattern probabilities:")
    for pattern, probability in derive_table1(observed).items():
        print(f"  {pattern.value:8s}: {probability:7.2%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Simulating a GPU's memory in the field, end to end.

Stores real payloads in the simulated HBM2 through the protected-memory
controller, bombards it with generator SEU events (mapped onto the stored
layout), periodically scrubs, and reports the driver-style RAS counters —
the view a fleet operator gets.  Run once with SEC-DED and once with
TrioECC to see the paper's proposal as operational telemetry.

Run:  python examples/field_simulation.py
"""

import numpy as np

from repro.beam.events import SoftErrorEventGenerator
from repro.core import get_scheme
from repro.core.layout import ENTRY_BITS, NUM_PINS
from repro.dram import (
    HBM2Geometry,
    ProtectedMemory,
    SimulatedHBM2,
    UncorrectableError,
)

NUM_EVENTS = 400
ENTRIES_PER_EVENT = 4  # cap the broadest events to keep the demo quick
SCRUB_EVERY = 100  # events between background scrub passes


def transmitted_flips(positions) -> np.ndarray:
    """Map an event's logical data-bit flips onto the stored entry."""
    flips = np.zeros(ENTRY_BITS, dtype=np.uint8)
    for position in positions:
        beat, pin = divmod(int(position), 64)
        flips[beat * NUM_PINS + pin] = 1
    return flips


def run_fleet_window(scheme_name: str) -> tuple[dict, int]:
    generator = SoftErrorEventGenerator(seed=2026)
    device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
    memory = ProtectedMemory(device, get_scheme(scheme_name))
    rng = np.random.default_rng(0)

    silent_corruptions = 0
    for index in range(NUM_EVENTS):
        event = generator.generate_event(20.0 * index)
        for entry_index, positions in list(event.flips.items())[
            :ENTRIES_PER_EVENT
        ]:
            payload = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
            memory.write(entry_index, payload)
            device.inject_upset(entry_index, transmitted_flips(positions))
            try:
                if memory.read(entry_index) != payload:
                    silent_corruptions += 1
            except UncorrectableError:
                pass  # the driver would poison the page and log the DUE
        if (index + 1) % SCRUB_EVERY == 0:
            memory.scrub()
    return memory.counters.snapshot(), silent_corruptions


def main() -> None:
    print(f"Replaying {NUM_EVENTS} SEU events through the protected-memory "
          f"controller...\n")
    header = f"{'RAS counter':24s}{'NI:SEC-DED':>14s}{'TrioECC':>14s}"
    secded, secded_sdc = run_fleet_window("ni-secded")
    trio, trio_sdc = run_fleet_window("trio")

    print(header)
    print("-" * len(header))
    for key in secded:
        print(f"{key:24s}{secded[key]:>14,}{trio[key]:>14,}")
    print(f"{'SILENT corruptions':24s}{secded_sdc:>14,}{trio_sdc:>14,}")

    print(
        "\nSame event stream, same memory: TrioECC turns most of SEC-DED's "
        "interrupts\n(and all of its silent corruptions) into transparent "
        "corrections — the\noperational version of Figure 8."
    )


if __name__ == "__main__":
    main()

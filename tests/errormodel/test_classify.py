"""Tests for error-pattern classification and the priority rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import ENTRY_BITS, bits_of_beat, bits_of_byte, bits_of_pin
from repro.errormodel.classify import classify_error, classify_errors_batch
from repro.errormodel.patterns import ErrorPattern


def _error(positions):
    error = np.zeros(ENTRY_BITS, dtype=np.uint8)
    error[list(positions)] = 1
    return error


class TestScalarClassification:
    def test_single_bit(self):
        assert classify_error(_error([17])) is ErrorPattern.BIT

    def test_pin(self):
        bits = bits_of_pin(5)
        assert classify_error(_error(bits[:2])) is ErrorPattern.PIN
        assert classify_error(_error(bits)) is ErrorPattern.PIN

    def test_byte(self):
        bits = bits_of_byte(7)
        assert classify_error(_error(bits[:2])) is ErrorPattern.BYTE
        assert classify_error(_error(bits)) is ErrorPattern.BYTE

    def test_double_bit(self):
        assert classify_error(_error([0, 100])) is ErrorPattern.DOUBLE_BIT

    def test_triple_bit(self):
        assert classify_error(_error([0, 100, 200])) is ErrorPattern.TRIPLE_BIT

    def test_beat(self):
        bits = bits_of_beat(2)[::9][:5]  # 5 scattered bits within one beat
        assert classify_error(_error(bits)) is ErrorPattern.BEAT

    def test_entry(self):
        assert classify_error(_error([0, 10, 80, 150, 220])) is ErrorPattern.ENTRY

    def test_zero_error_rejected(self):
        with pytest.raises(ValueError):
            classify_error(np.zeros(ENTRY_BITS, dtype=np.uint8))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            classify_error(np.zeros(100, dtype=np.uint8))


class TestPriorityRule:
    """"Priority is given to less-difficult errors whenever multiple
    patterns fit" — the paper's tie-breaking rule."""

    def test_two_bits_in_byte_is_byte_not_double(self):
        bits = bits_of_byte(3)
        assert classify_error(_error([bits[0], bits[5]])) is ErrorPattern.BYTE

    def test_two_bits_in_pin_is_pin_not_double(self):
        bits = bits_of_pin(60)
        assert classify_error(_error([bits[0], bits[3]])) is ErrorPattern.PIN

    def test_three_bits_within_beat_is_triple_not_beat(self):
        beat = bits_of_beat(1)
        positions = [beat[0], beat[9], beat[20]]
        assert classify_error(_error(positions)) is ErrorPattern.TRIPLE_BIT

    def test_full_byte_is_byte_not_beat(self):
        assert classify_error(_error(bits_of_byte(10))) is ErrorPattern.BYTE

    def test_four_scattered_in_beat_is_beat(self):
        beat = bits_of_beat(0)
        positions = [beat[0], beat[9], beat[20], beat[33]]
        assert classify_error(_error(positions)) is ErrorPattern.BEAT


class TestBatchClassification:
    def test_batch_matches_scalar_on_constructed(self):
        cases = [
            _error([5]),
            _error(bits_of_pin(3)),
            _error(bits_of_byte(20)),
            _error([0, 100]),
            _error([0, 100, 200]),
            _error([0, 9, 20, 33]),
            _error([0, 80, 160, 240]),
        ]
        batch = classify_errors_batch(np.stack(cases))
        for row, case in enumerate(cases):
            assert batch[row] is classify_error(case), row

    @given(st.lists(
        st.lists(st.integers(min_value=0, max_value=ENTRY_BITS - 1),
                 min_size=1, max_size=12, unique=True),
        min_size=1, max_size=25,
    ))
    @settings(max_examples=50, deadline=None)
    def test_batch_equals_scalar(self, position_lists):
        errors = np.stack([_error(p) for p in position_lists])
        batch = classify_errors_batch(errors)
        for row, positions in enumerate(position_lists):
            assert batch[row] is classify_error(_error(positions))

    def test_zero_rows_rejected(self):
        with pytest.raises(ValueError):
            classify_errors_batch(np.zeros((2, ENTRY_BITS), dtype=np.uint8))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            classify_errors_batch(np.ones((2, 100), dtype=np.uint8))

"""Tests for the Table-1 pattern definitions."""

from repro.errormodel.patterns import (
    PATTERN_BIT_RANGES,
    TABLE1_PROBABILITIES,
    ErrorPattern,
)


class TestTable1:
    def test_probabilities_sum_to_one(self):
        assert abs(sum(TABLE1_PROBABILITIES.values()) - 1.0) < 1e-9

    def test_paper_values(self):
        assert TABLE1_PROBABILITIES[ErrorPattern.BIT] == 0.7398
        assert TABLE1_PROBABILITIES[ErrorPattern.PIN] == 0.0019
        assert TABLE1_PROBABILITIES[ErrorPattern.BYTE] == 0.2256
        assert TABLE1_PROBABILITIES[ErrorPattern.DOUBLE_BIT] == 0.0011
        assert TABLE1_PROBABILITIES[ErrorPattern.TRIPLE_BIT] == 0.0003
        assert TABLE1_PROBABILITIES[ErrorPattern.BEAT] == 0.0090
        assert TABLE1_PROBABILITIES[ErrorPattern.ENTRY] == 0.0223

    def test_all_patterns_covered(self):
        assert set(TABLE1_PROBABILITIES) == set(ErrorPattern)
        assert set(PATTERN_BIT_RANGES) == set(ErrorPattern)

    def test_difficulty_ordering(self):
        ordered = sorted(ErrorPattern, key=lambda p: p.difficulty)
        assert ordered == list(ErrorPattern)
        assert ErrorPattern.BIT.difficulty < ErrorPattern.BYTE.difficulty
        assert ErrorPattern.BEAT.difficulty < ErrorPattern.ENTRY.difficulty

    def test_bit_ranges_match_paper(self):
        assert PATTERN_BIT_RANGES[ErrorPattern.BIT] == (1, 1)
        assert PATTERN_BIT_RANGES[ErrorPattern.PIN] == (2, 4)
        assert PATTERN_BIT_RANGES[ErrorPattern.BYTE] == (2, 8)
        assert PATTERN_BIT_RANGES[ErrorPattern.ENTRY] == (4, 256)

"""Tests for degraded operation with a permanent pin fault."""

import numpy as np
import pytest

from repro.core import get_scheme
from repro.core.layout import NUM_PINS, pin_of
from repro.errormodel.permanent import (
    evaluate_with_stuck_pin,
    sample_stuck_pin_flips,
)

SAMPLES = 8000


class TestStuckPinSampler:
    def test_flips_confined_to_pin(self):
        rng = np.random.default_rng(0)
        flips = sample_stuck_pin_flips(13, 200, rng)
        for row in flips:
            positions = np.nonzero(row)[0]
            assert np.all(pin_of(positions) == 13)

    def test_half_density(self):
        rng = np.random.default_rng(1)
        flips = sample_stuck_pin_flips(5, 4000, rng)
        assert flips.sum() / (4000 * 4) == pytest.approx(0.5, abs=0.03)

    def test_invalid_pin(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            sample_stuck_pin_flips(NUM_PINS, 1, rng)


class TestDegradedOperation:
    def test_pin_correcting_schemes_survive(self):
        for name in ("ni-secded", "duet", "trio", "i-ssc"):
            outcome = evaluate_with_stuck_pin(
                get_scheme(name), samples=SAMPLES, seed=3
            )
            assert outcome.due_without_soft_error == 0.0, name
            assert outcome.survives_degraded, name

    def test_ssc_dsd_cannot_run_degraded(self):
        outcome = evaluate_with_stuck_pin(
            get_scheme("ssc-dsd+"), samples=SAMPLES, seed=3
        )
        # A dead pin corrupts 2+ symbols on most accesses: constant DUEs.
        assert outcome.due_without_soft_error > 0.5
        assert not outcome.survives_degraded

    def test_duet_stays_safe_under_degradation(self):
        outcome = evaluate_with_stuck_pin(get_scheme("duet"),
                                          samples=SAMPLES, seed=4)
        assert outcome.sdc_with_soft_error < 0.002

    def test_degradation_costs_correction(self):
        """With a dead pin, concurrent soft errors mostly become DUEs —
        the CSC refuses the now-misaligned correction constellations."""
        healthy_like = evaluate_with_stuck_pin(get_scheme("trio"),
                                               samples=SAMPLES, seed=5)
        assert healthy_like.due_with_soft_error > 0.5

    def test_outcome_fractions_sum(self):
        outcome = evaluate_with_stuck_pin(get_scheme("trio"),
                                          samples=SAMPLES, seed=6)
        total = (outcome.correct_with_soft_error
                 + outcome.due_with_soft_error
                 + outcome.sdc_with_soft_error)
        assert total == pytest.approx(1.0)

    def test_deterministic(self):
        first = evaluate_with_stuck_pin(get_scheme("duet"),
                                        samples=2000, seed=7)
        second = evaluate_with_stuck_pin(get_scheme("duet"),
                                         samples=2000, seed=7)
        assert first == second
